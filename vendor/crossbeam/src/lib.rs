//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, bounded, Sender, Receiver}`
//! over `std::sync::mpsc`. Only the MPSC shape this workspace uses is
//! supported (cloneable senders, single consumer).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels (the `crossbeam-channel` subset in use).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of a channel (unbounded or bounded).
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: Flavor<T>,
    }

    #[derive(Debug, Clone)]
    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// An error returned when the receiving half has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// An error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// The receiving half has disconnected.
        Disconnected(T),
    }

    /// An error returned when all senders have disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// An error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No value arrived before the deadline.
        Timeout,
        /// Every sender has disconnected.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        /// Fails only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                Flavor::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                Flavor::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }

        /// Sends without blocking: a full bounded channel returns
        /// [`TrySendError::Full`] instead of waiting.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.inner {
                Flavor::Unbounded(tx) => {
                    tx.send(value).map_err(|e| TrySendError::Disconnected(e.0))
                }
                Flavor::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Receives without blocking, if a value is ready.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }

        /// Blocks until a value arrives, the deadline passes, or every
        /// sender is gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: Flavor::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Creates a bounded FIFO channel holding at most `cap` values;
    /// `send` blocks (and `try_send` fails) while it is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: Flavor::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_disconnect() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop((tx, tx2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_try_send_reports_full_then_drains() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn recv_timeout_times_out_and_disconnects() {
            let (tx, rx) = bounded::<u8>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
