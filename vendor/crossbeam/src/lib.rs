//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` over
//! `std::sync::mpsc`. Only the MPSC shape this workspace uses is
//! supported (cloneable senders, single consumer).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels (the `crossbeam-channel` subset in use).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// An error returned when the receiving half has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// An error returned when all senders have disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Receives without blocking, if a value is ready.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_disconnect() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop((tx, tx2));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
