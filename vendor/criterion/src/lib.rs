//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-definition API this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `Throughput`) with a simple
//! adaptive wall-clock timer instead of criterion's statistical engine.
//! Results are printed as `ns/iter` lines. When the binary is invoked
//! with `--test` (as `cargo test` does for `harness = false` targets)
//! each routine runs exactly once, keeping test runs fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target measuring time per benchmark (full runs).
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// The benchmark manager handed to every `criterion_group!` function.
#[derive(Debug)]
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--test");
        Criterion { quick }
    }
}

impl Criterion {
    /// Applies command-line configuration (no-op beyond `--test` detection).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            quick: self.quick,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let quick = self.quick;
        run_one("", &id.into_benchmark_id(), quick, f);
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    quick: bool,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the statistical sample count (accepted, ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput (accepted, ignored by the stub).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into_benchmark_id(), self.quick, f);
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into_benchmark_id(), self.quick, |b| {
            f(b, input)
        });
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Per-iteration throughput annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`] for the id-accepting methods.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            repr: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { repr: self }
    }
}

/// The timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    quick: bool,
    /// Measured nanoseconds per iteration, set by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock cost per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.quick {
            black_box(routine());
            self.ns_per_iter = 0.0;
            return;
        }
        // Calibrate: grow the batch until one batch takes >= ~1 ms.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 30 {
                break;
            }
            batch *= 8;
        }
        // Measure for the budget.
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < MEASURE_BUDGET {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &BenchmarkId, quick: bool, mut f: F) {
    let mut b = Bencher {
        quick,
        ns_per_iter: 0.0,
    };
    f(&mut b);
    let name = if group.is_empty() {
        id.repr.clone()
    } else {
        format!("{group}/{}", id.repr)
    };
    if quick {
        println!("bench {name}: ok (test mode)");
    } else {
        println!("bench {name}: {:.1} ns/iter", b.ns_per_iter);
    }
}

/// Declares a group function invoking each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main()` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("lookup", 64).repr, "lookup/64");
        assert_eq!(BenchmarkId::from_parameter(7).repr, "7");
    }

    #[test]
    fn quick_mode_runs_once() {
        let mut count = 0;
        let mut b = Bencher {
            quick: true,
            ns_per_iter: -1.0,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert_eq!(b.ns_per_iter, 0.0);
    }
}
