//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the tiny slice of the `bytes` API it actually uses: a growable byte
//! buffer ([`BytesMut`]) and the big-endian put-style writer methods of
//! [`BufMut`]. Semantics match the real crate for this surface; swap the
//! workspace `bytes` dependency back to crates.io to drop the stub.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// A growable byte buffer backed by a `Vec<u8>`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Write-side buffer operations (big-endian integer puts).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.inner.resize(self.inner.len() + cnt, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn puts_are_big_endian_and_appending() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_u64(0x1122_3344_5566_7788);
        b.put_slice(&[9, 10]);
        b.put_bytes(0, 2);
        assert_eq!(
            &b[..],
            &[1, 2, 3, 4, 5, 6, 7, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 9, 10, 0, 0]
        );
        assert_eq!(b.len(), 19);
        b[0] = 0xff;
        assert_eq!(b.to_vec()[0], 0xff);
    }
}
