//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this crate implements
//! the subset of proptest the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_recursive`/`boxed`,
//! [`Just`], [`any`], integer-range strategies, tuple strategies,
//! [`collection::vec`], [`option::of`], and the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case panics with its (deterministic)
//!   case index; rerunning reproduces it exactly.
//! * **Deterministic seeding** — each test's RNG is seeded from its full
//!   module path, so runs are stable across processes and machines.
//! * Case count defaults to 256, configurable per block via
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Runner configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic generator driving every strategy (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test's name (FNV-1a of `name`).
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform sample from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A source of random values of one type.
///
/// The mirror of proptest's `Strategy`, minus value trees: `generate`
/// produces a value directly and nothing shrinks.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `f`
    /// derives one level of branches from the strategy for the level
    /// below. `depth` bounds recursion; the size/branch hints are
    /// accepted for API compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = f(current.clone()).boxed();
            current = strategy::OneOf::new(vec![leaf.clone(), branch]).boxed();
        }
        current
    }

    /// Erases the strategy type (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// A strategy applying a function to another strategy's output.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a default full-range strategy (see [`any`]).
pub trait Arbitrary {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The full-range strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Core strategy combinators referenced by the macros.
pub mod strategy {
    use super::{BoxedStrategy, Strategy, TestRng};

    /// Uniformly picks one of several same-typed strategies.
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds a uniform choice over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }
}

/// Collection strategies (subset: `vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specifications accepted by [`vec`].
    pub trait IntoSizeRange {
        /// The `(min, max_inclusive)` length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    /// A strategy for `Vec`s of values from `element`, sized in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min + 1) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (subset: `of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// A strategy producing `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Uniformly chooses between same-typed strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategy = ($($s,)+);
            let __name = concat!(module_path!(), "::", stringify!($name));
            let mut __rng = $crate::TestRng::for_test(__name);
            for __case in 0..__config.cases {
                let ($($p,)+) = $crate::Strategy::generate(&__strategy, &mut __rng);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(bool),
        Not(Box<Tree>),
        Pair(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Not(a) => 1 + depth(a),
            Tree::Pair(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u16..9, b in 1i64..=4, v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_maps_and_tuples(x in prop_oneof![Just(1u8), 2u8..4, any::<u8>().prop_map(|v| v | 0x80)]) {
            prop_assert!(x == 1 || (2..4).contains(&x) || x >= 0x80);
        }

        #[test]
        fn recursion_is_depth_bounded(t in Just(Tree::Leaf(true)).prop_map(|t| t).prop_recursive(
            3, 24, 2,
            |inner| prop_oneof![
                inner.clone().prop_map(|a| Tree::Not(Box::new(a))),
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Pair(Box::new(a), Box::new(b))),
            ],
        )) {
            prop_assert!(depth(&t) <= 3);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let s = (0u32..1000, any::<bool>());
        let mut r1 = crate::TestRng::for_test("t");
        let mut r2 = crate::TestRng::for_test("t");
        for _ in 0..32 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let s = crate::option::of(any::<u8>());
        let mut rng = crate::TestRng::for_test("opt");
        let vals: Vec<_> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_some));
        assert!(vals.iter().any(Option::is_none));
    }
}
