//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free `lock()`
//! signatures (poisoned locks are recovered rather than erroring, matching
//! parking_lot's no-poisoning behaviour closely enough for this workspace).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock whose `read()`/`write()` never return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_recovers() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
