//! Offline stand-in for the `rand` crate.
//!
//! Implements the small deterministic subset this workspace uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer
//! ranges, and [`Rng::gen`] for a few primitive types, all backed by an
//! xorshift64* generator seeded through SplitMix64. Not cryptographic;
//! statistical quality is adequate for simulation fuzzing only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core generator trait (subset of `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of generators from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoUniformRange<T>,
    {
        let (lo, hi_inclusive) = range.bounds();
        T::sample(self, lo, hi_inclusive)
    }

    /// Samples a value of a primitive type uniformly at random.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly sampleable from a range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[lo, hi]` (both inclusive).
    fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait IntoUniformRange<T> {
    /// The `(low, high_inclusive)` bounds of the range.
    fn bounds(self) -> (T, T);
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128 + 1) as u128;
                debug_assert!(span > 0, "empty gen_range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
        impl IntoUniformRange<$t> for Range<$t> {
            fn bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "empty gen_range");
                (self.start, self.end - 1)
            }
        }
        impl IntoUniformRange<$t> for RangeInclusive<$t> {
            fn bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a "standard" full-range distribution.
pub trait Standard: Sized {
    /// Samples one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, i8, i16, i32, i64);

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 scramble so nearby seeds diverge.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng {
                state: z | 1, // xorshift state must be non-zero
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: u64 = a.gen_range(0..17);
            assert_eq!(x, b.gen_range(0..17));
            assert!(x < 17);
        }
        let lo: i64 = a.gen_range(-5i64..=5);
        assert!((-5..=5).contains(&lo));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
