//! The conformance campaign driver: every `attacks/*.atk` × five
//! controller applications × both fail modes × a seed set, judged by
//! the differential and golden-trace oracles.
//!
//! Usage:
//!   cargo run --release --bin campaign [options]
//!
//! Options:
//!   --jobs N           worker threads (default: available parallelism)
//!   --seeds N          seeds 1..=N instead of the default set
//!   --smoke            the reduced CI matrix (3 attacks × 5 × 2 × 1 seed)
//!   --only SPEC        attack=…,controller=…,fail=…,seed=… (any subset)
//!   --out PATH         report path (default CAMPAIGN_report.json)
//!   --update-golden    rewrite tests/golden/campaign/ from this run
//!   --golden PATH      golden digests file to verify/update
//!   --cell-timeout SEC wall-clock deadline per cell (default 120, 0 = off)
//!   --max-events N     deterministic event budget per cell (default: none)
//!   --retries N        same-seed retries for timed-out cells (default 0)
//!
//! The report's canonical bytes (wall-times zeroed) are byte-identical
//! for any `--jobs`; exit status is non-zero if any cell fails its
//! expectation, any cell could not be judged (panicked, timed out, or
//! exhausted its budget), or the golden digests drifted. Incomplete
//! cells are annotated in the report, never aborted on.

use attain::campaign::{diff_golden, Filter, Matrix, RunnerConfig};
use std::process::ExitCode;
use std::time::Duration;

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let update_golden = args.iter().any(|a| a == "--update-golden");
    let jobs = arg_value(&args, "--jobs")
        .map(|s| s.parse().expect("--jobs takes an integer"))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let out = arg_value(&args, "--out").unwrap_or_else(|| "CAMPAIGN_report.json".into());
    let cell_timeout = arg_value(&args, "--cell-timeout")
        .map(|s| s.parse().expect("--cell-timeout takes seconds"))
        .unwrap_or(120u64);
    let max_events =
        arg_value(&args, "--max-events").map(|s| s.parse().expect("--max-events takes an integer"));
    let retries = arg_value(&args, "--retries")
        .map(|s| s.parse().expect("--retries takes an integer"))
        .unwrap_or(0u32);
    let golden_path = arg_value(&args, "--golden").unwrap_or_else(|| {
        format!(
            "tests/golden/campaign/{}.txt",
            if smoke { "smoke" } else { "full" }
        )
    });

    let mut matrix = if smoke {
        Matrix::smoke()
    } else {
        Matrix::full()
    };
    if let Some(n) = arg_value(&args, "--seeds") {
        let n: u64 = n.parse().expect("--seeds takes an integer");
        matrix.seeds = (1..=n).collect();
    }
    if let Some(spec) = arg_value(&args, "--only") {
        match Filter::parse(&spec) {
            Ok(f) => f.apply(&mut matrix),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }
    let n_cells = matrix.cells().len();
    eprintln!(
        "campaign: {} attacks × {} controllers × {} fail modes × {} seeds = {} cells on {} jobs",
        matrix.attacks.len(),
        matrix.controllers.len(),
        matrix.fail_modes.len(),
        matrix.seeds.len(),
        n_cells,
        jobs
    );

    let mut cfg = RunnerConfig::new(jobs);
    cfg.cell_timeout = (cell_timeout > 0).then(|| Duration::from_secs(cell_timeout));
    cfg.max_events = max_events;
    cfg.retries = retries;
    let report = attain::campaign::run_with(&matrix, &cfg);
    std::fs::write(&out, report.to_json(true)).expect("report written");
    eprintln!(
        "{}/{} cells pass, {} unjudged ({} ms); report: {out}",
        report.passed(),
        report.cells.len(),
        report.unjudged(),
        report.wall_ms_total
    );

    let mut ok = true;
    for f in report.failures() {
        ok = false;
        match (f.observed, f.status.annotation()) {
            (Some(observed), _) => eprintln!(
                "FAIL {}: observed {}, expected one of [{}]",
                f.name,
                observed,
                f.expected
                    .iter()
                    .map(|e| e.slug())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            (None, Some(annotation)) => {
                eprintln!("UNJUDGED {} [{}]: {annotation}", f.name, f.status.slug())
            }
            (None, None) => eprintln!("UNJUDGED {}: baseline incomplete", f.name),
        }
    }

    let fresh = report.golden_digests();
    if update_golden {
        if let Some(dir) = std::path::Path::new(&golden_path).parent() {
            std::fs::create_dir_all(dir).expect("golden dir created");
        }
        std::fs::write(&golden_path, &fresh).expect("golden file written");
        eprintln!("golden digests updated: {golden_path}");
    } else {
        match std::fs::read_to_string(&golden_path) {
            Ok(checked_in) => {
                if let Some(diff) = diff_golden(&checked_in, &fresh) {
                    ok = false;
                    eprintln!("{diff}");
                }
            }
            Err(e) => {
                eprintln!("note: no golden file at {golden_path} ({e}); run with --update-golden");
            }
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
