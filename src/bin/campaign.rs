//! The conformance campaign driver: every `attacks/*.atk` × five
//! controller applications × both fail modes × a seed set, judged by
//! the differential and golden-trace oracles.
//!
//! Usage:
//!   cargo run --release --bin campaign [options]
//!
//! Options:
//!   --jobs N        worker threads (default: available parallelism)
//!   --seeds N       seeds 1..=N instead of the default set
//!   --smoke         the reduced CI matrix (3 attacks × 5 × 2 × 1 seed)
//!   --only SPEC     attack=…,controller=…,fail=…,seed=… (any subset)
//!   --out PATH      report path (default CAMPAIGN_report.json)
//!   --update-golden rewrite tests/golden/campaign/ from this run
//!   --golden PATH   golden digests file to verify/update
//!
//! The report's canonical bytes (wall-times zeroed) are byte-identical
//! for any `--jobs`; exit status is non-zero if any cell fails its
//! expectation or the golden digests drifted.

use attain::campaign::{diff_golden, Filter, Matrix};
use std::process::ExitCode;

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let update_golden = args.iter().any(|a| a == "--update-golden");
    let jobs = arg_value(&args, "--jobs")
        .map(|s| s.parse().expect("--jobs takes an integer"))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let out = arg_value(&args, "--out").unwrap_or_else(|| "CAMPAIGN_report.json".into());
    let golden_path = arg_value(&args, "--golden").unwrap_or_else(|| {
        format!(
            "tests/golden/campaign/{}.txt",
            if smoke { "smoke" } else { "full" }
        )
    });

    let mut matrix = if smoke {
        Matrix::smoke()
    } else {
        Matrix::full()
    };
    if let Some(n) = arg_value(&args, "--seeds") {
        let n: u64 = n.parse().expect("--seeds takes an integer");
        matrix.seeds = (1..=n).collect();
    }
    if let Some(spec) = arg_value(&args, "--only") {
        match Filter::parse(&spec) {
            Ok(f) => f.apply(&mut matrix),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }
    let n_cells = matrix.cells().len();
    eprintln!(
        "campaign: {} attacks × {} controllers × {} fail modes × {} seeds = {} cells on {} jobs",
        matrix.attacks.len(),
        matrix.controllers.len(),
        matrix.fail_modes.len(),
        matrix.seeds.len(),
        n_cells,
        jobs
    );

    let report = attain::campaign::run(&matrix, jobs);
    std::fs::write(&out, report.to_json(true)).expect("report written");
    eprintln!(
        "{}/{} cells pass ({} ms); report: {out}",
        report.passed(),
        report.cells.len(),
        report.wall_ms_total
    );

    let mut ok = true;
    for f in report.failures() {
        ok = false;
        eprintln!(
            "FAIL {}: observed {}, expected one of [{}]",
            f.name,
            f.observed,
            f.expected
                .iter()
                .map(|e| e.slug())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    let fresh = report.golden_digests();
    if update_golden {
        if let Some(dir) = std::path::Path::new(&golden_path).parent() {
            std::fs::create_dir_all(dir).expect("golden dir created");
        }
        std::fs::write(&golden_path, &fresh).expect("golden file written");
        eprintln!("golden digests updated: {golden_path}");
    } else {
        match std::fs::read_to_string(&golden_path) {
            Ok(checked_in) => {
                if let Some(diff) = diff_golden(&checked_in, &fresh) {
                    ok = false;
                    eprintln!("{diff}");
                }
            }
            Err(e) => {
                eprintln!("note: no golden file at {golden_path} ({e}); run with --update-golden");
            }
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
