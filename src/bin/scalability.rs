//! Scalability sweep: how far the sharded timer-wheel engine carries
//! the simulator past the paper's eleven-node testbed.
//!
//! Usage:
//!   cargo run --release --bin scalability [options]
//!
//!   --smoke            the capped CI sweep (fat-tree k=4 only)
//!   --max-events N     deterministic event budget per row (default:
//!                      50,000,000; smoke default 2,000,000)
//!   --shards N         engine shard count (default 1)
//!   --heap             use the binary-heap scheduler instead of the wheel
//!   --json PATH        also write the report as JSON
//!
//! Each row builds a generated fabric (fat-tree or leaf-spine), installs
//! proactive two-level prefix routes, schedules a seeded traffic matrix,
//! and runs to the horizon in [`TraceMode::Counters`], reporting virtual
//! events dispatched, wall-clock, event rate, and the engine's peak
//! pending-event depth. The largest row reaches 1,024 switches and
//! 100,000 concurrent flows. A final pair of rows replays the k=8 fabric
//! under both schedulers — the macro-level heap vs. wheel comparison
//! (micro push/pop costs live in `crates/bench/benches/scalability.rs`).

use attain_netsim::topo::{
    fat_tree, install_fat_tree_routes, install_leaf_spine_routes, leaf_spine, FatTreeParams,
    LeafSpineParams, Topology,
};
use attain_netsim::workload::{FlowKind, TrafficMatrix, TrafficPattern};
use attain_netsim::{NetworkBuilder, RunBudget, SchedulerConfig, SimTime, Simulation, TraceMode};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// One sweep row: a fabric plus a traffic matrix sized for it.
struct Row {
    name: &'static str,
    fabric: Fabric,
    flows: usize,
    /// Mean inter-arrival gap; small gaps pile flows up concurrently.
    mean_gap: SimTime,
    horizon: SimTime,
}

enum Fabric {
    FatTree {
        k: usize,
    },
    LeafSpine {
        spines: usize,
        leaves: usize,
        hosts_per_leaf: usize,
    },
}

struct Outcome {
    name: &'static str,
    scheduler: String,
    switches: usize,
    hosts: usize,
    flows: usize,
    routes: usize,
    events: u64,
    wall_ms: f64,
    events_per_sec: f64,
    peak_pending: usize,
    pings_sent: u64,
    pings_received: u64,
    halt: String,
}

fn sweep_rows(smoke: bool) -> Vec<Row> {
    // Ping trains are long (5 echoes at 1 s) relative to the arrival
    // window (flows × mean_gap), so at the larger rows effectively the
    // whole matrix is in flight at once — "concurrent flows" is meant
    // literally, and peak_pending shows it.
    let rows = vec![
        Row {
            name: "fat-tree k=4",
            fabric: Fabric::FatTree { k: 4 },
            flows: 64,
            mean_gap: SimTime::from_millis(1),
            horizon: SimTime::from_secs(10),
        },
        Row {
            name: "fat-tree k=8",
            fabric: Fabric::FatTree { k: 8 },
            flows: 1_000,
            mean_gap: SimTime::from_micros(500),
            horizon: SimTime::from_secs(10),
        },
        Row {
            name: "fat-tree k=16",
            fabric: Fabric::FatTree { k: 16 },
            flows: 10_000,
            mean_gap: SimTime::from_micros(100),
            horizon: SimTime::from_secs(12),
        },
        Row {
            name: "fat-tree k=32",
            fabric: Fabric::FatTree { k: 32 },
            flows: 50_000,
            mean_gap: SimTime::from_micros(40),
            horizon: SimTime::from_secs(12),
        },
        Row {
            name: "leaf-spine 24x1000",
            fabric: Fabric::LeafSpine {
                spines: 24,
                leaves: 1_000,
                hosts_per_leaf: 32,
            },
            flows: 100_000,
            mean_gap: SimTime::from_micros(20),
            horizon: SimTime::from_secs(12),
        },
    ];
    if smoke {
        rows.into_iter().take(1).collect()
    } else {
        rows
    }
}

fn build(row: &Row, config: SchedulerConfig) -> (Simulation, Topology, usize) {
    let mut b = NetworkBuilder::new();
    b.scheduler(config);
    match row.fabric {
        Fabric::FatTree { k } => {
            let t = fat_tree(&mut b, &FatTreeParams::new(k)).expect("fat-tree params");
            let mut sim = b.build();
            let routes = install_fat_tree_routes(&mut sim, &t);
            (sim, t, routes)
        }
        Fabric::LeafSpine {
            spines,
            leaves,
            hosts_per_leaf,
        } => {
            let t = leaf_spine(
                &mut b,
                &LeafSpineParams::new(spines, leaves, hosts_per_leaf),
            )
            .expect("leaf-spine params");
            let mut sim = b.build();
            let routes = install_leaf_spine_routes(&mut sim, &t);
            (sim, t, routes)
        }
    }
}

fn run_row(row: &Row, config: SchedulerConfig, max_events: u64) -> Outcome {
    let (mut sim, topo, routes) = build(row, config);
    sim.set_trace_mode(TraceMode::Counters);
    sim.set_run_budget(RunBudget::unlimited().with_max_events(max_events));
    let matrix = TrafficMatrix {
        mean_gap: row.mean_gap,
        kind: FlowKind::Ping {
            count: 5,
            interval: SimTime::from_secs(1),
        },
        ..TrafficMatrix::new(row.flows, 42)
    }
    .with_pattern(TrafficPattern::Hotspot {
        hotspots: 8,
        bias_pct: 30,
    });
    matrix.apply(&mut sim, &topo);

    let start = Instant::now();
    let halt = sim.run_until(row.horizon);
    let wall = start.elapsed();

    let pings = sim.ping_stats();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let events = sim.events_dispatched();
    Outcome {
        name: row.name,
        scheduler: format!("{config:?}"),
        switches: topo.switch_count(),
        hosts: topo.host_count(),
        flows: row.flows,
        routes,
        events,
        wall_ms,
        events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        peak_pending: sim.peak_pending_events(),
        pings_sent: pings.iter().map(|p| u64::from(p.transmitted())).sum(),
        pings_received: pings.iter().map(|p| u64::from(p.received())).sum(),
        halt: format!("{halt:?}"),
    }
}

fn render_json(outcomes: &[Outcome]) -> String {
    let mut s = String::from("{\n  \"bench\": \"scalability\",\n  \"rows\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let comma = if i + 1 == outcomes.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"scheduler\": \"{}\", \"switches\": {}, \"hosts\": {}, \
             \"flows\": {}, \"routes\": {}, \"events\": {}, \"wall_ms\": {:.1}, \
             \"events_per_sec\": {:.0}, \"peak_pending\": {}, \"pings_sent\": {}, \
             \"pings_received\": {}, \"halt\": \"{}\"}}{}",
            o.name,
            o.scheduler,
            o.switches,
            o.hosts,
            o.flows,
            o.routes,
            o.events,
            o.wall_ms,
            o.events_per_sec,
            o.peak_pending,
            o.pings_sent,
            o.pings_received,
            o.halt,
            comma
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{key} takes a value"))
            .clone()
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let heap = args.iter().any(|a| a == "--heap");
    let shards: usize = arg_value(&args, "--shards")
        .map(|s| s.parse().expect("--shards takes an integer"))
        .unwrap_or(1);
    let max_events: u64 = arg_value(&args, "--max-events")
        .map(|s| s.parse().expect("--max-events takes an integer"))
        .unwrap_or(if smoke { 2_000_000 } else { 50_000_000 });
    let json_path = arg_value(&args, "--json");

    let config = if heap {
        SchedulerConfig::heap(shards)
    } else {
        SchedulerConfig::wheel(shards)
    };

    let mut outcomes = Vec::new();
    println!(
        "{:<20} {:>8} {:>7} {:>7} {:>10} {:>9} {:>11} {:>9}",
        "fabric", "switches", "hosts", "flows", "events", "wall ms", "events/s", "peak q"
    );
    for row in sweep_rows(smoke) {
        let o = run_row(&row, config, max_events);
        println!(
            "{:<20} {:>8} {:>7} {:>7} {:>10} {:>9.1} {:>11.0} {:>9}",
            o.name,
            o.switches,
            o.hosts,
            o.flows,
            o.events,
            o.wall_ms,
            o.events_per_sec,
            o.peak_pending
        );
        if o.pings_received == 0 {
            eprintln!("error: {} delivered no pings", o.name);
            return ExitCode::FAILURE;
        }
        outcomes.push(o);
    }

    if !smoke {
        // Macro heap-vs-wheel comparison on a mid-size fabric.
        for alt in [SchedulerConfig::heap(1), SchedulerConfig::wheel(1)] {
            let row = &sweep_rows(false)[1];
            let o = run_row(row, alt, max_events);
            println!(
                "{:<20} {:>8} {:>7} {:>7} {:>10} {:>9.1} {:>11.0} {:>9}  [{}]",
                o.name,
                o.switches,
                o.hosts,
                o.flows,
                o.events,
                o.wall_ms,
                o.events_per_sec,
                o.peak_pending,
                o.scheduler
            );
            outcomes.push(o);
        }
    }

    if let Some(path) = json_path {
        std::fs::write(&path, render_json(&outcomes)).expect("write json report");
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
