//! # ATTAIN — ATTAck Injection for software-defined networks
//!
//! Facade crate re-exporting the full ATTAIN workspace, a reproduction of
//! *“ATTAIN: An Attack Injection Framework for Software-Defined Networking”*
//! (Ujcich, Thakore, Sanders — DSN 2017).
//!
//! The framework has three parts, mirroring the paper:
//!
//! * an **attack model** ([`core::model`]) relating system components
//!   (controllers, switches, hosts, the data-plane graph `N_D`, and the
//!   control-plane relation `N_C`) to an attacker's presumed capabilities
//!   (Table I of the paper);
//! * an **attack language** ([`core::lang`] and the textual DSL in
//!   [`core::dsl`]) for writing staged control-plane attacks out of
//!   conditionals, deque storage, actions, rules, and attack states; and
//! * an **attack injector** ([`injector`]) that interposes OpenFlow 1.0
//!   control-plane messages — either inside the bundled deterministic
//!   network simulator ([`netsim`]) or on real TCP sockets — executing
//!   attacks with the paper's Algorithm 1 ([`core::exec`]).
//!
//! Everything the paper's evaluation depends on is included: an OpenFlow 1.0
//! wire codec ([`openflow`]), an Open vSwitch–style switch model with
//! fail-safe/fail-secure modes, `ping`/`iperf`-style workload applications,
//! and models of the Floodlight, POX, and Ryu learning-switch controllers
//! ([`controllers`]). On top sits the conformance [`campaign`]: every
//! shipped attack × five controller applications × both fail modes,
//! judged against differential and golden-trace oracles.
//!
//! ## Quickstart
//!
//! ```
//! use attain::core::scenario;
//! use attain::core::dsl;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Figure 8/9 enterprise case-study topology.
//! let scenario = scenario::enterprise_network();
//! assert_eq!(scenario.system.switches().count(), 4);
//!
//! // Compile the Figure 10 flow-modification suppression attack.
//! let source = scenario::attacks::FLOW_MOD_SUPPRESSION;
//! let attack = dsl::compile(source, &scenario.system, &scenario.attack_model)?;
//! assert_eq!(attack.states().len(), 1);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end runs of both case-study attacks.

pub use attain_campaign as campaign;
pub use attain_controllers as controllers;
pub use attain_core as core;
pub use attain_injector as injector;
pub use attain_netsim as netsim;
pub use attain_openflow as openflow;
