//! Quickstart: model a network, write an attack in the DSL, run it in
//! the simulator, and read the results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use attain::controllers::Floodlight;
use attain::core::dsl;
use attain::core::exec::AttackExecutor;
use attain::core::model::{AttackModel, CapabilitySet, SystemModel};
use attain::injector::SimInjector;
use attain::netsim::{HostCommand, NetworkBuilder, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The attack model's view of the system: one controller, one
    //    switch, two hosts (paper §IV-A).
    let mut system = SystemModel::new();
    let c1 = system.add_controller("c1")?;
    let s1 = system.add_switch("s1")?;
    let h1 = system.add_host("h1", Some("10.0.0.1".parse()?), None)?;
    let h2 = system.add_host("h2", Some("10.0.0.2".parse()?), None)?;
    system.add_host_link(h1, s1, 1)?;
    system.add_host_link(h2, s1, 2)?;
    system.add_connection(c1, s1)?;
    system.validate()?;

    // 2. The attacker's capabilities: full control of the (plain-TCP)
    //    control channel (§IV-C).
    let attack_model = AttackModel::uniform(&system, CapabilitySet::no_tls());

    // 3. An attack in the description language (§V): drop every third
    //    FLOW_MOD using a deque counter.
    let source = r#"
        attack drop_every_third_flow_mod {
            start state s {
                rule init on (c1, s1) {
                    when len(counter) == 0
                    do { prepend(counter, 0); }
                }
                rule tick on (c1, s1) {
                    when msg.type == FLOW_MOD && front(counter) < 2
                    do { prepend(counter, front(counter) + 1); pop(counter); }
                }
                rule strike on (c1, s1) {
                    when msg.type == FLOW_MOD && front(counter) == 2
                    do { drop(msg); prepend(counter, 0); pop(counter); }
                }
            }
        }
    "#;
    let compiled = dsl::compile(source, &system, &attack_model)?;
    println!("compiled attack {:?}:", compiled.name());
    println!("{}", compiled.graph.to_dot());

    // 4. The same network in the simulator, with the attack interposed
    //    on the control plane (§VI).
    let mut b = NetworkBuilder::new();
    let h1 = b.host("h1", "10.0.0.1");
    let h2 = b.host("h2", "10.0.0.2");
    let s1 = b.switch("s1");
    b.link(h1, s1);
    b.link(h2, s1);
    let c1 = b.controller("c1", Box::new(Floodlight::new()));
    b.control(c1, s1);
    let mut sim = b.build();

    let exec = AttackExecutor::new(system.clone(), attack_model, compiled.attack)?;
    let (injector, handle) = SimInjector::new(exec, &system, &sim);
    sim.set_interposer(Box::new(injector));

    // 5. Workload: 20 pings h1 → h2.
    sim.schedule_command(
        SimTime::from_secs(5),
        HostCommand::Ping {
            host: h1,
            dst: "10.0.0.2".parse()?,
            count: 20,
            interval: SimTime::from_secs(1),
            label: "ping h1->h2".into(),
        },
    );
    sim.run_until(SimTime::from_secs(30));

    // 6. Results: data-plane metrics and the injection log.
    let ping = &sim.ping_stats()[0];
    println!(
        "ping: {}/{} answered, avg RTT {:.2} ms",
        ping.received(),
        ping.transmitted(),
        ping.avg_rtt_ms().unwrap_or(f64::NAN)
    );
    let exec = handle.lock();
    println!(
        "attack log: {} events, strike rule fired {} times",
        exec.log().events().len(),
        exec.log().rule_fires("strike")
    );
    println!("link stats:");
    for l in sim.link_stats() {
        println!("  {l}");
    }
    Ok(())
}
