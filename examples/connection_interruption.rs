//! The paper's §VII-C experiment, end to end: the Figure 12 connection
//! interruption attack against the DMZ firewall switch, in both fail
//! modes.
//!
//! ```sh
//! cargo run --release --example connection_interruption [floodlight|pox|ryu]
//! ```

use attain::controllers::ControllerKind;
use attain::core::scenario;
use attain::injector::harness::run_connection_interruption;
use attain::netsim::FailMode;

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("pox") => ControllerKind::Pox,
        Some("ryu") => ControllerKind::Ryu,
        _ => ControllerKind::Floodlight,
    };
    println!("attack description (Figure 12):");
    println!("{}", scenario::attacks::CONNECTION_INTERRUPTION.trim());
    println!();

    for mode in [FailMode::Safe, FailMode::Secure] {
        println!("running {kind} with s2 in {mode:?} mode…");
        let out = run_connection_interruption(kind, mode);
        println!("  ext→ext (t=30s):      {}", out.ext_to_ext);
        println!("  int→ext (t=30s):      {}", out.int_to_ext_before);
        println!("  ext→int (t=50s):      {}", out.ext_to_int);
        println!("  int→ext (t=95s):      {}", out.int_to_ext_after);
        println!(
            "  attack ended in {} (φ2 fired {}×)",
            out.final_state, out.phi2_fires
        );
        if out.unauthorized_access() {
            println!("  ⇒ unauthorized increased access");
        }
        if out.legitimate_dos() {
            println!("  ⇒ denial of service against legitimate traffic");
        }
        if out.final_state == "sigma2" {
            println!("  ⇒ φ2 never matched this controller's flow-mod attributes (the Ryu case)");
        }
        println!();
    }
}
