//! The paper's §VII-B experiment, end to end: the Figure 10 flow
//! modification suppression attack against one controller on the
//! Figure 8/9 enterprise network.
//!
//! ```sh
//! cargo run --release --example flow_mod_suppression [floodlight|pox|ryu]
//! ```

use attain::controllers::ControllerKind;
use attain::core::scenario;
use attain::injector::harness::{run_flow_mod_suppression, Fidelity};

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("pox") => ControllerKind::Pox,
        Some("ryu") => ControllerKind::Ryu,
        _ => ControllerKind::Floodlight,
    };
    println!("attack description (Figure 10):");
    println!("{}", scenario::attacks::FLOW_MOD_SUPPRESSION.trim());
    println!();

    let fidelity = Fidelity {
        ping_trials: 20,
        iperf_trials: 3,
        iperf_secs: 5,
    };
    println!("baseline run ({kind})…");
    let baseline = run_flow_mod_suppression(kind, false, &fidelity);
    println!("  {baseline}");
    println!("attacked run ({kind})…");
    let attacked = run_flow_mod_suppression(kind, true, &fidelity);
    println!("  {attacked}");

    println!();
    println!(
        "control plane: {} → {} PACKET_INs ({}x); {} FLOW_MODs suppressed",
        baseline.packet_ins,
        attacked.packet_ins,
        if baseline.packet_ins > 0 {
            attacked.packet_ins / baseline.packet_ins.max(1)
        } else {
            0
        },
        attacked.phi1_fires,
    );
    if attacked.iperf_denied() || attacked.ping_denied() {
        println!(
            "verdict: denial of service — {kind} releases buffered packets only via the \
             suppressed FLOW_MOD"
        );
    } else {
        println!("verdict: degraded service — {kind} keeps forwarding per-packet via PACKET_OUT");
    }
}
