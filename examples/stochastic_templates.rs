//! The paper's future-work features, implemented: attack state graph
//! templates (§X) and stochastic decision-making (§VIII-A), plus the
//! monitors' combined experiment report (§VI-B3).
//!
//! A template-generated probabilistic flow-mod suppressor runs against
//! the enterprise network; because its randomness derives from the
//! injector's deterministic per-message entropy, the "random" run is
//! exactly reproducible. The generated attack is also rendered back to
//! DSL text — ready to save as a shareable `.atk` file.
//!
//! ```sh
//! cargo run --release --example stochastic_templates
//! ```

use attain::controllers::ControllerKind;
use attain::core::exec::AttackExecutor;
use attain::core::lang::templates;
use attain::core::{dsl, scenario};
use attain::injector::harness::build_case_study;
use attain::injector::{ExperimentReport, SimInjector};
use attain::netsim::{FailMode, HostCommand, SimTime};
use attain::openflow::OfType;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = scenario::enterprise_network();
    let conns: Vec<_> = sc.system.connections().map(|(id, _, _)| id).collect();

    // §X template + §VIII-A stochastic extension: drop each FLOW_MOD
    // independently with probability 0.5.
    let attack = templates::suppress_type_with_probability(OfType::FlowMod, 0.5, conns);
    println!("generated attack, rendered back to DSL:\n");
    println!("{}", dsl::render(&attack, &sc.system)?);

    let run = || -> Result<ExperimentReport, Box<dyn std::error::Error>> {
        let sc = scenario::enterprise_network();
        let mut sim = build_case_study(ControllerKind::Floodlight, FailMode::Secure);
        let exec = AttackExecutor::new(sc.system.clone(), sc.attack_model, attack.clone())?;
        let (injector, handle) = SimInjector::new(exec, &sc.system, &sim);
        sim.set_interposer(Box::new(injector));
        let h1 = sim.node_id("h1").expect("case study has h1");
        sim.schedule_command(
            SimTime::from_secs(10),
            HostCommand::Ping {
                host: h1,
                dst: "10.0.0.6".parse()?,
                count: 30,
                interval: SimTime::from_secs(1),
                label: "h1->h6 under 50% suppression".into(),
            },
        );
        sim.run_until(SimTime::from_secs(45));
        let exec = handle.lock();
        Ok(ExperimentReport::collect(&sim, &exec))
    };

    let report = run()?;
    println!("{report}");

    // Stochastic, but reproducible: a second run is identical.
    let again = run()?;
    assert_eq!(report, again, "deterministic entropy ⇒ identical runs");
    println!("second run identical — stochastic attacks stay reproducible");
    Ok(())
}
