//! The injector on real sockets: a loopback OpenFlow "controller" and
//! "switch" talk through the ATTAIN TCP proxy while the flow-mod
//! suppression attack runs between them (paper §VI-B2's deployment
//! model: the switch is configured to treat the proxy as its
//! controller).
//!
//! ```sh
//! cargo run --example tcp_proxy
//! ```

use attain::core::exec::AttackExecutor;
use attain::core::model::ConnectionId;
use attain::core::{dsl, scenario};
use attain::injector::tcp::{ProxyRoute, TcpProxy};
use attain::openflow::{FlowMod, Match, OfMessage};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

fn read_frames(sock: &mut TcpStream, want: usize, timeout: Duration) -> Vec<OfMessage> {
    sock.set_read_timeout(Some(timeout)).expect("set timeout");
    let mut buf = Vec::new();
    let mut out = Vec::new();
    let mut chunk = [0u8; 1024];
    while out.len() < want {
        match sock.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
        while let Ok(Some(len)) = OfMessage::frame_len(&buf) {
            let frame: Vec<u8> = buf.drain(..len).collect();
            out.push(OfMessage::decode(&frame).expect("valid frame").0);
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A fake controller that answers HELLO and then pushes a FLOW_MOD
    // followed by an ECHO_REQUEST.
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let controller_addr = listener.local_addr()?;
    thread::spawn(move || {
        let (mut sock, _) = listener.accept().expect("switch connects");
        let mut frames = read_frames(&mut sock, 1, Duration::from_secs(5));
        assert_eq!(frames.pop(), Some(OfMessage::Hello));
        println!("[controller] got HELLO; replying and pushing FLOW_MOD + ECHO_REQUEST");
        sock.write_all(&OfMessage::Hello.encode(1)).expect("write");
        let fm = OfMessage::FlowMod(FlowMod::add(Match::all(), vec![])).encode(2);
        sock.write_all(&fm).expect("write");
        sock.write_all(&OfMessage::EchoRequest(vec![42]).encode(3))
            .expect("write");
        thread::sleep(Duration::from_secs(10));
    });

    // The ATTAIN proxy, running the Figure 10 suppression attack on
    // connection (c1, s1).
    let sc = scenario::enterprise_network();
    let compiled = dsl::compile(
        scenario::attacks::FLOW_MOD_SUPPRESSION,
        &sc.system,
        &sc.attack_model,
    )?;
    let exec = AttackExecutor::new(sc.system, sc.attack_model, compiled.attack)?;
    let proxy = TcpProxy::spawn(
        exec,
        vec![ProxyRoute {
            listen: "127.0.0.1:0".parse()?,
            controller: controller_addr,
            conn: ConnectionId(0),
        }],
        None,
    )?;
    println!("[proxy] listening on {}", proxy.listen_addrs[0]);

    // The "switch" connects to the proxy, believing it is the controller.
    let mut switch = TcpStream::connect(proxy.listen_addrs[0])?;
    switch.write_all(&OfMessage::Hello.encode(1))?;
    let received = read_frames(&mut switch, 2, Duration::from_secs(3));
    println!("[switch] received: {received:?}");
    assert!(received.contains(&OfMessage::Hello));
    assert!(
        received.contains(&OfMessage::EchoRequest(vec![42])),
        "echo must pass"
    );
    assert!(
        !received.iter().any(|m| matches!(m, OfMessage::FlowMod(_))),
        "flow mod must be suppressed"
    );
    proxy.with_executor(|e| {
        println!(
            "[proxy] φ1 fired {} time(s); log has {} events",
            e.log().rule_fires("phi1"),
            e.log().events().len()
        );
    });
    let report = proxy.shutdown();
    println!(
        "[proxy] shutdown joined {} threads; {} session(s) opened, {} closed, {} live",
        report.threads_joined,
        report.stats.sessions_opened,
        report.stats.sessions_closed,
        report.stats.live_sessions
    );
    println!("the FLOW_MOD never reached the switch — suppression works on real sockets");
    Ok(())
}
