//! The attacker capabilities model in action (paper §IV-C): the same
//! attack is accepted against a plain-TCP control channel and rejected
//! at compile time against a TLS one, because `Γ_TLS` withholds
//! `READMESSAGE`.
//!
//! ```sh
//! cargo run --example tls_capabilities
//! ```

use attain::core::dsl;
use attain::core::model::{AttackModel, Capability, CapabilitySet, SystemModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut system = SystemModel::new();
    let c1 = system.add_controller("c1")?;
    let s1 = system.add_switch("s1")?;
    let s2 = system.add_switch("s2")?;
    system.add_host("h1", Some("10.0.0.1".parse()?), None)?;
    system.add_host("h2", Some("10.0.0.2".parse()?), None)?;
    let n0 = system.add_connection(c1, s1)?;
    let n1 = system.add_connection(c1, s2)?;
    system.validate()?;

    println!("Γ (Table I), as capability sets:");
    println!("  Γ_NoTLS = {}", CapabilitySet::no_tls());
    println!("  Γ_TLS   = {}", CapabilitySet::tls());
    println!();

    // (c1, s1) is plain TCP; (c1, s2) runs TLS with an uncompromised PKI.
    let mut model = AttackModel::uniform(&system, CapabilitySet::no_tls());
    model.set(n1, CapabilitySet::tls());
    assert!(model.get(n0).contains(Capability::ReadMessage));
    assert!(!model.get(n1).contains(Capability::ReadMessage));

    let payload_reading_attack = |conn: &str| {
        format!(
            r#"
            attack drop_flow_mods {{
                start state s {{
                    rule phi on (c1, {conn}) {{
                        when msg.type == FLOW_MOD
                        do {{ drop(msg); }}
                    }}
                }}
            }}
            "#
        )
    };

    // Against the plain-TCP connection: compiles.
    let ok = dsl::compile(&payload_reading_attack("s1"), &system, &model);
    println!(
        "against plain-TCP (c1, s1): {}",
        if ok.is_ok() { "compiles" } else { "rejected" }
    );
    assert!(ok.is_ok());

    // Against the TLS connection: rejected — msg.type needs READMESSAGE.
    let err = dsl::compile(&payload_reading_attack("s2"), &system, &model)
        .expect_err("TLS must reject payload reads");
    println!("against TLS (c1, s2): rejected — {err}");

    // Metadata-only attacks still work under TLS: delay everything.
    let metadata_attack = r#"
        attack slow_everything {
            start state s {
                rule phi on (c1, s2) {
                    when msg.length > 0
                    do { delay(msg, 0.25); }
                }
            }
        }
    "#;
    let ok = dsl::compile(metadata_attack, &system, &model);
    println!(
        "metadata-only delay attack against TLS: {}",
        if ok.is_ok() { "compiles" } else { "rejected" }
    );
    assert!(ok.is_ok());
    Ok(())
}
