//! A tour of the attack language (paper §V and §VIII): every bundled
//! attack compiled, classified, and rendered as its attack state graph.
//!
//! ```sh
//! cargo run --example attack_language_tour
//! ```

use attain::core::exec::{AttackExecutor, InjectorInput};
use attain::core::model::ConnectionId;
use attain::core::{dsl, scenario};
use attain::openflow::{FlowMod, Frame, Match, OfMessage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = scenario::enterprise_network();
    println!(
        "enterprise case study: |C|={}, |S|={}, |H|={}, |N_C|={}\n",
        sc.system.controllers().count(),
        sc.system.switches().count(),
        sc.system.hosts().count(),
        sc.system.connection_count(),
    );

    for (name, source) in scenario::attacks::ALL {
        let compiled = dsl::compile(source, &sc.system, &sc.attack_model)?;
        let g = &compiled.graph;
        println!("== {name} ==");
        println!(
            "   states: {}  edges: {}  start: {}  absorbing: {:?}  end: {:?}",
            g.vertices.len(),
            g.edges.len(),
            g.vertices[g.start],
            g.absorbing
                .iter()
                .map(|&i| &g.vertices[i])
                .collect::<Vec<_>>(),
            g.end.iter().map(|&i| &g.vertices[i]).collect::<Vec<_>>(),
        );
        for e in &g.edges {
            println!(
                "   {} → {} [{}]",
                g.vertices[e.from],
                g.vertices[e.to],
                e.label.join("; ")
            );
        }
        println!();
    }

    // Drive one attack by hand against a synthetic message stream to
    // show the executor API (Algorithm 1).
    println!("driving counted_suppression against 15 FLOW_MODs:");
    let compiled = dsl::compile(
        scenario::attacks::COUNTED_SUPPRESSION,
        &sc.system,
        &sc.attack_model,
    )?;
    let mut exec = AttackExecutor::new(sc.system, sc.attack_model, compiled.attack)?;
    let flow_mod = Frame::new(OfMessage::FlowMod(FlowMod::add(Match::all(), vec![])).encode(1));
    let mut passed = 0;
    let mut dropped = 0;
    for i in 0..15 {
        let out = exec.on_message(InjectorInput {
            conn: ConnectionId(0),
            to_controller: false,
            frame: flow_mod.clone(),
            now_ns: i,
        });
        if out.deliveries.is_empty() {
            dropped += 1;
        } else {
            passed += 1;
        }
    }
    println!(
        "   {passed} passed, {dropped} dropped; final state: {} (counter deque holds {} cell)",
        exec.current_state_name(),
        exec.deques().len("counter"),
    );
    Ok(())
}
