//! The shipped `attacks/*.atk` description files stay compilable and in
//! sync with the bundled in-crate sources — they are the "reusable and
//! shareable attack descriptions" the paper's abstract promises.

use attain::core::{dsl, scenario};

fn strip_comments(s: &str) -> String {
    s.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim_end())
        .filter(|l| !l.trim().is_empty())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn shipped_atk_files_match_bundled_attacks() {
    let sc = scenario::enterprise_network();
    for (name, source) in scenario::attacks::ALL {
        let path = format!("attacks/{name}.atk");
        let file = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path} missing: {e}"));
        assert_eq!(
            strip_comments(&file),
            strip_comments(source),
            "{path} has drifted from scenario::attacks::{}",
            name.to_uppercase()
        );
        let compiled = dsl::compile(&file, &sc.system, &sc.attack_model);
        assert!(compiled.is_ok(), "{path}: {}", compiled.unwrap_err());
    }
}

#[test]
fn self_contained_demo_compiles_as_a_document() {
    let file =
        std::fs::read_to_string("attacks/self_contained_demo.atk").expect("demo file present");
    let doc = dsl::compile_document(&file).expect("demo compiles");
    assert_eq!(doc.attacks.len(), 1);
    assert_eq!(doc.attacks[0].name(), "tap_and_slow");
    // The demo exercises the TLS/no-TLS split: the tapped channel grants
    // everything, the TLS one does not.
    use attain::core::model::{Capability, ConnectionId};
    assert!(!doc
        .attack_model
        .get(ConnectionId(0))
        .contains(Capability::ReadMessage));
    assert!(doc
        .attack_model
        .get(ConnectionId(1))
        .contains(Capability::ReadMessage));
}
