//! The conformance campaign as a tier-1 regression surface.
//!
//! Three contracts:
//!
//! * **Golden-trace oracle** — the full matrix's per-cell trace digests
//!   match `tests/golden/campaign/full.txt` (and the CI smoke subset
//!   matches `smoke.txt`). Any semantic drift in the DSL pipeline, the
//!   injector, a controller model, or the simulator fails here with a
//!   diff that names the drifted cell. Regenerate intentionally with
//!   `UPDATE_GOLDEN=1 cargo test campaign` (or the `campaign` binary's
//!   `--update-golden`).
//! * **Thread-count invariance** — the canonical report bytes are
//!   identical for `--jobs 1` and `--jobs N`.
//! * **Baseline convergence** — in no-attack cells every controller
//!   application converges the ping workload, under both fail modes.

use attain::campaign::{attacks, cell, diff_golden, Matrix};
use attain::controllers::ControllerKind;
use attain::netsim::FailMode;
use std::path::Path;

fn check_golden(path: &str, fresh: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, fresh).unwrap();
        return;
    }
    let checked_in = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("{path} missing ({e}); generate it with UPDATE_GOLDEN=1 cargo test campaign")
    });
    if let Some(diff) = diff_golden(&checked_in, fresh) {
        panic!("{path}: {diff}");
    }
}

#[test]
fn full_matrix_matches_golden_digests_and_expectations() {
    let matrix = Matrix::full();
    let jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let report = attain::campaign::run(&matrix, jobs);
    let failures: Vec<String> = report
        .failures()
        .iter()
        .map(|f| {
            format!(
                "{}: status {}, observed {:?}, expected {:?}",
                f.name,
                f.status.slug(),
                f.observed,
                f.expected
            )
        })
        .collect();
    assert!(
        failures.is_empty(),
        "differential oracle failures:\n{}",
        failures.join("\n")
    );
    assert_eq!(report.unjudged(), 0, "every production cell must be judged");
    check_golden("tests/golden/campaign/full.txt", &report.golden_digests());
}

#[test]
fn smoke_report_is_byte_identical_across_thread_counts() {
    let matrix = Matrix::smoke();
    let serial = attain::campaign::run(&matrix, 1);
    let parallel = attain::campaign::run(&matrix, 4);
    assert_eq!(
        serial.canonical_json(),
        parallel.canonical_json(),
        "canonical report bytes must not depend on the worker count"
    );
    assert_eq!(serial.passed(), serial.cells.len());
    check_golden("tests/golden/campaign/smoke.txt", &serial.golden_digests());
}

#[test]
fn every_controller_converges_the_baseline_workload() {
    // Satellite invariant: with no attack interposed, all five
    // applications deliver the primary windows in full under both fail
    // modes — and the DMZ firewall still blocks the external probes.
    let trivial = attacks::by_name("trivial_pass").unwrap();
    for kind in ControllerKind::CAMPAIGN {
        for fail_mode in [FailMode::Safe, FailMode::Secure] {
            let outcome =
                cell::run_baseline(&trivial, kind, fail_mode, 1).expect("baseline completes");
            for row in &outcome.pings {
                let ctx = format!("{kind}/{fail_mode:?}/{}", row.label);
                if row.label.starts_with('w') {
                    assert_eq!(
                        row.received, row.transmitted,
                        "{ctx}: baseline workload must converge"
                    );
                } else {
                    assert_eq!(
                        row.received, 0,
                        "{ctx}: the DMZ firewall must block external probes"
                    );
                }
            }
        }
    }
}

#[test]
fn only_filter_projects_the_matrix() {
    use attain::campaign::Filter;
    let mut matrix = Matrix::full();
    Filter::parse("attack=connection_interruption,controller=ryu,fail=secure,seed=2")
        .unwrap()
        .apply(&mut matrix);
    let report = attain::campaign::run(&matrix, 2);
    assert_eq!(report.cells.len(), 1);
    let cell = &report.cells[0];
    assert_eq!(cell.name, "connection_interruption/ryu/secure/s2");
    assert!(cell.pass);
    let outcome = cell.outcome().expect("filtered cell completes");
    // The Ryu anomaly, pinned: the interruption never arms.
    assert_eq!(outcome.final_state.as_deref(), Some("sigma2"));
    // The filtered cell's digest matches its full-matrix golden line.
    let golden = std::fs::read_to_string("tests/golden/campaign/full.txt").unwrap();
    let line = golden
        .lines()
        .find(|l| l.starts_with("connection_interruption/ryu/secure/s2 "))
        .expect("cell present in golden file");
    assert_eq!(
        line.split_whitespace().nth(1).unwrap(),
        outcome.digest.to_string(),
        "a filtered run must reproduce the full matrix's digest"
    );
}
