//! Workspace-level integration: the whole pipeline from one
//! self-contained DSL document to a running attacked network, through
//! the facade crate's public API.

use attain::controllers::{ControllerKind, Floodlight, Pox};
use attain::core::dsl;
use attain::core::exec::AttackExecutor;
use attain::core::scenario;
use attain::injector::harness::build_simulation;
use attain::injector::SimInjector;
use attain::netsim::{FailMode, HostCommand, SimTime};

const DOCUMENT: &str = r#"
    # A complete ATTAIN input: system model, attack model, attack states
    # (the paper's three compiler inputs, §VI-B1) in one file.
    system {
        controller c1;
        switch s1;
        switch s2;
        host h1 ip 10.0.0.1;
        host h2 ip 10.0.0.2;
        link h1, s1;
        link s1, s2;
        link h2, s2;
        connection c1 -> s1;
        connection c1 -> s2;
    }
    capabilities {
        default no_tls;
    }
    attack suppress_everything_after_ten {
        start state count_up {
            rule init on all {
                when len(counter) == 0
                do { prepend(counter, 0); }
            }
            rule tick on all {
                when front(counter) < 40
                do { prepend(counter, front(counter) + 1); pop(counter); }
            }
            rule engage on all {
                when front(counter) == 40
                do { goto blackhole; }
            }
        }
        state blackhole {
            rule drop_all on all {
                when true
                do { drop(msg); }
            }
        }
    }
"#;

#[test]
fn self_contained_document_drives_a_simulation() {
    let doc = dsl::compile_document(DOCUMENT).expect("document compiles");
    assert_eq!(doc.attacks.len(), 1);
    let compiled = &doc.attacks[0];
    assert_eq!(compiled.graph.vertices, vec!["count_up", "blackhole"]);

    let mut sim = build_simulation(&doc.system, FailMode::Secure, |_| {
        Box::new(Floodlight::new())
    });
    let exec = AttackExecutor::new(
        doc.system.clone(),
        doc.attack_model.clone(),
        compiled.attack.clone(),
    )
    .expect("attack validates");
    let (injector, handle) = SimInjector::new(exec, &doc.system, &sim);
    sim.set_interposer(Box::new(injector));

    let h1 = sim.node_id("h1").expect("document declares h1");
    // First run: establishes flows; the attack blackholes the control
    // plane after 40 messages, but the already-installed flows keep
    // carrying this steady traffic (fail-secure preserves them, and the
    // 1 Hz pings keep refreshing the idle timeout).
    sim.schedule_command(
        SimTime::from_secs(5),
        HostCommand::Ping {
            host: h1,
            dst: "10.0.0.2".parse().expect("valid address"),
            count: 30,
            interval: SimTime::from_secs(1),
            label: "while flows live".into(),
        },
    );
    // Second run after a pause: Floodlight's 5 s idle timeout has
    // cleared the flows, the controller is unreachable, and fail-secure
    // drops every miss — total loss.
    sim.schedule_command(
        SimTime::from_secs(50),
        HostCommand::Ping {
            host: h1,
            dst: "10.0.0.2".parse().expect("valid address"),
            count: 10,
            interval: SimTime::from_secs(1),
            label: "after flows expire".into(),
        },
    );
    sim.run_until(SimTime::from_secs(70));

    let stats = sim.ping_stats();
    let first = stats
        .iter()
        .find(|s| s.label == "while flows live")
        .expect("first ping ran");
    let second = stats
        .iter()
        .find(|s| s.label == "after flows expire")
        .expect("second ping ran");
    assert!(
        first.received() >= 25,
        "installed flows should keep serving: {first:?}"
    );
    assert!(
        second.is_denial_of_service(),
        "with flows expired and the control plane dead, fail-secure blackholes: {second:?}"
    );
    assert_eq!(handle.lock().current_state_name(), "blackhole");
    assert!(!sim.switch("s1").is_connected());
    assert!(!sim.switch("s2").is_connected());
}

#[test]
fn facade_reexports_cover_the_paper_pipeline() {
    // Figures 3 and 4 as data.
    let f3 = scenario::figure3_network();
    assert_eq!(f3.system.data_plane().len(), 4);
    let f4 = scenario::figure4_network();
    assert_eq!(f4.system.connection_count(), 6);

    // Every bundled attack compiles against the enterprise scenario via
    // the facade paths.
    let sc = scenario::enterprise_network();
    for (name, source) in scenario::attacks::ALL {
        let compiled = dsl::compile(source, &sc.system, &sc.attack_model);
        assert!(compiled.is_ok(), "{name}: {}", compiled.unwrap_err());
    }
}

#[test]
fn all_three_controller_models_run_under_the_generic_builder() {
    let doc = dsl::compile_document(DOCUMENT).expect("document compiles");
    for kind in ControllerKind::ALL {
        let mut sim = build_simulation(&doc.system, FailMode::Secure, |_| kind.instantiate());
        let h1 = sim.node_id("h1").expect("document declares h1");
        sim.schedule_command(
            SimTime::from_secs(5),
            HostCommand::Ping {
                host: h1,
                dst: "10.0.0.2".parse().expect("valid address"),
                count: 5,
                interval: SimTime::from_secs(1),
                label: "ping".into(),
            },
        );
        sim.run_until(SimTime::from_secs(15));
        assert_eq!(
            sim.ping_stats()[0].received(),
            5,
            "{kind} under the generic builder"
        );
    }
}

#[test]
fn full_stack_is_deterministic() {
    let run = || {
        let doc = dsl::compile_document(DOCUMENT).expect("document compiles");
        let compiled = &doc.attacks[0];
        let mut sim = build_simulation(&doc.system, FailMode::Safe, |_| Box::new(Pox::new()));
        let exec = AttackExecutor::new(
            doc.system.clone(),
            doc.attack_model.clone(),
            compiled.attack.clone(),
        )
        .expect("attack validates");
        let (injector, handle) = SimInjector::new(exec, &doc.system, &sim);
        sim.set_interposer(Box::new(injector));
        let h1 = sim.node_id("h1").expect("document declares h1");
        sim.schedule_command(
            SimTime::from_secs(3),
            HostCommand::Ping {
                host: h1,
                dst: "10.0.0.2".parse().expect("valid address"),
                count: 30,
                interval: SimTime::from_secs(1),
                label: "ping".into(),
            },
        );
        sim.run_until(SimTime::from_secs(40));
        let rtts = sim.ping_stats()[0].rtts_ms().to_vec();
        let events = handle.lock().log().events().len();
        (rtts, events, sim.trace().control_message_total())
    };
    assert_eq!(run(), run());
}
