//! Golden roundtrip coverage for every shipped `attacks/*.atk`: each
//! description parses, compiles, renders back to canonical text, and
//! that canonical form is a **fixed point** (reparse → recompile →
//! rerender is byte-identical). The canonical forms are snapshotted
//! under `tests/golden/dsl/` so any compiler/renderer drift fails
//! tier-1 with a named file; regenerate intentionally with
//! `UPDATE_GOLDEN=1 cargo test dsl_snapshots`.

use attain::core::dsl;
use attain::core::model::{AttackModel, SystemModel};
use attain::core::scenario;

/// Compiles `source` against `(system, model)`, renders the canonical
/// form, and proves it a fixed point. Returns the canonical text.
fn canonical_fixed_point(
    name: &str,
    source: &str,
    system: &SystemModel,
    model: &AttackModel,
) -> String {
    let compiled = dsl::compile(source, system, model)
        .unwrap_or_else(|e| panic!("{name}: does not compile: {e}"));
    let rendered = dsl::render(&compiled.attack, system)
        .unwrap_or_else(|e| panic!("{name}: does not render: {e}"));
    let recompiled = dsl::compile(&rendered, system, model)
        .unwrap_or_else(|e| panic!("{name}: canonical form does not reparse: {e}\n{rendered}"));
    assert_eq!(
        recompiled.attack, compiled.attack,
        "{name}: reparse must reproduce the compiled attack"
    );
    let rerendered = dsl::render(&recompiled.attack, system)
        .unwrap_or_else(|e| panic!("{name}: canonical form does not rerender: {e}"));
    assert_eq!(
        rerendered, rendered,
        "{name}: canonical text must be a render fixed point"
    );
    rendered
}

fn check_snapshot(name: &str, canonical: &str) {
    let path = format!("tests/golden/dsl/{name}.atkc");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden/dsl").unwrap();
        std::fs::write(&path, canonical).unwrap();
        return;
    }
    let checked_in = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("{path} missing ({e}); generate with UPDATE_GOLDEN=1 cargo test dsl_snapshots")
    });
    assert_eq!(
        checked_in, canonical,
        "{path}: compiled form drifted; regenerate with UPDATE_GOLDEN=1 if intentional"
    );
}

#[test]
fn dsl_snapshots_every_shipped_attack_is_a_render_fixed_point() {
    let sc = scenario::enterprise_network();
    for (name, _) in scenario::attacks::ALL {
        let path = format!("attacks/{name}.atk");
        let source =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path} missing: {e}"));
        let canonical = canonical_fixed_point(name, &source, &sc.system, &sc.attack_model);
        check_snapshot(name, &canonical);
    }

    // The self-contained demo compiles as a document against its own
    // system block; its attack roundtrips against that system.
    let source =
        std::fs::read_to_string("attacks/self_contained_demo.atk").expect("demo file present");
    let doc = dsl::compile_document(&source).expect("demo compiles");
    let canonical = canonical_fixed_point(
        "self_contained_demo",
        &dsl::render(&doc.attacks[0].attack, &doc.system).expect("demo renders"),
        &doc.system,
        &doc.attack_model,
    );
    check_snapshot("self_contained_demo", &canonical);
}
