#!/usr/bin/env bash
# Repo-wide pre-merge checks. Offline-friendly: everything here builds
# against the vendored dependency stubs, no network access required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings, flag redundant clones)"
cargo clippy --workspace --all-targets -- -D warnings -W clippy::redundant_clone

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test --workspace -q

echo "== environment-fault suite (incl. trace determinism)"
cargo test -q -p attain-netsim --test faults
cargo test -q -p attain-netsim --test faults same_seed_same_trace_different_seed_may_differ

echo "== rule dispatcher differential suite (scan ≡ compiled)"
cargo test -q -p attain-core --test proptest_dispatch

echo "== flow-table eviction differential suite + capacity inference"
cargo test -q -p attain-netsim --test proptest_netsim
cargo test -q -p attain-netsim --test capacity_inference

echo "== conformance campaign (smoke matrix + golden digests, audited dispatch)"
cargo run --release --bin campaign --features attain-campaign/dispatch_audit \
  -- --smoke --jobs 2 --out target/CAMPAIGN_smoke_report.json
cargo test -q -p attain --test campaign_conformance
cargo test -q -p attain --test dsl_roundtrip

echo "all checks passed"
