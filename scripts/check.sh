#!/usr/bin/env bash
# Repo-wide pre-merge checks. Offline-friendly: everything here builds
# against the vendored dependency stubs, no network access required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings, flag redundant clones)"
cargo clippy --workspace --all-targets -- -D warnings -W clippy::redundant_clone

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test --workspace -q

echo "== environment-fault suite (incl. trace determinism)"
cargo test -q -p attain-netsim --test faults
cargo test -q -p attain-netsim --test faults same_seed_same_trace_different_seed_may_differ

echo "== rule dispatcher differential suite (scan ≡ compiled)"
cargo test -q -p attain-core --test proptest_dispatch

echo "== timing-observable differential suite (scan ≡ compiled, incl. no-sample paths)"
cargo test -q -p attain-core --test proptest_timing

echo "== controller fingerprinting (classification accuracy + confusion matrix)"
cargo test -q -p attain-campaign --test fingerprint

echo "== flow-table eviction differential suite + capacity inference"
cargo test -q -p attain-netsim --test proptest_netsim
cargo test -q -p attain-netsim --test capacity_inference

echo "== conformance campaign (smoke matrix + golden digests, audited dispatch)"
cargo run --release --bin campaign --features attain-campaign/dispatch_audit \
  -- --smoke --jobs 2 --out target/CAMPAIGN_smoke_report.json
cargo test -q -p attain --test campaign_conformance
cargo test -q -p attain --test dsl_roundtrip

echo "== shard/scheduler invariance suite (heap ≡ wheel, 1 ≡ N shards)"
cargo test -q -p attain-netsim --test scale_determinism

echo "== scalability smoke (fat-tree k=4, capped event budget)"
cargo run --release --bin scalability \
  -- --smoke --max-events 2000000 --json target/BENCH_scalability_smoke.json
grep -q '"halt": "Horizon"' target/BENCH_scalability_smoke.json

echo "== supervised execution (chaos cells contained, degraded-mode report)"
cargo test -q -p attain-campaign --features test_faults
if cargo run --release --bin campaign --features test_faults \
    -- --smoke --jobs 2 --cell-timeout 60 \
    --out target/CAMPAIGN_chaos_report.json 2>/dev/null; then
  echo "chaos smoke campaign unexpectedly exited zero" >&2
  exit 1
fi
grep -q '"status": "panicked"' target/CAMPAIGN_chaos_report.json
grep -q '"status": "budget-exhausted"' target/CAMPAIGN_chaos_report.json
grep -q '"verdict": "unjudged"' target/CAMPAIGN_chaos_report.json

echo "all checks passed"
