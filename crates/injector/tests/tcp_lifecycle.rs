//! Connection-lifecycle tests for the TCP proxy over real sockets:
//! the §VII-B interruption scenario, reconnect epoch isolation,
//! equal-delay ordering, and shutdown joining every worker thread.

use attain_core::exec::AttackExecutor;
use attain_core::model::ConnectionId;
use attain_core::{dsl, scenario};
use attain_injector::tcp::{FaultAction, ProxyRoute, TcpProxy};
use attain_openflow::OfMessage;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// Delays `ECHO_REQUEST`s from the first switch by 600 ms — long enough
/// for a test to kill the session before the delivery fires.
const DELAY_ECHO: &str = r#"
attack delay_echo {
    start state sigma1 {
        rule hold on (c1, s1) requires no_tls {
            when msg.type == ECHO_REQUEST && msg.source == s1
            do { delay(msg, 0.6); }
        }
    }
}
"#;

/// Watches an inter-arrival pair on the first connection without ever
/// firing (the count threshold is unreachable): the timing plan tracks
/// `(ECHO_REQUEST, ECHO_REQUEST)`, so every switch message grows
/// per-connection timing state in the executor.
const WATCH_TIMING: &str = r#"
attack watch_timing {
    start state sigma1 {
        rule watch on (c1, s1) requires no_tls {
            when timing_count(ECHO_REQUEST, ECHO_REQUEST) >= 1000
            do { drop(msg); }
        }
    }
}
"#;

/// Delays *everything* from the first switch by the same 200 ms, so a
/// pipelined batch becomes a set of equal-delay deliveries whose order
/// is carried only by the executor's emission sequence.
const DELAY_ALL: &str = r#"
attack delay_all {
    start state sigma1 {
        rule hold on (c1, s1) requires no_tls {
            when msg.source == s1
            do { delay(msg, 0.2); }
        }
    }
}
"#;

fn executor(source: &str) -> AttackExecutor {
    let sc = scenario::enterprise_network();
    let compiled = dsl::compile(source, &sc.system, &sc.attack_model).unwrap();
    AttackExecutor::new(sc.system, sc.attack_model, compiled.attack).unwrap()
}

/// A controller accepting any number of sequential connections (the
/// proxy redials per switch session). Decoded messages are forwarded on
/// the channel; HELLO is answered with HELLO.
fn fake_controller() -> (SocketAddr, mpsc::Receiver<OfMessage>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        while let Ok((mut sock, _)) = listener.accept() {
            let mut buf = Vec::new();
            let mut chunk = [0u8; 1024];
            'conn: loop {
                let n = match sock.read(&mut chunk) {
                    Ok(0) | Err(_) => break 'conn,
                    Ok(n) => n,
                };
                buf.extend_from_slice(&chunk[..n]);
                while let Ok(Some(len)) = OfMessage::frame_len(&buf) {
                    let frame: Vec<u8> = buf.drain(..len).collect();
                    let (msg, xid) = OfMessage::decode(&frame).unwrap();
                    if msg == OfMessage::Hello {
                        let _ = sock.write_all(&OfMessage::Hello.encode(xid));
                    }
                    if tx.send(msg).is_err() {
                        break 'conn;
                    }
                }
            }
        }
    });
    (addr, rx)
}

fn spawn_proxy(source: &str, controller: SocketAddr) -> TcpProxy {
    TcpProxy::spawn(
        executor(source),
        vec![ProxyRoute {
            listen: "127.0.0.1:0".parse().unwrap(),
            controller,
            conn: ConnectionId(0),
        }],
        None,
    )
    .unwrap()
}

fn read_one(sock: &mut TcpStream) -> Option<OfMessage> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        if let Ok(Some(len)) = OfMessage::frame_len(&buf) {
            let frame: Vec<u8> = buf.drain(..len).collect();
            return Some(OfMessage::decode(&frame).unwrap().0);
        }
        match sock.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// The stale-sink reconnect bug: a delayed delivery scheduled for a
/// session that died must not be written into the successor session,
/// while delayed deliveries for the live session still arrive.
#[test]
fn delayed_delivery_does_not_cross_into_reconnected_session() {
    let (ctrl_addr, ctrl_rx) = fake_controller();
    let proxy = spawn_proxy(DELAY_ECHO, ctrl_addr);
    let listen = proxy.listen_addrs[0];

    // First switch session: HELLO passes, ECHO_REQUEST is held for
    // 600 ms by the attack.
    let mut switch1 = TcpStream::connect(listen).unwrap();
    switch1.write_all(&OfMessage::Hello.encode(1)).unwrap();
    assert_eq!(
        ctrl_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
        OfMessage::Hello
    );
    switch1
        .write_all(&OfMessage::EchoRequest(vec![7]).encode(2))
        .unwrap();
    // Let the proxy ingest the echo (it is now in the timer heap), then
    // kill the session before the delay elapses.
    assert!(wait_until(Duration::from_secs(5), || {
        proxy.with_executor(|e| e.log().rule_fires("hold") >= 1)
    }));
    drop(switch1);
    assert!(wait_until(Duration::from_secs(5), || {
        proxy.stats().live_sessions == 0
    }));

    // The switch reconnects: a fresh session on the same connection id.
    let mut switch2 = TcpStream::connect(listen).unwrap();
    switch2.write_all(&OfMessage::Hello.encode(3)).unwrap();
    assert_eq!(
        ctrl_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
        OfMessage::Hello
    );

    // Wait out the old delivery's deadline: the stale echo must be
    // dropped (as stale if the new session was already up when it
    // fired, as dead-target if not), never delivered onward.
    assert!(wait_until(Duration::from_secs(5), || {
        let s = proxy.stats();
        s.stale_epoch_dropped + s.dead_target_dropped >= 1
    }));
    assert!(
        ctrl_rx.try_recv().is_err(),
        "stale delayed delivery leaked into the reconnected session"
    );

    // A delayed delivery addressed to the *live* session still works.
    switch2
        .write_all(&OfMessage::EchoRequest(vec![8]).encode(4))
        .unwrap();
    assert_eq!(
        ctrl_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
        OfMessage::EchoRequest(vec![8])
    );

    let stats = proxy.stats();
    assert_eq!(stats.sessions_opened, 2);
    assert_eq!(stats.sessions_closed, 1);
    assert_eq!(stats.live_sessions, 1, "stale sink-map entry survived");
    proxy.shutdown();
}

/// Equal-delay `DELAYMESSAGE`s must arrive in executor order: the timer
/// heap breaks deadline ties on the executor's emission sequence
/// instead of racing one sleeper thread per message.
#[test]
fn equal_delay_deliveries_preserve_executor_order() {
    let (ctrl_addr, ctrl_rx) = fake_controller();
    let proxy = spawn_proxy(DELAY_ALL, ctrl_addr);

    let mut switch = TcpStream::connect(proxy.listen_addrs[0]).unwrap();
    // One pipelined write → four deliveries, all delayed by 200 ms.
    let mut batch = Vec::new();
    batch.extend(OfMessage::Hello.encode(1));
    batch.extend(OfMessage::EchoRequest(vec![1]).encode(2));
    batch.extend(OfMessage::EchoRequest(vec![2]).encode(3));
    batch.extend(OfMessage::BarrierRequest.encode(4));
    switch.write_all(&batch).unwrap();

    let expect = [
        OfMessage::Hello,
        OfMessage::EchoRequest(vec![1]),
        OfMessage::EchoRequest(vec![2]),
        OfMessage::BarrierRequest,
    ];
    for want in expect {
        assert_eq!(ctrl_rx.recv_timeout(Duration::from_secs(5)).unwrap(), want);
    }
    proxy.shutdown();
}

/// `shutdown()` must sever parked I/O and join every worker thread —
/// acceptor, timer, and all four loops of the live session — within a
/// deadline, leaving no live session behind.
#[test]
fn shutdown_joins_all_worker_threads_within_deadline() {
    let (ctrl_addr, ctrl_rx) = fake_controller();
    let proxy = spawn_proxy(scenario::attacks::TRIVIAL_PASS, ctrl_addr);

    // One live session whose read loops are parked in blocking reads.
    let mut switch = TcpStream::connect(proxy.listen_addrs[0]).unwrap();
    switch.write_all(&OfMessage::Hello.encode(1)).unwrap();
    assert_eq!(
        ctrl_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
        OfMessage::Hello
    );
    assert!(wait_until(Duration::from_secs(5), || {
        proxy.stats().live_sessions == 1
    }));

    let start = Instant::now();
    let report = proxy.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shutdown took {:?}",
        start.elapsed()
    );
    // 1 acceptor + 1 timer + 4 session loops.
    assert!(
        report.threads_joined >= 6,
        "joined only {} threads",
        report.threads_joined
    );
    assert_eq!(report.stats.live_sessions, 0);
    assert_eq!(report.stats.sessions_opened, report.stats.sessions_closed);

    // Idempotent: a second call has nothing left to join.
    let again = proxy.shutdown();
    assert_eq!(again.threads_joined, 0);
}

/// Per-connection timing state must die with the session: a sever
/// releases it, and the reconnected session starts from an empty sample
/// ring instead of inheriting the predecessor's inter-arrival history.
#[test]
fn timing_state_is_released_on_teardown_and_not_inherited_on_reconnect() {
    use attain_openflow::OfType;
    let echo_samples = |proxy: &TcpProxy| {
        proxy.with_executor(|e| {
            e.timing()
                .connection(ConnectionId(0))
                .and_then(|c| c.pair(OfType::EchoRequest, OfType::EchoRequest))
                .map(|s| s.total())
        })
    };

    let (ctrl_addr, ctrl_rx) = fake_controller();
    let proxy = spawn_proxy(WATCH_TIMING, ctrl_addr);
    let listen = proxy.listen_addrs[0];

    // First session: two echoes give the tracked pair a real sample.
    let mut switch1 = TcpStream::connect(listen).unwrap();
    switch1.write_all(&OfMessage::Hello.encode(1)).unwrap();
    assert_eq!(
        ctrl_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
        OfMessage::Hello
    );
    assert_eq!(read_one(&mut switch1), Some(OfMessage::Hello));
    switch1
        .write_all(&OfMessage::EchoRequest(vec![1]).encode(2))
        .unwrap();
    switch1
        .write_all(&OfMessage::EchoRequest(vec![2]).encode(3))
        .unwrap();
    assert!(wait_until(Duration::from_secs(5), || {
        echo_samples(&proxy).is_some_and(|n| n >= 1)
    }));
    assert_eq!(proxy.with_executor(|e| e.timing().tracked_connections()), 1);

    // Sever the route: the session dies and takes its timing state
    // with it — nothing left to feed stale inter-arrival gaps from.
    proxy.apply_fault(FaultAction::HoldDown { route: 0 });
    assert_eq!(read_one(&mut switch1), None);
    assert!(wait_until(Duration::from_secs(5), || {
        proxy.with_executor(|e| e.timing().tracked_connections()) == 0
    }));

    // Reconnect after restore: the successor session's first echo must
    // land in a fresh ring (one arrival, zero samples). Inherited state
    // would show the predecessor's sample count instead.
    proxy.apply_fault(FaultAction::Restore { route: 0 });
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut switch2 = loop {
        assert!(Instant::now() < deadline, "route never restored");
        let mut attempt = match TcpStream::connect(listen) {
            Ok(s) => s,
            Err(_) => continue,
        };
        if attempt.write_all(&OfMessage::Hello.encode(4)).is_err() {
            continue;
        }
        if read_one(&mut attempt) == Some(OfMessage::Hello) {
            break attempt;
        }
        thread::sleep(Duration::from_millis(25));
    };
    switch2
        .write_all(&OfMessage::EchoRequest(vec![3]).encode(5))
        .unwrap();
    assert!(wait_until(Duration::from_secs(5), || {
        echo_samples(&proxy).is_some()
    }));
    assert_eq!(
        echo_samples(&proxy),
        Some(0),
        "reconnected session inherited the old session's timing samples"
    );

    // The graceful-teardown path (peer close, not sever) releases too.
    drop(switch2);
    assert!(wait_until(Duration::from_secs(5), || {
        proxy.with_executor(|e| e.timing().tracked_connections()) == 0
    }));
    proxy.shutdown();
}

/// The §VII-B interruption scenario over real sockets: sever and hold
/// down the route mid-run, watch reconnects being refused, restore at a
/// scheduled time, and verify the switch re-establishes service.
#[test]
fn interruption_harness_severs_holds_and_restores_route() {
    let (ctrl_addr, ctrl_rx) = fake_controller();
    let proxy = spawn_proxy(scenario::attacks::TRIVIAL_PASS, ctrl_addr);
    let listen = proxy.listen_addrs[0];

    // Healthy control channel first.
    let mut switch = TcpStream::connect(listen).unwrap();
    switch.write_all(&OfMessage::Hello.encode(1)).unwrap();
    assert_eq!(
        ctrl_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
        OfMessage::Hello
    );
    assert_eq!(read_one(&mut switch), Some(OfMessage::Hello));

    // Interrupt: sever the live session and hold the route down.
    proxy.apply_fault(FaultAction::HoldDown { route: 0 });
    // The switch observes the disconnect…
    assert_eq!(read_one(&mut switch), None);
    assert_eq!(proxy.stats().live_sessions, 0);

    // …and its reconnect attempts are refused while the route is held:
    // the connection is accepted and immediately closed, no session
    // forms.
    let mut refused = TcpStream::connect(listen).unwrap();
    let _ = refused.write_all(&OfMessage::Hello.encode(2));
    assert_eq!(
        read_one(&mut refused),
        None,
        "held-down route served a session"
    );
    assert_eq!(proxy.stats().sessions_opened, 1);

    // Restoration is scheduled on the proxy's own timer, as in the
    // experiment timelines.
    proxy.schedule_fault(
        Duration::from_millis(200),
        FaultAction::Restore { route: 0 },
    );

    // The switch keeps retrying until the route comes back.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut restored = None;
    while Instant::now() < deadline {
        let mut attempt = match TcpStream::connect(listen) {
            Ok(s) => s,
            Err(_) => continue,
        };
        if attempt.write_all(&OfMessage::Hello.encode(3)).is_err() {
            continue;
        }
        if let Some(msg) = read_one(&mut attempt) {
            restored = Some((attempt, msg));
            break;
        }
        thread::sleep(Duration::from_millis(25));
    }
    let (_switch, msg) = restored.expect("route never restored");
    assert_eq!(msg, OfMessage::Hello);

    let stats = proxy.stats();
    assert_eq!(stats.sessions_opened, 2);
    assert_eq!(stats.live_sessions, 1);
    proxy.shutdown();
}
