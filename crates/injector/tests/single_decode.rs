//! The single-decode invariant, end to end: over a full interposed
//! simulation, the message path parses each frame's bytes at most once,
//! no matter how many hops (proxy, executor, switch, controller,
//! tracer) inspect it.
//!
//! This file holds exactly one test because
//! [`frame_decode_count`](attain_openflow::frame_decode_count) is a
//! process-wide counter — a sibling test in the same binary would
//! perturb the delta.

use attain_controllers::ControllerKind;
use attain_core::scenario;
use attain_injector::harness::{attach_attack, build_case_study};
use attain_netsim::{FailMode, HostCommand, SimTime};
use attain_openflow::frame_decode_count;

#[test]
fn interposed_sim_decodes_each_frame_at_most_once() {
    let mut sim = build_case_study(ControllerKind::Floodlight, FailMode::Secure);
    let _exec = attach_attack(&mut sim, scenario::attacks::TRIVIAL_PASS);
    let h1 = sim.node_id("h1").expect("case study has h1");
    sim.schedule_command(
        SimTime::from_secs(1),
        HostCommand::Ping {
            host: h1,
            dst: "10.0.0.6".parse().expect("valid address"),
            count: 10,
            interval: SimTime::from_secs(1),
            label: "decode-count ping".into(),
        },
    );

    let before = frame_decode_count();
    sim.run_until(SimTime::from_secs(20));
    let decodes = frame_decode_count() - before;

    let msgs = sim.trace().control_message_total();
    assert!(msgs > 0, "workload produced no control-plane traffic");
    // At most one parse per message is the invariant. Almost every frame
    // in this pipeline comes from `Frame::from_message` (the structured
    // view travels with the bytes, zero parses); the only raw frames are
    // the byte-patched echo replies, and each of those is parsed once no
    // matter how many hops (tracer, executor, endpoint) inspect it — so
    // the total stays far below one decode per message.
    assert!(
        decodes <= msgs,
        "message path decoded {decodes} times for {msgs} control messages"
    );
    assert!(
        decodes * 2 <= msgs,
        "decode sharing broke: {decodes} decodes for {msgs} messages \
         (expected only the echo-reply fast-path frames to be parsed)"
    );
}
