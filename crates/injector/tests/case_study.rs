//! End-to-end case-study tests: the §VII experiments at reduced
//! fidelity, checking the qualitative shapes the paper reports.

use attain_controllers::ControllerKind;
use attain_injector::harness::{run_connection_interruption, run_flow_mod_suppression, Fidelity};
use attain_netsim::FailMode;

#[test]
fn baselines_are_healthy_for_all_controllers() {
    for kind in ControllerKind::ALL {
        let out = run_flow_mod_suppression(kind, false, &Fidelity::quick());
        assert_eq!(out.phi1_fires, 0, "{kind}: baseline must not fire φ1");
        assert!(
            !out.ping_denied(),
            "{kind}: baseline ping lost everything: {:?}",
            out.ping.rtts_ms()
        );
        assert!(
            out.ping.loss_pct() < 10.0,
            "{kind}: baseline ping loss {}%",
            out.ping.loss_pct()
        );
        let mbps = out.mean_throughput_mbps();
        assert!(
            mbps > 70.0,
            "{kind}: baseline throughput {mbps:.1} Mb/s should be near line rate"
        );
        let rtt = out.ping.avg_rtt_ms().unwrap();
        assert!(rtt < 30.0, "{kind}: baseline RTT {rtt:.2} ms too high");
    }
}

#[test]
fn suppression_deadlocks_pox_data_plane() {
    // POX attaches buffer_id to its flow mods: suppressing them discards
    // every first packet — the paper's asterisk (zero throughput,
    // infinite latency).
    let out = run_flow_mod_suppression(ControllerKind::Pox, true, &Fidelity::quick());
    assert!(out.phi1_fires > 0, "φ1 must fire");
    assert!(out.ping_denied(), "POX ping should be fully denied");
    assert!(out.iperf_denied(), "POX iperf should be fully denied");
}

#[test]
fn suppression_degrades_but_does_not_kill_floodlight_and_ryu() {
    for kind in [ControllerKind::Floodlight, ControllerKind::Ryu] {
        let baseline = run_flow_mod_suppression(kind, false, &Fidelity::quick());
        let attacked = run_flow_mod_suppression(kind, true, &Fidelity::quick());
        assert!(attacked.phi1_fires > 0, "{kind}: φ1 must fire");
        // Service survives: packets still flow via per-packet PACKET_OUT.
        assert!(
            !attacked.ping_denied(),
            "{kind}: ping should survive suppression"
        );
        assert!(
            !attacked.iperf_denied(),
            "{kind}: iperf should survive suppression"
        );
        // …but degrades: throughput collapses, latency inflates.
        let b_mbps = baseline.mean_throughput_mbps();
        let a_mbps = attacked.mean_throughput_mbps();
        assert!(
            a_mbps < b_mbps / 4.0,
            "{kind}: attacked throughput {a_mbps:.1} should be far below baseline {b_mbps:.1}"
        );
        let b_rtt = baseline.ping.avg_rtt_ms().unwrap();
        let a_rtt = attacked.ping.avg_rtt_ms().unwrap();
        assert!(
            a_rtt > 2.0 * b_rtt,
            "{kind}: attacked RTT {a_rtt:.2} should be well above baseline {b_rtt:.2}"
        );
        // Control-plane traffic balloons (the paper's second finding).
        assert!(
            attacked.packet_ins > 4 * baseline.packet_ins,
            "{kind}: packet-ins {} vs baseline {} should balloon",
            attacked.packet_ins,
            baseline.packet_ins
        );
    }
}

#[test]
fn interruption_fail_safe_grants_unauthorized_access() {
    for kind in [ControllerKind::Floodlight, ControllerKind::Pox] {
        let out = run_connection_interruption(kind, FailMode::Safe);
        assert_eq!(out.final_state, "sigma3", "{kind}: attack must engage");
        assert!(out.phi2_fires > 0, "{kind}: φ2 must fire");
        // Rows 1–2 (pre-attack): everything reachable.
        assert!(out.ext_to_ext.accessible(), "{kind}: row 1");
        assert!(out.int_to_ext_before.accessible(), "{kind}: row 2");
        // Row 3: the DMZ falls open — unauthorized increased access.
        assert!(
            out.unauthorized_access(),
            "{kind}: fail-safe should let the external user in: {}",
            out.ext_to_int
        );
        // Row 4: legitimate traffic still flows.
        assert!(!out.legitimate_dos(), "{kind}: row 4 should stay up");
    }
}

#[test]
fn interruption_fail_secure_denies_legitimate_traffic() {
    for kind in [ControllerKind::Floodlight, ControllerKind::Pox] {
        let out = run_connection_interruption(kind, FailMode::Secure);
        assert_eq!(out.final_state, "sigma3", "{kind}: attack must engage");
        assert!(out.ext_to_ext.accessible(), "{kind}: row 1");
        assert!(out.int_to_ext_before.accessible(), "{kind}: row 2");
        // Row 3: the firewall holds.
        assert!(
            !out.unauthorized_access(),
            "{kind}: fail-secure must keep the external user out: {}",
            out.ext_to_int
        );
        // Row 4: at the price of a denial of service for insiders.
        assert!(
            out.legitimate_dos(),
            "{kind}: fail-secure should deny legitimate traffic: {}",
            out.int_to_ext_after
        );
    }
}

#[test]
fn interruption_never_engages_against_ryu() {
    // Ryu's flow-mod matches carry no nw_src, so φ2 never fires and the
    // connection is never interrupted — the paper's §VII-C4 anomaly.
    for mode in [FailMode::Safe, FailMode::Secure] {
        let out = run_connection_interruption(ControllerKind::Ryu, mode);
        assert_eq!(out.final_state, "sigma2", "attack must stall in σ2");
        assert_eq!(out.phi2_fires, 0);
        assert!(out.ext_to_ext.accessible());
        assert!(out.int_to_ext_before.accessible());
        // The DMZ policy holds (enforced by Ryu's L2 deny rule)…
        assert!(!out.unauthorized_access(), "{}", out.ext_to_int);
        // …and nothing is denied.
        assert!(!out.legitimate_dos(), "{}", out.int_to_ext_after);
    }
}
