//! Every Table I capability exercised end-to-end inside the simulator:
//! delay, fuzz, modify, inject, syscmd-driven workloads, and the TLS
//! capability class.

use attain_controllers::Floodlight;
use attain_core::dsl;
use attain_core::exec::AttackExecutor;
use attain_core::model::{AttackModel, CapabilitySet, SystemModel};
use attain_injector::harness::build_simulation;
use attain_injector::SimInjector;
use attain_netsim::{Direction, FailMode, HostCommand, SimTime, Simulation};
use attain_openflow::OfType;

/// A two-host, one-switch system whose names the DSL sources below use.
fn small_system() -> SystemModel {
    let mut m = SystemModel::new();
    let c1 = m.add_controller("c1").expect("fresh model");
    let s1 = m.add_switch("s1").expect("fresh model");
    let h1 = m
        .add_host("h1", Some("10.0.0.1".parse().expect("valid")), None)
        .expect("fresh model");
    let h2 = m
        .add_host("h2", Some("10.0.0.2".parse().expect("valid")), None)
        .expect("fresh model");
    m.add_host_link(h1, s1, 1).expect("valid link");
    m.add_host_link(h2, s1, 2).expect("valid link");
    m.add_connection(c1, s1).expect("fresh connection");
    m
}

/// Builds the simulation + injector for `source` with a given capability
/// grant, returning the sim and executor handle.
fn attacked_sim(
    source: &str,
    caps: CapabilitySet,
) -> (Simulation, attain_injector::SharedExecutor) {
    let system = small_system();
    let model = AttackModel::uniform(&system, caps);
    let compiled = dsl::compile(source, &system, &model).expect("attack compiles");
    let exec =
        AttackExecutor::new(system.clone(), model, compiled.attack).expect("attack validates");
    let mut sim = build_simulation(&system, FailMode::Secure, |_| Box::new(Floodlight::new()));
    let (injector, handle) = SimInjector::new(exec, &system, &sim);
    sim.set_interposer(Box::new(injector));
    (sim, handle)
}

fn ping(sim: &mut Simulation, count: u32) {
    let h1 = sim.node_id("h1").expect("h1 exists");
    sim.schedule_command(
        SimTime::from_secs(5),
        HostCommand::Ping {
            host: h1,
            dst: "10.0.0.2".parse().expect("valid"),
            count,
            interval: SimTime::from_secs(1),
            label: "ping".into(),
        },
    );
}

#[test]
fn delay_attack_inflates_latency_without_loss() {
    // DELAYMESSAGE is in Γ_TLS: this attack runs against an encrypted
    // control channel, reading only metadata.
    let source = r#"
        attack molasses {
            start state s {
                rule slow on (c1, s1) requires tls {
                    when msg.length > 0
                    do { delay(msg, 0.2); }
                }
            }
        }
    "#;
    let (mut sim_base, _) =
        attacked_sim(r#"attack nop { start state s { } }"#, CapabilitySet::tls());
    ping(&mut sim_base, 10);
    sim_base.run_until(SimTime::from_secs(20));
    let base = sim_base.ping_stats()[0].clone();

    let (mut sim, _) = attacked_sim(source, CapabilitySet::tls());
    ping(&mut sim, 10);
    sim.run_until(SimTime::from_secs(25));
    let slow = sim.ping_stats()[0].clone();

    assert_eq!(slow.received(), 10, "delay must not lose packets");
    // The first ping pays several delayed control-plane round trips.
    let first_base = base.rtts_ms()[0].expect("baseline first ping answered");
    let first_slow = slow.rtts_ms()[0].expect("delayed first ping answered");
    assert!(
        first_slow > first_base + 350.0,
        "first RTT should absorb ≥2 delayed control messages: {first_base:.1} → {first_slow:.1} ms"
    );
}

#[test]
fn fuzz_attack_is_survivable_and_triggers_switch_errors() {
    let source = r#"
        attack static_noise {
            start state s {
                rule corrupt on (c1, s1) {
                    when msg.type == FLOW_MOD
                    do { fuzz(msg, 24); }
                }
            }
        }
    "#;
    let (mut sim, handle) = attacked_sim(source, CapabilitySet::no_tls());
    ping(&mut sim, 10);
    sim.run_until(SimTime::from_secs(25));
    assert!(handle.lock().log().rule_fires("corrupt") > 0);
    // Network stays alive (Floodlight forwards via PACKET_OUT even when
    // its flow mods arrive corrupted), and heavily fuzzed flow mods that
    // no longer parse draw ERRORs from the switch.
    let ping_stats = &sim.ping_stats()[0];
    assert!(
        ping_stats.received() >= 8,
        "fuzz should not kill the data plane: {ping_stats:?}"
    );
    let errors = sim
        .trace()
        .control_message_count(OfType::Error, Direction::SwitchToController);
    assert!(
        errors > 0,
        "24 bit flips should render some flow mods unparseable"
    );
}

#[test]
fn modify_attack_rewrites_flow_mod_fields_in_flight() {
    // Setting idle_timeout to 1s forces constant re-misses: flows decay
    // almost immediately, so PACKET_IN counts grow vs. baseline.
    let source = r#"
        attack rot {
            start state s {
                rule shorten on (c1, s1) {
                    when msg.type == FLOW_MOD && msg["idle_timeout"] != 1
                    do { modify(msg, "idle_timeout", 1); }
                }
            }
        }
    "#;
    let (mut sim, handle) = attacked_sim(source, CapabilitySet::no_tls());
    ping(&mut sim, 20);
    // Stop mid-run: flows are still installed and must carry the
    // attacker's rewritten timeout, not Floodlight's 5 s default.
    sim.run_until(SimTime::from_secs(15));
    assert!(handle.lock().log().rule_fires("shorten") > 0);
    let table = sim.switch("s1").flow_table();
    assert!(!table.is_empty(), "flows should be installed mid-run");
    for entry in table.entries() {
        assert_eq!(
            entry.idle_timeout, 1,
            "every installed flow must carry the rewritten timeout"
        );
    }
    // And once the pings stop, the 1 s timeout clears the table fast.
    sim.run_until(SimTime::from_secs(40));
    assert_eq!(sim.ping_stats()[0].received(), 20);
    assert!(sim.switch("s1").flow_table().is_empty());
}

#[test]
fn inject_attack_places_new_messages_on_the_wire() {
    // Inject a pre-encoded ECHO_REQUEST (xid 0x63) toward the switch
    // whenever a PACKET_IN passes; the switch's EchoReply shows up in
    // the trace as extra switch→controller echo traffic.
    let source = r#"
        attack chatty {
            start state s {
                rule inj on (c1, s1) {
                    when msg.type == PACKET_IN
                    do { inject((c1, s1), to_switch, hex("01 02 00 08 00 00 00 63")); }
                }
            }
        }
    "#;
    let (mut sim, handle) = attacked_sim(source, CapabilitySet::no_tls());
    ping(&mut sim, 5);
    sim.run_until(SimTime::from_secs(15));
    let fires = handle.lock().log().rule_fires("inj");
    assert!(fires > 0);
    let echo_replies = sim
        .trace()
        .control_message_count(OfType::EchoReply, Direction::SwitchToController);
    assert!(
        echo_replies >= fires,
        "every injected echo request draws a reply: {echo_replies} < {fires}"
    );
}

#[test]
fn syscmd_attack_launches_workloads_from_inside_the_attack() {
    // The attack itself starts the paper's monitors/workloads via
    // SYSCMD (§VI-B3): when the first PACKET_IN appears, start an iperf
    // server on h2 and a client on h1.
    let source = r#"
        attack self_driving {
            start state wait {
                rule go on (c1, s1) {
                    when msg.type == PACKET_IN
                    do {
                        syscmd(h2, "iperf -s");
                        syscmd(h1, "iperf -c 10.0.0.2 -t 5");
                        pass(msg);
                        goto running;
                    }
                }
            }
            state running { }
        }
    "#;
    let (mut sim, handle) = attacked_sim(source, CapabilitySet::no_tls());
    // A ping triggers the first PACKET_IN, which bootstraps the iperf run.
    ping(&mut sim, 3);
    sim.run_until(SimTime::from_secs(30));
    assert_eq!(handle.lock().current_state_name(), "running");
    let iperf = sim.iperf_stats();
    assert_eq!(iperf.len(), 1, "the attack should have started iperf");
    assert!(iperf[0].connected && iperf[0].finished);
    assert!(
        iperf[0].throughput_mbps() > 50.0,
        "attack-launched iperf should run at line rate: {:.1}",
        iperf[0].throughput_mbps()
    );
}

#[test]
fn tls_grant_blocks_payload_attacks_but_not_metadata_ones() {
    // Compiling a payload-reading attack against a TLS-only grant fails…
    let payload_attack = r#"
        attack nope {
            start state s {
                rule r on (c1, s1) {
                    when msg.type == FLOW_MOD
                    do { drop(msg); }
                }
            }
        }
    "#;
    let system = small_system();
    let tls = AttackModel::uniform(&system, CapabilitySet::tls());
    assert!(dsl::compile(payload_attack, &system, &tls).is_err());

    // …while a metadata-only blanket drop still works — and, with no
    // ability to distinguish message types, it kills the handshake and
    // the whole network (fail-secure).
    let blanket = r#"
        attack blackout {
            start state s {
                rule r on (c1, s1) requires tls {
                    when msg.length > 0
                    do { drop(msg); }
                }
            }
        }
    "#;
    let (mut sim, _) = attacked_sim(blanket, CapabilitySet::tls());
    ping(&mut sim, 5);
    sim.run_until(SimTime::from_secs(20));
    assert!(!sim.switch("s1").is_connected());
    assert!(sim.ping_stats()[0].is_denial_of_service());
}
