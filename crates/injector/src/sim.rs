//! The simulated deployment: an [`AttackExecutor`] as a
//! [`netsim::Interposer`](attain_netsim::Interposer).

use attain_core::exec::{AttackExecutor, ExecOutput, InjectorInput};
use attain_core::model::{ConnectionId, SystemModel};
use attain_netsim::{
    ConnId, Delivery, Direction, HostCommand, Interposer, InterposerActions, NodeId,
    ProxiedMessage, SimTime, Simulation,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared handle to the executor, kept by the harness so the injection
/// log can be inspected after the simulation consumed the interposer.
pub type SharedExecutor = Arc<Mutex<AttackExecutor>>;

/// The runtime injector, interposed on a simulation's control plane.
///
/// Maps between the attack model's [`ConnectionId`]s (named `(c, s)`
/// pairs of `N_C`) and the simulator's [`ConnId`]s by component name, so
/// an attack compiled against a [`SystemModel`] drives the corresponding
/// simulated network.
pub struct SimInjector {
    exec: SharedExecutor,
    /// Core connection index → simulator connection.
    to_sim: Vec<ConnId>,
    /// Simulator connection → core connection index.
    to_core: HashMap<ConnId, ConnectionId>,
    /// Host name → simulator node (for `SYSCMD` translation).
    hosts: HashMap<String, NodeId>,
    /// `SYSCMD` lines that failed to parse, kept for diagnostics.
    pub rejected_commands: Vec<String>,
}

impl std::fmt::Debug for SimInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimInjector")
            .field("connections", &self.to_sim.len())
            .finish()
    }
}

impl SimInjector {
    /// Builds an injector for `sim`, wiring the attack model's named
    /// connections to the simulator's, and returns it with a shared
    /// handle to the executor.
    ///
    /// # Panics
    ///
    /// Panics if a connection of the executor's system model has no
    /// simulated counterpart (controller or switch name mismatch) — a
    /// configuration error a test harness should fail loudly on.
    pub fn new(
        exec: AttackExecutor,
        system: &SystemModel,
        sim: &Simulation,
    ) -> (SimInjector, SharedExecutor) {
        let infos = sim.conn_infos();
        let mut to_sim = Vec::with_capacity(system.connection_count());
        let mut to_core = HashMap::new();
        for (core_id, c, s) in system.connections() {
            let c_name = system.name_of(attain_core::model::NodeRef::Controller(c));
            let s_name = system.name_of(attain_core::model::NodeRef::Switch(s));
            let info = infos
                .iter()
                .find(|i| i.controller == c_name && i.switch == s_name)
                .unwrap_or_else(|| {
                    panic!("connection ({c_name}, {s_name}) has no simulated counterpart")
                });
            to_sim.push(info.id);
            to_core.insert(info.id, core_id);
        }
        let mut hosts = HashMap::new();
        for (_, h) in system.hosts() {
            if let Some(id) = sim.node_id(&h.name) {
                hosts.insert(h.name.clone(), id);
            }
        }
        let exec = Arc::new(Mutex::new(exec));
        let injector = SimInjector {
            exec: Arc::clone(&exec),
            to_sim,
            to_core,
            hosts,
            rejected_commands: Vec::new(),
        };
        (injector, exec)
    }

    fn convert(&mut self, out: ExecOutput) -> InterposerActions {
        let mut actions = InterposerActions::default();
        for d in out.deliveries {
            let Some(&sim_conn) = self.to_sim.get(d.conn.0) else {
                continue; // injected onto a connection the sim lacks
            };
            actions.deliveries.push(Delivery {
                conn: sim_conn,
                direction: if d.to_controller {
                    Direction::SwitchToController
                } else {
                    Direction::ControllerToSwitch
                },
                frame: d.frame,
                extra_delay: SimTime::from_nanos(d.extra_delay_ns),
            });
        }
        for (host, cmd) in out.commands {
            match self.hosts.get(&host) {
                Some(&node) => match HostCommand::parse(node, &cmd) {
                    Ok(command) => actions.commands.push(command),
                    Err(e) => self.rejected_commands.push(e.to_string()),
                },
                None => self
                    .rejected_commands
                    .push(format!("unknown host {host} in syscmd {cmd:?}")),
            }
        }
        for spec in out.faults {
            match attain_netsim::FaultSpec::parse(&spec) {
                Ok(fault) => actions.commands.push(HostCommand::Fault(fault)),
                Err(e) => self.rejected_commands.push(e.to_string()),
            }
        }
        actions.wakeup = out.wakeup_ns.map(SimTime::from_nanos);
        actions
    }
}

impl Interposer for SimInjector {
    fn on_message(&mut self, msg: ProxiedMessage<'_>) -> InterposerActions {
        let Some(&core_conn) = self.to_core.get(&msg.conn) else {
            // A connection outside the attack's system model: the proxy
            // forwards it untouched.
            return InterposerActions::pass(&msg);
        };
        let out = {
            let mut exec = self.exec.lock();
            exec.on_message(InjectorInput {
                conn: core_conn,
                to_controller: msg.direction == Direction::SwitchToController,
                frame: msg.frame.clone(),
                now_ns: msg.now.as_nanos(),
            })
        };
        self.convert(out)
    }

    fn on_wakeup(&mut self, now: SimTime) -> InterposerActions {
        let out = {
            let mut exec = self.exec.lock();
            exec.on_wakeup(now.as_nanos())
        };
        self.convert(out)
    }
}
