//! The §VII case-study harness: builds the enterprise network in the
//! simulator, attaches attacks, drives the paper's experiment timelines,
//! and collects the metrics behind Figure 11 and Table II.

use crate::sim::{SharedExecutor, SimInjector};
use attain_controllers::{Controller, ControllerKind, DmzFirewall, DmzPolicy};
use attain_core::exec::AttackExecutor;
use attain_core::{dsl, scenario};
use attain_netsim::{
    Direction, FailMode, HostCommand, IperfStats, NetworkBuilder, PingStats, SimTime, Simulation,
};
use attain_openflow::{DatapathId, OfType, PortNo};
use std::fmt;

/// Experiment sizing: the paper's full §VII-B timeline or a scaled-down
/// variant for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fidelity {
    /// Number of 1 s ping trials (paper: 60).
    pub ping_trials: u32,
    /// Number of iperf trials (paper: 30).
    pub iperf_trials: u32,
    /// Seconds per iperf trial (paper: 10).
    pub iperf_secs: u64,
}

impl Fidelity {
    /// The paper's §VII-B parameters: 60 ping trials, 30 × 10 s iperf
    /// trials with 10 s gaps.
    pub fn paper() -> Fidelity {
        Fidelity {
            ping_trials: 60,
            iperf_trials: 30,
            iperf_secs: 10,
        }
    }

    /// A fast variant for unit/integration tests.
    pub fn quick() -> Fidelity {
        Fidelity {
            ping_trials: 10,
            iperf_trials: 2,
            iperf_secs: 5,
        }
    }
}

/// Instantiates a controller model of `kind` wrapped in the case study's
/// DMZ firewall policy for switch `s2` (dpid 1-based: switches are added
/// after the six hosts, so `s2` is the second switch → dpid 2).
pub fn case_study_controller(kind: ControllerKind) -> Box<dyn Controller> {
    let inner: Box<dyn Controller> = kind.instantiate();
    let policy = DmzPolicy {
        firewall_dpid: DatapathId(2),
        external_port: PortNo(1),
        // The DMZ web server is trusted to reach inward (the Fig. 11
        // workloads run h1↔h6); Internet traffic via the gateway may
        // only reach the published destinations.
        trusted_sources: ["10.0.0.1".parse().unwrap()].into_iter().collect(),
        allowed_external_dsts: ["10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap()]
            .into_iter()
            .collect(),
    };
    Box::new(DmzFirewall::new(inner, policy))
}

/// Builds the Figure 8/9 enterprise network in the simulator: six hosts,
/// four switches, one controller of `kind` behind the DMZ firewall
/// policy, with `s2` in the requested fail mode.
///
/// Component names, addresses, and port numbers mirror
/// [`scenario::enterprise_network`], so attacks compiled against that
/// scenario drive this simulation.
pub fn build_case_study(kind: ControllerKind, s2_fail_mode: FailMode) -> Simulation {
    let mut b = NetworkBuilder::new();
    let h: Vec<_> = (1..=6)
        .map(|i| b.host(&format!("h{i}"), &format!("10.0.0.{i}")))
        .collect();
    let s1 = b.switch("s1");
    let s2 = b.switch_with_mode("s2", s2_fail_mode);
    let s3 = b.switch("s3");
    let s4 = b.switch("s4");
    // Link order fixes port numbers; must match the scenario (Fig. 8).
    b.link(h[0], s1); // s1 p1
    b.link(h[1], s1); // s1 p2
    b.link(s1, s2); // s1 p3 — s2 p1 (the firewall's external port)
    b.link(s2, s3); // s2 p2 — s3 p1
    b.link(h[2], s3); // s3 p2
    b.link(h[3], s3); // s3 p3
    b.link(s3, s4); // s3 p4 — s4 p1
    b.link(h[4], s4); // s4 p2
    b.link(h[5], s4); // s4 p3
    let c1 = b.controller("c1", case_study_controller(kind));
    for s in [s1, s2, s3, s4] {
        b.control(c1, s);
    }
    b.build()
}

/// Builds a simulator network from an arbitrary attack-model
/// [`SystemModel`](attain_core::model::SystemModel) — hosts, switches,
/// data-plane links, and control connections all mirror the model, so a
/// self-contained DSL document becomes a runnable network.
///
/// Every switch gets `fail_mode`; every host needs an IP in the model.
/// `make_controller` is invoked once per controller in id order.
///
/// Port numbers are assigned in data-plane edge order (as the DSL's
/// auto-numbering does). A model whose `link` statements declare ports
/// out of declaration order will therefore disagree with the simulator
/// about port numbers — declare links in port order (as every bundled
/// scenario does) when attacks match on `in_port`.
///
/// # Panics
///
/// Panics if a host lacks an IP address (the simulator cannot run an IP
/// network without one).
pub fn build_simulation(
    system: &attain_core::model::SystemModel,
    fail_mode: FailMode,
    mut make_controller: impl FnMut(&str) -> Box<dyn Controller>,
) -> Simulation {
    use attain_core::model::NodeRef;
    let mut b = NetworkBuilder::new();
    let mut host_ids = Vec::new();
    let mut switch_ids = Vec::new();
    // Hosts and switches in model id order interleaved as declared is
    // not recoverable; hosts first matches the MAC-derivation convention
    // documented on the scenario builders.
    for (_, h) in system.hosts() {
        let ip =
            h.ip.unwrap_or_else(|| panic!("host {} has no IP address", h.name));
        host_ids.push(b.host(&h.name, &ip.to_string()));
    }
    for (_, s) in system.switches() {
        switch_ids.push(b.switch_with_mode(&s.name, fail_mode));
    }
    for edge in system.data_plane() {
        let node = |r: NodeRef| match r {
            NodeRef::Host(h) => host_ids[h.0],
            NodeRef::Switch(s) => switch_ids[s.0],
            NodeRef::Controller(_) => panic!("controllers are not data plane vertices"),
        };
        b.link(node(edge.a), node(edge.b));
    }
    let ctrl_refs: Vec<_> = system
        .controllers()
        .map(|(_, c)| b.controller(&c.name, make_controller(&c.name)))
        .collect();
    for (_, c, s) in system.connections() {
        b.control(ctrl_refs[c.0], switch_ids[s.0]);
    }
    b.build()
}

/// Compiles `attack_source` against the enterprise scenario and
/// interposes it on `sim`. Returns the shared executor handle for log
/// inspection after the run.
///
/// # Panics
///
/// Panics if the attack fails to compile or validate — harness misuse.
pub fn attach_attack(sim: &mut Simulation, attack_source: &str) -> SharedExecutor {
    match try_attach_attack(sim, attack_source) {
        Ok(handle) => handle,
        Err(e) => panic!("case-study attack rejected: {e}"),
    }
}

/// Fallible [`attach_attack`]: compile/validate failures come back as an
/// error instead of a panic. The campaign's fault-contained path — a
/// malformed attack becomes one `Failed` cell, not a dead worker.
pub fn try_attach_attack(
    sim: &mut Simulation,
    attack_source: &str,
) -> Result<SharedExecutor, String> {
    let sc = scenario::enterprise_network();
    let compiled = dsl::compile(attack_source, &sc.system, &sc.attack_model)
        .map_err(|e| format!("attack does not compile: {e}"))?;
    let exec = AttackExecutor::new(sc.system.clone(), sc.attack_model, compiled.attack)
        .map_err(|e| format!("attack does not validate: {e}"))?;
    let (injector, handle) = SimInjector::new(exec, &sc.system, sim);
    sim.set_interposer(Box::new(injector));
    Ok(handle)
}

// ---------------------------------------------------------------------------
// Figure 11: flow modification suppression
// ---------------------------------------------------------------------------

/// Results of one §VII-B run (one bar group of Figure 11).
#[derive(Debug)]
pub struct SuppressionOutcome {
    /// The controller under test.
    pub controller: ControllerKind,
    /// Whether the suppression attack ran (vs. the Figure 5 baseline).
    pub attacked: bool,
    /// The h1→h6 ping run (Figure 11b's latency series).
    pub ping: PingStats,
    /// Per-trial iperf throughputs in Mb/s (Figure 11a's bars).
    pub iperf: Vec<IperfStats>,
    /// `PACKET_IN`s observed at the proxy (control-plane load metric).
    pub packet_ins: u64,
    /// `FLOW_MOD`s the controller sent (before any suppression).
    pub flow_mods_sent: u64,
    /// Total control-plane messages observed.
    pub control_total: u64,
    /// How often the suppression rule fired (0 in baselines).
    pub phi1_fires: u64,
}

impl SuppressionOutcome {
    /// Mean throughput across trials, in Mb/s.
    pub fn mean_throughput_mbps(&self) -> f64 {
        if self.iperf.is_empty() {
            return 0.0;
        }
        self.iperf
            .iter()
            .map(IperfStats::throughput_mbps)
            .sum::<f64>()
            / self.iperf.len() as f64
    }

    /// Whether throughput was fully denied (the paper's asterisk).
    pub fn iperf_denied(&self) -> bool {
        !self.iperf.is_empty() && self.iperf.iter().all(IperfStats::is_denial_of_service)
    }

    /// Whether latency was fully denied (infinite — the asterisk).
    pub fn ping_denied(&self) -> bool {
        self.ping.is_denial_of_service()
    }
}

impl fmt::Display for SuppressionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mode = if self.attacked { "attack" } else { "baseline" };
        write!(
            f,
            "{}/{}: iperf {} ping {}",
            self.controller,
            mode,
            if self.iperf_denied() {
                "*".to_string()
            } else {
                format!("{:.1} Mb/s", self.mean_throughput_mbps())
            },
            if self.ping_denied() {
                "*".to_string()
            } else {
                format!("{:.2} ms", self.ping.avg_rtt_ms().unwrap_or(f64::NAN))
            },
        )
    }
}

/// Runs the §VII-B experiment: `t=0` controller up, `t=5` injector in
/// state σ1, `t=30` sixty 1 s ping trials h1→h6, `t≈95` onward thirty
/// 10 s iperf trials h1→h6 with 10 s gaps.
///
/// With `attacked = false` the Figure 5 trivial pass-all attack runs
/// instead, giving the baseline bars.
pub fn run_flow_mod_suppression(
    kind: ControllerKind,
    attacked: bool,
    fidelity: &Fidelity,
) -> SuppressionOutcome {
    let mut sim = build_case_study(kind, FailMode::Secure);
    let source = if attacked {
        scenario::attacks::FLOW_MOD_SUPPRESSION
    } else {
        scenario::attacks::TRIVIAL_PASS
    };
    let exec = attach_attack(&mut sim, source);

    let h1 = sim.node_id("h1").expect("case study has h1");
    let h6 = sim.node_id("h6").expect("case study has h6");
    let h6_ip = "10.0.0.6".parse().expect("valid address");

    // t = 30 s: ping trials (1 s apart).
    sim.schedule_command(
        SimTime::from_secs(30),
        HostCommand::Ping {
            host: h1,
            dst: h6_ip,
            count: fidelity.ping_trials,
            interval: SimTime::from_secs(1),
            label: "ping h1->h6".into(),
        },
    );
    // t = 95 s: iperf server on h6; trials every (secs + 10).
    let iperf_start = SimTime::from_secs(30 + fidelity.ping_trials as u64 + 5);
    sim.schedule_command(
        iperf_start,
        HostCommand::IperfServer {
            host: h6,
            port: 5001,
        },
    );
    for trial in 0..fidelity.iperf_trials {
        let at = iperf_start + SimTime::from_secs(1 + trial as u64 * (fidelity.iperf_secs + 10));
        sim.schedule_command(
            at,
            HostCommand::IperfClient {
                host: h1,
                dst: h6_ip,
                port: 5001,
                duration: SimTime::from_secs(fidelity.iperf_secs),
                label: format!("iperf trial {trial}"),
            },
        );
    }
    let end = iperf_start
        + SimTime::from_secs(1 + fidelity.iperf_trials as u64 * (fidelity.iperf_secs + 10) + 15);
    sim.run_until(end);

    let ping = sim.ping_stats().into_iter().next().expect("ping ran");
    let iperf = sim.iperf_stats();
    let phi1_fires = exec.lock().log().rule_fires("phi1");
    SuppressionOutcome {
        controller: kind,
        attacked,
        ping,
        iperf,
        packet_ins: sim
            .trace()
            .control_message_count(OfType::PacketIn, Direction::SwitchToController),
        flow_mods_sent: sim
            .trace()
            .control_message_count(OfType::FlowMod, Direction::ControllerToSwitch),
        control_total: sim.trace().control_message_total(),
        phi1_fires,
    }
}

// ---------------------------------------------------------------------------
// Table II: connection interruption
// ---------------------------------------------------------------------------

/// One access check of Table II: a ping run between two hosts.
#[derive(Debug, Clone, Copy)]
pub struct AccessCheck {
    /// Echo requests sent.
    pub transmitted: u32,
    /// Echo replies received.
    pub received: u32,
}

impl AccessCheck {
    /// The table's ✓: the user could access the host (a clear majority
    /// of trials succeeded at some point during the window — the paper's
    /// fail-safe rows count as accessible even though the first seconds
    /// of the window predate the failover).
    pub fn accessible(&self) -> bool {
        self.transmitted > 0 && self.received * 4 > self.transmitted
    }
}

impl fmt::Display for AccessCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}/{})",
            if self.accessible() { "yes" } else { "no" },
            self.received,
            self.transmitted
        )
    }
}

/// Results of one §VII-C run (one column pair of Table II).
#[derive(Debug)]
pub struct InterruptionOutcome {
    /// The controller under test.
    pub controller: ControllerKind,
    /// `s2`'s fail mode.
    pub fail_mode: FailMode,
    /// Row 1: external user → external host (`h2 → h1`, `t = 30 s`).
    pub ext_to_ext: AccessCheck,
    /// Row 2: internal user → external host (`h6 → h1`, `t = 30 s`).
    pub int_to_ext_before: AccessCheck,
    /// Row 3: external user → internal host (`h2 → h3`, `t = 50 s`).
    pub ext_to_int: AccessCheck,
    /// Row 4: internal user → external host (`h6 → h1`, `t = 95 s`).
    pub int_to_ext_after: AccessCheck,
    /// The attack state the injector ended in (σ3 = interruption
    /// engaged; σ2 = φ2 never fired, the Ryu case).
    pub final_state: String,
    /// How often φ2 fired.
    pub phi2_fires: u64,
}

impl InterruptionOutcome {
    /// Table II's "unauthorized increased access": the external user
    /// reached an internal host.
    pub fn unauthorized_access(&self) -> bool {
        self.ext_to_int.accessible()
    }

    /// Table II's "denial of service against legitimate traffic": the
    /// internal user lost access to external hosts after the
    /// interruption.
    pub fn legitimate_dos(&self) -> bool {
        !self.int_to_ext_after.accessible()
    }
}

/// Runs the §VII-C experiment: `t=0` fail mode set, controller and
/// injector up, `t=30 s` h2→h1 and h6→h1 pings (10 s each), `t=50 s`
/// h2→h3 pings (60 s), `t=95 s` h6→h1 pings (10 s) again.
pub fn run_connection_interruption(
    kind: ControllerKind,
    fail_mode: FailMode,
) -> InterruptionOutcome {
    let mut sim = build_case_study(kind, fail_mode);
    let exec = attach_attack(&mut sim, scenario::attacks::CONNECTION_INTERRUPTION);

    let h2 = sim.node_id("h2").expect("case study has h2");
    let h6 = sim.node_id("h6").expect("case study has h6");
    let ip = |last: u8| format!("10.0.0.{last}").parse().expect("valid address");

    let ping = |host, dst, count: u32, label: &str| HostCommand::Ping {
        host,
        dst,
        count,
        interval: SimTime::from_secs(1),
        label: label.into(),
    };
    // t = 30 s: external→external and internal→external, 10 trials each.
    sim.schedule_command(SimTime::from_secs(30), ping(h2, ip(1), 10, "h2->h1 early"));
    sim.schedule_command(SimTime::from_secs(30), ping(h6, ip(1), 10, "h6->h1 early"));
    // t = 50 s: external→internal for 60 s — the trigger and the row-3
    // measurement window.
    sim.schedule_command(SimTime::from_secs(50), ping(h2, ip(3), 60, "h2->h3"));
    // t = 95 s: internal→external again.
    sim.schedule_command(SimTime::from_secs(95), ping(h6, ip(1), 10, "h6->h1 late"));
    sim.run_until(SimTime::from_secs(120));

    let stats = sim.ping_stats();
    let by_label = |label: &str| -> AccessCheck {
        let s = stats
            .iter()
            .find(|s| s.label == label)
            .expect("scheduled ping ran");
        AccessCheck {
            transmitted: s.transmitted(),
            received: s.received(),
        }
    };
    let exec = exec.lock();
    InterruptionOutcome {
        controller: kind,
        fail_mode,
        ext_to_ext: by_label("h2->h1 early"),
        int_to_ext_before: by_label("h6->h1 early"),
        ext_to_int: by_label("h2->h3"),
        int_to_ext_after: by_label("h6->h1 late"),
        final_state: exec.current_state_name().to_string(),
        phi2_fires: exec.log().rule_fires("phi2"),
    }
}

// ---------------------------------------------------------------------------
// Environment faults: the §VII-C attack composed with testbed failures
// ---------------------------------------------------------------------------

/// Results of one fault-recovery run (`bin/faults`): the
/// connection-interruption attack running while the testbed itself
/// misbehaves — a flapping backbone link, seeded packet loss, a
/// controller crash and restart, and a switch power-cycle.
#[derive(Debug)]
pub struct FaultRecoveryOutcome {
    /// The controller under test.
    pub controller: ControllerKind,
    /// `s2`'s fail mode.
    pub fail_mode: FailMode,
    /// `h6 → h1` while everything is healthy (`t = 30 s`).
    pub before: AccessCheck,
    /// `h6 → h1` while the controller is down and liveness has expired
    /// (`t = 61 s`): fail-secure switches lock down, fail-safe ones
    /// fall back to standalone forwarding.
    pub during: AccessCheck,
    /// `h6 → h1` after controller restart and re-handshake (`t = 95 s`).
    pub after: AccessCheck,
    /// Per-link / per-process fault accounting.
    pub report: attain_netsim::FaultReport,
    /// Every trace event, rendered — byte-identical across runs with the
    /// same seed.
    pub trace_lines: Vec<String>,
    /// The attack state the injector ended in.
    pub final_state: String,
    /// How often the interruption trigger φ2 fired.
    pub phi2_fires: u64,
}

/// Runs the fault-recovery scenario with `seed` driving the per-link
/// loss/corruption streams. Timeline: `t=15 s` the s3–s4 backbone link
/// flaps twice, `t=20 s` the s1–s2 link picks up 1 % seeded loss,
/// `t=45 s` the controller crashes (switches declare it dead ≈15 s
/// later and enter their fail mode), `t=70 s` it restarts (switches
/// re-handshake within a reconnect period), `t=85 s` s4 power-cycles.
/// The §VII-C interruption attack is interposed throughout, triggered by
/// the `h2 → h3` pings at `t=50 s`.
pub fn run_fault_recovery(
    kind: ControllerKind,
    fail_mode: FailMode,
    seed: u64,
) -> FaultRecoveryOutcome {
    use attain_netsim::FaultPlan;

    let mut sim = build_case_study(kind, fail_mode);
    let exec = attach_attack(&mut sim, scenario::attacks::CONNECTION_INTERRUPTION);

    let mut plan = FaultPlan::seeded(seed);
    for (secs, spec) in [
        (15, "link s3-s4 flap 2 0.5 0.5"),
        (20, "link s1-s2 loss 1"),
        (45, "controller c1 crash"),
        (70, "controller c1 restart"),
        (85, "switch s4 restart"),
    ] {
        plan.at_str(SimTime::from_secs(secs), spec)
            .expect("scenario fault spec parses");
    }
    sim.apply_fault_plan(&plan);

    let h2 = sim.node_id("h2").expect("case study has h2");
    let h6 = sim.node_id("h6").expect("case study has h6");
    let ip = |last: u8| format!("10.0.0.{last}").parse().expect("valid address");
    let ping = |host, dst, count: u32, label: &str| HostCommand::Ping {
        host,
        dst,
        count,
        interval: SimTime::from_secs(1),
        label: label.into(),
    };
    sim.schedule_command(SimTime::from_secs(30), ping(h6, ip(1), 10, "before"));
    // The attack's trigger traffic, as in §VII-C.
    sim.schedule_command(SimTime::from_secs(50), ping(h2, ip(3), 30, "trigger"));
    // Liveness declares the controller dead ≈ t=60 s; probe the outage.
    sim.schedule_command(SimTime::from_secs(61), ping(h6, ip(1), 8, "during"));
    sim.schedule_command(SimTime::from_secs(95), ping(h6, ip(1), 10, "after"));
    sim.run_until(SimTime::from_secs(115));

    let stats = sim.ping_stats();
    let by_label = |label: &str| -> AccessCheck {
        let s = stats
            .iter()
            .find(|s| s.label == label)
            .expect("scheduled ping ran");
        AccessCheck {
            transmitted: s.transmitted(),
            received: s.received(),
        }
    };
    let exec = exec.lock();
    FaultRecoveryOutcome {
        controller: kind,
        fail_mode,
        before: by_label("before"),
        during: by_label("during"),
        after: by_label("after"),
        report: sim.fault_report(),
        trace_lines: sim.trace().events().iter().map(|e| e.to_string()).collect(),
        final_state: exec.current_state_name().to_string(),
        phi2_fires: exec.log().rule_fires("phi2"),
    }
}
