//! Monitors (paper §VI-B3): the components that "record relevant control
//! and data plane events" for later analysis.
//!
//! The paper places `iperf`/`tcpdump`-style monitors throughout the
//! testbed. Here the raw feeds already exist — the simulator's
//! [`Trace`](attain_netsim::Trace), the hosts' ping/iperf statistics, and the executor's
//! [`InjectionLog`](attain_core::exec::InjectionLog) — and this module condenses them into one
//! [`ExperimentReport`] suitable for printing or asserting against.

use crate::tcp::{ProxyStats, RouteHealthSnapshot, TcpProxy};
use attain_core::exec::{AttackExecutor, LogKind};
use attain_netsim::{Direction, Simulation};
use attain_openflow::OfType;
use std::fmt;

/// Aggregate of one control-plane connection's traffic, by direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionTraffic {
    /// Connection label, `controller/switch`.
    pub label: String,
    /// Messages switch→controller.
    pub to_controller: u64,
    /// Messages controller→switch.
    pub to_switch: u64,
}

/// Everything the monitors observed in one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Per-connection control-plane traffic.
    pub connections: Vec<ConnectionTraffic>,
    /// Per-message-type totals (both directions), `None` = unparseable.
    pub by_type: Vec<(Option<OfType>, u64)>,
    /// Ping runs: `(label, received, transmitted, avg RTT ms)`.
    pub pings: Vec<(String, u32, u32, Option<f64>)>,
    /// Iperf runs: `(label, Mb/s, denial of service)`.
    pub iperfs: Vec<(String, f64, bool)>,
    /// Rule-fire counters from the injection log.
    pub rule_fires: Vec<(String, u64)>,
    /// State transitions taken by the attack.
    pub transitions: Vec<(usize, usize)>,
    /// `SYSCMD`s the attack issued.
    pub syscmds: Vec<(String, String)>,
    /// The attack's final state name.
    pub final_state: String,
    /// Data-plane frames dropped by link queues.
    pub frames_dropped: u64,
}

impl ExperimentReport {
    /// Collects a report from a finished simulation and its executor.
    pub fn collect(sim: &Simulation, exec: &AttackExecutor) -> ExperimentReport {
        let infos = sim.conn_infos();
        let counters = sim.trace().counters();
        let mut connections: Vec<ConnectionTraffic> = infos
            .iter()
            .map(|i| ConnectionTraffic {
                label: format!("{}/{}", i.controller, i.switch),
                to_controller: 0,
                to_switch: 0,
            })
            .collect();
        let mut by_type: std::collections::BTreeMap<u8, (Option<OfType>, u64)> =
            std::collections::BTreeMap::new();
        for (conn, dir, ty, n) in counters {
            if let Some(c) = connections.get_mut(conn.0) {
                match dir {
                    Direction::SwitchToController => c.to_controller += n,
                    Direction::ControllerToSwitch => c.to_switch += n,
                }
            }
            let key = ty.map(|t| t as u8 + 1).unwrap_or(0);
            let slot = by_type.entry(key).or_insert((ty, 0));
            slot.1 += n;
        }
        let log = exec.log();
        ExperimentReport {
            connections,
            by_type: by_type.into_values().collect(),
            pings: sim
                .ping_stats()
                .iter()
                .map(|p| {
                    (
                        p.label.clone(),
                        p.received(),
                        p.transmitted(),
                        p.avg_rtt_ms(),
                    )
                })
                .collect(),
            iperfs: sim
                .iperf_stats()
                .iter()
                .map(|s| {
                    (
                        s.label.clone(),
                        s.throughput_mbps(),
                        s.is_denial_of_service(),
                    )
                })
                .collect(),
            rule_fires: log
                .rule_fire_counts()
                .map(|(name, n)| (name.to_string(), n))
                .collect(),
            transitions: log.transitions(),
            syscmds: log
                .events()
                .iter()
                .filter_map(|e| match &e.kind {
                    LogKind::SysCmd { host, cmd } => Some((host.clone(), cmd.clone())),
                    _ => None,
                })
                .collect(),
            final_state: exec.current_state_name().to_string(),
            frames_dropped: sim.frames_dropped,
        }
    }

    /// Total control-plane messages observed.
    pub fn control_total(&self) -> u64 {
        self.connections
            .iter()
            .map(|c| c.to_controller + c.to_switch)
            .sum()
    }
}

/// The monitor view of a live TCP deployment (§VI-B2): the proxy's
/// connection-lifecycle counters, rendered alongside the run's
/// [`ExperimentReport`] when the injector ran on real sockets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyLifecycleReport {
    /// Lifecycle counters snapshotted from the proxy.
    pub stats: ProxyStats,
    /// Per-route reconnect-supervisor health, in route order.
    pub routes: Vec<RouteHealthSnapshot>,
}

impl ProxyLifecycleReport {
    /// Snapshots a running (or just shut down) proxy.
    pub fn collect(proxy: &TcpProxy) -> ProxyLifecycleReport {
        ProxyLifecycleReport {
            stats: proxy.stats(),
            routes: proxy.route_health(),
        }
    }

    /// Deliveries the proxy refused to misdeliver: bytes addressed to a
    /// dead epoch or a dead connection.
    pub fn quarantined(&self) -> u64 {
        self.stats.stale_epoch_dropped + self.stats.dead_target_dropped
    }
}

impl fmt::Display for ProxyLifecycleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== proxy lifecycle ===")?;
        writeln!(
            f,
            "sessions: {} opened, {} closed, {} live",
            self.stats.sessions_opened, self.stats.sessions_closed, self.stats.live_sessions
        )?;
        writeln!(
            f,
            "dropped: {} stale-epoch, {} dead-target, {} overflow",
            self.stats.stale_epoch_dropped,
            self.stats.dead_target_dropped,
            self.stats.overflow_dropped
        )?;
        writeln!(
            f,
            "reconnect supervision: {} dial failures, {} backoff windows, {} absorbed",
            self.stats.dial_failures, self.stats.backoff_events, self.stats.backoff_rejected
        )?;
        for r in &self.routes {
            writeln!(
                f,
                "route {}: {} ({} consecutive failures)",
                r.route, r.health, r.consecutive_failures
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== experiment report ===")?;
        writeln!(f, "attack final state: {}", self.final_state)?;
        if !self.transitions.is_empty() {
            writeln!(f, "transitions: {:?}", self.transitions)?;
        }
        for (rule, n) in &self.rule_fires {
            writeln!(f, "rule {rule}: fired {n}x")?;
        }
        for (host, cmd) in &self.syscmds {
            writeln!(f, "syscmd on {host}: {cmd}")?;
        }
        writeln!(
            f,
            "control plane ({} messages total):",
            self.control_total()
        )?;
        for c in &self.connections {
            writeln!(
                f,
                "  {:<12} →ctrl {:<8} →switch {}",
                c.label, c.to_controller, c.to_switch
            )?;
        }
        for (ty, n) in &self.by_type {
            match ty {
                Some(t) => writeln!(f, "  {t}: {n}")?,
                None => writeln!(f, "  <unparseable>: {n}")?,
            }
        }
        for (label, rx, tx, rtt) in &self.pings {
            match rtt {
                Some(ms) => writeln!(f, "ping {label}: {rx}/{tx}, avg {ms:.2} ms")?,
                None => writeln!(f, "ping {label}: {rx}/{tx} (no replies)")?,
            }
        }
        for (label, mbps, dos) in &self.iperfs {
            if *dos {
                writeln!(f, "iperf {label}: * (denial of service)")?;
            } else {
                writeln!(f, "iperf {label}: {mbps:.1} Mb/s")?;
            }
        }
        if self.frames_dropped > 0 {
            writeln!(f, "data plane drops: {}", self.frames_dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{attach_attack, build_case_study};
    use attain_controllers::ControllerKind;
    use attain_core::scenario;
    use attain_netsim::{FailMode, HostCommand, SimTime};

    #[test]
    fn report_collects_all_feeds() {
        let mut sim = build_case_study(ControllerKind::Pox, FailMode::Secure);
        let exec = attach_attack(&mut sim, scenario::attacks::FLOW_MOD_SUPPRESSION);
        let h1 = sim.node_id("h1").expect("case study has h1");
        sim.schedule_command(
            SimTime::from_secs(5),
            HostCommand::Ping {
                host: h1,
                dst: "10.0.0.6".parse().expect("valid address"),
                count: 5,
                interval: SimTime::from_secs(1),
                label: "probe".into(),
            },
        );
        sim.run_until(SimTime::from_secs(15));
        let exec = exec.lock();
        let report = ExperimentReport::collect(&sim, &exec);
        assert_eq!(report.connections.len(), 4);
        assert!(report.control_total() > 0);
        assert_eq!(report.pings.len(), 1);
        assert_eq!(report.pings[0].0, "probe");
        assert!(report
            .rule_fires
            .iter()
            .any(|(name, n)| name == "phi1" && *n > 0));
        assert_eq!(report.final_state, "sigma1");
        // The rendering mentions the load-bearing pieces.
        let text = report.to_string();
        assert!(text.contains("rule phi1"));
        assert!(text.contains("ping probe"));
        assert!(text.contains("c1/s2"));
    }

    #[test]
    fn proxy_lifecycle_report_renders_counters() {
        use crate::tcp::{ProxyRoute, TcpProxy};
        use attain_core::model::ConnectionId;
        use attain_core::{dsl, scenario};

        let sc = scenario::enterprise_network();
        let compiled = dsl::compile(
            scenario::attacks::TRIVIAL_PASS,
            &sc.system,
            &sc.attack_model,
        )
        .expect("compiles");
        let exec =
            attain_core::exec::AttackExecutor::new(sc.system, sc.attack_model, compiled.attack)
                .expect("valid attack");
        let proxy = TcpProxy::spawn(
            exec,
            vec![ProxyRoute {
                listen: "127.0.0.1:0".parse().expect("addr"),
                controller: "127.0.0.1:1".parse().expect("addr"),
                conn: ConnectionId(0),
            }],
            None,
        )
        .expect("binds");
        let report = ProxyLifecycleReport::collect(&proxy);
        assert_eq!(report.stats.sessions_opened, 0);
        assert_eq!(report.quarantined(), 0);
        assert_eq!(report.routes.len(), 1);
        assert_eq!(report.routes[0].health, crate::tcp::RouteHealth::Idle);
        assert_eq!(report.routes[0].consecutive_failures, 0);
        let text = report.to_string();
        assert!(text.contains("proxy lifecycle"));
        assert!(text.contains("0 opened, 0 closed, 0 live"));
        assert!(text.contains("reconnect supervision"));
        assert!(text.contains("route 0: idle"));
        proxy.shutdown();
    }
}
