//! The ATTAIN runtime attack injector (paper §VI).
//!
//! Two deployments of the same [`attain_core::exec::AttackExecutor`]:
//!
//! * [`SimInjector`] — interposes on every control-plane connection of
//!   an [`attain_netsim::Simulation`], exactly where the paper's proxy
//!   sits ("switches point at the proxy as their controller"). A single
//!   executor instance sees every connection's messages, giving the
//!   total order of §VI-C.
//! * [`tcp`] — a real threaded TCP proxy over `std::net` sockets, for
//!   running attacks against OpenFlow speakers outside the simulator.
//!
//! Plus the experiment [`harness`]: builders and timelines for the
//! paper's §VII case study (the Figure 11 flow-modification-suppression
//! experiment and the Table II connection-interruption experiment).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod monitors;
mod sim;
pub mod tcp;

pub use monitors::{ExperimentReport, ProxyLifecycleReport};
pub use sim::{SharedExecutor, SimInjector};
pub use tcp::{RouteHealth, RouteHealthSnapshot};
