//! A real TCP deployment of the runtime injector.
//!
//! The paper's proxy "operates as a server for switch connections and as
//! a client for controller connections" (§VI-B2). [`TcpProxy`] does the
//! same over `std::net` sockets: each [`ProxyRoute`] binds a listening
//! socket for one expected switch and names the controller address to
//! dial, plus the attack-model [`ConnectionId`] that pair represents.
//! Every OpenFlow message crossing either direction is framed, fed to
//! the shared [`AttackExecutor`], and the executor's verdicts (drop,
//! delay, modify, inject, …) are applied on the wire.

use attain_core::exec::{AttackExecutor, ExecOutput, InjectorInput};
use attain_core::model::ConnectionId;
use attain_openflow::OfMessage;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// One proxied control-plane connection: where the switch will connect,
/// where the controller listens, and which `N_C` element this is.
#[derive(Debug, Clone)]
pub struct ProxyRoute {
    /// Address the proxy listens on for the switch (port 0 = ephemeral).
    pub listen: SocketAddr,
    /// The real controller's address.
    pub controller: SocketAddr,
    /// The attack model's connection id for this pair.
    pub conn: ConnectionId,
}

/// Callback invoked for `SYSCMD` actions: `(host, command)`.
pub type SysCmdHandler = Box<dyn Fn(&str, &str) + Send + Sync>;

/// Per-connection byte sinks, keyed by `(conn, to_controller)`.
type SinkMap = HashMap<(usize, bool), Sender<Vec<u8>>>;

struct Shared {
    exec: Mutex<AttackExecutor>,
    /// Where each connection's two directions are written.
    sinks: Mutex<SinkMap>,
    start: Instant,
    shutdown: AtomicBool,
    syscmd: Option<SysCmdHandler>,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn dispatch(self: &Arc<Self>, out: ExecOutput) {
        for d in out.deliveries {
            let key = (d.conn.0, d.to_controller);
            let sink = self.sinks.lock().get(&key).cloned();
            let Some(sink) = sink else { continue };
            if d.extra_delay_ns == 0 {
                let _ = sink.send(d.bytes);
            } else {
                // DELAYMESSAGE on real sockets: a short-lived timer
                // thread; attack delays are seconds-scale and rare.
                let delay = Duration::from_nanos(d.extra_delay_ns);
                thread::spawn(move || {
                    thread::sleep(delay);
                    let _ = sink.send(d.bytes);
                });
            }
        }
        for (host, cmd) in out.commands {
            if let Some(handler) = &self.syscmd {
                handler(&host, &cmd);
            }
        }
        if let Some(wake_ns) = out.wakeup_ns {
            let shared = Arc::clone(self);
            thread::spawn(move || {
                let now = shared.now_ns();
                if wake_ns > now {
                    thread::sleep(Duration::from_nanos(wake_ns - now));
                }
                let out = {
                    let mut exec = shared.exec.lock();
                    exec.on_wakeup(shared.now_ns())
                };
                shared.dispatch(out);
            });
        }
    }

    fn on_message(self: &Arc<Self>, conn: ConnectionId, to_controller: bool, bytes: &[u8]) {
        let out = {
            let mut exec = self.exec.lock();
            exec.on_message(InjectorInput {
                conn,
                to_controller,
                bytes,
                now_ns: self.now_ns(),
            })
        };
        self.dispatch(out);
    }
}

/// The running proxy. Dropping it does not stop the worker threads; call
/// [`TcpProxy::shutdown`] for a clean stop (threads also exit when their
/// sockets close).
pub struct TcpProxy {
    shared: Arc<Shared>,
    /// The actually bound listen addresses, in route order (useful when
    /// routes asked for port 0).
    pub listen_addrs: Vec<SocketAddr>,
}

impl std::fmt::Debug for TcpProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpProxy")
            .field("listen_addrs", &self.listen_addrs)
            .finish()
    }
}

impl TcpProxy {
    /// Binds every route's listener and starts the proxy threads.
    ///
    /// # Errors
    ///
    /// Fails if a listener cannot bind.
    pub fn spawn(
        exec: AttackExecutor,
        routes: Vec<ProxyRoute>,
        syscmd: Option<SysCmdHandler>,
    ) -> std::io::Result<TcpProxy> {
        let shared = Arc::new(Shared {
            exec: Mutex::new(exec),
            sinks: Mutex::new(HashMap::new()),
            start: Instant::now(),
            shutdown: AtomicBool::new(false),
            syscmd,
        });
        let mut listen_addrs = Vec::with_capacity(routes.len());
        for route in routes {
            let listener = TcpListener::bind(route.listen)?;
            listen_addrs.push(listener.local_addr()?);
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(shared, listener, route));
        }
        Ok(TcpProxy {
            shared,
            listen_addrs,
        })
    }

    /// Signals every thread to stop at its next I/O boundary.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Locks and inspects the executor (e.g. for its injection log).
    pub fn with_executor<T>(&self, f: impl FnOnce(&AttackExecutor) -> T) -> T {
        f(&self.shared.exec.lock())
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener, route: ProxyRoute) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok((switch_sock, _)) = listener.accept() else {
            return;
        };
        let Ok(controller_sock) = TcpStream::connect(route.controller) else {
            // Controller unreachable: drop the switch connection; it will
            // retry, as a real switch does.
            continue;
        };
        let conn = route.conn;
        // Writers: channel-fed threads own the write halves.
        let (ctrl_tx, ctrl_rx) = unbounded::<Vec<u8>>();
        let (sw_tx, sw_rx) = unbounded::<Vec<u8>>();
        {
            let mut sinks = shared.sinks.lock();
            sinks.insert((conn.0, true), ctrl_tx);
            sinks.insert((conn.0, false), sw_tx);
        }
        let ctrl_write = controller_sock.try_clone().expect("clone stream");
        let sw_write = switch_sock.try_clone().expect("clone stream");
        thread::spawn(move || write_loop(ctrl_write, ctrl_rx));
        thread::spawn(move || write_loop(sw_write, sw_rx));
        // Readers feed the executor.
        {
            let shared = Arc::clone(&shared);
            thread::spawn(move || read_loop(shared, switch_sock, conn, true));
        }
        {
            let shared = Arc::clone(&shared);
            thread::spawn(move || read_loop(shared, controller_sock, conn, false));
        }
    }
}

fn write_loop(mut sock: TcpStream, rx: crossbeam::channel::Receiver<Vec<u8>>) {
    while let Ok(bytes) = rx.recv() {
        if sock.write_all(&bytes).is_err() {
            return;
        }
    }
}

fn read_loop(shared: Arc<Shared>, mut sock: TcpStream, conn: ConnectionId, to_controller: bool) {
    let mut buf = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let n = match sock.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        buf.extend_from_slice(&chunk[..n]);
        loop {
            match OfMessage::frame_len(&buf) {
                Ok(Some(len)) => {
                    let frame: Vec<u8> = buf.drain(..len).collect();
                    shared.on_message(conn, to_controller, &frame);
                }
                Ok(None) => break,
                Err(_) => {
                    // Unframeable garbage (bad version byte): a real
                    // proxy would reset the connection.
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attain_core::{dsl, scenario};
    use attain_openflow::{FlowMod, Match, OfMessage};
    use std::sync::mpsc;

    fn executor(source: &str) -> AttackExecutor {
        let sc = scenario::enterprise_network();
        let compiled = dsl::compile(source, &sc.system, &sc.attack_model).unwrap();
        AttackExecutor::new(sc.system, sc.attack_model, compiled.attack).unwrap()
    }

    /// A minimal fake controller: accepts one connection, records every
    /// decoded message, answers HELLO with HELLO.
    fn fake_controller() -> (SocketAddr, mpsc::Receiver<OfMessage>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = mpsc::channel();
        thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut buf = Vec::new();
            let mut chunk = [0u8; 1024];
            loop {
                let n = match sock.read(&mut chunk) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => n,
                };
                buf.extend_from_slice(&chunk[..n]);
                while let Ok(Some(len)) = OfMessage::frame_len(&buf) {
                    let frame: Vec<u8> = buf.drain(..len).collect();
                    let (msg, xid) = OfMessage::decode(&frame).unwrap();
                    if msg == OfMessage::Hello {
                        let _ = sock.write_all(&OfMessage::Hello.encode(xid));
                    }
                    if tx.send(msg).is_err() {
                        return;
                    }
                }
            }
        });
        (addr, rx)
    }

    fn read_one(sock: &mut TcpStream) -> OfMessage {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            if let Ok(Some(len)) = OfMessage::frame_len(&buf) {
                let frame: Vec<u8> = buf.drain(..len).collect();
                return OfMessage::decode(&frame).unwrap().0;
            }
            let n = sock.read(&mut chunk).unwrap();
            assert!(n > 0, "connection closed early");
            buf.extend_from_slice(&chunk[..n]);
        }
    }

    #[test]
    fn proxy_forwards_and_suppresses_on_real_sockets() {
        let (ctrl_addr, ctrl_rx) = fake_controller();
        let proxy = TcpProxy::spawn(
            executor(scenario::attacks::FLOW_MOD_SUPPRESSION),
            vec![ProxyRoute {
                listen: "127.0.0.1:0".parse().unwrap(),
                controller: ctrl_addr,
                conn: ConnectionId(0),
            }],
            None,
        )
        .unwrap();

        // The "switch" connects through the proxy and says HELLO.
        let mut switch = TcpStream::connect(proxy.listen_addrs[0]).unwrap();
        switch.write_all(&OfMessage::Hello.encode(1)).unwrap();

        // The controller sees the HELLO…
        let got = ctrl_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, OfMessage::Hello);
        // …and its HELLO reply reaches the switch through the proxy.
        assert_eq!(read_one(&mut switch), OfMessage::Hello);

        // A controller→switch FLOW_MOD is suppressed. The fake controller
        // cannot originate one, so send one *from the switch side of the
        // controller socket*: instead, verify via the executor log after
        // pushing a FLOW_MOD from the controller direction is not
        // possible here — so check the switch→controller direction stays
        // clean and the rule never fired on it.
        let fm = OfMessage::FlowMod(FlowMod::add(Match::all(), vec![])).encode(7);
        switch.write_all(&fm).unwrap();
        // FLOW_MOD *from the switch* does not match φ1 (source must be
        // c1), so the controller receives it.
        let got = ctrl_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(got, OfMessage::FlowMod(_)));
        proxy.with_executor(|e| assert_eq!(e.log().rule_fires("phi1"), 0));
        proxy.shutdown();
    }

    #[test]
    fn proxy_drops_controller_flow_mods() {
        // A fake controller that immediately pushes a FLOW_MOD after the
        // handshake, then an ECHO_REQUEST.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let ctrl_addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let fm = OfMessage::FlowMod(FlowMod::add(Match::all(), vec![])).encode(2);
            sock.write_all(&fm).unwrap();
            sock.write_all(&OfMessage::EchoRequest(vec![9]).encode(3))
                .unwrap();
            // Hold the socket open long enough for the test to read.
            thread::sleep(Duration::from_secs(5));
        });

        let proxy = TcpProxy::spawn(
            executor(scenario::attacks::FLOW_MOD_SUPPRESSION),
            vec![ProxyRoute {
                listen: "127.0.0.1:0".parse().unwrap(),
                controller: ctrl_addr,
                conn: ConnectionId(0),
            }],
            None,
        )
        .unwrap();

        let mut switch = TcpStream::connect(proxy.listen_addrs[0]).unwrap();
        switch.write_all(&OfMessage::Hello.encode(1)).unwrap();

        // The FLOW_MOD is suppressed; the echo request survives and is
        // the first thing the switch sees.
        let got = read_one(&mut switch);
        assert_eq!(got, OfMessage::EchoRequest(vec![9]));
        proxy.with_executor(|e| assert_eq!(e.log().rule_fires("phi1"), 1));
        proxy.shutdown();
    }

    #[test]
    fn trivial_pass_proxy_is_transparent_both_ways() {
        let (ctrl_addr, ctrl_rx) = fake_controller();
        let proxy = TcpProxy::spawn(
            executor(scenario::attacks::TRIVIAL_PASS),
            vec![ProxyRoute {
                listen: "127.0.0.1:0".parse().unwrap(),
                controller: ctrl_addr,
                conn: ConnectionId(0),
            }],
            None,
        )
        .unwrap();
        let mut switch = TcpStream::connect(proxy.listen_addrs[0]).unwrap();
        // A batch of pipelined messages in one write must all arrive, in
        // order (framing test).
        let mut batch = Vec::new();
        batch.extend(OfMessage::Hello.encode(1));
        batch.extend(OfMessage::EchoRequest(vec![1, 2, 3]).encode(2));
        batch.extend(OfMessage::BarrierRequest.encode(3));
        switch.write_all(&batch).unwrap();
        assert_eq!(
            ctrl_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            OfMessage::Hello
        );
        assert_eq!(
            ctrl_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            OfMessage::EchoRequest(vec![1, 2, 3])
        );
        assert_eq!(
            ctrl_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            OfMessage::BarrierRequest
        );
        assert_eq!(read_one(&mut switch), OfMessage::Hello);
        proxy.shutdown();
    }
}
