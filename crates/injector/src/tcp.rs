//! A real TCP deployment of the runtime injector.
//!
//! The paper's proxy "operates as a server for switch connections and as
//! a client for controller connections" (§VI-B2). [`TcpProxy`] does the
//! same over `std::net` sockets: each [`ProxyRoute`] binds a listening
//! socket for one expected switch and names the controller address to
//! dial, plus the attack-model [`ConnectionId`] that pair represents.
//! Every OpenFlow message crossing either direction is framed, fed to
//! the shared [`AttackExecutor`], and the executor's verdicts (drop,
//! delay, modify, inject, …) are applied on the wire.
//!
//! # Connection lifecycle
//!
//! Each accepted switch connection becomes a **session** stamped with a
//! process-wide *epoch* (a generation counter). A session owns both
//! sockets and both write sinks; it is registered atomically when the
//! controller dial succeeds and unregistered atomically the moment any
//! of its four worker loops observes the connection dying, a reconnect
//! replaces it, or a fault severs it. Deliveries carry the epoch they
//! were addressed to, so bytes belonging to a dead session are counted
//! and dropped instead of being written into a successor session —
//! reconnect storms can never interleave stale traffic into a fresh
//! control channel, and no sink outlives its session.
//!
//! Delayed deliveries (`DELAYMESSAGE`) and executor wakeups (`SLEEP`)
//! are owned by a single timer thread holding a min-heap ordered by
//! `(deadline, seq)`, where `seq` is the executor's emission sequence
//! number — equal-delay deliveries therefore fire in executor order,
//! and an attack delaying thousands of messages costs one OS thread,
//! not one per message.
//!
//! Write sinks are bounded ([`WRITE_QUEUE_CAP`]) with an explicit
//! overflow policy: the message path blocks (backpressure propagates to
//! the reading socket, as TCP flow control would), while the timer
//! thread never blocks — a full queue drops the delivery and increments
//! [`ProxyStats::overflow_dropped`].
//!
//! The proxy doubles as the paper's §VII connection-interruption fault
//! harness: [`FaultAction`]s sever a route, hold it down so reconnects
//! are refused, and restore it — immediately via
//! [`TcpProxy::apply_fault`] or at a scheduled offset via
//! [`TcpProxy::schedule_fault`].

use attain_core::exec::{AttackExecutor, ExecOutput, InjectorInput};
use attain_core::model::ConnectionId;
use attain_openflow::{Frame, OfMessage};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Capacity of each per-direction write queue. The message path blocks
/// when a queue is full (backpressure); the timer path drops instead.
pub const WRITE_QUEUE_CAP: usize = 1024;

/// First backoff window armed after a failed controller dial (or a
/// reconnect refused during hold-down); doubles per consecutive failure.
pub const RECONNECT_BACKOFF_BASE: Duration = Duration::from_millis(50);

/// Ceiling the reconnect backoff window never exceeds.
pub const RECONNECT_BACKOFF_CAP: Duration = Duration::from_secs(2);

/// One proxied control-plane connection: where the switch will connect,
/// where the controller listens, and which `N_C` element this is.
#[derive(Debug, Clone)]
pub struct ProxyRoute {
    /// Address the proxy listens on for the switch (port 0 = ephemeral).
    pub listen: SocketAddr,
    /// The real controller's address.
    pub controller: SocketAddr,
    /// The attack model's connection id for this pair.
    pub conn: ConnectionId,
}

/// Callback invoked for `SYSCMD` actions: `(host, command)`.
pub type SysCmdHandler = Box<dyn Fn(&str, &str) + Send + Sync>;

/// A connection-interruption primitive (the §VII case-study faults),
/// applied to a route by index into the `spawn` route list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Cut the route's live session. The switch observes a disconnect
    /// and may reconnect immediately.
    Sever {
        /// Route index (position in the `spawn` route list).
        route: usize,
    },
    /// Cut the live session *and* refuse reconnect attempts until the
    /// route is restored — the sustained-interruption case.
    HoldDown {
        /// Route index.
        route: usize,
    },
    /// Accept switch connections on the route again.
    Restore {
        /// Route index.
        route: usize,
    },
}

/// Lifecycle counters exposed by [`TcpProxy::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Sessions registered (one per accepted switch connection that
    /// reached its controller).
    pub sessions_opened: u64,
    /// Sessions unregistered (disconnect, replacement, fault, shutdown).
    pub sessions_closed: u64,
    /// Deliveries dropped because their session epoch was no longer the
    /// live one — bytes from a dead session never reach its successor.
    pub stale_epoch_dropped: u64,
    /// Deliveries dropped because their target connection had no live
    /// session at all.
    pub dead_target_dropped: u64,
    /// Timer-path deliveries dropped because the write queue was full.
    pub overflow_dropped: u64,
    /// Controller dials that failed (connection refused/unreachable).
    pub dial_failures: u64,
    /// Backoff windows armed (after a failed dial or hold-down churn).
    pub backoff_events: u64,
    /// Switch connections dropped inside a backoff window without a
    /// dial attempt — the churn the supervision absorbs.
    pub backoff_rejected: u64,
    /// Sessions currently registered.
    pub live_sessions: usize,
}

/// Controller-side health of one proxied route, as judged by the
/// reconnect supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteHealth {
    /// Listening, no live session, nothing pending against the route.
    Idle,
    /// A session is live.
    Up,
    /// Recent dial failures (or hold-down churn): reconnect attempts are
    /// being absorbed until the backoff window expires.
    Backoff,
    /// The fault harness holds the route down.
    HeldDown,
}

impl std::fmt::Display for RouteHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteHealth::Idle => write!(f, "idle"),
            RouteHealth::Up => write!(f, "up"),
            RouteHealth::Backoff => write!(f, "backoff"),
            RouteHealth::HeldDown => write!(f, "held-down"),
        }
    }
}

/// One route's health snapshot ([`TcpProxy::route_health`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteHealthSnapshot {
    /// Route index (position in the `spawn` route list).
    pub route: usize,
    /// Supervisor-visible state.
    pub health: RouteHealth,
    /// Consecutive controller-dial failures (resets on success/restore).
    pub consecutive_failures: u32,
}

/// What [`TcpProxy::shutdown`] accomplished.
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Worker threads joined by this call (acceptors, session loops,
    /// and the timer thread).
    pub threads_joined: usize,
    /// Final lifecycle counters; `live_sessions` is 0 after a clean
    /// shutdown.
    pub stats: ProxyStats,
}

/// Session generation number: strictly increasing across the proxy's
/// lifetime, never reused.
type Epoch = u64;

/// One live proxied switch–controller connection pair.
struct Session {
    epoch: Epoch,
    /// Sink feeding the controller-side write loop. Queued frames share
    /// their buffers with the executor's stores — enqueueing is a
    /// refcount bump, not a byte copy.
    ctrl_tx: Sender<Frame>,
    /// Sink feeding the switch-side write loop.
    sw_tx: Sender<Frame>,
    /// Socket handles kept for severing: `shutdown()` here unblocks any
    /// loop parked in `read`/`write` on the same underlying socket.
    switch_sock: TcpStream,
    controller_sock: TcpStream,
}

impl Session {
    fn sink(&self, to_controller: bool) -> &Sender<Frame> {
        if to_controller {
            &self.ctrl_tx
        } else {
            &self.sw_tx
        }
    }

    fn sever(&self) {
        let _ = self.switch_sock.shutdown(Shutdown::Both);
        let _ = self.controller_sock.shutdown(Shutdown::Both);
    }
}

/// Per-route runtime state (fault-harness visible).
struct RouteState {
    conn: usize,
    controller: SocketAddr,
    /// The actually bound listen address (used to wake the acceptor).
    listen: SocketAddr,
    /// While set, reconnect attempts are accepted and immediately
    /// dropped — the hold-down window of a sustained interruption.
    held: AtomicBool,
    /// Consecutive failed controller dials (and hold-down rejections);
    /// drives the exponential backoff window.
    dial_failures: AtomicU32,
    /// While `Some` and in the future, the acceptor absorbs reconnect
    /// attempts without dialing the controller.
    backoff_until: Mutex<Option<Instant>>,
}

impl RouteState {
    /// Arms (or extends) the exponential backoff window and returns its
    /// length: `BASE * 2^(failures-1)`, capped.
    fn arm_backoff(&self) -> Duration {
        let failures = self.dial_failures.fetch_add(1, Ordering::Relaxed) + 1;
        let exp = failures.saturating_sub(1).min(16);
        let window = RECONNECT_BACKOFF_BASE
            .saturating_mul(1u32 << exp)
            .min(RECONNECT_BACKOFF_CAP);
        *self.backoff_until.lock() = Some(Instant::now() + window);
        window
    }

    /// Clears backoff state (successful dial or harness restore).
    fn clear_backoff(&self) {
        self.dial_failures.store(0, Ordering::Relaxed);
        *self.backoff_until.lock() = None;
    }

    /// Whether a backoff window is currently open.
    fn in_backoff(&self) -> bool {
        self.backoff_until
            .lock()
            .is_some_and(|until| Instant::now() < until)
    }
}

#[derive(Default)]
struct Counters {
    sessions_opened: AtomicU64,
    sessions_closed: AtomicU64,
    stale_epoch_dropped: AtomicU64,
    dead_target_dropped: AtomicU64,
    overflow_dropped: AtomicU64,
    dial_failures: AtomicU64,
    backoff_events: AtomicU64,
    backoff_rejected: AtomicU64,
}

/// An event owned by the timer thread.
enum TimedEvent {
    /// A `DELAYMESSAGE` delivery addressed to a specific session epoch.
    Delivery {
        conn: usize,
        to_controller: bool,
        epoch: Epoch,
        frame: Frame,
    },
    /// An executor `SLEEP` wakeup.
    Wakeup,
    /// A scheduled fault-harness action.
    Fault(FaultAction),
}

struct TimerEntry {
    due: Instant,
    /// Executor emission sequence for deliveries ([`u64::MAX`] for
    /// wakeups and faults, which fire after same-instant deliveries).
    seq: u64,
    /// Proxy-local tie-break making the ordering total.
    uid: u64,
    event: TimedEvent,
}

impl TimerEntry {
    fn key(&self) -> (Instant, u64, u64) {
        (self.due, self.seq, self.uid)
    }
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

enum TimerCmd {
    Schedule(TimerEntry),
    Stop,
}

struct Shared {
    exec: Mutex<AttackExecutor>,
    /// Live sessions keyed by connection index. Registration and
    /// unregistration are atomic with session start/end; there is never
    /// a sink in this map whose loops are gone.
    sessions: Mutex<HashMap<usize, Session>>,
    routes: Vec<RouteState>,
    start: Instant,
    shutdown: AtomicBool,
    syscmd: Option<SysCmdHandler>,
    timer_tx: Sender<TimerCmd>,
    next_epoch: AtomicU64,
    next_uid: AtomicU64,
    counters: Counters,
    /// Session worker loops and the timer thread, joined at shutdown.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn route(&self, idx: usize) -> &RouteState {
        self.routes
            .get(idx)
            .unwrap_or_else(|| panic!("fault names route {idx}, proxy has {}", self.routes.len()))
    }

    fn schedule(&self, due: Instant, seq: u64, event: TimedEvent) {
        let entry = TimerEntry {
            due,
            seq,
            uid: self.next_uid.fetch_add(1, Ordering::Relaxed),
            event,
        };
        // A failed send means the timer already stopped (shutdown);
        // pending work is deliberately discarded then.
        let _ = self.timer_tx.send(TimerCmd::Schedule(entry));
    }

    /// Delivers `frame` to `conn`'s session iff it is still the session
    /// of `epoch`. `blocking` selects the overflow policy: the message
    /// path blocks for backpressure, the timer path drops on overflow.
    fn deliver(
        &self,
        conn: usize,
        to_controller: bool,
        epoch: Epoch,
        frame: Frame,
        blocking: bool,
    ) {
        let sink = {
            let sessions = self.sessions.lock();
            match sessions.get(&conn) {
                Some(s) if s.epoch == epoch => s.sink(to_controller).clone(),
                Some(_) => {
                    self.counters
                        .stale_epoch_dropped
                        .fetch_add(1, Ordering::Relaxed);
                    return;
                }
                None => {
                    self.counters
                        .dead_target_dropped
                        .fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        };
        if blocking {
            if sink.send(frame).is_err() {
                // The session died between lookup and send.
                self.counters
                    .stale_epoch_dropped
                    .fetch_add(1, Ordering::Relaxed);
            }
        } else {
            match sink.try_send(frame) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    self.counters
                        .overflow_dropped
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.counters
                        .stale_epoch_dropped
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Applies one executor output. `origin` names the session whose
    /// message triggered it (None for wakeups); `blocking` is the
    /// immediate-delivery overflow policy of the calling context.
    fn dispatch(self: &Arc<Self>, out: ExecOutput, origin: Option<(usize, Epoch)>, blocking: bool) {
        for d in out.deliveries {
            // A delivery back onto the originating connection is pinned
            // to the originating epoch: if that session died, the bytes
            // die with it. Cross-connection deliveries (INJECTNEWMESSAGE,
            // MODIFYMESSAGEMETADATA redirects) address whatever session
            // is live on the target now.
            let epoch = match origin {
                Some((conn, epoch)) if conn == d.conn.0 => Some(epoch),
                _ => self.sessions.lock().get(&d.conn.0).map(|s| s.epoch),
            };
            let Some(epoch) = epoch else {
                self.counters
                    .dead_target_dropped
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            };
            if d.extra_delay_ns == 0 {
                self.deliver(d.conn.0, d.to_controller, epoch, d.frame, blocking);
            } else {
                self.schedule(
                    Instant::now() + Duration::from_nanos(d.extra_delay_ns),
                    d.seq,
                    TimedEvent::Delivery {
                        conn: d.conn.0,
                        to_controller: d.to_controller,
                        epoch,
                        frame: d.frame,
                    },
                );
            }
        }
        for (host, cmd) in out.commands {
            if let Some(handler) = &self.syscmd {
                handler(&host, &cmd);
            }
        }
        if let Some(wake_ns) = out.wakeup_ns {
            let now_ns = self.now_ns();
            let due = Instant::now() + Duration::from_nanos(wake_ns.saturating_sub(now_ns));
            self.schedule(due, u64::MAX, TimedEvent::Wakeup);
        }
    }

    fn on_message(
        self: &Arc<Self>,
        conn: ConnectionId,
        epoch: Epoch,
        to_controller: bool,
        frame: Frame,
    ) {
        let out = {
            let mut exec = self.exec.lock();
            exec.on_message(InjectorInput {
                conn,
                to_controller,
                frame,
                now_ns: self.now_ns(),
            })
        };
        self.dispatch(out, Some((conn.0, epoch)), true);
    }

    fn fire(self: &Arc<Self>, event: TimedEvent) {
        match event {
            TimedEvent::Delivery {
                conn,
                to_controller,
                epoch,
                frame,
            } => self.deliver(conn, to_controller, epoch, frame, false),
            TimedEvent::Wakeup => {
                let out = {
                    let mut exec = self.exec.lock();
                    exec.on_wakeup(self.now_ns())
                };
                self.dispatch(out, None, false);
            }
            TimedEvent::Fault(action) => self.apply_fault(action),
        }
    }

    fn apply_fault(&self, action: FaultAction) {
        match action {
            FaultAction::Sever { route } => self.sever_route(route),
            FaultAction::HoldDown { route } => {
                self.route(route).held.store(true, Ordering::SeqCst);
                self.sever_route(route);
            }
            FaultAction::Restore { route } => {
                let r = self.route(route);
                r.held.store(false, Ordering::SeqCst);
                // A restored route starts clean: the next reconnect
                // attempt dials immediately, whatever churn the
                // hold-down absorbed.
                r.clear_backoff();
            }
        }
    }

    fn sever_route(&self, route: usize) {
        let conn = self.route(route).conn;
        let old = self.sessions.lock().remove(&conn);
        if let Some(s) = old {
            s.sever();
            self.counters
                .sessions_closed
                .fetch_add(1, Ordering::Relaxed);
            // The connection is gone: drop the executor's per-connection
            // state (timing rings, held messages) so the successor epoch
            // starts from scratch. Taken after the sessions lock is
            // released — exec-then-sessions is the lock order elsewhere.
            self.exec.lock().release_connection(ConnectionId(conn));
        }
    }

    /// Ends `conn`'s session iff it is still the one of `epoch`
    /// (idempotent across the session's four loops; a successor session
    /// is never touched).
    fn end_session(&self, conn: usize, epoch: Epoch) {
        let old = {
            let mut sessions = self.sessions.lock();
            match sessions.get(&conn) {
                Some(s) if s.epoch == epoch => sessions.remove(&conn),
                _ => None,
            }
        };
        if let Some(s) = old {
            s.sever();
            self.counters
                .sessions_closed
                .fetch_add(1, Ordering::Relaxed);
            // As in `sever_route`: a reconnect must never inherit stale
            // timing samples from the ended epoch.
            self.exec.lock().release_connection(ConnectionId(conn));
        }
    }

    fn close_all_sessions(&self) {
        let drained: Vec<Session> = {
            let mut sessions = self.sessions.lock();
            sessions.drain().map(|(_, s)| s).collect()
        };
        for s in &drained {
            s.sever();
            self.counters
                .sessions_closed
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    fn spawn_worker(self: &Arc<Self>, name: &str, f: impl FnOnce() + Send + 'static) {
        let handle = thread::Builder::new()
            .name(format!("attain-proxy-{name}"))
            .spawn(f)
            .expect("spawn proxy worker thread");
        self.workers.lock().push(handle);
    }

    fn stats(&self) -> ProxyStats {
        ProxyStats {
            sessions_opened: self.counters.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: self.counters.sessions_closed.load(Ordering::Relaxed),
            stale_epoch_dropped: self.counters.stale_epoch_dropped.load(Ordering::Relaxed),
            dead_target_dropped: self.counters.dead_target_dropped.load(Ordering::Relaxed),
            overflow_dropped: self.counters.overflow_dropped.load(Ordering::Relaxed),
            dial_failures: self.counters.dial_failures.load(Ordering::Relaxed),
            backoff_events: self.counters.backoff_events.load(Ordering::Relaxed),
            backoff_rejected: self.counters.backoff_rejected.load(Ordering::Relaxed),
            live_sessions: self.sessions.lock().len(),
        }
    }

    /// Arms `route`'s backoff window and counts the event.
    fn note_backoff(&self, route_idx: usize) {
        self.route(route_idx).arm_backoff();
        self.counters.backoff_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Sleeps out `route`'s backoff window in small slices, waking early
    /// on shutdown or when the window is cleared (harness restore).
    fn wait_backoff(&self, route_idx: usize) {
        const SLICE: Duration = Duration::from_millis(10);
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let until = *self.route(route_idx).backoff_until.lock();
            match until {
                Some(t) => {
                    let now = Instant::now();
                    if now >= t {
                        return;
                    }
                    thread::sleep((t - now).min(SLICE));
                }
                None => return,
            }
        }
    }
}

/// The running proxy. Dropping it does not stop the worker threads;
/// call [`TcpProxy::shutdown`] for a clean stop that severs every
/// socket, unblocks parked I/O, and joins every worker thread.
pub struct TcpProxy {
    shared: Arc<Shared>,
    /// The actually bound listen addresses, in route order (useful when
    /// routes asked for port 0).
    pub listen_addrs: Vec<SocketAddr>,
    /// Acceptor threads, one per route; joined first at shutdown so no
    /// new sessions can appear while the rest is torn down.
    acceptors: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for TcpProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpProxy")
            .field("listen_addrs", &self.listen_addrs)
            .finish()
    }
}

impl TcpProxy {
    /// Binds every route's listener and starts the proxy threads.
    ///
    /// # Errors
    ///
    /// Fails if a listener cannot bind.
    pub fn spawn(
        exec: AttackExecutor,
        routes: Vec<ProxyRoute>,
        syscmd: Option<SysCmdHandler>,
    ) -> std::io::Result<TcpProxy> {
        let mut listeners = Vec::with_capacity(routes.len());
        let mut listen_addrs = Vec::with_capacity(routes.len());
        let mut route_states = Vec::with_capacity(routes.len());
        for route in &routes {
            let listener = TcpListener::bind(route.listen)?;
            let addr = listener.local_addr()?;
            listen_addrs.push(addr);
            route_states.push(RouteState {
                conn: route.conn.0,
                controller: route.controller,
                listen: addr,
                held: AtomicBool::new(false),
                dial_failures: AtomicU32::new(0),
                backoff_until: Mutex::new(None),
            });
            listeners.push(listener);
        }
        let (timer_tx, timer_rx) = unbounded();
        let shared = Arc::new(Shared {
            exec: Mutex::new(exec),
            sessions: Mutex::new(HashMap::new()),
            routes: route_states,
            start: Instant::now(),
            shutdown: AtomicBool::new(false),
            syscmd,
            timer_tx,
            next_epoch: AtomicU64::new(1),
            next_uid: AtomicU64::new(0),
            counters: Counters::default(),
            workers: Mutex::new(Vec::new()),
        });
        {
            let shared = Arc::clone(&shared);
            let timer_shared = Arc::clone(&shared);
            shared.spawn_worker("timer", move || timer_loop(timer_shared, timer_rx));
        }
        let mut acceptors = Vec::with_capacity(listeners.len());
        for (route_idx, listener) in listeners.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let handle = thread::Builder::new()
                .name(format!("attain-proxy-accept-{route_idx}"))
                .spawn(move || accept_loop(shared, listener, route_idx))
                .expect("spawn proxy acceptor thread");
            acceptors.push(handle);
        }
        Ok(TcpProxy {
            shared,
            listen_addrs,
            acceptors: Mutex::new(acceptors),
        })
    }

    /// Stops the proxy and joins every worker thread: severs all
    /// sessions (unblocking loops parked in `read`/`write`), wakes the
    /// acceptors, stops the timer, and joins until no worker remains.
    /// Idempotent; later calls join any stragglers and return the final
    /// counters.
    pub fn shutdown(&self) -> ShutdownReport {
        let first = !self.shared.shutdown.swap(true, Ordering::SeqCst);
        if first {
            // Wake each acceptor parked in `accept()`: the flag is
            // checked right after the dummy connection is accepted.
            for route in &self.shared.routes {
                let _ = TcpStream::connect(route.listen);
            }
        }
        let mut joined = 0;
        for handle in self.acceptors.lock().drain(..) {
            let _ = handle.join();
            joined += 1;
        }
        // Past this point no acceptor is alive, so no new session (or
        // worker thread) can be created.
        if first {
            self.shared.close_all_sessions();
            let _ = self.shared.timer_tx.send(TimerCmd::Stop);
        }
        loop {
            let handles: Vec<JoinHandle<()>> = self.shared.workers.lock().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
                joined += 1;
            }
        }
        ShutdownReport {
            threads_joined: joined,
            stats: self.shared.stats(),
        }
    }

    /// Applies a connection-interruption fault right now.
    ///
    /// # Panics
    ///
    /// Panics if the action names a route index the proxy does not have
    /// — harness misuse.
    pub fn apply_fault(&self, action: FaultAction) {
        self.shared.apply_fault(action);
    }

    /// Schedules a fault `after` the current instant on the proxy's
    /// timer thread (the §VII experiment timelines: sever at `t=X`,
    /// restore at `t=Y`). Route indices are validated when the fault
    /// fires.
    pub fn schedule_fault(&self, after: Duration, action: FaultAction) {
        self.shared
            .schedule(Instant::now() + after, u64::MAX, TimedEvent::Fault(action));
    }

    /// Current lifecycle counters.
    pub fn stats(&self) -> ProxyStats {
        self.shared.stats()
    }

    /// Per-route health as the reconnect supervisor sees it, in route
    /// order.
    pub fn route_health(&self) -> Vec<RouteHealthSnapshot> {
        let sessions = self.shared.sessions.lock();
        self.shared
            .routes
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let health = if r.held.load(Ordering::SeqCst) {
                    RouteHealth::HeldDown
                } else if r.in_backoff() {
                    RouteHealth::Backoff
                } else if sessions.contains_key(&r.conn) {
                    RouteHealth::Up
                } else {
                    RouteHealth::Idle
                };
                RouteHealthSnapshot {
                    route: i,
                    health,
                    consecutive_failures: r.dial_failures.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Locks and inspects the executor (e.g. for its injection log).
    pub fn with_executor<T>(&self, f: impl FnOnce(&AttackExecutor) -> T) -> T {
        f(&self.shared.exec.lock())
    }
}

fn timer_loop(shared: Arc<Shared>, rx: Receiver<TimerCmd>) {
    let mut heap: BinaryHeap<Reverse<TimerEntry>> = BinaryHeap::new();
    loop {
        let cmd = if let Some(Reverse(next)) = heap.peek() {
            let now = Instant::now();
            if next.due <= now {
                None
            } else {
                match rx.recv_timeout(next.due - now) {
                    Ok(cmd) => Some(cmd),
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                }
            }
        } else {
            match rx.recv() {
                Ok(cmd) => Some(cmd),
                Err(_) => return,
            }
        };
        match cmd {
            Some(TimerCmd::Stop) => return,
            Some(TimerCmd::Schedule(entry)) => {
                heap.push(Reverse(entry));
                continue;
            }
            None => {}
        }
        // Fire everything due, in (deadline, seq) order.
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse(e)| e.due <= now) {
            let Reverse(entry) = heap.pop().expect("peeked entry");
            shared.fire(entry.event);
        }
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener, route_idx: usize) {
    loop {
        let Ok((switch_sock, _)) = listener.accept() else {
            return;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let route = &shared.routes[route_idx];
        if route.held.load(Ordering::SeqCst) {
            // Hold-down window: the interruption is sustained, so the
            // switch's reconnect attempt is accepted and dropped — but
            // under the same exponential backoff as dial failures, so a
            // hammering switch cannot spin this acceptor.
            drop(switch_sock);
            shared.note_backoff(route_idx);
            shared.wait_backoff(route_idx);
            continue;
        }
        if route.in_backoff() {
            // Still inside a window armed by an earlier failure: absorb
            // the attempt without dialing a controller we just found
            // unreachable.
            drop(switch_sock);
            shared
                .counters
                .backoff_rejected
                .fetch_add(1, Ordering::Relaxed);
            shared.wait_backoff(route_idx);
            continue;
        }
        let Ok(controller_sock) = TcpStream::connect(route.controller) else {
            // Controller unreachable: drop the switch connection (it
            // will retry, as a real switch does) and back off before
            // dialing again.
            shared
                .counters
                .dial_failures
                .fetch_add(1, Ordering::Relaxed);
            shared.note_backoff(route_idx);
            continue;
        };
        route.clear_backoff();
        start_session(&shared, route.conn, switch_sock, controller_sock);
    }
}

fn start_session(
    shared: &Arc<Shared>,
    conn: usize,
    switch_sock: TcpStream,
    controller_sock: TcpStream,
) {
    // Clones for the write loops and for severing; a failed clone means
    // the socket already died, so the switch simply retries.
    let (Ok(sw_keep), Ok(ctrl_keep), Ok(sw_write), Ok(ctrl_write)) = (
        switch_sock.try_clone(),
        controller_sock.try_clone(),
        switch_sock.try_clone(),
        controller_sock.try_clone(),
    ) else {
        return;
    };
    let epoch = shared.next_epoch.fetch_add(1, Ordering::SeqCst);
    let (ctrl_tx, ctrl_rx) = bounded::<Frame>(WRITE_QUEUE_CAP);
    let (sw_tx, sw_rx) = bounded::<Frame>(WRITE_QUEUE_CAP);
    let session = Session {
        epoch,
        ctrl_tx,
        sw_tx,
        switch_sock: sw_keep,
        controller_sock: ctrl_keep,
    };
    {
        let mut sessions = shared.sessions.lock();
        if let Some(old) = sessions.insert(conn, session) {
            // The switch reconnected before the old session's loops
            // noticed the disconnect: replace it atomically so no stale
            // sink survives and the old epoch's deliveries die.
            old.sever();
            shared
                .counters
                .sessions_closed
                .fetch_add(1, Ordering::Relaxed);
        }
    }
    shared
        .counters
        .sessions_opened
        .fetch_add(1, Ordering::Relaxed);
    {
        let shared = Arc::clone(shared);
        shared.clone().spawn_worker("write-ctrl", move || {
            write_loop(shared, ctrl_write, ctrl_rx, conn, epoch)
        });
    }
    {
        let shared = Arc::clone(shared);
        shared.clone().spawn_worker("write-switch", move || {
            write_loop(shared, sw_write, sw_rx, conn, epoch)
        });
    }
    {
        let shared = Arc::clone(shared);
        shared.clone().spawn_worker("read-switch", move || {
            read_loop(shared, switch_sock, ConnectionId(conn), epoch, true)
        });
    }
    {
        let shared = Arc::clone(shared);
        shared.clone().spawn_worker("read-ctrl", move || {
            read_loop(shared, controller_sock, ConnectionId(conn), epoch, false)
        });
    }
    // A shutdown that raced session creation must not leave the new
    // session running unsupervised.
    if shared.shutdown.load(Ordering::SeqCst) {
        shared.end_session(conn, epoch);
    }
}

fn write_loop(
    shared: Arc<Shared>,
    mut sock: TcpStream,
    rx: Receiver<Frame>,
    conn: usize,
    epoch: Epoch,
) {
    while let Ok(frame) = rx.recv() {
        if sock.write_all(frame.bytes()).is_err() {
            // Socket is gone: tear the session down so the peer loops
            // unblock and the sinks unregister.
            shared.end_session(conn, epoch);
            return;
        }
    }
    // Channel disconnected: the session was already unregistered.
}

fn read_loop(
    shared: Arc<Shared>,
    mut sock: TcpStream,
    conn: ConnectionId,
    epoch: Epoch,
    to_controller: bool,
) {
    let mut buf = Vec::with_capacity(8192);
    let mut chunk = [0u8; 4096];
    'outer: loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let n = match sock.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        buf.extend_from_slice(&chunk[..n]);
        // Frame from a moving offset and compact once per read: a
        // pipelined batch costs one memmove, not one per frame.
        let mut start = 0;
        loop {
            match OfMessage::frame_len(&buf[start..]) {
                Ok(Some(len)) => {
                    let frame = Frame::new(buf[start..start + len].to_vec());
                    shared.on_message(conn, epoch, to_controller, frame);
                    start += len;
                }
                Ok(None) => break,
                Err(_) => {
                    // Unframeable garbage (bad version byte): reset the
                    // connection, as a real proxy would.
                    break 'outer;
                }
            }
        }
        if start > 0 {
            buf.copy_within(start.., 0);
            buf.truncate(buf.len() - start);
        }
    }
    shared.end_session(conn.0, epoch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use attain_core::{dsl, scenario};
    use attain_openflow::{FlowMod, Match, OfMessage};
    use std::sync::mpsc;

    fn executor(source: &str) -> AttackExecutor {
        let sc = scenario::enterprise_network();
        let compiled = dsl::compile(source, &sc.system, &sc.attack_model).unwrap();
        AttackExecutor::new(sc.system, sc.attack_model, compiled.attack).unwrap()
    }

    /// A minimal fake controller: accepts one connection, records every
    /// decoded message, answers HELLO with HELLO.
    fn fake_controller() -> (SocketAddr, mpsc::Receiver<OfMessage>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = mpsc::channel();
        thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut buf = Vec::new();
            let mut chunk = [0u8; 1024];
            loop {
                let n = match sock.read(&mut chunk) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => n,
                };
                buf.extend_from_slice(&chunk[..n]);
                while let Ok(Some(len)) = OfMessage::frame_len(&buf) {
                    let frame: Vec<u8> = buf.drain(..len).collect();
                    let (msg, xid) = OfMessage::decode(&frame).unwrap();
                    if msg == OfMessage::Hello {
                        let _ = sock.write_all(&OfMessage::Hello.encode(xid));
                    }
                    if tx.send(msg).is_err() {
                        return;
                    }
                }
            }
        });
        (addr, rx)
    }

    fn read_one(sock: &mut TcpStream) -> OfMessage {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            if let Ok(Some(len)) = OfMessage::frame_len(&buf) {
                let frame: Vec<u8> = buf.drain(..len).collect();
                return OfMessage::decode(&frame).unwrap().0;
            }
            let n = sock.read(&mut chunk).unwrap();
            assert!(n > 0, "connection closed early");
            buf.extend_from_slice(&chunk[..n]);
        }
    }

    #[test]
    fn proxy_forwards_and_suppresses_on_real_sockets() {
        let (ctrl_addr, ctrl_rx) = fake_controller();
        let proxy = TcpProxy::spawn(
            executor(scenario::attacks::FLOW_MOD_SUPPRESSION),
            vec![ProxyRoute {
                listen: "127.0.0.1:0".parse().unwrap(),
                controller: ctrl_addr,
                conn: ConnectionId(0),
            }],
            None,
        )
        .unwrap();

        // The "switch" connects through the proxy and says HELLO.
        let mut switch = TcpStream::connect(proxy.listen_addrs[0]).unwrap();
        switch.write_all(&OfMessage::Hello.encode(1)).unwrap();

        // The controller sees the HELLO…
        let got = ctrl_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, OfMessage::Hello);
        // …and its HELLO reply reaches the switch through the proxy.
        assert_eq!(read_one(&mut switch), OfMessage::Hello);

        // A controller→switch FLOW_MOD is suppressed. The fake controller
        // cannot originate one, so send one *from the switch side of the
        // controller socket*: instead, verify via the executor log after
        // pushing a FLOW_MOD from the controller direction is not
        // possible here — so check the switch→controller direction stays
        // clean and the rule never fired on it.
        let fm = OfMessage::FlowMod(FlowMod::add(Match::all(), vec![])).encode(7);
        switch.write_all(&fm).unwrap();
        // FLOW_MOD *from the switch* does not match φ1 (source must be
        // c1), so the controller receives it.
        let got = ctrl_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(got, OfMessage::FlowMod(_)));
        proxy.with_executor(|e| assert_eq!(e.log().rule_fires("phi1"), 0));
        proxy.shutdown();
    }

    #[test]
    fn proxy_drops_controller_flow_mods() {
        // A fake controller that immediately pushes a FLOW_MOD after the
        // handshake, then an ECHO_REQUEST.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let ctrl_addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let fm = OfMessage::FlowMod(FlowMod::add(Match::all(), vec![])).encode(2);
            sock.write_all(&fm).unwrap();
            sock.write_all(&OfMessage::EchoRequest(vec![9]).encode(3))
                .unwrap();
            // Hold the socket open long enough for the test to read.
            thread::sleep(Duration::from_secs(5));
        });

        let proxy = TcpProxy::spawn(
            executor(scenario::attacks::FLOW_MOD_SUPPRESSION),
            vec![ProxyRoute {
                listen: "127.0.0.1:0".parse().unwrap(),
                controller: ctrl_addr,
                conn: ConnectionId(0),
            }],
            None,
        )
        .unwrap();

        let mut switch = TcpStream::connect(proxy.listen_addrs[0]).unwrap();
        switch.write_all(&OfMessage::Hello.encode(1)).unwrap();

        // The FLOW_MOD is suppressed; the echo request survives and is
        // the first thing the switch sees.
        let got = read_one(&mut switch);
        assert_eq!(got, OfMessage::EchoRequest(vec![9]));
        proxy.with_executor(|e| assert_eq!(e.log().rule_fires("phi1"), 1));
        proxy.shutdown();
    }

    #[test]
    fn trivial_pass_proxy_is_transparent_both_ways() {
        let (ctrl_addr, ctrl_rx) = fake_controller();
        let proxy = TcpProxy::spawn(
            executor(scenario::attacks::TRIVIAL_PASS),
            vec![ProxyRoute {
                listen: "127.0.0.1:0".parse().unwrap(),
                controller: ctrl_addr,
                conn: ConnectionId(0),
            }],
            None,
        )
        .unwrap();
        let mut switch = TcpStream::connect(proxy.listen_addrs[0]).unwrap();
        // A batch of pipelined messages in one write must all arrive, in
        // order (framing test).
        let mut batch = Vec::new();
        batch.extend(OfMessage::Hello.encode(1));
        batch.extend(OfMessage::EchoRequest(vec![1, 2, 3]).encode(2));
        batch.extend(OfMessage::BarrierRequest.encode(3));
        switch.write_all(&batch).unwrap();
        assert_eq!(
            ctrl_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            OfMessage::Hello
        );
        assert_eq!(
            ctrl_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            OfMessage::EchoRequest(vec![1, 2, 3])
        );
        assert_eq!(
            ctrl_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            OfMessage::BarrierRequest
        );
        assert_eq!(read_one(&mut switch), OfMessage::Hello);
        proxy.shutdown();
    }

    #[test]
    fn timer_entries_order_by_deadline_then_seq() {
        let t0 = Instant::now();
        let t1 = t0 + Duration::from_millis(5);
        let entry = |due, seq, uid| TimerEntry {
            due,
            seq,
            uid,
            event: TimedEvent::Wakeup,
        };
        let mut heap = BinaryHeap::new();
        heap.push(Reverse(entry(t1, 2, 0)));
        heap.push(Reverse(entry(t0, 9, 1)));
        heap.push(Reverse(entry(t1, 1, 2)));
        let popped: Vec<(Instant, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|Reverse(e)| (e.due, e.seq))
            .collect();
        // Earliest deadline first; equal deadlines in executor order.
        assert_eq!(popped, vec![(t0, 9), (t1, 1), (t1, 2)]);
    }
}
