//! OpenFlow 1.0 wire codec and L2–L4 data-plane packet codec.
//!
//! This crate is the protocol substrate of the ATTAIN attack-injection
//! framework. It provides:
//!
//! * a byte-for-byte [OpenFlow 1.0.0] message codec — every message type in
//!   the specification, the 12-tuple [`Match`] structure with its wildcard
//!   semantics (including the CIDR-style `nw_src`/`nw_dst` prefix
//!   wildcards), and the OpenFlow 1.0 action list ([`Action`]);
//! * a data-plane packet codec ([`packet`]) for Ethernet (with 802.1Q),
//!   ARP, IPv4, ICMP, TCP, and UDP — the frames that ride inside
//!   `PACKET_IN`/`PACKET_OUT` payloads and that the simulated switches and
//!   hosts exchange.
//!
//! The paper's injector used the Loxi library for this role; here the codec
//! is hand-rolled so that the injector can fuzz, rewrite, and re-serialize
//! control messages without any external dependency.
//!
//! [OpenFlow 1.0.0]: https://opennetworking.org/wp-content/uploads/2013/04/openflow-spec-v1.0.0.pdf
//!
//! # Examples
//!
//! Encode and decode a `FLOW_MOD`:
//!
//! ```
//! use attain_openflow::{Match, FlowMod, FlowModCommand, Action, OfMessage, PortNo};
//!
//! # fn main() -> Result<(), attain_openflow::CodecError> {
//! let fm = FlowMod {
//!     r#match: Match::exact_in_port(PortNo(1)),
//!     cookie: 0xdead_beef,
//!     command: FlowModCommand::Add,
//!     idle_timeout: 5,
//!     hard_timeout: 0,
//!     priority: 100,
//!     buffer_id: None,
//!     out_port: PortNo::NONE,
//!     flags: Default::default(),
//!     actions: vec![Action::Output { port: PortNo(2), max_len: 0 }],
//! };
//! let msg = OfMessage::FlowMod(fm);
//! let bytes = msg.encode(42);
//! let (decoded, xid) = OfMessage::decode(&bytes)?;
//! assert_eq!(xid, 42);
//! assert_eq!(decoded, msg);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actions;
mod error;
pub mod frame;
mod header;
mod r#match;
mod message;
mod messages;
pub mod packet;
mod types;
mod wire;

pub use actions::Action;
pub use error::CodecError;
pub use frame::{frame_decode_count, Frame};
pub use header::{OfHeader, OfType, OFP_HEADER_LEN, OFP_VERSION};
pub use message::OfMessage;
pub use messages::{
    bad_request, flow_mod_failed, AggregateStats, ErrorCode, ErrorMsg, ErrorType, FlowMod,
    FlowModCommand, FlowModFlags, FlowRemoved, FlowRemovedReason, FlowStatsEntry, PacketIn,
    PacketInReason, PacketOut, PhyPort, PortMod, PortStatsEntry, PortStatus, PortStatusReason,
    QueueConfig, QueueStatsEntry, StatsBody, StatsReplyBody, SwitchConfig, SwitchDesc,
    SwitchFeatures, TableStatsEntry,
};
pub use r#match::{
    FlowKey, FlowKeyBits, Match, MatchBits, Wildcards, OFP_MATCH_LEN, OFP_VLAN_NONE,
};
pub use types::{BufferId, DatapathId, MacAddr, PortNo, Xid};
pub use wire::{Reader, Writer};
