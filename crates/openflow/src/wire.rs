//! Big-endian cursor primitives shared by the OpenFlow and packet codecs.

use crate::error::CodecError;
use bytes::{BufMut, BytesMut};

/// A bounds-checked big-endian reader over a byte slice.
///
/// All OpenFlow 1.0 and network-header fields are big-endian; the reader
/// returns [`CodecError::Truncated`] instead of panicking when data runs
/// short, which lets the injector treat arbitrarily fuzzed bytes safely.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`; `context` names the structure being
    /// decoded for error messages.
    pub fn new(buf: &'a [u8], context: &'static str) -> Self {
        Reader {
            buf,
            pos: 0,
            context,
        }
    }

    /// Bytes remaining to be read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                context: self.context,
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    /// Reads a fixed-size byte array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let b = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(b);
        Ok(a)
    }

    /// Reads `n` bytes as a slice borrowed from the input.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads all remaining bytes.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Skips `n` padding bytes.
    pub fn skip(&mut self, n: usize) -> Result<(), CodecError> {
        self.take(n).map(|_| ())
    }

    /// Fails with [`CodecError::TrailingBytes`] unless fully consumed.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::TrailingBytes {
                context: self.context,
                remaining: self.remaining(),
            });
        }
        Ok(())
    }

    /// Returns a sub-reader over the next `n` bytes (consuming them here).
    pub fn sub(&mut self, n: usize, context: &'static str) -> Result<Reader<'a>, CodecError> {
        Ok(Reader::new(self.take(n)?, context))
    }
}

/// A growable big-endian writer.
///
/// Thin wrapper over [`BytesMut`] mirroring [`Reader`]'s field methods so
/// encode and decode implementations read symmetrically.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Writes a big-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Writes a big-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Writes a big-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Writes a byte slice verbatim.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Writes `n` zero bytes of padding.
    pub fn pad(&mut self, n: usize) {
        self.buf.put_bytes(0, n);
    }

    /// Overwrites the big-endian `u16` previously written at `offset`.
    ///
    /// Used to patch length fields after variable-size bodies are written.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 2` exceeds the bytes written so far.
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        let b = v.to_be_bytes();
        self.buf[offset] = b[0];
        self.buf[offset + 1] = b[1];
    }

    /// Consumes the writer and returns the written bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// View of the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = Writer::new();
        w.u8(0xab);
        w.u16(0x1234);
        w.u32(0xdead_beef);
        w.u64(0x0102_0304_0506_0708);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "test");
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0102_0304_0506_0708);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_read_reports_context() {
        let mut r = Reader::new(&[0u8; 3], "hdr");
        let err = r.u32().unwrap_err();
        match err {
            CodecError::Truncated {
                context,
                needed,
                available,
            } => {
                assert_eq!(context, "hdr");
                assert_eq!(needed, 4);
                assert_eq!(available, 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn sub_reader_consumes_parent() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r = Reader::new(&data, "outer");
        let mut s = r.sub(3, "inner").unwrap();
        assert_eq!(s.u8().unwrap(), 1);
        assert_eq!(s.remaining(), 2);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.u16().unwrap(), 0x0405);
    }

    #[test]
    fn patch_u16_rewrites_length() {
        let mut w = Writer::new();
        w.u16(0);
        w.bytes(&[9, 9, 9]);
        w.patch_u16(0, 5);
        assert_eq!(w.into_vec(), vec![0, 5, 9, 9, 9]);
    }

    #[test]
    fn expect_end_rejects_trailing() {
        let r = Reader::new(&[0u8; 2], "t");
        assert!(matches!(
            r.expect_end(),
            Err(CodecError::TrailingBytes { remaining: 2, .. })
        ));
    }

    #[test]
    fn rest_consumes_everything() {
        let data = [7u8, 8, 9];
        let mut r = Reader::new(&data, "t");
        r.u8().unwrap();
        assert_eq!(r.rest(), &[8, 9]);
        assert_eq!(r.remaining(), 0);
    }
}
