//! The common OpenFlow message header.

use crate::error::CodecError;
use crate::types::Xid;
use crate::wire::{Reader, Writer};
use std::fmt;

/// OpenFlow protocol version implemented by this crate (1.0.0).
pub const OFP_VERSION: u8 = 0x01;

/// Length in bytes of the fixed `ofp_header`.
pub const OFP_HEADER_LEN: usize = 8;

/// OpenFlow 1.0 message type discriminants (`ofp_type`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum OfType {
    Hello = 0,
    Error = 1,
    EchoRequest = 2,
    EchoReply = 3,
    Vendor = 4,
    FeaturesRequest = 5,
    FeaturesReply = 6,
    GetConfigRequest = 7,
    GetConfigReply = 8,
    SetConfig = 9,
    PacketIn = 10,
    FlowRemoved = 11,
    PortStatus = 12,
    PacketOut = 13,
    FlowMod = 14,
    PortMod = 15,
    StatsRequest = 16,
    StatsReply = 17,
    BarrierRequest = 18,
    BarrierReply = 19,
    QueueGetConfigRequest = 20,
    QueueGetConfigReply = 21,
}

impl OfType {
    /// All message types, in wire order.
    pub const ALL: [OfType; 22] = [
        OfType::Hello,
        OfType::Error,
        OfType::EchoRequest,
        OfType::EchoReply,
        OfType::Vendor,
        OfType::FeaturesRequest,
        OfType::FeaturesReply,
        OfType::GetConfigRequest,
        OfType::GetConfigReply,
        OfType::SetConfig,
        OfType::PacketIn,
        OfType::FlowRemoved,
        OfType::PortStatus,
        OfType::PacketOut,
        OfType::FlowMod,
        OfType::PortMod,
        OfType::StatsRequest,
        OfType::StatsReply,
        OfType::BarrierRequest,
        OfType::BarrierReply,
        OfType::QueueGetConfigRequest,
        OfType::QueueGetConfigReply,
    ];

    /// Decodes a wire discriminant.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadValue`] for values above 21.
    pub fn from_wire(v: u8) -> Result<OfType, CodecError> {
        OfType::ALL
            .get(v as usize)
            .copied()
            .ok_or(CodecError::BadValue {
                field: "ofp_header.type",
                value: v as u64,
            })
    }

    /// The canonical spec name, e.g. `FLOW_MOD`.
    pub fn spec_name(&self) -> &'static str {
        match self {
            OfType::Hello => "HELLO",
            OfType::Error => "ERROR",
            OfType::EchoRequest => "ECHO_REQUEST",
            OfType::EchoReply => "ECHO_REPLY",
            OfType::Vendor => "VENDOR",
            OfType::FeaturesRequest => "FEATURES_REQUEST",
            OfType::FeaturesReply => "FEATURES_REPLY",
            OfType::GetConfigRequest => "GET_CONFIG_REQUEST",
            OfType::GetConfigReply => "GET_CONFIG_REPLY",
            OfType::SetConfig => "SET_CONFIG",
            OfType::PacketIn => "PACKET_IN",
            OfType::FlowRemoved => "FLOW_REMOVED",
            OfType::PortStatus => "PORT_STATUS",
            OfType::PacketOut => "PACKET_OUT",
            OfType::FlowMod => "FLOW_MOD",
            OfType::PortMod => "PORT_MOD",
            OfType::StatsRequest => "STATS_REQUEST",
            OfType::StatsReply => "STATS_REPLY",
            OfType::BarrierRequest => "BARRIER_REQUEST",
            OfType::BarrierReply => "BARRIER_REPLY",
            OfType::QueueGetConfigRequest => "QUEUE_GET_CONFIG_REQUEST",
            OfType::QueueGetConfigReply => "QUEUE_GET_CONFIG_REPLY",
        }
    }

    /// Parses a spec name (as used in attack descriptions, e.g. `FLOW_MOD`).
    pub fn from_spec_name(name: &str) -> Option<OfType> {
        OfType::ALL.into_iter().find(|t| t.spec_name() == name)
    }
}

impl fmt::Display for OfType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec_name())
    }
}

/// The fixed 8-byte `ofp_header` that prefixes every OpenFlow message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OfHeader {
    /// Protocol version; always [`OFP_VERSION`] for valid messages.
    pub version: u8,
    /// Message type.
    pub of_type: OfType,
    /// Total message length including this header.
    pub length: u16,
    /// Transaction id correlating requests with replies.
    pub xid: Xid,
}

impl OfHeader {
    /// Decodes a header from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Fails on truncation, an unknown version byte, an unknown type, or a
    /// length field smaller than the header itself.
    pub fn decode(buf: &[u8]) -> Result<OfHeader, CodecError> {
        let mut r = Reader::new(buf, "ofp_header");
        let version = r.u8()?;
        if version != OFP_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let of_type = OfType::from_wire(r.u8()?)?;
        let length = r.u16()?;
        let xid = r.u32()?;
        if (length as usize) < OFP_HEADER_LEN {
            return Err(CodecError::BadLength {
                context: "ofp_header.length",
                found: length as usize,
            });
        }
        Ok(OfHeader {
            version,
            of_type,
            length,
            xid,
        })
    }

    /// Encodes the header into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u8(self.version);
        w.u8(self.of_type as u8);
        w.u16(self.length);
        w.u32(self.xid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = OfHeader {
            version: OFP_VERSION,
            of_type: OfType::FlowMod,
            length: 80,
            xid: 99,
        };
        let mut w = Writer::new();
        h.encode(&mut w);
        let v = w.into_vec();
        assert_eq!(v.len(), OFP_HEADER_LEN);
        assert_eq!(OfHeader::decode(&v).unwrap(), h);
    }

    #[test]
    fn rejects_wrong_version() {
        let bytes = [0x04, 0, 0, 8, 0, 0, 0, 0];
        assert_eq!(
            OfHeader::decode(&bytes).unwrap_err(),
            CodecError::BadVersion(4)
        );
    }

    #[test]
    fn rejects_unknown_type() {
        let bytes = [0x01, 99, 0, 8, 0, 0, 0, 0];
        assert!(matches!(
            OfHeader::decode(&bytes).unwrap_err(),
            CodecError::BadValue {
                field: "ofp_header.type",
                value: 99
            }
        ));
    }

    #[test]
    fn rejects_undersized_length() {
        let bytes = [0x01, 0, 0, 4, 0, 0, 0, 0];
        assert!(matches!(
            OfHeader::decode(&bytes).unwrap_err(),
            CodecError::BadLength { .. }
        ));
    }

    #[test]
    fn spec_names_roundtrip() {
        for t in OfType::ALL {
            assert_eq!(OfType::from_spec_name(t.spec_name()), Some(t));
            assert_eq!(OfType::from_wire(t as u8).unwrap(), t);
        }
        assert_eq!(OfType::from_spec_name("NOT_A_TYPE"), None);
    }

    #[test]
    fn all_table_is_in_wire_order() {
        for (i, t) in OfType::ALL.iter().enumerate() {
            assert_eq!(*t as u8 as usize, i);
        }
    }
}
