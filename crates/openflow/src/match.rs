//! The OpenFlow 1.0 12-tuple flow match (`ofp_match`) and its wildcards.

use crate::error::CodecError;
use crate::types::{MacAddr, PortNo};
use crate::wire::{Reader, Writer};
use std::fmt;
use std::net::Ipv4Addr;

/// Wire size of `ofp_match`.
pub const OFP_MATCH_LEN: usize = 40;

/// The OpenFlow 1.0 wildcard bitfield.
///
/// Bits 0–7 and 20–21 wildcard individual fields; bits 8–13 and 14–19 hold
/// 6-bit counts of *ignored low-order bits* of `nw_src` / `nw_dst` — the
/// protocol's CIDR-style prefix wildcards (a value ≥ 32 ignores the whole
/// address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Wildcards(pub u32);

impl Wildcards {
    /// Wildcard the ingress port.
    pub const IN_PORT: u32 = 1 << 0;
    /// Wildcard the VLAN id.
    pub const DL_VLAN: u32 = 1 << 1;
    /// Wildcard the Ethernet source address.
    pub const DL_SRC: u32 = 1 << 2;
    /// Wildcard the Ethernet destination address.
    pub const DL_DST: u32 = 1 << 3;
    /// Wildcard the Ethernet frame type.
    pub const DL_TYPE: u32 = 1 << 4;
    /// Wildcard the IP protocol (or ARP opcode).
    pub const NW_PROTO: u32 = 1 << 5;
    /// Wildcard the TCP/UDP source port (or ICMP type).
    pub const TP_SRC: u32 = 1 << 6;
    /// Wildcard the TCP/UDP destination port (or ICMP code).
    pub const TP_DST: u32 = 1 << 7;
    /// Shift of the 6-bit `nw_src` ignored-bits count.
    pub const NW_SRC_SHIFT: u32 = 8;
    /// Shift of the 6-bit `nw_dst` ignored-bits count.
    pub const NW_DST_SHIFT: u32 = 14;
    /// Mask (pre-shift) of the 6-bit address wildcard counts.
    pub const NW_BITS_MASK: u32 = 0x3f;
    /// Wildcard the VLAN priority.
    pub const DL_VLAN_PCP: u32 = 1 << 20;
    /// Wildcard the IP ToS / DSCP bits.
    pub const NW_TOS: u32 = 1 << 21;
    /// Every field wildcarded (the spec's `OFPFW_ALL`).
    pub const ALL: Wildcards = Wildcards(0x003f_ffff);

    /// Wildcards with every bit clear: a fully exact match.
    pub const NONE: Wildcards = Wildcards(0);

    /// Whether the flag bit(s) `bit` are all set.
    pub fn has(&self, bit: u32) -> bool {
        self.0 & bit == bit
    }

    /// Number of ignored low-order bits of `nw_src`, clamped to 32.
    pub fn nw_src_ignored_bits(&self) -> u32 {
        ((self.0 >> Self::NW_SRC_SHIFT) & Self::NW_BITS_MASK).min(32)
    }

    /// Number of ignored low-order bits of `nw_dst`, clamped to 32.
    pub fn nw_dst_ignored_bits(&self) -> u32 {
        ((self.0 >> Self::NW_DST_SHIFT) & Self::NW_BITS_MASK).min(32)
    }

    /// Returns a copy with the `nw_src` ignored-bit count set to `bits`.
    pub fn with_nw_src_ignored_bits(self, bits: u32) -> Wildcards {
        let cleared = self.0 & !(Self::NW_BITS_MASK << Self::NW_SRC_SHIFT);
        Wildcards(cleared | ((bits & Self::NW_BITS_MASK) << Self::NW_SRC_SHIFT))
    }

    /// Returns a copy with the `nw_dst` ignored-bit count set to `bits`.
    pub fn with_nw_dst_ignored_bits(self, bits: u32) -> Wildcards {
        let cleared = self.0 & !(Self::NW_BITS_MASK << Self::NW_DST_SHIFT);
        Wildcards(cleared | ((bits & Self::NW_BITS_MASK) << Self::NW_DST_SHIFT))
    }

    /// Whether `nw_src` is fully wildcarded.
    pub fn nw_src_all(&self) -> bool {
        self.nw_src_ignored_bits() >= 32
    }

    /// Whether `nw_dst` is fully wildcarded.
    pub fn nw_dst_all(&self) -> bool {
        self.nw_dst_ignored_bits() >= 32
    }

    /// Every single-field wildcard flag (everything except the 6-bit
    /// `nw_src`/`nw_dst` prefix counts).
    pub const FIELD_FLAGS: u32 = Self::IN_PORT
        | Self::DL_VLAN
        | Self::DL_SRC
        | Self::DL_DST
        | Self::DL_TYPE
        | Self::NW_PROTO
        | Self::TP_SRC
        | Self::TP_DST
        | Self::DL_VLAN_PCP
        | Self::NW_TOS;

    /// Whether no field is wildcarded at all: every flag clear and both
    /// address prefix counts zero. Exact-match entries outrank every
    /// wildcarded entry regardless of priority (OpenFlow 1.0 §3.4).
    pub fn is_exact(&self) -> bool {
        self.0 & Self::FIELD_FLAGS == 0
            && self.nw_src_ignored_bits() == 0
            && self.nw_dst_ignored_bits() == 0
    }
}

impl Default for Wildcards {
    fn default() -> Self {
        Wildcards::ALL
    }
}

impl fmt::Display for Wildcards {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wildcards:0x{:06x}", self.0)
    }
}

/// The fields of a packet a flow entry is matched against.
///
/// This is the "flow key" a switch extracts from each arriving frame; the
/// packet codec produces one via
/// [`packet::flow_key`](crate::packet::flow_key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FlowKey {
    /// Ingress switch port.
    pub in_port: PortNo,
    /// Ethernet source.
    pub dl_src: MacAddr,
    /// Ethernet destination.
    pub dl_dst: MacAddr,
    /// VLAN id, or `0xffff` for untagged frames (per spec `OFP_VLAN_NONE`).
    pub dl_vlan: u16,
    /// VLAN priority.
    pub dl_vlan_pcp: u8,
    /// Ethernet frame type.
    pub dl_type: u16,
    /// IP ToS (upper 6 bits valid).
    pub nw_tos: u8,
    /// IP protocol or lower 8 bits of ARP opcode.
    pub nw_proto: u8,
    /// IPv4 source (or ARP SPA), as a raw u32; 0 if not IP/ARP.
    pub nw_src: u32,
    /// IPv4 destination (or ARP TPA).
    pub nw_dst: u32,
    /// TCP/UDP source port or ICMP type.
    pub tp_src: u16,
    /// TCP/UDP destination port or ICMP code.
    pub tp_dst: u16,
}

/// `OFP_VLAN_NONE`: the `dl_vlan` value representing an untagged frame.
pub const OFP_VLAN_NONE: u16 = 0xffff;

/// The OpenFlow 1.0 flow match structure.
///
/// Field values are only meaningful where the corresponding wildcard bit is
/// clear. [`Match::matches`] implements the spec's matching semantics
/// against a [`FlowKey`], including the IP prefix wildcards.
///
/// ```
/// use attain_openflow::{Match, PortNo};
///
/// let m = Match::all(); // matches everything
/// let key = Default::default();
/// assert!(m.matches(&key));
///
/// let m = Match::exact_in_port(PortNo(3));
/// assert!(!m.matches(&key));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Match {
    /// Which fields are wildcarded.
    pub wildcards: Wildcards,
    /// Ingress port.
    pub in_port: PortNo,
    /// Ethernet source.
    pub dl_src: MacAddr,
    /// Ethernet destination.
    pub dl_dst: MacAddr,
    /// VLAN id.
    pub dl_vlan: u16,
    /// VLAN priority.
    pub dl_vlan_pcp: u8,
    /// Ethernet frame type.
    pub dl_type: u16,
    /// IP ToS.
    pub nw_tos: u8,
    /// IP protocol / ARP opcode.
    pub nw_proto: u8,
    /// IPv4 source.
    pub nw_src: u32,
    /// IPv4 destination.
    pub nw_dst: u32,
    /// Transport source port.
    pub tp_src: u16,
    /// Transport destination port.
    pub tp_dst: u16,
}

impl Default for Match {
    fn default() -> Self {
        Match::all()
    }
}

impl Match {
    /// The match-everything entry (all fields wildcarded).
    pub fn all() -> Match {
        Match {
            wildcards: Wildcards::ALL,
            in_port: PortNo(0),
            dl_src: MacAddr::ZERO,
            dl_dst: MacAddr::ZERO,
            dl_vlan: 0,
            dl_vlan_pcp: 0,
            dl_type: 0,
            nw_tos: 0,
            nw_proto: 0,
            nw_src: 0,
            nw_dst: 0,
            tp_src: 0,
            tp_dst: 0,
        }
    }

    /// A match constraining only the ingress port.
    pub fn exact_in_port(port: PortNo) -> Match {
        Match {
            wildcards: Wildcards(Wildcards::ALL.0 & !Wildcards::IN_PORT),
            in_port: port,
            ..Match::all()
        }
    }

    /// Builds an exact match (no wildcards) for every field of `key`.
    ///
    /// This is how POX's `ofp_match.from_packet` constructs flow-mod
    /// matches — the behaviour the connection-interruption attack's rule
    /// `φ2` relies upon.
    pub fn from_flow_key(key: &FlowKey) -> Match {
        Match {
            wildcards: Wildcards::NONE,
            in_port: key.in_port,
            dl_src: key.dl_src,
            dl_dst: key.dl_dst,
            dl_vlan: key.dl_vlan,
            dl_vlan_pcp: key.dl_vlan_pcp,
            dl_type: key.dl_type,
            nw_tos: key.nw_tos,
            nw_proto: key.nw_proto,
            nw_src: key.nw_src,
            nw_dst: key.nw_dst,
            tp_src: key.tp_src,
            tp_dst: key.tp_dst,
        }
    }

    /// Whether this match constrains every field (see
    /// [`Wildcards::is_exact`]).
    pub fn is_exact(&self) -> bool {
        self.wildcards.is_exact()
    }

    /// The [`FlowKey`] whose packets this match admits, assuming the match
    /// [is exact](Match::is_exact). For non-exact matches the returned key
    /// is one representative of the admitted set (wildcarded fields carry
    /// whatever value the match struct holds).
    pub fn flow_key(&self) -> FlowKey {
        FlowKey {
            in_port: self.in_port,
            dl_src: self.dl_src,
            dl_dst: self.dl_dst,
            dl_vlan: self.dl_vlan,
            dl_vlan_pcp: self.dl_vlan_pcp,
            dl_type: self.dl_type,
            nw_tos: self.nw_tos,
            nw_proto: self.nw_proto,
            nw_src: self.nw_src,
            nw_dst: self.nw_dst,
            tp_src: self.tp_src,
            tp_dst: self.tp_dst,
        }
    }

    /// Compiles the match into its packed value/mask form for fast
    /// repeated evaluation (see [`MatchBits`]).
    pub fn compile(&self) -> MatchBits {
        MatchBits::compile(self)
    }

    /// Whether this match admits `key` under OpenFlow 1.0 semantics.
    pub fn matches(&self, key: &FlowKey) -> bool {
        let w = self.wildcards;
        if !w.has(Wildcards::IN_PORT) && self.in_port != key.in_port {
            return false;
        }
        if !w.has(Wildcards::DL_SRC) && self.dl_src != key.dl_src {
            return false;
        }
        if !w.has(Wildcards::DL_DST) && self.dl_dst != key.dl_dst {
            return false;
        }
        if !w.has(Wildcards::DL_VLAN) && self.dl_vlan != key.dl_vlan {
            return false;
        }
        if !w.has(Wildcards::DL_VLAN_PCP) && self.dl_vlan_pcp != key.dl_vlan_pcp {
            return false;
        }
        if !w.has(Wildcards::DL_TYPE) && self.dl_type != key.dl_type {
            return false;
        }
        if !w.has(Wildcards::NW_TOS) && self.nw_tos != key.nw_tos {
            return false;
        }
        if !w.has(Wildcards::NW_PROTO) && self.nw_proto != key.nw_proto {
            return false;
        }
        if !ip_matches(self.nw_src, key.nw_src, w.nw_src_ignored_bits()) {
            return false;
        }
        if !ip_matches(self.nw_dst, key.nw_dst, w.nw_dst_ignored_bits()) {
            return false;
        }
        if !w.has(Wildcards::TP_SRC) && self.tp_src != key.tp_src {
            return false;
        }
        if !w.has(Wildcards::TP_DST) && self.tp_dst != key.tp_dst {
            return false;
        }
        true
    }

    /// Whether every packet admitted by `other` is also admitted by `self`
    /// (the subsumption relation used for non-strict flow deletion).
    pub fn subsumes(&self, other: &Match) -> bool {
        let sw = self.wildcards;
        let ow = other.wildcards;
        let flag_ok = |bit: u32, eq: bool| sw.has(bit) || (!ow.has(bit) && eq);
        if !flag_ok(Wildcards::IN_PORT, self.in_port == other.in_port) {
            return false;
        }
        if !flag_ok(Wildcards::DL_SRC, self.dl_src == other.dl_src) {
            return false;
        }
        if !flag_ok(Wildcards::DL_DST, self.dl_dst == other.dl_dst) {
            return false;
        }
        if !flag_ok(Wildcards::DL_VLAN, self.dl_vlan == other.dl_vlan) {
            return false;
        }
        if !flag_ok(
            Wildcards::DL_VLAN_PCP,
            self.dl_vlan_pcp == other.dl_vlan_pcp,
        ) {
            return false;
        }
        if !flag_ok(Wildcards::DL_TYPE, self.dl_type == other.dl_type) {
            return false;
        }
        if !flag_ok(Wildcards::NW_TOS, self.nw_tos == other.nw_tos) {
            return false;
        }
        if !flag_ok(Wildcards::NW_PROTO, self.nw_proto == other.nw_proto) {
            return false;
        }
        if !ip_subsumes(
            self.nw_src,
            sw.nw_src_ignored_bits(),
            other.nw_src,
            ow.nw_src_ignored_bits(),
        ) {
            return false;
        }
        if !ip_subsumes(
            self.nw_dst,
            sw.nw_dst_ignored_bits(),
            other.nw_dst,
            ow.nw_dst_ignored_bits(),
        ) {
            return false;
        }
        if !flag_ok(Wildcards::TP_SRC, self.tp_src == other.tp_src) {
            return false;
        }
        if !flag_ok(Wildcards::TP_DST, self.tp_dst == other.tp_dst) {
            return false;
        }
        true
    }

    /// Whether the two matches can admit a common packet (used for the
    /// `CHECK_OVERLAP` flow-mod flag).
    pub fn overlaps(&self, other: &Match) -> bool {
        let sw = self.wildcards;
        let ow = other.wildcards;
        let flag_ok = |bit: u32, eq: bool| sw.has(bit) || ow.has(bit) || eq;
        flag_ok(Wildcards::IN_PORT, self.in_port == other.in_port)
            && flag_ok(Wildcards::DL_SRC, self.dl_src == other.dl_src)
            && flag_ok(Wildcards::DL_DST, self.dl_dst == other.dl_dst)
            && flag_ok(Wildcards::DL_VLAN, self.dl_vlan == other.dl_vlan)
            && flag_ok(
                Wildcards::DL_VLAN_PCP,
                self.dl_vlan_pcp == other.dl_vlan_pcp,
            )
            && flag_ok(Wildcards::DL_TYPE, self.dl_type == other.dl_type)
            && flag_ok(Wildcards::NW_TOS, self.nw_tos == other.nw_tos)
            && flag_ok(Wildcards::NW_PROTO, self.nw_proto == other.nw_proto)
            && ip_overlaps(
                self.nw_src,
                sw.nw_src_ignored_bits(),
                other.nw_src,
                ow.nw_src_ignored_bits(),
            )
            && ip_overlaps(
                self.nw_dst,
                sw.nw_dst_ignored_bits(),
                other.nw_dst,
                ow.nw_dst_ignored_bits(),
            )
            && flag_ok(Wildcards::TP_SRC, self.tp_src == other.tp_src)
            && flag_ok(Wildcards::TP_DST, self.tp_dst == other.tp_dst)
    }

    /// The IPv4 source as an address type, if not fully wildcarded.
    pub fn nw_src_addr(&self) -> Option<Ipv4Addr> {
        if self.wildcards.nw_src_all() {
            None
        } else {
            Some(Ipv4Addr::from(self.nw_src))
        }
    }

    /// The IPv4 destination as an address type, if not fully wildcarded.
    pub fn nw_dst_addr(&self) -> Option<Ipv4Addr> {
        if self.wildcards.nw_dst_all() {
            None
        } else {
            Some(Ipv4Addr::from(self.nw_dst))
        }
    }

    /// Decodes an `ofp_match` from `r`.
    ///
    /// # Errors
    ///
    /// Fails if fewer than [`OFP_MATCH_LEN`] bytes remain.
    pub fn decode(r: &mut Reader<'_>) -> Result<Match, CodecError> {
        let wildcards = Wildcards(r.u32()?);
        let in_port = PortNo(r.u16()?);
        let dl_src = MacAddr(r.array::<6>()?);
        let dl_dst = MacAddr(r.array::<6>()?);
        let dl_vlan = r.u16()?;
        let dl_vlan_pcp = r.u8()?;
        r.skip(1)?;
        let dl_type = r.u16()?;
        let nw_tos = r.u8()?;
        let nw_proto = r.u8()?;
        r.skip(2)?;
        let nw_src = r.u32()?;
        let nw_dst = r.u32()?;
        let tp_src = r.u16()?;
        let tp_dst = r.u16()?;
        Ok(Match {
            wildcards,
            in_port,
            dl_src,
            dl_dst,
            dl_vlan,
            dl_vlan_pcp,
            dl_type,
            nw_tos,
            nw_proto,
            nw_src,
            nw_dst,
            tp_src,
            tp_dst,
        })
    }

    /// Encodes the match into `w` (exactly [`OFP_MATCH_LEN`] bytes).
    pub fn encode(&self, w: &mut Writer) {
        w.u32(self.wildcards.0);
        w.u16(self.in_port.0);
        w.bytes(&self.dl_src.0);
        w.bytes(&self.dl_dst.0);
        w.u16(self.dl_vlan);
        w.u8(self.dl_vlan_pcp);
        w.pad(1);
        w.u16(self.dl_type);
        w.u8(self.nw_tos);
        w.u8(self.nw_proto);
        w.pad(2);
        w.u32(self.nw_src);
        w.u32(self.nw_dst);
        w.u16(self.tp_src);
        w.u16(self.tp_dst);
    }
}

/// A [`FlowKey`] packed into five 64-bit words, the form [`MatchBits`]
/// compares against.
///
/// Word layout (little-endian field packing within each word):
///
/// | word | bits 0..16 | 16..32    | 32..48    | 48..56        | 56..64   |
/// |------|------------|-----------|-----------|---------------|----------|
/// | 0    | `in_port`  | `dl_vlan` | `dl_type` | `tp_src` (16 bits, 48..64) | |
/// | 1    | `dl_src` (48 bits, 0..48)          | `dl_vlan_pcp` | `nw_tos` |
/// | 2    | `dl_dst` (48 bits, 0..48)          | `nw_proto`    | —        |
/// | 3    | `nw_src` (32 bits, 0..32) | `nw_dst` (32 bits, 32..64)       | |
/// | 4    | `tp_dst`   | —         | —         | —             | —        |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowKeyBits([u64; 5]);

fn mac_bits(mac: &MacAddr) -> u64 {
    let b = mac.0;
    (b[0] as u64)
        | (b[1] as u64) << 8
        | (b[2] as u64) << 16
        | (b[3] as u64) << 24
        | (b[4] as u64) << 32
        | (b[5] as u64) << 40
}

impl FlowKeyBits {
    /// Packs `key` into word form.
    pub fn from_key(key: &FlowKey) -> FlowKeyBits {
        FlowKeyBits([
            (key.in_port.0 as u64)
                | (key.dl_vlan as u64) << 16
                | (key.dl_type as u64) << 32
                | (key.tp_src as u64) << 48,
            mac_bits(&key.dl_src) | (key.dl_vlan_pcp as u64) << 48 | (key.nw_tos as u64) << 56,
            mac_bits(&key.dl_dst) | (key.nw_proto as u64) << 48,
            (key.nw_src as u64) | (key.nw_dst as u64) << 32,
            key.tp_dst as u64,
        ])
    }
}

/// A [`Match`] compiled to packed value/mask words (the OVS miniflow
/// idea): `key` is admitted iff `key.words & mask == value` word-wise.
///
/// Compiling hoists all wildcard decoding — flag tests and CIDR prefix
/// expansion — out of the per-packet path; evaluation is five masked
/// 64-bit compares with no branches on wildcard structure.
/// [`MatchBits::matches`] agrees exactly with [`Match::matches`] on every
/// key (property-tested in the netsim suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchBits {
    value: [u64; 5],
    mask: [u64; 5],
}

impl MatchBits {
    /// Compiles `m` (see [`Match::compile`]).
    pub fn compile(m: &Match) -> MatchBits {
        let w = m.wildcards;
        let mut mask = [0u64; 5];
        let f = |bit: u32, field_mask: u64| if w.has(bit) { 0 } else { field_mask };
        mask[0] = f(Wildcards::IN_PORT, 0xffff)
            | f(Wildcards::DL_VLAN, 0xffff) << 16
            | f(Wildcards::DL_TYPE, 0xffff) << 32
            | f(Wildcards::TP_SRC, 0xffff) << 48;
        mask[1] = f(Wildcards::DL_SRC, 0xffff_ffff_ffff)
            | f(Wildcards::DL_VLAN_PCP, 0xff) << 48
            | f(Wildcards::NW_TOS, 0xff) << 56;
        mask[2] = f(Wildcards::DL_DST, 0xffff_ffff_ffff) | f(Wildcards::NW_PROTO, 0xff) << 48;
        mask[3] = (prefix_mask(w.nw_src_ignored_bits()) as u64)
            | (prefix_mask(w.nw_dst_ignored_bits()) as u64) << 32;
        mask[4] = f(Wildcards::TP_DST, 0xffff);
        let key_words = FlowKeyBits::from_key(&m.flow_key()).0;
        let mut value = [0u64; 5];
        for i in 0..5 {
            value[i] = key_words[i] & mask[i];
        }
        MatchBits { value, mask }
    }

    /// Whether the compiled match admits `key`.
    #[inline]
    pub fn matches(&self, key: &FlowKeyBits) -> bool {
        (key.0[0] & self.mask[0]) == self.value[0]
            && (key.0[1] & self.mask[1]) == self.value[1]
            && (key.0[2] & self.mask[2]) == self.value[2]
            && (key.0[3] & self.mask[3]) == self.value[3]
            && (key.0[4] & self.mask[4]) == self.value[4]
    }
}

fn prefix_mask(ignored_bits: u32) -> u32 {
    if ignored_bits >= 32 {
        0
    } else {
        u32::MAX << ignored_bits
    }
}

fn ip_matches(pattern: u32, value: u32, ignored_bits: u32) -> bool {
    let mask = prefix_mask(ignored_bits);
    (pattern & mask) == (value & mask)
}

fn ip_subsumes(a: u32, a_ignored: u32, b: u32, b_ignored: u32) -> bool {
    // a subsumes b iff a's mask is no more specific and prefixes agree.
    if a_ignored < b_ignored {
        return false;
    }
    let mask = prefix_mask(a_ignored);
    (a & mask) == (b & mask)
}

fn ip_overlaps(a: u32, a_ignored: u32, b: u32, b_ignored: u32) -> bool {
    let mask = prefix_mask(a_ignored.max(b_ignored));
    (a & mask) == (b & mask)
}

impl fmt::Display for Match {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.wildcards;
        let mut parts: Vec<String> = Vec::new();
        if !w.has(Wildcards::IN_PORT) {
            parts.push(format!("in_port={}", self.in_port));
        }
        if !w.has(Wildcards::DL_SRC) {
            parts.push(format!("dl_src={}", self.dl_src));
        }
        if !w.has(Wildcards::DL_DST) {
            parts.push(format!("dl_dst={}", self.dl_dst));
        }
        if !w.has(Wildcards::DL_VLAN) {
            parts.push(format!("dl_vlan={}", self.dl_vlan));
        }
        if !w.has(Wildcards::DL_VLAN_PCP) {
            parts.push(format!("dl_vlan_pcp={}", self.dl_vlan_pcp));
        }
        if !w.has(Wildcards::DL_TYPE) {
            parts.push(format!("dl_type=0x{:04x}", self.dl_type));
        }
        if !w.has(Wildcards::NW_TOS) {
            parts.push(format!("nw_tos={}", self.nw_tos));
        }
        if !w.has(Wildcards::NW_PROTO) {
            parts.push(format!("nw_proto={}", self.nw_proto));
        }
        if !w.nw_src_all() {
            parts.push(format!(
                "nw_src={}/{}",
                Ipv4Addr::from(self.nw_src),
                32 - w.nw_src_ignored_bits()
            ));
        }
        if !w.nw_dst_all() {
            parts.push(format!(
                "nw_dst={}/{}",
                Ipv4Addr::from(self.nw_dst),
                32 - w.nw_dst_ignored_bits()
            ));
        }
        if !w.has(Wildcards::TP_SRC) {
            parts.push(format!("tp_src={}", self.tp_src));
        }
        if !w.has(Wildcards::TP_DST) {
            parts.push(format!("tp_dst={}", self.tp_dst));
        }
        if parts.is_empty() {
            write!(f, "match(any)")
        } else {
            write!(f, "match({})", parts.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_key() -> FlowKey {
        FlowKey {
            in_port: PortNo(1),
            dl_src: MacAddr::from_low(0x11),
            dl_dst: MacAddr::from_low(0x22),
            dl_vlan: OFP_VLAN_NONE,
            dl_vlan_pcp: 0,
            dl_type: 0x0800,
            nw_tos: 0,
            nw_proto: 6,
            nw_src: u32::from(Ipv4Addr::new(10, 0, 1, 5)),
            nw_dst: u32::from(Ipv4Addr::new(10, 0, 2, 9)),
            tp_src: 4242,
            tp_dst: 80,
        }
    }

    #[test]
    fn all_matches_everything() {
        assert!(Match::all().matches(&sample_key()));
        assert!(Match::all().matches(&FlowKey::default()));
    }

    #[test]
    fn exact_match_roundtrips_packet() {
        let key = sample_key();
        let m = Match::from_flow_key(&key);
        assert!(m.matches(&key));
        let mut other = key;
        other.tp_dst = 443;
        assert!(!m.matches(&other));
    }

    #[test]
    fn prefix_wildcards_match_subnets() {
        let key = sample_key();
        let mut m = Match::all();
        // Match nw_src in 10.0.1.0/24: ignore 8 low bits.
        m.wildcards = Wildcards::ALL.with_nw_src_ignored_bits(8);
        m.nw_src = u32::from(Ipv4Addr::new(10, 0, 1, 0));
        assert!(m.matches(&key));
        m.nw_src = u32::from(Ipv4Addr::new(10, 0, 2, 0));
        assert!(!m.matches(&key));
    }

    #[test]
    fn ignored_bits_at_least_32_means_any() {
        let mut m = Match::all();
        m.wildcards = Wildcards::ALL.with_nw_src_ignored_bits(63);
        m.nw_src = 0xffff_ffff;
        assert!(m.matches(&sample_key()));
        assert!(m.wildcards.nw_src_all());
    }

    #[test]
    fn match_wire_roundtrip() {
        let m = Match::from_flow_key(&sample_key());
        let mut w = Writer::new();
        m.encode(&mut w);
        let v = w.into_vec();
        assert_eq!(v.len(), OFP_MATCH_LEN);
        let mut r = Reader::new(&v, "ofp_match");
        assert_eq!(Match::decode(&mut r).unwrap(), m);
        r.expect_end().unwrap();
    }

    #[test]
    fn subsumption_all_over_exact() {
        let exact = Match::from_flow_key(&sample_key());
        assert!(Match::all().subsumes(&exact));
        assert!(!exact.subsumes(&Match::all()));
        assert!(exact.subsumes(&exact));
    }

    #[test]
    fn subsumption_prefix_over_longer_prefix() {
        let mut wide = Match::all();
        wide.wildcards = Wildcards::ALL.with_nw_dst_ignored_bits(16);
        wide.nw_dst = u32::from(Ipv4Addr::new(10, 0, 0, 0));
        let mut narrow = Match::all();
        narrow.wildcards = Wildcards::ALL.with_nw_dst_ignored_bits(8);
        narrow.nw_dst = u32::from(Ipv4Addr::new(10, 0, 2, 0));
        assert!(wide.subsumes(&narrow));
        assert!(!narrow.subsumes(&wide));
    }

    #[test]
    fn overlap_detection() {
        let mut a = Match::exact_in_port(PortNo(1));
        let b = Match::exact_in_port(PortNo(2));
        assert!(!a.overlaps(&b));
        a.wildcards = Wildcards(a.wildcards.0 | Wildcards::IN_PORT);
        assert!(a.overlaps(&b));
        // Disjoint IP prefixes do not overlap.
        let mut x = Match::all();
        x.wildcards = Wildcards::ALL.with_nw_src_ignored_bits(8);
        x.nw_src = u32::from(Ipv4Addr::new(10, 0, 1, 0));
        let mut y = Match::all();
        y.wildcards = Wildcards::ALL.with_nw_src_ignored_bits(8);
        y.nw_src = u32::from(Ipv4Addr::new(10, 0, 2, 0));
        assert!(!x.overlaps(&y));
        assert!(x.overlaps(&x));
    }

    #[test]
    fn display_lists_concrete_fields_only() {
        let m = Match::exact_in_port(PortNo(3));
        assert_eq!(m.to_string(), "match(in_port=3)");
        assert_eq!(Match::all().to_string(), "match(any)");
    }

    #[test]
    fn is_exact_tracks_every_wildcard_kind() {
        assert!(Wildcards::NONE.is_exact());
        assert!(!Wildcards::ALL.is_exact());
        assert!(!Wildcards(Wildcards::NW_TOS).is_exact());
        assert!(!Wildcards(Wildcards::DL_VLAN_PCP).is_exact());
        assert!(!Wildcards::NONE.with_nw_src_ignored_bits(1).is_exact());
        assert!(!Wildcards::NONE.with_nw_dst_ignored_bits(32).is_exact());
        assert!(Match::from_flow_key(&sample_key()).is_exact());
        assert!(!Match::exact_in_port(PortNo(1)).is_exact());
    }

    #[test]
    fn flow_key_roundtrips_through_exact_match() {
        let key = sample_key();
        assert_eq!(Match::from_flow_key(&key).flow_key(), key);
    }

    #[test]
    fn compiled_match_agrees_with_interpreter() {
        let key = sample_key();
        let mut cases = vec![
            Match::all(),
            Match::exact_in_port(PortNo(1)),
            Match::exact_in_port(PortNo(9)),
            Match::from_flow_key(&key),
        ];
        let mut prefix = Match::all();
        prefix.wildcards = Wildcards::ALL.with_nw_src_ignored_bits(8);
        prefix.nw_src = u32::from(Ipv4Addr::new(10, 0, 1, 0));
        cases.push(prefix);
        prefix.nw_src = u32::from(Ipv4Addr::new(10, 0, 2, 0));
        cases.push(prefix);
        let mut vlan = Match::all();
        vlan.wildcards = Wildcards(Wildcards::ALL.0 & !Wildcards::DL_VLAN_PCP);
        vlan.dl_vlan_pcp = 3;
        cases.push(vlan);

        let keys = [key, FlowKey::default(), {
            let mut k = key;
            k.dl_vlan_pcp = 3;
            k
        }];
        for m in &cases {
            let bits = m.compile();
            for k in &keys {
                assert_eq!(
                    bits.matches(&FlowKeyBits::from_key(k)),
                    m.matches(k),
                    "compiled/interpreted divergence for {m} on {k:?}"
                );
            }
        }
    }

    #[test]
    fn compile_masks_out_wildcarded_field_values() {
        // Garbage in wildcarded fields must not affect the compiled form.
        let mut a = Match::exact_in_port(PortNo(1));
        let mut b = Match::exact_in_port(PortNo(1));
        a.tp_dst = 80;
        b.tp_dst = 443; // wildcarded either way
        assert_eq!(a.compile(), b.compile());
    }

    #[test]
    fn nw_addr_accessors_respect_wildcards() {
        let m = Match::all();
        assert_eq!(m.nw_src_addr(), None);
        let mut m = Match::all();
        m.wildcards = Wildcards::ALL.with_nw_dst_ignored_bits(0);
        m.nw_dst = u32::from(Ipv4Addr::new(192, 168, 0, 1));
        assert_eq!(m.nw_dst_addr(), Some(Ipv4Addr::new(192, 168, 0, 1)));
    }
}
