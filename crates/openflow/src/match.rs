//! The OpenFlow 1.0 12-tuple flow match (`ofp_match`) and its wildcards.

use crate::error::CodecError;
use crate::types::{MacAddr, PortNo};
use crate::wire::{Reader, Writer};
use std::fmt;
use std::net::Ipv4Addr;

/// Wire size of `ofp_match`.
pub const OFP_MATCH_LEN: usize = 40;

/// The OpenFlow 1.0 wildcard bitfield.
///
/// Bits 0–7 and 20–21 wildcard individual fields; bits 8–13 and 14–19 hold
/// 6-bit counts of *ignored low-order bits* of `nw_src` / `nw_dst` — the
/// protocol's CIDR-style prefix wildcards (a value ≥ 32 ignores the whole
/// address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Wildcards(pub u32);

impl Wildcards {
    /// Wildcard the ingress port.
    pub const IN_PORT: u32 = 1 << 0;
    /// Wildcard the VLAN id.
    pub const DL_VLAN: u32 = 1 << 1;
    /// Wildcard the Ethernet source address.
    pub const DL_SRC: u32 = 1 << 2;
    /// Wildcard the Ethernet destination address.
    pub const DL_DST: u32 = 1 << 3;
    /// Wildcard the Ethernet frame type.
    pub const DL_TYPE: u32 = 1 << 4;
    /// Wildcard the IP protocol (or ARP opcode).
    pub const NW_PROTO: u32 = 1 << 5;
    /// Wildcard the TCP/UDP source port (or ICMP type).
    pub const TP_SRC: u32 = 1 << 6;
    /// Wildcard the TCP/UDP destination port (or ICMP code).
    pub const TP_DST: u32 = 1 << 7;
    /// Shift of the 6-bit `nw_src` ignored-bits count.
    pub const NW_SRC_SHIFT: u32 = 8;
    /// Shift of the 6-bit `nw_dst` ignored-bits count.
    pub const NW_DST_SHIFT: u32 = 14;
    /// Mask (pre-shift) of the 6-bit address wildcard counts.
    pub const NW_BITS_MASK: u32 = 0x3f;
    /// Wildcard the VLAN priority.
    pub const DL_VLAN_PCP: u32 = 1 << 20;
    /// Wildcard the IP ToS / DSCP bits.
    pub const NW_TOS: u32 = 1 << 21;
    /// Every field wildcarded (the spec's `OFPFW_ALL`).
    pub const ALL: Wildcards = Wildcards(0x003f_ffff);

    /// Wildcards with every bit clear: a fully exact match.
    pub const NONE: Wildcards = Wildcards(0);

    /// Whether the flag bit(s) `bit` are all set.
    pub fn has(&self, bit: u32) -> bool {
        self.0 & bit == bit
    }

    /// Number of ignored low-order bits of `nw_src`, clamped to 32.
    pub fn nw_src_ignored_bits(&self) -> u32 {
        ((self.0 >> Self::NW_SRC_SHIFT) & Self::NW_BITS_MASK).min(32)
    }

    /// Number of ignored low-order bits of `nw_dst`, clamped to 32.
    pub fn nw_dst_ignored_bits(&self) -> u32 {
        ((self.0 >> Self::NW_DST_SHIFT) & Self::NW_BITS_MASK).min(32)
    }

    /// Returns a copy with the `nw_src` ignored-bit count set to `bits`.
    pub fn with_nw_src_ignored_bits(self, bits: u32) -> Wildcards {
        let cleared = self.0 & !(Self::NW_BITS_MASK << Self::NW_SRC_SHIFT);
        Wildcards(cleared | ((bits & Self::NW_BITS_MASK) << Self::NW_SRC_SHIFT))
    }

    /// Returns a copy with the `nw_dst` ignored-bit count set to `bits`.
    pub fn with_nw_dst_ignored_bits(self, bits: u32) -> Wildcards {
        let cleared = self.0 & !(Self::NW_BITS_MASK << Self::NW_DST_SHIFT);
        Wildcards(cleared | ((bits & Self::NW_BITS_MASK) << Self::NW_DST_SHIFT))
    }

    /// Whether `nw_src` is fully wildcarded.
    pub fn nw_src_all(&self) -> bool {
        self.nw_src_ignored_bits() >= 32
    }

    /// Whether `nw_dst` is fully wildcarded.
    pub fn nw_dst_all(&self) -> bool {
        self.nw_dst_ignored_bits() >= 32
    }
}

impl Default for Wildcards {
    fn default() -> Self {
        Wildcards::ALL
    }
}

impl fmt::Display for Wildcards {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wildcards:0x{:06x}", self.0)
    }
}

/// The fields of a packet a flow entry is matched against.
///
/// This is the "flow key" a switch extracts from each arriving frame; the
/// packet codec produces one via
/// [`packet::flow_key`](crate::packet::flow_key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FlowKey {
    /// Ingress switch port.
    pub in_port: PortNo,
    /// Ethernet source.
    pub dl_src: MacAddr,
    /// Ethernet destination.
    pub dl_dst: MacAddr,
    /// VLAN id, or `0xffff` for untagged frames (per spec `OFP_VLAN_NONE`).
    pub dl_vlan: u16,
    /// VLAN priority.
    pub dl_vlan_pcp: u8,
    /// Ethernet frame type.
    pub dl_type: u16,
    /// IP ToS (upper 6 bits valid).
    pub nw_tos: u8,
    /// IP protocol or lower 8 bits of ARP opcode.
    pub nw_proto: u8,
    /// IPv4 source (or ARP SPA), as a raw u32; 0 if not IP/ARP.
    pub nw_src: u32,
    /// IPv4 destination (or ARP TPA).
    pub nw_dst: u32,
    /// TCP/UDP source port or ICMP type.
    pub tp_src: u16,
    /// TCP/UDP destination port or ICMP code.
    pub tp_dst: u16,
}

/// `OFP_VLAN_NONE`: the `dl_vlan` value representing an untagged frame.
pub const OFP_VLAN_NONE: u16 = 0xffff;

/// The OpenFlow 1.0 flow match structure.
///
/// Field values are only meaningful where the corresponding wildcard bit is
/// clear. [`Match::matches`] implements the spec's matching semantics
/// against a [`FlowKey`], including the IP prefix wildcards.
///
/// ```
/// use attain_openflow::{Match, PortNo};
///
/// let m = Match::all(); // matches everything
/// let key = Default::default();
/// assert!(m.matches(&key));
///
/// let m = Match::exact_in_port(PortNo(3));
/// assert!(!m.matches(&key));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Match {
    /// Which fields are wildcarded.
    pub wildcards: Wildcards,
    /// Ingress port.
    pub in_port: PortNo,
    /// Ethernet source.
    pub dl_src: MacAddr,
    /// Ethernet destination.
    pub dl_dst: MacAddr,
    /// VLAN id.
    pub dl_vlan: u16,
    /// VLAN priority.
    pub dl_vlan_pcp: u8,
    /// Ethernet frame type.
    pub dl_type: u16,
    /// IP ToS.
    pub nw_tos: u8,
    /// IP protocol / ARP opcode.
    pub nw_proto: u8,
    /// IPv4 source.
    pub nw_src: u32,
    /// IPv4 destination.
    pub nw_dst: u32,
    /// Transport source port.
    pub tp_src: u16,
    /// Transport destination port.
    pub tp_dst: u16,
}

impl Default for Match {
    fn default() -> Self {
        Match::all()
    }
}

impl Match {
    /// The match-everything entry (all fields wildcarded).
    pub fn all() -> Match {
        Match {
            wildcards: Wildcards::ALL,
            in_port: PortNo(0),
            dl_src: MacAddr::ZERO,
            dl_dst: MacAddr::ZERO,
            dl_vlan: 0,
            dl_vlan_pcp: 0,
            dl_type: 0,
            nw_tos: 0,
            nw_proto: 0,
            nw_src: 0,
            nw_dst: 0,
            tp_src: 0,
            tp_dst: 0,
        }
    }

    /// A match constraining only the ingress port.
    pub fn exact_in_port(port: PortNo) -> Match {
        Match {
            wildcards: Wildcards(Wildcards::ALL.0 & !Wildcards::IN_PORT),
            in_port: port,
            ..Match::all()
        }
    }

    /// Builds an exact match (no wildcards) for every field of `key`.
    ///
    /// This is how POX's `ofp_match.from_packet` constructs flow-mod
    /// matches — the behaviour the connection-interruption attack's rule
    /// `φ2` relies upon.
    pub fn from_flow_key(key: &FlowKey) -> Match {
        Match {
            wildcards: Wildcards::NONE,
            in_port: key.in_port,
            dl_src: key.dl_src,
            dl_dst: key.dl_dst,
            dl_vlan: key.dl_vlan,
            dl_vlan_pcp: key.dl_vlan_pcp,
            dl_type: key.dl_type,
            nw_tos: key.nw_tos,
            nw_proto: key.nw_proto,
            nw_src: key.nw_src,
            nw_dst: key.nw_dst,
            tp_src: key.tp_src,
            tp_dst: key.tp_dst,
        }
    }

    /// Whether this match admits `key` under OpenFlow 1.0 semantics.
    pub fn matches(&self, key: &FlowKey) -> bool {
        let w = self.wildcards;
        if !w.has(Wildcards::IN_PORT) && self.in_port != key.in_port {
            return false;
        }
        if !w.has(Wildcards::DL_SRC) && self.dl_src != key.dl_src {
            return false;
        }
        if !w.has(Wildcards::DL_DST) && self.dl_dst != key.dl_dst {
            return false;
        }
        if !w.has(Wildcards::DL_VLAN) && self.dl_vlan != key.dl_vlan {
            return false;
        }
        if !w.has(Wildcards::DL_VLAN_PCP) && self.dl_vlan_pcp != key.dl_vlan_pcp {
            return false;
        }
        if !w.has(Wildcards::DL_TYPE) && self.dl_type != key.dl_type {
            return false;
        }
        if !w.has(Wildcards::NW_TOS) && self.nw_tos != key.nw_tos {
            return false;
        }
        if !w.has(Wildcards::NW_PROTO) && self.nw_proto != key.nw_proto {
            return false;
        }
        if !ip_matches(self.nw_src, key.nw_src, w.nw_src_ignored_bits()) {
            return false;
        }
        if !ip_matches(self.nw_dst, key.nw_dst, w.nw_dst_ignored_bits()) {
            return false;
        }
        if !w.has(Wildcards::TP_SRC) && self.tp_src != key.tp_src {
            return false;
        }
        if !w.has(Wildcards::TP_DST) && self.tp_dst != key.tp_dst {
            return false;
        }
        true
    }

    /// Whether every packet admitted by `other` is also admitted by `self`
    /// (the subsumption relation used for non-strict flow deletion).
    pub fn subsumes(&self, other: &Match) -> bool {
        let sw = self.wildcards;
        let ow = other.wildcards;
        let flag_ok = |bit: u32, eq: bool| sw.has(bit) || (!ow.has(bit) && eq);
        if !flag_ok(Wildcards::IN_PORT, self.in_port == other.in_port) {
            return false;
        }
        if !flag_ok(Wildcards::DL_SRC, self.dl_src == other.dl_src) {
            return false;
        }
        if !flag_ok(Wildcards::DL_DST, self.dl_dst == other.dl_dst) {
            return false;
        }
        if !flag_ok(Wildcards::DL_VLAN, self.dl_vlan == other.dl_vlan) {
            return false;
        }
        if !flag_ok(Wildcards::DL_VLAN_PCP, self.dl_vlan_pcp == other.dl_vlan_pcp) {
            return false;
        }
        if !flag_ok(Wildcards::DL_TYPE, self.dl_type == other.dl_type) {
            return false;
        }
        if !flag_ok(Wildcards::NW_TOS, self.nw_tos == other.nw_tos) {
            return false;
        }
        if !flag_ok(Wildcards::NW_PROTO, self.nw_proto == other.nw_proto) {
            return false;
        }
        if !ip_subsumes(
            self.nw_src,
            sw.nw_src_ignored_bits(),
            other.nw_src,
            ow.nw_src_ignored_bits(),
        ) {
            return false;
        }
        if !ip_subsumes(
            self.nw_dst,
            sw.nw_dst_ignored_bits(),
            other.nw_dst,
            ow.nw_dst_ignored_bits(),
        ) {
            return false;
        }
        if !flag_ok(Wildcards::TP_SRC, self.tp_src == other.tp_src) {
            return false;
        }
        if !flag_ok(Wildcards::TP_DST, self.tp_dst == other.tp_dst) {
            return false;
        }
        true
    }

    /// Whether the two matches can admit a common packet (used for the
    /// `CHECK_OVERLAP` flow-mod flag).
    pub fn overlaps(&self, other: &Match) -> bool {
        let sw = self.wildcards;
        let ow = other.wildcards;
        let flag_ok = |bit: u32, eq: bool| sw.has(bit) || ow.has(bit) || eq;
        flag_ok(Wildcards::IN_PORT, self.in_port == other.in_port)
            && flag_ok(Wildcards::DL_SRC, self.dl_src == other.dl_src)
            && flag_ok(Wildcards::DL_DST, self.dl_dst == other.dl_dst)
            && flag_ok(Wildcards::DL_VLAN, self.dl_vlan == other.dl_vlan)
            && flag_ok(Wildcards::DL_VLAN_PCP, self.dl_vlan_pcp == other.dl_vlan_pcp)
            && flag_ok(Wildcards::DL_TYPE, self.dl_type == other.dl_type)
            && flag_ok(Wildcards::NW_TOS, self.nw_tos == other.nw_tos)
            && flag_ok(Wildcards::NW_PROTO, self.nw_proto == other.nw_proto)
            && ip_overlaps(
                self.nw_src,
                sw.nw_src_ignored_bits(),
                other.nw_src,
                ow.nw_src_ignored_bits(),
            )
            && ip_overlaps(
                self.nw_dst,
                sw.nw_dst_ignored_bits(),
                other.nw_dst,
                ow.nw_dst_ignored_bits(),
            )
            && flag_ok(Wildcards::TP_SRC, self.tp_src == other.tp_src)
            && flag_ok(Wildcards::TP_DST, self.tp_dst == other.tp_dst)
    }

    /// The IPv4 source as an address type, if not fully wildcarded.
    pub fn nw_src_addr(&self) -> Option<Ipv4Addr> {
        if self.wildcards.nw_src_all() {
            None
        } else {
            Some(Ipv4Addr::from(self.nw_src))
        }
    }

    /// The IPv4 destination as an address type, if not fully wildcarded.
    pub fn nw_dst_addr(&self) -> Option<Ipv4Addr> {
        if self.wildcards.nw_dst_all() {
            None
        } else {
            Some(Ipv4Addr::from(self.nw_dst))
        }
    }

    /// Decodes an `ofp_match` from `r`.
    ///
    /// # Errors
    ///
    /// Fails if fewer than [`OFP_MATCH_LEN`] bytes remain.
    pub fn decode(r: &mut Reader<'_>) -> Result<Match, CodecError> {
        let wildcards = Wildcards(r.u32()?);
        let in_port = PortNo(r.u16()?);
        let dl_src = MacAddr(r.array::<6>()?);
        let dl_dst = MacAddr(r.array::<6>()?);
        let dl_vlan = r.u16()?;
        let dl_vlan_pcp = r.u8()?;
        r.skip(1)?;
        let dl_type = r.u16()?;
        let nw_tos = r.u8()?;
        let nw_proto = r.u8()?;
        r.skip(2)?;
        let nw_src = r.u32()?;
        let nw_dst = r.u32()?;
        let tp_src = r.u16()?;
        let tp_dst = r.u16()?;
        Ok(Match {
            wildcards,
            in_port,
            dl_src,
            dl_dst,
            dl_vlan,
            dl_vlan_pcp,
            dl_type,
            nw_tos,
            nw_proto,
            nw_src,
            nw_dst,
            tp_src,
            tp_dst,
        })
    }

    /// Encodes the match into `w` (exactly [`OFP_MATCH_LEN`] bytes).
    pub fn encode(&self, w: &mut Writer) {
        w.u32(self.wildcards.0);
        w.u16(self.in_port.0);
        w.bytes(&self.dl_src.0);
        w.bytes(&self.dl_dst.0);
        w.u16(self.dl_vlan);
        w.u8(self.dl_vlan_pcp);
        w.pad(1);
        w.u16(self.dl_type);
        w.u8(self.nw_tos);
        w.u8(self.nw_proto);
        w.pad(2);
        w.u32(self.nw_src);
        w.u32(self.nw_dst);
        w.u16(self.tp_src);
        w.u16(self.tp_dst);
    }
}

fn prefix_mask(ignored_bits: u32) -> u32 {
    if ignored_bits >= 32 {
        0
    } else {
        u32::MAX << ignored_bits
    }
}

fn ip_matches(pattern: u32, value: u32, ignored_bits: u32) -> bool {
    let mask = prefix_mask(ignored_bits);
    (pattern & mask) == (value & mask)
}

fn ip_subsumes(a: u32, a_ignored: u32, b: u32, b_ignored: u32) -> bool {
    // a subsumes b iff a's mask is no more specific and prefixes agree.
    if a_ignored < b_ignored {
        return false;
    }
    let mask = prefix_mask(a_ignored);
    (a & mask) == (b & mask)
}

fn ip_overlaps(a: u32, a_ignored: u32, b: u32, b_ignored: u32) -> bool {
    let mask = prefix_mask(a_ignored.max(b_ignored));
    (a & mask) == (b & mask)
}

impl fmt::Display for Match {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.wildcards;
        let mut parts: Vec<String> = Vec::new();
        if !w.has(Wildcards::IN_PORT) {
            parts.push(format!("in_port={}", self.in_port));
        }
        if !w.has(Wildcards::DL_SRC) {
            parts.push(format!("dl_src={}", self.dl_src));
        }
        if !w.has(Wildcards::DL_DST) {
            parts.push(format!("dl_dst={}", self.dl_dst));
        }
        if !w.has(Wildcards::DL_VLAN) {
            parts.push(format!("dl_vlan={}", self.dl_vlan));
        }
        if !w.has(Wildcards::DL_VLAN_PCP) {
            parts.push(format!("dl_vlan_pcp={}", self.dl_vlan_pcp));
        }
        if !w.has(Wildcards::DL_TYPE) {
            parts.push(format!("dl_type=0x{:04x}", self.dl_type));
        }
        if !w.has(Wildcards::NW_TOS) {
            parts.push(format!("nw_tos={}", self.nw_tos));
        }
        if !w.has(Wildcards::NW_PROTO) {
            parts.push(format!("nw_proto={}", self.nw_proto));
        }
        if !w.nw_src_all() {
            parts.push(format!(
                "nw_src={}/{}",
                Ipv4Addr::from(self.nw_src),
                32 - w.nw_src_ignored_bits()
            ));
        }
        if !w.nw_dst_all() {
            parts.push(format!(
                "nw_dst={}/{}",
                Ipv4Addr::from(self.nw_dst),
                32 - w.nw_dst_ignored_bits()
            ));
        }
        if !w.has(Wildcards::TP_SRC) {
            parts.push(format!("tp_src={}", self.tp_src));
        }
        if !w.has(Wildcards::TP_DST) {
            parts.push(format!("tp_dst={}", self.tp_dst));
        }
        if parts.is_empty() {
            write!(f, "match(any)")
        } else {
            write!(f, "match({})", parts.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_key() -> FlowKey {
        FlowKey {
            in_port: PortNo(1),
            dl_src: MacAddr::from_low(0x11),
            dl_dst: MacAddr::from_low(0x22),
            dl_vlan: OFP_VLAN_NONE,
            dl_vlan_pcp: 0,
            dl_type: 0x0800,
            nw_tos: 0,
            nw_proto: 6,
            nw_src: u32::from(Ipv4Addr::new(10, 0, 1, 5)),
            nw_dst: u32::from(Ipv4Addr::new(10, 0, 2, 9)),
            tp_src: 4242,
            tp_dst: 80,
        }
    }

    #[test]
    fn all_matches_everything() {
        assert!(Match::all().matches(&sample_key()));
        assert!(Match::all().matches(&FlowKey::default()));
    }

    #[test]
    fn exact_match_roundtrips_packet() {
        let key = sample_key();
        let m = Match::from_flow_key(&key);
        assert!(m.matches(&key));
        let mut other = key;
        other.tp_dst = 443;
        assert!(!m.matches(&other));
    }

    #[test]
    fn prefix_wildcards_match_subnets() {
        let key = sample_key();
        let mut m = Match::all();
        // Match nw_src in 10.0.1.0/24: ignore 8 low bits.
        m.wildcards = Wildcards::ALL.with_nw_src_ignored_bits(8);
        m.nw_src = u32::from(Ipv4Addr::new(10, 0, 1, 0));
        assert!(m.matches(&key));
        m.nw_src = u32::from(Ipv4Addr::new(10, 0, 2, 0));
        assert!(!m.matches(&key));
    }

    #[test]
    fn ignored_bits_at_least_32_means_any() {
        let mut m = Match::all();
        m.wildcards = Wildcards::ALL.with_nw_src_ignored_bits(63);
        m.nw_src = 0xffff_ffff;
        assert!(m.matches(&sample_key()));
        assert!(m.wildcards.nw_src_all());
    }

    #[test]
    fn match_wire_roundtrip() {
        let m = Match::from_flow_key(&sample_key());
        let mut w = Writer::new();
        m.encode(&mut w);
        let v = w.into_vec();
        assert_eq!(v.len(), OFP_MATCH_LEN);
        let mut r = Reader::new(&v, "ofp_match");
        assert_eq!(Match::decode(&mut r).unwrap(), m);
        r.expect_end().unwrap();
    }

    #[test]
    fn subsumption_all_over_exact() {
        let exact = Match::from_flow_key(&sample_key());
        assert!(Match::all().subsumes(&exact));
        assert!(!exact.subsumes(&Match::all()));
        assert!(exact.subsumes(&exact));
    }

    #[test]
    fn subsumption_prefix_over_longer_prefix() {
        let mut wide = Match::all();
        wide.wildcards = Wildcards::ALL.with_nw_dst_ignored_bits(16);
        wide.nw_dst = u32::from(Ipv4Addr::new(10, 0, 0, 0));
        let mut narrow = Match::all();
        narrow.wildcards = Wildcards::ALL.with_nw_dst_ignored_bits(8);
        narrow.nw_dst = u32::from(Ipv4Addr::new(10, 0, 2, 0));
        assert!(wide.subsumes(&narrow));
        assert!(!narrow.subsumes(&wide));
    }

    #[test]
    fn overlap_detection() {
        let mut a = Match::exact_in_port(PortNo(1));
        let b = Match::exact_in_port(PortNo(2));
        assert!(!a.overlaps(&b));
        a.wildcards = Wildcards(a.wildcards.0 | Wildcards::IN_PORT);
        assert!(a.overlaps(&b));
        // Disjoint IP prefixes do not overlap.
        let mut x = Match::all();
        x.wildcards = Wildcards::ALL.with_nw_src_ignored_bits(8);
        x.nw_src = u32::from(Ipv4Addr::new(10, 0, 1, 0));
        let mut y = Match::all();
        y.wildcards = Wildcards::ALL.with_nw_src_ignored_bits(8);
        y.nw_src = u32::from(Ipv4Addr::new(10, 0, 2, 0));
        assert!(!x.overlaps(&y));
        assert!(x.overlaps(&x));
    }

    #[test]
    fn display_lists_concrete_fields_only() {
        let m = Match::exact_in_port(PortNo(3));
        assert_eq!(m.to_string(), "match(in_port=3)");
        assert_eq!(Match::all().to_string(), "match(any)");
    }

    #[test]
    fn nw_addr_accessors_respect_wildcards() {
        let m = Match::all();
        assert_eq!(m.nw_src_addr(), None);
        let mut m = Match::all();
        m.wildcards = Wildcards::ALL.with_nw_dst_ignored_bits(0);
        m.nw_dst = u32::from(Ipv4Addr::new(192, 168, 0, 1));
        assert_eq!(m.nw_dst_addr(), Some(Ipv4Addr::new(192, 168, 0, 1)));
    }
}
