//! Primitive protocol types: MAC addresses, datapath ids, port numbers.

use std::fmt;
use std::str::FromStr;

/// A 48-bit Ethernet MAC address.
///
/// ```
/// use attain_openflow::MacAddr;
/// let m: MacAddr = "00:00:00:00:00:01".parse().unwrap();
/// assert_eq!(m.to_string(), "00:00:00:00:00:01");
/// assert!(!m.is_broadcast());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The all-ones broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Builds a locally administered unicast address from a small integer,
    /// convenient for simulated hosts (`host(1)` → `00:00:00:00:00:01`).
    pub fn from_low(n: u64) -> MacAddr {
        let b = n.to_be_bytes();
        MacAddr([b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == MacAddr::BROADCAST
    }

    /// Whether the group (multicast) bit is set; broadcast counts.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Raw bytes.
    pub fn octets(&self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// Error returned when parsing a [`MacAddr`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError(());

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax")
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = [0u8; 6];
        let mut parts = s.split(':');
        for slot in &mut out {
            let part = parts.next().ok_or(ParseMacError(()))?;
            if part.len() != 2 {
                return Err(ParseMacError(()));
            }
            *slot = u8::from_str_radix(part, 16).map_err(|_| ParseMacError(()))?;
        }
        if parts.next().is_some() {
            return Err(ParseMacError(()));
        }
        Ok(MacAddr(out))
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(b: [u8; 6]) -> Self {
        MacAddr(b)
    }
}

/// A 64-bit OpenFlow datapath identifier naming a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DatapathId(pub u64);

impl fmt::Display for DatapathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dpid:{:016x}", self.0)
    }
}

impl From<u64> for DatapathId {
    fn from(v: u64) -> Self {
        DatapathId(v)
    }
}

/// An OpenFlow 1.0 (16-bit) port number, including the reserved virtual
/// ports the protocol defines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PortNo(pub u16);

impl PortNo {
    /// Maximum physical port number.
    pub const MAX: PortNo = PortNo(0xff00);
    /// Send back out the packet's input port.
    pub const IN_PORT: PortNo = PortNo(0xfff8);
    /// Submit to the flow table (PACKET_OUT only).
    pub const TABLE: PortNo = PortNo(0xfff9);
    /// Process with traditional (non-OpenFlow) L2 forwarding.
    pub const NORMAL: PortNo = PortNo(0xfffa);
    /// Flood along the spanning tree, excluding the input port.
    pub const FLOOD: PortNo = PortNo(0xfffb);
    /// All physical ports except the input port.
    pub const ALL: PortNo = PortNo(0xfffc);
    /// Send to the controller.
    pub const CONTROLLER: PortNo = PortNo(0xfffd);
    /// The switch-local networking stack port.
    pub const LOCAL: PortNo = PortNo(0xfffe);
    /// Wildcard / not-a-port.
    pub const NONE: PortNo = PortNo(0xffff);

    /// Whether this is a physical (non-reserved) port number.
    pub fn is_physical(&self) -> bool {
        *self <= PortNo::MAX && self.0 != 0
    }
}

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PortNo::IN_PORT => write!(f, "IN_PORT"),
            PortNo::TABLE => write!(f, "TABLE"),
            PortNo::NORMAL => write!(f, "NORMAL"),
            PortNo::FLOOD => write!(f, "FLOOD"),
            PortNo::ALL => write!(f, "ALL"),
            PortNo::CONTROLLER => write!(f, "CONTROLLER"),
            PortNo::LOCAL => write!(f, "LOCAL"),
            PortNo::NONE => write!(f, "NONE"),
            PortNo(n) => write!(f, "{n}"),
        }
    }
}

impl From<u16> for PortNo {
    fn from(v: u16) -> Self {
        PortNo(v)
    }
}

/// An OpenFlow transaction identifier.
pub type Xid = u32;

/// A switch packet-buffer identifier.
///
/// On the wire `0xffff_ffff` means "no buffer"; the codec maps that to
/// `None` so Rust code cannot confuse the sentinel with a real buffer.
pub type BufferId = Option<u32>;

/// Wire sentinel for "no buffer attached".
pub(crate) const OFP_NO_BUFFER: u32 = 0xffff_ffff;

/// Encodes a [`BufferId`] to its wire representation.
pub(crate) fn buffer_id_to_wire(b: BufferId) -> u32 {
    b.unwrap_or(OFP_NO_BUFFER)
}

/// Decodes a wire buffer id, mapping the sentinel to `None`.
pub(crate) fn buffer_id_from_wire(v: u32) -> BufferId {
    if v == OFP_NO_BUFFER {
        None
    } else {
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_parse_roundtrip() {
        let m: MacAddr = "de:ad:be:ef:00:2a".parse().unwrap();
        assert_eq!(m.to_string(), "de:ad:be:ef:00:2a");
    }

    #[test]
    fn mac_parse_rejects_bad_syntax() {
        assert!("de:ad:be:ef:00".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00:2a:ff".parse::<MacAddr>().is_err());
        assert!("zz:ad:be:ef:00:2a".parse::<MacAddr>().is_err());
        assert!("dead:be:ef:00:2a".parse::<MacAddr>().is_err());
    }

    #[test]
    fn mac_from_low_produces_expected_bytes() {
        assert_eq!(MacAddr::from_low(1), MacAddr([0, 0, 0, 0, 0, 1]));
        assert_eq!(
            MacAddr::from_low(0x0102_0304_0506),
            MacAddr([1, 2, 3, 4, 5, 6])
        );
    }

    #[test]
    fn broadcast_is_multicast() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::from_low(2).is_multicast());
    }

    #[test]
    fn port_display_names_reserved_ports() {
        assert_eq!(PortNo::FLOOD.to_string(), "FLOOD");
        assert_eq!(PortNo(7).to_string(), "7");
    }

    #[test]
    fn physical_port_classification() {
        assert!(PortNo(1).is_physical());
        assert!(!PortNo(0).is_physical());
        assert!(!PortNo::CONTROLLER.is_physical());
        assert!(PortNo::MAX.is_physical());
    }

    #[test]
    fn buffer_id_sentinel_maps_to_none() {
        assert_eq!(buffer_id_from_wire(OFP_NO_BUFFER), None);
        assert_eq!(buffer_id_from_wire(7), Some(7));
        assert_eq!(buffer_id_to_wire(None), OFP_NO_BUFFER);
        assert_eq!(buffer_id_to_wire(Some(7)), 7);
    }
}
