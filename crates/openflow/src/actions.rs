//! OpenFlow 1.0 actions (`ofp_action_*`).

use crate::error::CodecError;
use crate::types::{MacAddr, PortNo};
use crate::wire::{Reader, Writer};
use std::fmt;

const OFPAT_OUTPUT: u16 = 0;
const OFPAT_SET_VLAN_VID: u16 = 1;
const OFPAT_SET_VLAN_PCP: u16 = 2;
const OFPAT_STRIP_VLAN: u16 = 3;
const OFPAT_SET_DL_SRC: u16 = 4;
const OFPAT_SET_DL_DST: u16 = 5;
const OFPAT_SET_NW_SRC: u16 = 6;
const OFPAT_SET_NW_DST: u16 = 7;
const OFPAT_SET_NW_TOS: u16 = 8;
const OFPAT_SET_TP_SRC: u16 = 9;
const OFPAT_SET_TP_DST: u16 = 10;
const OFPAT_ENQUEUE: u16 = 11;
const OFPAT_VENDOR: u16 = 0xffff;

/// An OpenFlow 1.0 action.
///
/// Actions appear in `FLOW_MOD`, `PACKET_OUT`, and flow-stats bodies. The
/// simulated switch executes [`Action::Output`] and the header-rewrite
/// actions; everything else is carried faithfully for codec completeness.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// Forward out a port; `max_len` bounds bytes sent when the port is
    /// [`PortNo::CONTROLLER`].
    Output {
        /// Egress port (physical or reserved).
        port: PortNo,
        /// Controller truncation length.
        max_len: u16,
    },
    /// Set the VLAN id.
    SetVlanVid(u16),
    /// Set the VLAN priority.
    SetVlanPcp(u8),
    /// Strip the 802.1Q header.
    StripVlan,
    /// Rewrite the Ethernet source.
    SetDlSrc(MacAddr),
    /// Rewrite the Ethernet destination.
    SetDlDst(MacAddr),
    /// Rewrite the IPv4 source.
    SetNwSrc(u32),
    /// Rewrite the IPv4 destination.
    SetNwDst(u32),
    /// Rewrite the IP ToS bits.
    SetNwTos(u8),
    /// Rewrite the transport source port.
    SetTpSrc(u16),
    /// Rewrite the transport destination port.
    SetTpDst(u16),
    /// Forward out a port through a queue.
    Enqueue {
        /// Egress port.
        port: PortNo,
        /// Queue on that port.
        queue_id: u32,
    },
    /// Vendor extension payload (opaque).
    Vendor {
        /// Vendor id.
        vendor: u32,
        /// Opaque body (already padded by the sender).
        body: Vec<u8>,
    },
}

impl Action {
    /// Wire length of this action in bytes (always a multiple of 8).
    pub fn wire_len(&self) -> usize {
        match self {
            Action::Output { .. }
            | Action::SetVlanVid(_)
            | Action::SetVlanPcp(_)
            | Action::StripVlan
            | Action::SetNwSrc(_)
            | Action::SetNwDst(_)
            | Action::SetNwTos(_)
            | Action::SetTpSrc(_)
            | Action::SetTpDst(_) => 8,
            Action::SetDlSrc(_) | Action::SetDlDst(_) | Action::Enqueue { .. } => 16,
            Action::Vendor { body, .. } => 8 + body.len(),
        }
    }

    /// Encodes the action (header + body) into `w`.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            Action::Output { port, max_len } => {
                w.u16(OFPAT_OUTPUT);
                w.u16(8);
                w.u16(port.0);
                w.u16(*max_len);
            }
            Action::SetVlanVid(vid) => {
                w.u16(OFPAT_SET_VLAN_VID);
                w.u16(8);
                w.u16(*vid);
                w.pad(2);
            }
            Action::SetVlanPcp(pcp) => {
                w.u16(OFPAT_SET_VLAN_PCP);
                w.u16(8);
                w.u8(*pcp);
                w.pad(3);
            }
            Action::StripVlan => {
                w.u16(OFPAT_STRIP_VLAN);
                w.u16(8);
                w.pad(4);
            }
            Action::SetDlSrc(mac) => {
                w.u16(OFPAT_SET_DL_SRC);
                w.u16(16);
                w.bytes(&mac.0);
                w.pad(6);
            }
            Action::SetDlDst(mac) => {
                w.u16(OFPAT_SET_DL_DST);
                w.u16(16);
                w.bytes(&mac.0);
                w.pad(6);
            }
            Action::SetNwSrc(ip) => {
                w.u16(OFPAT_SET_NW_SRC);
                w.u16(8);
                w.u32(*ip);
            }
            Action::SetNwDst(ip) => {
                w.u16(OFPAT_SET_NW_DST);
                w.u16(8);
                w.u32(*ip);
            }
            Action::SetNwTos(tos) => {
                w.u16(OFPAT_SET_NW_TOS);
                w.u16(8);
                w.u8(*tos);
                w.pad(3);
            }
            Action::SetTpSrc(p) => {
                w.u16(OFPAT_SET_TP_SRC);
                w.u16(8);
                w.u16(*p);
                w.pad(2);
            }
            Action::SetTpDst(p) => {
                w.u16(OFPAT_SET_TP_DST);
                w.u16(8);
                w.u16(*p);
                w.pad(2);
            }
            Action::Enqueue { port, queue_id } => {
                w.u16(OFPAT_ENQUEUE);
                w.u16(16);
                w.u16(port.0);
                w.pad(6);
                w.u32(*queue_id);
            }
            Action::Vendor { vendor, body } => {
                w.u16(OFPAT_VENDOR);
                w.u16((8 + body.len()) as u16);
                w.u32(*vendor);
                w.bytes(body);
            }
        }
    }

    /// Decodes a single action from `r`.
    ///
    /// # Errors
    ///
    /// Fails on truncation, a length inconsistent with the action type, or
    /// an unknown action type.
    pub fn decode(r: &mut Reader<'_>) -> Result<Action, CodecError> {
        let ty = r.u16()?;
        let len = r.u16()? as usize;
        if len < 8 || !len.is_multiple_of(8) {
            return Err(CodecError::BadLength {
                context: "ofp_action_header.len",
                found: len,
            });
        }
        let mut body = r.sub(len - 4, "ofp_action body")?;
        let action = match ty {
            OFPAT_OUTPUT => Action::Output {
                port: PortNo(body.u16()?),
                max_len: body.u16()?,
            },
            OFPAT_SET_VLAN_VID => {
                let vid = body.u16()?;
                body.skip(2)?;
                Action::SetVlanVid(vid)
            }
            OFPAT_SET_VLAN_PCP => {
                let pcp = body.u8()?;
                body.skip(3)?;
                Action::SetVlanPcp(pcp)
            }
            OFPAT_STRIP_VLAN => {
                body.skip(4)?;
                Action::StripVlan
            }
            OFPAT_SET_DL_SRC => {
                let mac = MacAddr(body.array::<6>()?);
                body.skip(6)?;
                Action::SetDlSrc(mac)
            }
            OFPAT_SET_DL_DST => {
                let mac = MacAddr(body.array::<6>()?);
                body.skip(6)?;
                Action::SetDlDst(mac)
            }
            OFPAT_SET_NW_SRC => Action::SetNwSrc(body.u32()?),
            OFPAT_SET_NW_DST => Action::SetNwDst(body.u32()?),
            OFPAT_SET_NW_TOS => {
                let tos = body.u8()?;
                body.skip(3)?;
                Action::SetNwTos(tos)
            }
            OFPAT_SET_TP_SRC => {
                let p = body.u16()?;
                body.skip(2)?;
                Action::SetTpSrc(p)
            }
            OFPAT_SET_TP_DST => {
                let p = body.u16()?;
                body.skip(2)?;
                Action::SetTpDst(p)
            }
            OFPAT_ENQUEUE => {
                let port = PortNo(body.u16()?);
                body.skip(6)?;
                Action::Enqueue {
                    port,
                    queue_id: body.u32()?,
                }
            }
            OFPAT_VENDOR => Action::Vendor {
                vendor: body.u32()?,
                body: body.rest().to_vec(),
            },
            other => {
                return Err(CodecError::BadValue {
                    field: "ofp_action_header.type",
                    value: other as u64,
                })
            }
        };
        body.expect_end()?;
        Ok(action)
    }

    /// Decodes exactly `total_len` bytes of actions.
    ///
    /// # Errors
    ///
    /// Fails if the actions do not tile `total_len` exactly or any action
    /// is malformed.
    pub fn decode_list(r: &mut Reader<'_>, total_len: usize) -> Result<Vec<Action>, CodecError> {
        let mut sub = r.sub(total_len, "action list")?;
        let mut out = Vec::new();
        while sub.remaining() > 0 {
            out.push(Action::decode(&mut sub)?);
        }
        Ok(out)
    }

    /// Encodes a slice of actions, returning the bytes written.
    pub fn encode_list(actions: &[Action], w: &mut Writer) -> usize {
        let before = w.len();
        for a in actions {
            a.encode(w);
        }
        w.len() - before
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Output { port, .. } => write!(f, "output:{port}"),
            Action::SetVlanVid(v) => write!(f, "set_vlan_vid:{v}"),
            Action::SetVlanPcp(v) => write!(f, "set_vlan_pcp:{v}"),
            Action::StripVlan => write!(f, "strip_vlan"),
            Action::SetDlSrc(m) => write!(f, "set_dl_src:{m}"),
            Action::SetDlDst(m) => write!(f, "set_dl_dst:{m}"),
            Action::SetNwSrc(ip) => write!(f, "set_nw_src:{}", std::net::Ipv4Addr::from(*ip)),
            Action::SetNwDst(ip) => write!(f, "set_nw_dst:{}", std::net::Ipv4Addr::from(*ip)),
            Action::SetNwTos(t) => write!(f, "set_nw_tos:{t}"),
            Action::SetTpSrc(p) => write!(f, "set_tp_src:{p}"),
            Action::SetTpDst(p) => write!(f, "set_tp_dst:{p}"),
            Action::Enqueue { port, queue_id } => write!(f, "enqueue:{port}:q{queue_id}"),
            Action::Vendor { vendor, .. } => write!(f, "vendor:0x{vendor:08x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(a: Action) {
        let mut w = Writer::new();
        a.encode(&mut w);
        let v = w.into_vec();
        assert_eq!(v.len(), a.wire_len(), "wire_len mismatch for {a:?}");
        let mut r = Reader::new(&v, "action");
        assert_eq!(Action::decode(&mut r).unwrap(), a);
        r.expect_end().unwrap();
    }

    #[test]
    fn all_actions_roundtrip() {
        roundtrip(Action::Output {
            port: PortNo(3),
            max_len: 128,
        });
        roundtrip(Action::SetVlanVid(100));
        roundtrip(Action::SetVlanPcp(5));
        roundtrip(Action::StripVlan);
        roundtrip(Action::SetDlSrc(MacAddr::from_low(0xaa)));
        roundtrip(Action::SetDlDst(MacAddr::from_low(0xbb)));
        roundtrip(Action::SetNwSrc(0x0a00_0105));
        roundtrip(Action::SetNwDst(0x0a00_0206));
        roundtrip(Action::SetNwTos(0x20));
        roundtrip(Action::SetTpSrc(8080));
        roundtrip(Action::SetTpDst(443));
        roundtrip(Action::Enqueue {
            port: PortNo(2),
            queue_id: 7,
        });
        // Vendor bodies must keep the action 8-byte aligned.
        roundtrip(Action::Vendor {
            vendor: 0x2320,
            body: vec![1, 2, 3, 4, 5, 6, 7, 8],
        });
    }

    #[test]
    fn action_list_roundtrip() {
        let actions = vec![
            Action::SetDlDst(MacAddr::from_low(0x42)),
            Action::Output {
                port: PortNo::FLOOD,
                max_len: 0,
            },
        ];
        let mut w = Writer::new();
        let n = Action::encode_list(&actions, &mut w);
        assert_eq!(n, 24);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "actions");
        assert_eq!(Action::decode_list(&mut r, n).unwrap(), actions);
    }

    #[test]
    fn rejects_unknown_action_type() {
        let mut w = Writer::new();
        w.u16(42);
        w.u16(8);
        w.pad(4);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "action");
        assert!(matches!(
            Action::decode(&mut r).unwrap_err(),
            CodecError::BadValue {
                field: "ofp_action_header.type",
                value: 42
            }
        ));
    }

    #[test]
    fn rejects_unaligned_length() {
        let mut w = Writer::new();
        w.u16(OFPAT_OUTPUT);
        w.u16(7);
        w.pad(3);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "action");
        assert!(matches!(
            Action::decode(&mut r).unwrap_err(),
            CodecError::BadLength { found: 7, .. }
        ));
    }

    #[test]
    fn display_is_readable() {
        let a = Action::Output {
            port: PortNo::CONTROLLER,
            max_len: 65535,
        };
        assert_eq!(a.to_string(), "output:CONTROLLER");
    }
}
