//! Codec error type.

use std::fmt;

/// Error produced when decoding (or, rarely, encoding) wire data fails.
///
/// The variants carry enough context to point at the offending field, which
/// the attack injector surfaces when a fuzzed message can no longer be
/// re-parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The input ended before a fixed-size field could be read.
    Truncated {
        /// What was being decoded when the input ran out.
        context: &'static str,
        /// Bytes needed to finish the read.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A length field disagrees with the available data or spec minimums.
    BadLength {
        /// What was being decoded.
        context: &'static str,
        /// The length value found on the wire.
        found: usize,
    },
    /// An enumeration field held a value the spec does not define.
    BadValue {
        /// The field holding the unexpected value.
        field: &'static str,
        /// The value found on the wire.
        value: u64,
    },
    /// The OpenFlow version byte was not 0x01.
    BadVersion(u8),
    /// Trailing bytes remained after a complete structure was decoded.
    TrailingBytes {
        /// What was being decoded.
        context: &'static str,
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// An encoded message would exceed the 16-bit `ofp_header` length
    /// field, so no valid frame can carry it.
    Oversize {
        /// What was being encoded.
        context: &'static str,
        /// The encoded size that does not fit.
        len: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated input while decoding {context}: needed {needed} bytes, had {available}"
            ),
            CodecError::BadLength { context, found } => {
                write!(f, "invalid length {found} while decoding {context}")
            }
            CodecError::BadValue { field, value } => {
                write!(f, "invalid value {value} for field {field}")
            }
            CodecError::BadVersion(v) => {
                write!(f, "unsupported OpenFlow version 0x{v:02x} (expected 0x01)")
            }
            CodecError::TrailingBytes { context, remaining } => {
                write!(f, "{remaining} trailing bytes after decoding {context}")
            }
            CodecError::Oversize { context, len } => write!(
                f,
                "encoded {context} is {len} bytes, exceeding the 65535-byte frame limit"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = CodecError::Truncated {
            context: "ofp_match",
            needed: 40,
            available: 12,
        };
        let s = e.to_string();
        assert!(s.contains("ofp_match"));
        assert!(s.contains("40"));
        assert!(s.contains("12"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodecError>();
    }

    #[test]
    fn oversize_display_names_limit() {
        let e = CodecError::Oversize {
            context: "ofp message",
            len: 70_000,
        };
        let s = e.to_string();
        assert!(s.contains("70000"));
        assert!(s.contains("65535"));
    }

    #[test]
    fn bad_version_display() {
        assert_eq!(
            CodecError::BadVersion(4).to_string(),
            "unsupported OpenFlow version 0x04 (expected 0x01)"
        );
    }
}
