//! The top-level [`OfMessage`] enum: every OpenFlow 1.0 message.

use crate::error::CodecError;
use crate::header::{OfHeader, OfType, OFP_HEADER_LEN, OFP_VERSION};
use crate::messages::queue as queue_codec;
use crate::messages::{
    ErrorMsg, FlowMod, FlowRemoved, PacketIn, PacketOut, PortMod, PortStatus, QueueConfig,
    StatsBody, StatsReplyBody, SwitchConfig, SwitchFeatures,
};
use crate::types::{PortNo, Xid};
use crate::wire::{Reader, Writer};

/// A decoded OpenFlow 1.0 message (header type + typed body).
///
/// The transaction id is kept separate (passed to [`OfMessage::encode`] and
/// returned by [`OfMessage::decode`]) so message bodies compare equal
/// regardless of xid — which is what attack conditionals want.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OfMessage {
    /// Version negotiation; body is ignored in 1.0.
    Hello,
    /// Error notification.
    Error(ErrorMsg),
    /// Liveness probe (opaque payload echoed back).
    EchoRequest(Vec<u8>),
    /// Liveness probe response.
    EchoReply(Vec<u8>),
    /// Vendor/experimenter extension.
    Vendor {
        /// Vendor id.
        vendor: u32,
        /// Opaque body.
        body: Vec<u8>,
    },
    /// Ask the switch for its features.
    FeaturesRequest,
    /// The switch's datapath id, tables, and ports.
    FeaturesReply(SwitchFeatures),
    /// Ask the switch for its config.
    GetConfigRequest,
    /// The switch's config.
    GetConfigReply(SwitchConfig),
    /// Set the switch's config.
    SetConfig(SwitchConfig),
    /// Data-plane packet delivered to the controller.
    PacketIn(PacketIn),
    /// Flow entry expired or was deleted.
    FlowRemoved(FlowRemoved),
    /// Port changed.
    PortStatus(PortStatus),
    /// Emit a packet from the switch.
    PacketOut(PacketOut),
    /// Modify the flow table.
    FlowMod(FlowMod),
    /// Modify port behaviour.
    PortMod(PortMod),
    /// Request statistics.
    StatsRequest(StatsBody),
    /// Statistics response.
    StatsReply(StatsReplyBody),
    /// Barrier: flush preceding messages before replying.
    BarrierRequest,
    /// Barrier response.
    BarrierReply,
    /// Ask for a port's queue configuration.
    QueueGetConfigRequest {
        /// Queried port.
        port: PortNo,
    },
    /// A port's queue configuration.
    QueueGetConfigReply {
        /// Queried port.
        port: PortNo,
        /// The port's queues.
        queues: Vec<QueueConfig>,
    },
}

impl OfMessage {
    /// The message's wire type.
    pub fn of_type(&self) -> OfType {
        match self {
            OfMessage::Hello => OfType::Hello,
            OfMessage::Error(_) => OfType::Error,
            OfMessage::EchoRequest(_) => OfType::EchoRequest,
            OfMessage::EchoReply(_) => OfType::EchoReply,
            OfMessage::Vendor { .. } => OfType::Vendor,
            OfMessage::FeaturesRequest => OfType::FeaturesRequest,
            OfMessage::FeaturesReply(_) => OfType::FeaturesReply,
            OfMessage::GetConfigRequest => OfType::GetConfigRequest,
            OfMessage::GetConfigReply(_) => OfType::GetConfigReply,
            OfMessage::SetConfig(_) => OfType::SetConfig,
            OfMessage::PacketIn(_) => OfType::PacketIn,
            OfMessage::FlowRemoved(_) => OfType::FlowRemoved,
            OfMessage::PortStatus(_) => OfType::PortStatus,
            OfMessage::PacketOut(_) => OfType::PacketOut,
            OfMessage::FlowMod(_) => OfType::FlowMod,
            OfMessage::PortMod(_) => OfType::PortMod,
            OfMessage::StatsRequest(_) => OfType::StatsRequest,
            OfMessage::StatsReply(_) => OfType::StatsReply,
            OfMessage::BarrierRequest => OfType::BarrierRequest,
            OfMessage::BarrierReply => OfType::BarrierReply,
            OfMessage::QueueGetConfigRequest { .. } => OfType::QueueGetConfigRequest,
            OfMessage::QueueGetConfigReply { .. } => OfType::QueueGetConfigReply,
        }
    }

    /// Encodes header + body into a standalone byte vector.
    ///
    /// # Panics
    ///
    /// Panics if the encoded message exceeds the 16-bit header length
    /// field (body larger than 65527 bytes). Callers holding bodies of
    /// untrusted size should use [`OfMessage::try_encode`], which
    /// returns [`CodecError::Oversize`] instead of producing a frame
    /// whose declared length silently disagrees with its contents.
    pub fn encode(&self, xid: Xid) -> Vec<u8> {
        self.try_encode(xid)
            .expect("message exceeds the OpenFlow frame size limit (use try_encode)")
    }

    /// Encodes header + body, failing if the message cannot fit a frame.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Oversize`] when the encoded size exceeds
    /// `u16::MAX` — the header's length field would otherwise truncate
    /// and desynchronize the peer's framer.
    pub fn try_encode(&self, xid: Xid) -> Result<Vec<u8>, CodecError> {
        let mut w = Writer::with_capacity(64);
        // Placeholder header; length patched after the body is written.
        OfHeader {
            version: OFP_VERSION,
            of_type: self.of_type(),
            length: 0,
            xid,
        }
        .encode(&mut w);
        match self {
            OfMessage::Hello
            | OfMessage::FeaturesRequest
            | OfMessage::GetConfigRequest
            | OfMessage::BarrierRequest
            | OfMessage::BarrierReply => {}
            OfMessage::Error(e) => e.encode(&mut w),
            OfMessage::EchoRequest(b) | OfMessage::EchoReply(b) => w.bytes(b),
            OfMessage::Vendor { vendor, body } => {
                w.u32(*vendor);
                w.bytes(body);
            }
            OfMessage::FeaturesReply(f) => f.encode(&mut w),
            OfMessage::GetConfigReply(c) | OfMessage::SetConfig(c) => c.encode(&mut w),
            OfMessage::PacketIn(p) => p.encode(&mut w),
            OfMessage::FlowRemoved(fr) => fr.encode(&mut w),
            OfMessage::PortStatus(ps) => ps.encode(&mut w),
            OfMessage::PacketOut(p) => p.encode(&mut w),
            OfMessage::FlowMod(fm) => fm.encode(&mut w),
            OfMessage::PortMod(pm) => pm.encode(&mut w),
            OfMessage::StatsRequest(s) => s.encode(&mut w),
            OfMessage::StatsReply(s) => s.encode(&mut w),
            OfMessage::QueueGetConfigRequest { port } => queue_codec::encode_request(*port, &mut w),
            OfMessage::QueueGetConfigReply { port, queues } => {
                queue_codec::encode_reply(*port, queues, &mut w)
            }
        }
        let len = w.len();
        if len > u16::MAX as usize {
            return Err(CodecError::Oversize {
                context: "ofp message",
                len,
            });
        }
        w.patch_u16(2, len as u16);
        Ok(w.into_vec())
    }

    /// Decodes a complete message (header + body) from `buf`.
    ///
    /// Returns the message and its transaction id. The entire declared
    /// length must be present and `buf` must contain nothing after it.
    ///
    /// # Errors
    ///
    /// Fails on truncation, trailing bytes, a bad version, an unknown
    /// type, or a malformed body.
    pub fn decode(buf: &[u8]) -> Result<(OfMessage, Xid), CodecError> {
        let header = OfHeader::decode(buf)?;
        if buf.len() != header.length as usize {
            return Err(CodecError::BadLength {
                context: "ofp message framing",
                found: buf.len(),
            });
        }
        let mut r = Reader::new(&buf[OFP_HEADER_LEN..], "ofp message body");
        let msg = match header.of_type {
            OfType::Hello => {
                // 1.0 permits (and ignores) a hello body.
                let _ = r.rest();
                OfMessage::Hello
            }
            OfType::Error => OfMessage::Error(ErrorMsg::decode(&mut r)?),
            OfType::EchoRequest => OfMessage::EchoRequest(r.rest().to_vec()),
            OfType::EchoReply => OfMessage::EchoReply(r.rest().to_vec()),
            OfType::Vendor => OfMessage::Vendor {
                vendor: r.u32()?,
                body: r.rest().to_vec(),
            },
            OfType::FeaturesRequest => OfMessage::FeaturesRequest,
            OfType::FeaturesReply => OfMessage::FeaturesReply(SwitchFeatures::decode(&mut r)?),
            OfType::GetConfigRequest => OfMessage::GetConfigRequest,
            OfType::GetConfigReply => OfMessage::GetConfigReply(SwitchConfig::decode(&mut r)?),
            OfType::SetConfig => OfMessage::SetConfig(SwitchConfig::decode(&mut r)?),
            OfType::PacketIn => OfMessage::PacketIn(PacketIn::decode(&mut r)?),
            OfType::FlowRemoved => OfMessage::FlowRemoved(FlowRemoved::decode(&mut r)?),
            OfType::PortStatus => OfMessage::PortStatus(PortStatus::decode(&mut r)?),
            OfType::PacketOut => OfMessage::PacketOut(PacketOut::decode(&mut r)?),
            OfType::FlowMod => OfMessage::FlowMod(FlowMod::decode(&mut r)?),
            OfType::PortMod => OfMessage::PortMod(PortMod::decode(&mut r)?),
            OfType::StatsRequest => OfMessage::StatsRequest(StatsBody::decode(&mut r)?),
            OfType::StatsReply => OfMessage::StatsReply(StatsReplyBody::decode(&mut r)?),
            OfType::BarrierRequest => OfMessage::BarrierRequest,
            OfType::BarrierReply => OfMessage::BarrierReply,
            OfType::QueueGetConfigRequest => OfMessage::QueueGetConfigRequest {
                port: queue_codec::decode_request(&mut r)?,
            },
            OfType::QueueGetConfigReply => {
                let (port, queues) = queue_codec::decode_reply(&mut r)?;
                OfMessage::QueueGetConfigReply { port, queues }
            }
        };
        r.expect_end()?;
        Ok((msg, header.xid))
    }

    /// Splits the first complete message off a byte stream.
    ///
    /// Returns `Ok(None)` when `buf` holds only a partial message — the
    /// caller should read more bytes. On success returns the frame's total
    /// length so the caller can advance its buffer. This is the framing
    /// loop both the TCP proxy and the simulated channel use.
    ///
    /// # Errors
    ///
    /// Fails if an (already complete) header is malformed.
    pub fn frame_len(buf: &[u8]) -> Result<Option<usize>, CodecError> {
        if buf.len() < OFP_HEADER_LEN {
            return Ok(None);
        }
        let header = OfHeader::decode(&buf[..OFP_HEADER_LEN])?;
        if buf.len() < header.length as usize {
            return Ok(None);
        }
        Ok(Some(header.length as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::Action;
    use crate::r#match::Match;
    use crate::types::{DatapathId, MacAddr};

    fn roundtrip(msg: OfMessage) {
        let bytes = msg.encode(0x1234);
        let (decoded, xid) = OfMessage::decode(&bytes).unwrap();
        assert_eq!(xid, 0x1234);
        assert_eq!(decoded, msg);
        // Declared length equals actual length.
        let header = OfHeader::decode(&bytes).unwrap();
        assert_eq!(header.length as usize, bytes.len());
    }

    #[test]
    fn fixed_body_messages_roundtrip() {
        roundtrip(OfMessage::Hello);
        roundtrip(OfMessage::FeaturesRequest);
        roundtrip(OfMessage::GetConfigRequest);
        roundtrip(OfMessage::BarrierRequest);
        roundtrip(OfMessage::BarrierReply);
        roundtrip(OfMessage::EchoRequest(vec![1, 2, 3]));
        roundtrip(OfMessage::EchoReply(vec![]));
        roundtrip(OfMessage::Vendor {
            vendor: 0x2320,
            body: vec![9; 12],
        });
        roundtrip(OfMessage::GetConfigReply(SwitchConfig::default()));
        roundtrip(OfMessage::SetConfig(SwitchConfig {
            flags: 0,
            miss_send_len: 0xffff,
        }));
        roundtrip(OfMessage::QueueGetConfigRequest { port: PortNo(1) });
        roundtrip(OfMessage::QueueGetConfigReply {
            port: PortNo(1),
            queues: vec![QueueConfig {
                queue_id: 1,
                min_rate: Some(10),
            }],
        });
    }

    #[test]
    fn variable_body_messages_roundtrip() {
        roundtrip(OfMessage::FeaturesReply(SwitchFeatures {
            datapath_id: DatapathId(1),
            n_buffers: 256,
            n_tables: 1,
            capabilities: 0,
            actions: 0xfff,
            ports: vec![crate::messages::PhyPort::simulated(
                PortNo(1),
                MacAddr::from_low(1),
            )],
        }));
        roundtrip(OfMessage::PacketIn(PacketIn {
            buffer_id: Some(1),
            total_len: 64,
            in_port: PortNo(1),
            reason: crate::messages::PacketInReason::NoMatch,
            data: vec![0xaa; 64],
        }));
        roundtrip(OfMessage::PacketOut(PacketOut {
            buffer_id: None,
            in_port: PortNo::NONE,
            actions: vec![Action::Output {
                port: PortNo::FLOOD,
                max_len: 0,
            }],
            data: vec![0x55; 60],
        }));
        roundtrip(OfMessage::FlowMod(FlowMod::add(
            Match::exact_in_port(PortNo(2)),
            vec![Action::Output {
                port: PortNo(3),
                max_len: 0,
            }],
        )));
    }

    #[test]
    fn oversized_body_encode_errors_instead_of_truncating() {
        // 65527 bytes of body is the largest that fits (8-byte header).
        let max = OfMessage::EchoRequest(vec![0; 65527]);
        let bytes = max.try_encode(1).unwrap();
        assert_eq!(bytes.len(), 65535);
        let header = OfHeader::decode(&bytes).unwrap();
        assert_eq!(header.length as usize, bytes.len());

        // One byte more and the length field would wrap; the old encoder
        // emitted a frame whose header claimed 0 bytes.
        let over = OfMessage::EchoRequest(vec![0; 65528]);
        assert!(matches!(
            over.try_encode(1),
            Err(CodecError::Oversize { len: 65536, .. })
        ));
    }

    #[test]
    fn decode_rejects_truncated_frame() {
        let bytes = OfMessage::FeaturesRequest.encode(1);
        assert!(OfMessage::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn decode_rejects_oversized_buffer() {
        let mut bytes = OfMessage::FeaturesRequest.encode(1);
        bytes.push(0);
        assert!(OfMessage::decode(&bytes).is_err());
    }

    #[test]
    fn frame_len_handles_partial_and_complete() {
        let a = OfMessage::EchoRequest(vec![7; 10]).encode(1);
        let b = OfMessage::BarrierRequest.encode(2);
        let mut stream = a.clone();
        stream.extend_from_slice(&b);

        assert_eq!(OfMessage::frame_len(&stream[..4]).unwrap(), None);
        assert_eq!(OfMessage::frame_len(&stream[..a.len() - 1]).unwrap(), None);
        let n = OfMessage::frame_len(&stream).unwrap().unwrap();
        assert_eq!(n, a.len());
        let (m1, _) = OfMessage::decode(&stream[..n]).unwrap();
        assert_eq!(m1, OfMessage::EchoRequest(vec![7; 10]));
        let rest = &stream[n..];
        let n2 = OfMessage::frame_len(rest).unwrap().unwrap();
        assert_eq!(n2, b.len());
    }

    #[test]
    fn hello_with_extra_body_is_tolerated() {
        // Spec: implementations must be prepared to receive a hello with a
        // body and ignore it.
        let mut bytes = OfMessage::Hello.encode(9);
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        let len = bytes.len() as u16;
        bytes[2] = (len >> 8) as u8;
        bytes[3] = len as u8;
        let (msg, _) = OfMessage::decode(&bytes).unwrap();
        assert_eq!(msg, OfMessage::Hello);
    }

    #[test]
    fn of_type_matches_variant() {
        assert_eq!(OfMessage::Hello.of_type(), OfType::Hello);
        assert_eq!(
            OfMessage::FlowMod(FlowMod::add(Match::all(), vec![])).of_type(),
            OfType::FlowMod
        );
    }
}
