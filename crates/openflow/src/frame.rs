//! A shared, immutable, encoded control-plane message.
//!
//! [`Frame`] is the unit the whole injector pipeline passes around: the
//! encoded bytes of one OpenFlow message behind an `Arc`, plus a
//! lazily populated, memoized decode. Cloning a frame is a refcount
//! bump; duplicating, replaying, delaying, or storing a message shares
//! the same allocation; and any component that needs the decoded view
//! pays the parse cost at most once per frame, no matter how many hops
//! inspect it (the *single-decode invariant* — see DESIGN.md "Frame
//! ownership & the message path").
//!
//! Frames are immutable. Mutation (the executor's `MODIFYMESSAGE` /
//! `FUZZMESSAGE` actions) is copy-on-write: take [`Frame::bytes`], build
//! the altered byte vector, and wrap it in a fresh `Frame`.

use crate::error::CodecError;
use crate::header::OFP_HEADER_LEN;
use crate::message::OfMessage;
use crate::types::Xid;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of real (non-memoized) `OfMessage::decode` calls performed on
/// behalf of frames, process-wide. Test instrumentation for the
/// single-decode invariant: read it before and after a scenario and the
/// delta bounds the parse work the message path did.
static DECODE_COUNT: AtomicU64 = AtomicU64::new(0);

/// Returns the process-wide count of real frame decodes performed so
/// far. Only ever increases; tests compare deltas.
pub fn frame_decode_count() -> u64 {
    DECODE_COUNT.load(Ordering::Relaxed)
}

#[derive(Debug)]
struct FrameInner {
    bytes: Box<[u8]>,
    decoded: OnceLock<Result<(OfMessage, Xid), CodecError>>,
}

/// One encoded OpenFlow message, shared by reference count.
///
/// Equality, ordering, and hashing are over the encoded bytes — two
/// frames with identical bytes are the same message regardless of how
/// they were constructed or whether either has been decoded yet.
#[derive(Clone)]
pub struct Frame {
    inner: Arc<FrameInner>,
}

impl Frame {
    /// Wraps raw wire bytes (one complete message: header + body). The
    /// decoded view is populated lazily on first [`Frame::decoded`].
    pub fn new(bytes: Vec<u8>) -> Frame {
        Frame {
            inner: Arc::new(FrameInner {
                bytes: bytes.into_boxed_slice(),
                decoded: OnceLock::new(),
            }),
        }
    }

    /// Encodes `msg` with `xid` and pre-seeds the decode memo with the
    /// message itself — a frame built this way is *never* parsed, on any
    /// path, because the structured view travels with the bytes.
    pub fn from_message(msg: OfMessage, xid: Xid) -> Frame {
        let bytes = msg.encode(xid);
        let decoded = OnceLock::new();
        let _ = decoded.set(Ok((msg, xid)));
        Frame {
            inner: Arc::new(FrameInner {
                bytes: bytes.into_boxed_slice(),
                decoded,
            }),
        }
    }

    /// The encoded message (header + body).
    pub fn bytes(&self) -> &[u8] {
        &self.inner.bytes
    }

    /// Encoded length in bytes.
    pub fn len(&self) -> usize {
        self.inner.bytes.len()
    }

    /// Whether the frame is empty (never true for a valid message, which
    /// has at least a header).
    pub fn is_empty(&self) -> bool {
        self.inner.bytes.is_empty()
    }

    /// Copies the encoded bytes out — the copy-on-write entry point for
    /// mutation paths.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.bytes.to_vec()
    }

    /// The decoded message and xid, parsing on first call and memoizing
    /// the result (including failures). Returns `None` if the bytes do
    /// not decode as OpenFlow.
    pub fn decoded(&self) -> Option<&(OfMessage, Xid)> {
        self.inner
            .decoded
            .get_or_init(|| {
                DECODE_COUNT.fetch_add(1, Ordering::Relaxed);
                OfMessage::decode(&self.inner.bytes)
            })
            .as_ref()
            .ok()
    }

    /// The decoded message, if the bytes parse.
    pub fn message(&self) -> Option<&OfMessage> {
        self.decoded().map(|(m, _)| m)
    }

    /// The decode failure, if the bytes do not parse.
    pub fn decode_error(&self) -> Option<&CodecError> {
        self.inner
            .decoded
            .get_or_init(|| {
                DECODE_COUNT.fetch_add(1, Ordering::Relaxed);
                OfMessage::decode(&self.inner.bytes)
            })
            .as_ref()
            .err()
    }

    /// The message's transaction id, read from the header without
    /// triggering a body decode. `None` if the buffer is shorter than a
    /// header.
    pub fn xid(&self) -> Option<Xid> {
        let b = self.bytes();
        if b.len() < OFP_HEADER_LEN {
            return None;
        }
        Some(u32::from_be_bytes([b[4], b[5], b[6], b[7]]))
    }

    /// The message type, via the (memoized) full decode — `None` for
    /// bytes that do not parse, matching what a fresh
    /// `OfMessage::decode` would conclude.
    pub fn of_type(&self) -> Option<crate::header::OfType> {
        self.message().map(OfMessage::of_type)
    }

    /// Builds a reply frame by copying these bytes and patching the
    /// header's type and xid fields in place — the echo-reply fast
    /// path. For any frame that decodes successfully, the result is
    /// byte-identical to re-encoding a same-body message of `of_type`
    /// with `xid` (the codec pins `version` and requires the length
    /// field to equal the buffer length), but skips the decode and the
    /// body re-serialization.
    ///
    /// Returns `None` if the frame is shorter than a header.
    pub fn patched_reply(&self, of_type: crate::header::OfType, xid: Xid) -> Option<Frame> {
        if self.len() < OFP_HEADER_LEN {
            return None;
        }
        let mut bytes = self.to_vec();
        bytes[1] = of_type as u8;
        bytes[4..8].copy_from_slice(&xid.to_be_bytes());
        Some(Frame::new(bytes))
    }

    /// How many `Frame` handles currently share this allocation
    /// (test/diagnostic aid for the refcount-bump claims).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Frame")
            .field("len", &self.len())
            .field(
                "of_type",
                &self
                    .inner
                    .decoded
                    .get()
                    .map(|d| d.as_ref().ok().map(|(m, _)| m.of_type())),
            )
            .finish()
    }
}

impl PartialEq for Frame {
    fn eq(&self, other: &Frame) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.bytes() == other.bytes()
    }
}

impl Eq for Frame {}

impl Hash for Frame {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.bytes().hash(state);
    }
}

impl From<Vec<u8>> for Frame {
    fn from(bytes: Vec<u8>) -> Frame {
        Frame::new(bytes)
    }
}

impl From<&[u8]> for Frame {
    fn from(bytes: &[u8]) -> Frame {
        Frame::new(bytes.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_frame() -> Frame {
        Frame::new(OfMessage::EchoRequest(vec![1, 2, 3]).encode(7))
    }

    #[test]
    fn raw_frame_decodes_exactly_once() {
        let f = echo_frame();
        let before = frame_decode_count();
        let (m, xid) = f.decoded().expect("echo decodes");
        assert_eq!(*xid, 7);
        assert_eq!(m, &OfMessage::EchoRequest(vec![1, 2, 3]));
        // Further reads — including through clones — are memo hits.
        let g = f.clone();
        assert!(g.decoded().is_some());
        assert_eq!(g.of_type(), Some(crate::header::OfType::EchoRequest));
        assert_eq!(frame_decode_count() - before, 1);
    }

    #[test]
    fn from_message_never_decodes() {
        let before = frame_decode_count();
        let f = Frame::from_message(OfMessage::Hello, 42);
        let (m, xid) = f.decoded().expect("pre-seeded");
        assert_eq!(m, &OfMessage::Hello);
        assert_eq!(*xid, 42);
        assert_eq!(f.xid(), Some(42));
        assert_eq!(frame_decode_count(), before);
        // Bytes are exactly what encode would produce.
        assert_eq!(f.bytes(), OfMessage::Hello.encode(42).as_slice());
    }

    #[test]
    fn clone_is_shared_not_copied() {
        let f = echo_frame();
        assert_eq!(f.ref_count(), 1);
        let g = f.clone();
        assert_eq!(f.ref_count(), 2);
        assert_eq!(f.bytes().as_ptr(), g.bytes().as_ptr());
        drop(g);
        assert_eq!(f.ref_count(), 1);
    }

    #[test]
    fn undecodable_bytes_memoize_the_failure() {
        let f = Frame::new(vec![0xff; 3]);
        let before = frame_decode_count();
        assert!(f.decoded().is_none());
        assert!(f.decoded().is_none());
        assert!(f.decode_error().is_some());
        assert_eq!(f.of_type(), None);
        assert_eq!(f.xid(), None); // shorter than a header
        assert_eq!(frame_decode_count() - before, 1);
    }

    #[test]
    fn patched_reply_matches_reencoding() {
        let req = Frame::new(OfMessage::EchoRequest(vec![9, 8, 7]).encode(0x11223344));
        let reply = req
            .patched_reply(crate::header::OfType::EchoReply, 0x55667788)
            .expect("long enough");
        assert_eq!(
            reply.bytes(),
            OfMessage::EchoReply(vec![9, 8, 7])
                .encode(0x55667788)
                .as_slice()
        );
        assert!(Frame::new(vec![1, 2])
            .patched_reply(crate::header::OfType::EchoReply, 1)
            .is_none());
    }

    #[test]
    // The decode memo is interior mutability, but Hash/Eq read only the
    // immutable bytes, so frames are sound map keys.
    #[allow(clippy::mutable_key_type)]
    fn equality_and_hash_are_by_bytes() {
        use std::collections::HashSet;
        let a = echo_frame();
        let b = echo_frame();
        assert_eq!(a, b);
        let c = Frame::new(OfMessage::EchoRequest(vec![9]).encode(7));
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }
}
