//! ICMP (echo request/reply and opaque others).

use super::internet_checksum;
use crate::error::CodecError;
use crate::wire::{Reader, Writer};

/// Well-known ICMP message kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IcmpKind {
    /// Echo reply (type 0).
    EchoReply,
    /// Echo request (type 8).
    EchoRequest,
    /// Destination unreachable (type 3).
    DestinationUnreachable,
    /// Anything else.
    Other(u8),
}

impl IcmpKind {
    /// The wire type byte.
    pub fn type_byte(&self) -> u8 {
        match self {
            IcmpKind::EchoReply => 0,
            IcmpKind::EchoRequest => 8,
            IcmpKind::DestinationUnreachable => 3,
            IcmpKind::Other(t) => *t,
        }
    }

    /// Classifies a wire type byte.
    pub fn from_type_byte(t: u8) -> IcmpKind {
        match t {
            0 => IcmpKind::EchoReply,
            8 => IcmpKind::EchoRequest,
            3 => IcmpKind::DestinationUnreachable,
            other => IcmpKind::Other(other),
        }
    }
}

/// An ICMP message. For echo messages, `identifier`/`sequence` carry the
/// ping id and trial number; for others they carry the "rest of header"
/// word verbatim.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Icmp {
    /// Type byte.
    pub icmp_type: u8,
    /// Code byte.
    pub code: u8,
    /// Echo identifier (or high half of the rest-of-header word).
    pub identifier: u16,
    /// Echo sequence number (or low half of the rest-of-header word).
    pub sequence: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Icmp {
    /// The message kind.
    pub fn kind(&self) -> IcmpKind {
        IcmpKind::from_type_byte(self.icmp_type)
    }

    /// Decodes an ICMP message, verifying the checksum.
    ///
    /// # Errors
    ///
    /// Fails on truncation or a bad checksum.
    pub fn decode(buf: &[u8]) -> Result<Icmp, CodecError> {
        if internet_checksum(buf) != 0 {
            return Err(CodecError::BadValue {
                field: "icmp.checksum",
                value: 0,
            });
        }
        let mut r = Reader::new(buf, "icmp");
        let icmp_type = r.u8()?;
        let code = r.u8()?;
        let _checksum = r.u16()?;
        let identifier = r.u16()?;
        let sequence = r.u16()?;
        let payload = r.rest().to_vec();
        Ok(Icmp {
            icmp_type,
            code,
            identifier,
            sequence,
            payload,
        })
    }

    /// Encodes the message into `w`, computing the checksum.
    pub fn encode(&self, w: &mut Writer) {
        let mut m = Writer::new();
        m.u8(self.icmp_type);
        m.u8(self.code);
        m.u16(0);
        m.u16(self.identifier);
        m.u16(self.sequence);
        m.bytes(&self.payload);
        let mut v = m.into_vec();
        let csum = internet_checksum(&v);
        v[2..4].copy_from_slice(&csum.to_be_bytes());
        w.bytes(&v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = Icmp {
            icmp_type: 8,
            code: 0,
            identifier: 42,
            sequence: 7,
            payload: vec![0xab; 48],
        };
        let mut w = Writer::new();
        m.encode(&mut w);
        let v = w.into_vec();
        let d = Icmp::decode(&v).unwrap();
        assert_eq!(d, m);
        assert_eq!(d.kind(), IcmpKind::EchoRequest);
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let m = Icmp {
            icmp_type: 0,
            code: 0,
            identifier: 1,
            sequence: 2,
            payload: vec![1, 2, 3],
        };
        let mut w = Writer::new();
        m.encode(&mut w);
        let mut v = w.into_vec();
        *v.last_mut().unwrap() ^= 0x01;
        assert!(Icmp::decode(&v).is_err());
    }

    #[test]
    fn kind_classification() {
        assert_eq!(IcmpKind::from_type_byte(0), IcmpKind::EchoReply);
        assert_eq!(IcmpKind::from_type_byte(8), IcmpKind::EchoRequest);
        assert_eq!(
            IcmpKind::from_type_byte(3),
            IcmpKind::DestinationUnreachable
        );
        assert_eq!(IcmpKind::from_type_byte(11), IcmpKind::Other(11));
        assert_eq!(IcmpKind::Other(11).type_byte(), 11);
    }
}
