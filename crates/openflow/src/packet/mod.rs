//! Data-plane packet codec: Ethernet, ARP, IPv4, ICMP, TCP, UDP.
//!
//! These are the frames that traverse the simulated data plane and ride
//! inside `PACKET_IN` / `PACKET_OUT` payloads. The module also extracts
//! the OpenFlow 1.0 [`FlowKey`] from a raw frame
//! ([`flow_key`]) — the operation every switch performs on every packet.
//!
//! # Examples
//!
//! ```
//! use attain_openflow::packet::{self, EtherType, Ethernet, Payload};
//! use attain_openflow::MacAddr;
//!
//! # fn main() -> Result<(), attain_openflow::CodecError> {
//! let frame = packet::arp_request(
//!     MacAddr::from_low(1),
//!     "10.0.1.1".parse().unwrap(),
//!     "10.0.1.2".parse().unwrap(),
//! );
//! let bytes = frame.encode();
//! let decoded = Ethernet::decode(&bytes)?;
//! assert_eq!(decoded.ethertype, EtherType::ARP);
//! assert!(matches!(decoded.payload, Payload::Arp(_)));
//! # Ok(())
//! # }
//! ```

mod arp;
mod builder;
mod ethernet;
mod icmp;
mod ipv4;
mod tcp;
mod udp;

pub use arp::{Arp, ArpOperation};
pub use builder::{
    arp_reply, arp_request, icmp_echo_reply, icmp_echo_request, tcp_segment, udp_datagram,
};
pub use ethernet::{EtherType, Ethernet, Payload};
pub use icmp::{Icmp, IcmpKind};
pub use ipv4::Ipv4;
pub use tcp::{Tcp, TcpFlags};
pub use udp::Udp;

use crate::r#match::{FlowKey, OFP_VLAN_NONE};
use crate::types::{MacAddr, PortNo};

/// IP protocol numbers used by the codec.
pub mod ip_proto {
    /// ICMP.
    pub const ICMP: u8 = 1;
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
}

/// Extracts the OpenFlow 1.0 flow key from a raw Ethernet frame arriving
/// on `in_port`, per the spec's "packet parsing" flow diagram: ARP fills
/// the network fields from its SPA/TPA/opcode; ICMP fills the transport
/// fields from its type/code.
///
/// Parsing is deliberately *lenient*: fields are extracted as far as the
/// available bytes allow, header by header, without validating lengths
/// or checksums. This matters because controllers routinely classify
/// **truncated** frames — a buffered `PACKET_IN` carries only
/// `miss_send_len` (default 128) bytes of a full-MTU packet, and a real
/// switch ASIC or controller still reads the complete 12-tuple from
/// those header bytes.
pub fn flow_key(frame: &[u8], in_port: PortNo) -> FlowKey {
    fn be16(b: &[u8], at: usize) -> Option<u16> {
        Some(u16::from_be_bytes([*b.get(at)?, *b.get(at + 1)?]))
    }
    fn be32(b: &[u8], at: usize) -> Option<u32> {
        Some(u32::from_be_bytes([
            *b.get(at)?,
            *b.get(at + 1)?,
            *b.get(at + 2)?,
            *b.get(at + 3)?,
        ]))
    }
    fn mac(b: &[u8], at: usize) -> Option<MacAddr> {
        let s = b.get(at..at + 6)?;
        let mut a = [0u8; 6];
        a.copy_from_slice(s);
        Some(MacAddr(a))
    }

    let mut key = FlowKey {
        in_port,
        dl_vlan: OFP_VLAN_NONE,
        ..FlowKey::default()
    };
    let (Some(dst), Some(src), Some(mut ethertype)) =
        (mac(frame, 0), mac(frame, 6), be16(frame, 12))
    else {
        return key;
    };
    key.dl_dst = dst;
    key.dl_src = src;
    let mut l3 = 14;
    if ethertype == EtherType::VLAN.0 {
        let (Some(tci), Some(inner)) = (be16(frame, 14), be16(frame, 16)) else {
            return key;
        };
        key.dl_vlan = tci & 0x0fff;
        key.dl_vlan_pcp = (tci >> 13) as u8;
        ethertype = inner;
        l3 = 18;
    }
    key.dl_type = ethertype;
    match ethertype {
        t if t == EtherType::ARP.0 => {
            // ARP: opcode at +6, SPA at +14, TPA at +24.
            if let Some(op) = be16(frame, l3 + 6) {
                key.nw_proto = op as u8;
            }
            if let Some(spa) = be32(frame, l3 + 14) {
                key.nw_src = spa;
            }
            if let Some(tpa) = be32(frame, l3 + 24) {
                key.nw_dst = tpa;
            }
        }
        t if t == EtherType::IPV4.0 => {
            let Some(ver_ihl) = frame.get(l3).copied() else {
                return key;
            };
            if ver_ihl >> 4 != 4 {
                return key;
            }
            let ihl = (ver_ihl & 0x0f) as usize * 4;
            if let Some(tos) = frame.get(l3 + 1) {
                key.nw_tos = *tos;
            }
            if let Some(proto) = frame.get(l3 + 9) {
                key.nw_proto = *proto;
            }
            if let Some(src) = be32(frame, l3 + 12) {
                key.nw_src = src;
            }
            if let Some(dst) = be32(frame, l3 + 16) {
                key.nw_dst = dst;
            }
            let l4 = l3 + ihl.max(20);
            match key.nw_proto {
                ip_proto::ICMP => {
                    if let Some(t) = frame.get(l4) {
                        key.tp_src = *t as u16;
                    }
                    if let Some(c) = frame.get(l4 + 1) {
                        key.tp_dst = *c as u16;
                    }
                }
                ip_proto::TCP | ip_proto::UDP => {
                    if let Some(sp) = be16(frame, l4) {
                        key.tp_src = sp;
                    }
                    if let Some(dp) = be16(frame, l4 + 2) {
                        key.tp_dst = dp;
                    }
                }
                _ => {}
            }
        }
        _ => {}
    }
    key
}

pub use ipv4::IpPayload;

/// Computes the ones-complement Internet checksum over `data`.
pub(crate) fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MacAddr;

    #[test]
    fn checksum_of_zeroes_is_ffff() {
        assert_eq!(internet_checksum(&[0, 0, 0, 0]), 0xffff);
    }

    #[test]
    fn checksum_detects_corruption() {
        let data = [0x45u8, 0x00, 0x00, 0x28, 0x12, 0x34];
        let ok = internet_checksum(&data);
        let mut bad = data;
        bad[1] ^= 0xff;
        assert_ne!(ok, internet_checksum(&bad));
    }

    #[test]
    fn checksum_handles_odd_length() {
        // Must not panic and must include the final byte.
        let a = internet_checksum(&[1, 2, 3]);
        let b = internet_checksum(&[1, 2]);
        assert_ne!(a, b);
    }

    #[test]
    fn flow_key_from_arp() {
        let frame = arp_request(
            MacAddr::from_low(0x11),
            "10.0.1.1".parse().unwrap(),
            "10.0.1.2".parse().unwrap(),
        );
        let key = flow_key(&frame.encode(), PortNo(4));
        assert_eq!(key.in_port, PortNo(4));
        assert_eq!(key.dl_type, 0x0806);
        assert_eq!(key.dl_dst, MacAddr::BROADCAST);
        assert_eq!(key.nw_proto, 1); // ARP request opcode
        assert_eq!(key.nw_src, u32::from_be_bytes([10, 0, 1, 1]));
        assert_eq!(key.nw_dst, u32::from_be_bytes([10, 0, 1, 2]));
        assert_eq!(key.dl_vlan, OFP_VLAN_NONE);
    }

    #[test]
    fn flow_key_from_tcp() {
        let frame = tcp_segment(
            MacAddr::from_low(1),
            MacAddr::from_low(2),
            "10.0.1.1".parse().unwrap(),
            "10.0.2.2".parse().unwrap(),
            5001,
            80,
            7,
            9,
            TcpFlags::SYN,
            vec![],
        );
        let key = flow_key(&frame.encode(), PortNo(1));
        assert_eq!(key.dl_type, 0x0800);
        assert_eq!(key.nw_proto, ip_proto::TCP);
        assert_eq!(key.tp_src, 5001);
        assert_eq!(key.tp_dst, 80);
    }

    #[test]
    fn flow_key_from_icmp_uses_type_and_code() {
        let frame = icmp_echo_request(
            MacAddr::from_low(1),
            MacAddr::from_low(2),
            "10.0.1.1".parse().unwrap(),
            "10.0.2.2".parse().unwrap(),
            42,
            1,
            vec![0; 48],
        );
        let key = flow_key(&frame.encode(), PortNo(2));
        assert_eq!(key.nw_proto, ip_proto::ICMP);
        assert_eq!(key.tp_src, 8); // echo request type
        assert_eq!(key.tp_dst, 0);
    }

    #[test]
    fn flow_key_of_garbage_frame_has_l1_fields_only() {
        let key = flow_key(&[1, 2, 3], PortNo(9));
        assert_eq!(key.in_port, PortNo(9));
        assert_eq!(key.dl_type, 0);
    }

    #[test]
    fn flow_key_survives_miss_send_len_truncation() {
        // A full-MTU TCP frame truncated to the spec's default 128-byte
        // miss_send_len must still yield the complete 12-tuple — this is
        // what every controller sees in buffered PACKET_INs.
        let frame = tcp_segment(
            MacAddr::from_low(1),
            MacAddr::from_low(2),
            "10.0.0.1".parse().unwrap(),
            "10.0.0.6".parse().unwrap(),
            30000,
            5001,
            77,
            1,
            TcpFlags::ACK,
            vec![0x49; 1460],
        )
        .encode();
        let full = flow_key(&frame, PortNo(3));
        let truncated = flow_key(&frame[..128], PortNo(3));
        assert_eq!(truncated, full);
        assert_eq!(truncated.dl_src, MacAddr::from_low(1));
        assert_eq!(truncated.tp_dst, 5001);
        // Even a headers-only 54-byte prefix still carries the key.
        let minimal = flow_key(&frame[..54], PortNo(3));
        assert_eq!(minimal, full);
    }
}
