//! IPv4 with header checksum computation.

use super::icmp::Icmp;
use super::tcp::Tcp;
use super::udp::Udp;
use super::{internet_checksum, ip_proto};
use crate::error::CodecError;
use crate::wire::{Reader, Writer};
use std::net::Ipv4Addr;

/// A decoded IPv4 payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IpPayload {
    /// ICMP message.
    Icmp(Icmp),
    /// TCP segment.
    Tcp(Tcp),
    /// UDP datagram.
    Udp(Udp),
    /// Unrecognized protocol, carried opaquely.
    Other(Vec<u8>),
}

/// An IPv4 packet (no options, no fragmentation — the simulated hosts
/// never emit either).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ipv4 {
    /// Type-of-service / DSCP byte.
    pub tos: u8,
    /// Identification field.
    pub identification: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol number.
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload.
    pub payload: IpPayload,
}

impl Ipv4 {
    /// Decodes an IPv4 packet, verifying the header checksum.
    ///
    /// # Errors
    ///
    /// Fails on truncation, a bad version/IHL, a total length that does
    /// not fit, or a bad header checksum.
    pub fn decode(buf: &[u8]) -> Result<Ipv4, CodecError> {
        let mut r = Reader::new(buf, "ipv4");
        let ver_ihl = r.u8()?;
        if ver_ihl >> 4 != 4 {
            return Err(CodecError::BadValue {
                field: "ipv4.version",
                value: (ver_ihl >> 4) as u64,
            });
        }
        let ihl = (ver_ihl & 0x0f) as usize * 4;
        if ihl < 20 || buf.len() < ihl {
            return Err(CodecError::BadLength {
                context: "ipv4.ihl",
                found: ihl,
            });
        }
        if internet_checksum(&buf[..ihl]) != 0 {
            return Err(CodecError::BadValue {
                field: "ipv4.checksum",
                value: u16::from_be_bytes([buf[10], buf[11]]) as u64,
            });
        }
        let tos = r.u8()?;
        let total_len = r.u16()? as usize;
        if total_len < ihl || total_len > buf.len() {
            return Err(CodecError::BadLength {
                context: "ipv4.total_len",
                found: total_len,
            });
        }
        let identification = r.u16()?;
        let _flags_frag = r.u16()?;
        let ttl = r.u8()?;
        let protocol = r.u8()?;
        let _checksum = r.u16()?;
        let src = Ipv4Addr::from(r.array::<4>()?);
        let dst = Ipv4Addr::from(r.array::<4>()?);
        r.skip(ihl - 20)?; // options, if any
        let body = &buf[ihl..total_len];
        let payload = match protocol {
            ip_proto::ICMP => IpPayload::Icmp(Icmp::decode(body)?),
            ip_proto::TCP => IpPayload::Tcp(Tcp::decode(body)?),
            ip_proto::UDP => IpPayload::Udp(Udp::decode(body)?),
            _ => IpPayload::Other(body.to_vec()),
        };
        Ok(Ipv4 {
            tos,
            identification,
            ttl,
            protocol,
            src,
            dst,
            payload,
        })
    }

    /// Encodes the packet into `w`, computing the header checksum.
    pub fn encode(&self, w: &mut Writer) {
        let mut body = Writer::new();
        match &self.payload {
            IpPayload::Icmp(i) => i.encode(&mut body),
            IpPayload::Tcp(t) => t.encode(&mut body),
            IpPayload::Udp(u) => u.encode(&mut body),
            IpPayload::Other(b) => body.bytes(b),
        }
        let body = body.into_vec();
        let total_len = 20 + body.len();

        let mut hdr = Writer::with_capacity(20);
        hdr.u8(0x45); // version 4, IHL 5
        hdr.u8(self.tos);
        hdr.u16(total_len as u16);
        hdr.u16(self.identification);
        hdr.u16(0x4000); // don't fragment
        hdr.u8(self.ttl);
        hdr.u8(self.protocol);
        hdr.u16(0); // checksum placeholder
        hdr.bytes(&self.src.octets());
        hdr.bytes(&self.dst.octets());
        let mut hdr = hdr.into_vec();
        let csum = internet_checksum(&hdr);
        hdr[10..12].copy_from_slice(&csum.to_be_bytes());

        w.bytes(&hdr);
        w.bytes(&body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4 {
        Ipv4 {
            tos: 0,
            identification: 0x1234,
            ttl: 64,
            protocol: 0x2a, // unknown: payload kept opaque
            src: Ipv4Addr::new(10, 0, 1, 1),
            dst: Ipv4Addr::new(10, 0, 2, 2),
            payload: IpPayload::Other(vec![1, 2, 3, 4]),
        }
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let mut w = Writer::new();
        p.encode(&mut w);
        assert_eq!(Ipv4::decode(&w.into_vec()).unwrap(), p);
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let p = sample();
        let mut w = Writer::new();
        p.encode(&mut w);
        let mut v = w.into_vec();
        v[8] ^= 0xff; // flip TTL
        assert!(matches!(
            Ipv4::decode(&v).unwrap_err(),
            CodecError::BadValue {
                field: "ipv4.checksum",
                ..
            }
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let p = sample();
        let mut w = Writer::new();
        p.encode(&mut w);
        let mut v = w.into_vec();
        v[0] = 0x65; // version 6
        assert!(Ipv4::decode(&v).is_err());
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let p = sample();
        let mut w = Writer::new();
        p.encode(&mut w);
        let mut v = w.into_vec();
        // Inflate total_len and fix the checksum so only the length check
        // can fire.
        v[2] = 0xff;
        v[3] = 0xff;
        v[10] = 0;
        v[11] = 0;
        let csum = internet_checksum(&v[..20]);
        v[10..12].copy_from_slice(&csum.to_be_bytes());
        assert!(matches!(
            Ipv4::decode(&v).unwrap_err(),
            CodecError::BadLength {
                context: "ipv4.total_len",
                ..
            }
        ));
    }
}
