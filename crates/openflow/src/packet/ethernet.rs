//! Ethernet II framing with optional 802.1Q tagging.

use super::arp::Arp;
use super::ipv4::Ipv4;
use crate::error::CodecError;
use crate::types::MacAddr;
use crate::wire::{Reader, Writer};
use std::fmt;

/// An Ethernet frame type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EtherType(pub u16);

impl EtherType {
    /// IPv4.
    pub const IPV4: EtherType = EtherType(0x0800);
    /// ARP.
    pub const ARP: EtherType = EtherType(0x0806);
    /// 802.1Q VLAN tag.
    pub const VLAN: EtherType = EtherType(0x8100);
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:04x}", self.0)
    }
}

/// A decoded Ethernet payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Payload {
    /// ARP packet.
    Arp(Arp),
    /// IPv4 packet.
    Ipv4(Ipv4),
    /// Unrecognized ethertype, carried opaquely.
    Other(Vec<u8>),
}

/// An Ethernet II frame.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ethernet {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// 802.1Q TCI (priority + VLAN id), if tagged.
    pub vlan: Option<u16>,
    /// Frame type of the payload.
    pub ethertype: EtherType,
    /// Payload.
    pub payload: Payload,
}

impl Ethernet {
    /// Decodes a frame.
    ///
    /// # Errors
    ///
    /// Fails if the L2 header is truncated or a recognized payload is
    /// malformed.
    pub fn decode(buf: &[u8]) -> Result<Ethernet, CodecError> {
        let mut r = Reader::new(buf, "ethernet");
        let dst = MacAddr(r.array::<6>()?);
        let src = MacAddr(r.array::<6>()?);
        let mut ethertype = EtherType(r.u16()?);
        let mut vlan = None;
        if ethertype == EtherType::VLAN {
            vlan = Some(r.u16()?);
            ethertype = EtherType(r.u16()?);
        }
        let rest = r.rest();
        let payload = match ethertype {
            EtherType::ARP => Payload::Arp(Arp::decode(rest)?),
            EtherType::IPV4 => Payload::Ipv4(Ipv4::decode(rest)?),
            _ => Payload::Other(rest.to_vec()),
        };
        Ok(Ethernet {
            dst,
            src,
            vlan,
            ethertype,
            payload,
        })
    }

    /// Encodes the frame to bytes (no trailing FCS; minimum-size padding
    /// is the simulator's concern, not the codec's).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        w.bytes(&self.dst.0);
        w.bytes(&self.src.0);
        if let Some(tci) = self.vlan {
            w.u16(EtherType::VLAN.0);
            w.u16(tci);
        }
        w.u16(self.ethertype.0);
        match &self.payload {
            Payload::Arp(a) => a.encode(&mut w),
            Payload::Ipv4(ip) => ip.encode(&mut w),
            Payload::Other(b) => w.bytes(b),
        }
        w.into_vec()
    }

    /// Total encoded length in bytes.
    pub fn wire_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_payload_roundtrip() {
        let e = Ethernet {
            dst: MacAddr::from_low(2),
            src: MacAddr::from_low(1),
            vlan: None,
            ethertype: EtherType(0x88cc), // LLDP
            payload: Payload::Other(vec![1, 2, 3]),
        };
        let bytes = e.encode();
        assert_eq!(Ethernet::decode(&bytes).unwrap(), e);
    }

    #[test]
    fn vlan_tagged_roundtrip() {
        let e = Ethernet {
            dst: MacAddr::BROADCAST,
            src: MacAddr::from_low(9),
            vlan: Some((3 << 13) | 100),
            ethertype: EtherType(0x1234),
            payload: Payload::Other(vec![]),
        };
        let bytes = e.encode();
        let d = Ethernet::decode(&bytes).unwrap();
        assert_eq!(d.vlan, Some((3 << 13) | 100));
        assert_eq!(d, e);
    }

    #[test]
    fn truncated_header_fails() {
        assert!(Ethernet::decode(&[0u8; 10]).is_err());
    }
}
