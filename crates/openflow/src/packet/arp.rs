//! ARP for IPv4 over Ethernet.

use crate::error::CodecError;
use crate::types::MacAddr;
use crate::wire::{Reader, Writer};
use std::net::Ipv4Addr;

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ArpOperation {
    /// Who-has request.
    Request = 1,
    /// Is-at reply.
    Reply = 2,
}

impl ArpOperation {
    /// Decodes a wire value.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadValue`] for operations other than 1 or 2.
    pub fn from_wire(v: u16) -> Result<ArpOperation, CodecError> {
        match v {
            1 => Ok(ArpOperation::Request),
            2 => Ok(ArpOperation::Reply),
            other => Err(CodecError::BadValue {
                field: "arp.operation",
                value: other as u64,
            }),
        }
    }
}

/// An ARP packet (Ethernet/IPv4 flavour only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Arp {
    /// Request or reply.
    pub operation: ArpOperation,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl Arp {
    /// Decodes an ARP packet.
    ///
    /// # Errors
    ///
    /// Fails on truncation, a non-Ethernet/IPv4 header, or a bad
    /// operation.
    pub fn decode(buf: &[u8]) -> Result<Arp, CodecError> {
        let mut r = Reader::new(buf, "arp");
        let htype = r.u16()?;
        let ptype = r.u16()?;
        let hlen = r.u8()?;
        let plen = r.u8()?;
        if htype != 1 || ptype != 0x0800 || hlen != 6 || plen != 4 {
            return Err(CodecError::BadValue {
                field: "arp.header",
                value: ((htype as u64) << 32) | ptype as u64,
            });
        }
        let operation = ArpOperation::from_wire(r.u16()?)?;
        let sender_mac = MacAddr(r.array::<6>()?);
        let sender_ip = Ipv4Addr::from(r.array::<4>()?);
        let target_mac = MacAddr(r.array::<6>()?);
        let target_ip = Ipv4Addr::from(r.array::<4>()?);
        Ok(Arp {
            operation,
            sender_mac,
            sender_ip,
            target_mac,
            target_ip,
        })
    }

    /// Encodes the packet into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u16(1); // Ethernet
        w.u16(0x0800); // IPv4
        w.u8(6);
        w.u8(4);
        w.u16(self.operation as u16);
        w.bytes(&self.sender_mac.0);
        w.bytes(&self.sender_ip.octets());
        w.bytes(&self.target_mac.0);
        w.bytes(&self.target_ip.octets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let a = Arp {
            operation: ArpOperation::Reply,
            sender_mac: MacAddr::from_low(1),
            sender_ip: Ipv4Addr::new(10, 0, 1, 1),
            target_mac: MacAddr::from_low(2),
            target_ip: Ipv4Addr::new(10, 0, 1, 2),
        };
        let mut w = Writer::new();
        a.encode(&mut w);
        assert_eq!(Arp::decode(&w.into_vec()).unwrap(), a);
    }

    #[test]
    fn rejects_non_ethernet_ipv4() {
        let a = Arp {
            operation: ArpOperation::Request,
            sender_mac: MacAddr::ZERO,
            sender_ip: Ipv4Addr::UNSPECIFIED,
            target_mac: MacAddr::ZERO,
            target_ip: Ipv4Addr::UNSPECIFIED,
        };
        let mut w = Writer::new();
        a.encode(&mut w);
        let mut v = w.into_vec();
        v[0] = 0;
        v[1] = 6; // htype = IEEE 802
        assert!(Arp::decode(&v).is_err());
    }

    #[test]
    fn rejects_bad_operation() {
        let a = Arp {
            operation: ArpOperation::Request,
            sender_mac: MacAddr::ZERO,
            sender_ip: Ipv4Addr::UNSPECIFIED,
            target_mac: MacAddr::ZERO,
            target_ip: Ipv4Addr::UNSPECIFIED,
        };
        let mut w = Writer::new();
        a.encode(&mut w);
        let mut v = w.into_vec();
        v[7] = 9;
        assert!(Arp::decode(&v).is_err());
    }
}
