//! TCP segments (header + payload; checksum carried but not enforced,
//! since the simulator has no pseudo-header context at this layer).

use crate::error::CodecError;
use crate::wire::{Reader, Writer};
use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// TCP header flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK.
    pub const ACK: TcpFlags = TcpFlags(0x10);

    /// Whether all bits of `other` are set.
    pub fn contains(&self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (bit, name) in [
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
        ] {
            if self.contains(bit) {
                if any {
                    write!(f, "|")?;
                }
                f.write_str(name)?;
                any = true;
            }
        }
        if !any {
            f.write_str("-")?;
        }
        Ok(())
    }
}

/// A TCP segment (no options).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tcp {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Tcp {
    /// Decodes a TCP segment.
    ///
    /// # Errors
    ///
    /// Fails on truncation or a data offset smaller than 5 words.
    pub fn decode(buf: &[u8]) -> Result<Tcp, CodecError> {
        let mut r = Reader::new(buf, "tcp");
        let src_port = r.u16()?;
        let dst_port = r.u16()?;
        let seq = r.u32()?;
        let ack = r.u32()?;
        let off_flags = r.u16()?;
        let data_off = ((off_flags >> 12) & 0x0f) as usize * 4;
        if data_off < 20 || data_off > buf.len() {
            return Err(CodecError::BadLength {
                context: "tcp.data_offset",
                found: data_off,
            });
        }
        let flags = TcpFlags((off_flags & 0x3f) as u8);
        let window = r.u16()?;
        let _checksum = r.u16()?;
        let _urgent = r.u16()?;
        r.skip(data_off - 20)?; // options
        let payload = r.rest().to_vec();
        Ok(Tcp {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            payload,
        })
    }

    /// Encodes the segment into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u16(self.src_port);
        w.u16(self.dst_port);
        w.u32(self.seq);
        w.u32(self.ack);
        w.u16((5 << 12) | (self.flags.0 as u16));
        w.u16(self.window);
        w.u16(0); // checksum: not enforced at this layer
        w.u16(0); // urgent pointer
        w.bytes(&self.payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = Tcp {
            src_port: 5001,
            dst_port: 80,
            seq: 1000,
            ack: 2000,
            flags: TcpFlags::SYN | TcpFlags::ACK,
            window: 65535,
            payload: vec![1, 2, 3],
        };
        let mut w = Writer::new();
        t.encode(&mut w);
        assert_eq!(Tcp::decode(&w.into_vec()).unwrap(), t);
    }

    #[test]
    fn rejects_bad_data_offset() {
        let t = Tcp {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::default(),
            window: 0,
            payload: vec![],
        };
        let mut w = Writer::new();
        t.encode(&mut w);
        let mut v = w.into_vec();
        v[12] = 2 << 4; // data offset = 8 bytes
        assert!(Tcp::decode(&v).is_err());
    }

    #[test]
    fn flags_display_and_contains() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(!f.contains(TcpFlags::FIN));
        assert_eq!(f.to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::default().to_string(), "-");
    }
}
