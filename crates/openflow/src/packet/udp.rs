//! UDP datagrams.

use crate::error::CodecError;
use crate::wire::{Reader, Writer};

/// A UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Udp {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Udp {
    /// Decodes a UDP datagram.
    ///
    /// # Errors
    ///
    /// Fails on truncation or a length field inconsistent with the buffer.
    pub fn decode(buf: &[u8]) -> Result<Udp, CodecError> {
        let mut r = Reader::new(buf, "udp");
        let src_port = r.u16()?;
        let dst_port = r.u16()?;
        let length = r.u16()? as usize;
        let _checksum = r.u16()?;
        if length < 8 || length > buf.len() {
            return Err(CodecError::BadLength {
                context: "udp.length",
                found: length,
            });
        }
        let payload = r.bytes(length - 8)?.to_vec();
        Ok(Udp {
            src_port,
            dst_port,
            payload,
        })
    }

    /// Encodes the datagram into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u16(self.src_port);
        w.u16(self.dst_port);
        w.u16((8 + self.payload.len()) as u16);
        w.u16(0); // checksum optional in IPv4
        w.bytes(&self.payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let u = Udp {
            src_port: 53,
            dst_port: 4242,
            payload: vec![9; 32],
        };
        let mut w = Writer::new();
        u.encode(&mut w);
        assert_eq!(Udp::decode(&w.into_vec()).unwrap(), u);
    }

    #[test]
    fn rejects_short_length_field() {
        let u = Udp {
            src_port: 1,
            dst_port: 2,
            payload: vec![],
        };
        let mut w = Writer::new();
        u.encode(&mut w);
        let mut v = w.into_vec();
        v[5] = 4; // length < 8
        assert!(Udp::decode(&v).is_err());
    }
}
