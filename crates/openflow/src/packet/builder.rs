//! Convenience constructors for the frames the simulated hosts emit.

use super::arp::{Arp, ArpOperation};
use super::ethernet::{EtherType, Ethernet, Payload};
use super::icmp::Icmp;
use super::ip_proto;
use super::ipv4::{IpPayload, Ipv4};
use super::tcp::{Tcp, TcpFlags};
use super::udp::Udp;
use crate::types::MacAddr;
use std::net::Ipv4Addr;

/// Builds a broadcast ARP who-has request.
pub fn arp_request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Ethernet {
    Ethernet {
        dst: MacAddr::BROADCAST,
        src: sender_mac,
        vlan: None,
        ethertype: EtherType::ARP,
        payload: Payload::Arp(Arp {
            operation: ArpOperation::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }),
    }
}

/// Builds a unicast ARP is-at reply.
pub fn arp_reply(
    sender_mac: MacAddr,
    sender_ip: Ipv4Addr,
    target_mac: MacAddr,
    target_ip: Ipv4Addr,
) -> Ethernet {
    Ethernet {
        dst: target_mac,
        src: sender_mac,
        vlan: None,
        ethertype: EtherType::ARP,
        payload: Payload::Arp(Arp {
            operation: ArpOperation::Reply,
            sender_mac,
            sender_ip,
            target_mac,
            target_ip,
        }),
    }
}

fn ipv4_frame(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    protocol: u8,
    payload: IpPayload,
) -> Ethernet {
    Ethernet {
        dst: dst_mac,
        src: src_mac,
        vlan: None,
        ethertype: EtherType::IPV4,
        payload: Payload::Ipv4(Ipv4 {
            tos: 0,
            identification: 0,
            ttl: 64,
            protocol,
            src: src_ip,
            dst: dst_ip,
            payload,
        }),
    }
}

/// Builds an ICMP echo request, as `ping` sends each second.
#[allow(clippy::too_many_arguments)]
pub fn icmp_echo_request(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    identifier: u16,
    sequence: u16,
    payload: Vec<u8>,
) -> Ethernet {
    ipv4_frame(
        src_mac,
        dst_mac,
        src_ip,
        dst_ip,
        ip_proto::ICMP,
        IpPayload::Icmp(Icmp {
            icmp_type: 8,
            code: 0,
            identifier,
            sequence,
            payload,
        }),
    )
}

/// Builds an ICMP echo reply mirroring a request.
#[allow(clippy::too_many_arguments)]
pub fn icmp_echo_reply(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    identifier: u16,
    sequence: u16,
    payload: Vec<u8>,
) -> Ethernet {
    ipv4_frame(
        src_mac,
        dst_mac,
        src_ip,
        dst_ip,
        ip_proto::ICMP,
        IpPayload::Icmp(Icmp {
            icmp_type: 0,
            code: 0,
            identifier,
            sequence,
            payload,
        }),
    )
}

/// Builds a TCP segment, as the `iperf` model exchanges.
#[allow(clippy::too_many_arguments)]
pub fn tcp_segment(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: TcpFlags,
    payload: Vec<u8>,
) -> Ethernet {
    ipv4_frame(
        src_mac,
        dst_mac,
        src_ip,
        dst_ip,
        ip_proto::TCP,
        IpPayload::Tcp(Tcp {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 65535,
            payload,
        }),
    )
}

/// Builds a UDP datagram.
#[allow(clippy::too_many_arguments)]
pub fn udp_datagram(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload: Vec<u8>,
) -> Ethernet {
    ipv4_frame(
        src_mac,
        dst_mac,
        src_ip,
        dst_ip,
        ip_proto::UDP,
        IpPayload::Udp(Udp {
            src_port,
            dst_port,
            payload,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_pair_roundtrips_through_bytes() {
        let req = icmp_echo_request(
            MacAddr::from_low(1),
            MacAddr::from_low(2),
            Ipv4Addr::new(10, 0, 1, 1),
            Ipv4Addr::new(10, 0, 2, 2),
            7,
            3,
            vec![0x61; 56],
        );
        let bytes = req.encode();
        let back = Ethernet::decode(&bytes).unwrap();
        assert_eq!(back, req);
        let Payload::Ipv4(ip) = &back.payload else {
            panic!("not ipv4");
        };
        let IpPayload::Icmp(icmp) = &ip.payload else {
            panic!("not icmp");
        };
        assert_eq!(icmp.sequence, 3);
    }

    #[test]
    fn arp_pair_addresses() {
        let req = arp_request(
            MacAddr::from_low(5),
            Ipv4Addr::new(10, 0, 0, 5),
            Ipv4Addr::new(10, 0, 0, 6),
        );
        assert_eq!(req.dst, MacAddr::BROADCAST);
        let rep = arp_reply(
            MacAddr::from_low(6),
            Ipv4Addr::new(10, 0, 0, 6),
            MacAddr::from_low(5),
            Ipv4Addr::new(10, 0, 0, 5),
        );
        assert_eq!(rep.dst, MacAddr::from_low(5));
    }

    #[test]
    fn udp_roundtrip() {
        let d = udp_datagram(
            MacAddr::from_low(1),
            MacAddr::from_low(2),
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1000,
            2000,
            vec![1, 2, 3],
        );
        assert_eq!(Ethernet::decode(&d.encode()).unwrap(), d);
    }
}
