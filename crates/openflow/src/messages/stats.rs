//! `OFPT_STATS_REQUEST` / `OFPT_STATS_REPLY` and their typed bodies.

use crate::actions::Action;
use crate::error::CodecError;
use crate::r#match::Match;
use crate::types::PortNo;
use crate::wire::{Reader, Writer};

const OFPST_DESC: u16 = 0;
const OFPST_FLOW: u16 = 1;
const OFPST_AGGREGATE: u16 = 2;
const OFPST_TABLE: u16 = 3;
const OFPST_PORT: u16 = 4;
const OFPST_QUEUE: u16 = 5;

/// Reads a fixed-size NUL-padded ASCII field.
fn read_fixed_string<const N: usize>(r: &mut Reader<'_>) -> Result<String, CodecError> {
    let raw = r.array::<N>()?;
    let end = raw.iter().position(|&b| b == 0).unwrap_or(N);
    Ok(String::from_utf8_lossy(&raw[..end]).into_owned())
}

/// Writes a string into a fixed-size NUL-padded field, truncating to
/// `N - 1` bytes so the result stays NUL-terminated.
fn write_fixed_string<const N: usize>(s: &str, w: &mut Writer) {
    let mut buf = [0u8; N];
    let src = s.as_bytes();
    let n = src.len().min(N - 1);
    buf[..n].copy_from_slice(&src[..n]);
    w.bytes(&buf);
}

/// A `STATS_REQUEST` body (`ofp_stats_request` with its typed payload).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StatsBody {
    /// Switch description request (no payload).
    Desc,
    /// Individual flow statistics.
    Flow {
        /// Flows to describe (subsumption match).
        r#match: Match,
        /// Table to read, or 0xff for all.
        table_id: u8,
        /// Restrict to flows with this out port ([`PortNo::NONE`] = all).
        out_port: PortNo,
    },
    /// Aggregate flow statistics over matching flows.
    Aggregate {
        /// Flows to aggregate (subsumption match).
        r#match: Match,
        /// Table to read, or 0xff for all.
        table_id: u8,
        /// Restrict to flows with this out port.
        out_port: PortNo,
    },
    /// Per-table statistics (no payload).
    Table,
    /// Per-port statistics.
    Port {
        /// Port to read, or [`PortNo::NONE`] for all.
        port_no: PortNo,
    },
    /// Per-queue statistics.
    Queue {
        /// Port to read, or [`PortNo::ALL`] for all.
        port_no: PortNo,
        /// Queue to read, or `0xffff_ffff` for all.
        queue_id: u32,
    },
}

impl StatsBody {
    fn stats_type(&self) -> u16 {
        match self {
            StatsBody::Desc => OFPST_DESC,
            StatsBody::Flow { .. } => OFPST_FLOW,
            StatsBody::Aggregate { .. } => OFPST_AGGREGATE,
            StatsBody::Table => OFPST_TABLE,
            StatsBody::Port { .. } => OFPST_PORT,
            StatsBody::Queue { .. } => OFPST_QUEUE,
        }
    }

    /// Decodes a full request body (type + flags + payload).
    ///
    /// # Errors
    ///
    /// Fails on truncation or an unknown statistics type.
    pub fn decode(r: &mut Reader<'_>) -> Result<StatsBody, CodecError> {
        let ty = r.u16()?;
        let _flags = r.u16()?;
        Ok(match ty {
            OFPST_DESC => StatsBody::Desc,
            OFPST_FLOW | OFPST_AGGREGATE => {
                let m = Match::decode(r)?;
                let table_id = r.u8()?;
                r.skip(1)?;
                let out_port = PortNo(r.u16()?);
                if ty == OFPST_FLOW {
                    StatsBody::Flow {
                        r#match: m,
                        table_id,
                        out_port,
                    }
                } else {
                    StatsBody::Aggregate {
                        r#match: m,
                        table_id,
                        out_port,
                    }
                }
            }
            OFPST_TABLE => StatsBody::Table,
            OFPST_PORT => {
                let port_no = PortNo(r.u16()?);
                r.skip(6)?;
                StatsBody::Port { port_no }
            }
            OFPST_QUEUE => {
                let port_no = PortNo(r.u16()?);
                r.skip(2)?;
                StatsBody::Queue {
                    port_no,
                    queue_id: r.u32()?,
                }
            }
            other => {
                return Err(CodecError::BadValue {
                    field: "ofp_stats_request.type",
                    value: other as u64,
                })
            }
        })
    }

    /// Encodes the full request body into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u16(self.stats_type());
        w.u16(0); // flags: none defined for requests
        match self {
            StatsBody::Desc | StatsBody::Table => {}
            StatsBody::Flow {
                r#match,
                table_id,
                out_port,
            }
            | StatsBody::Aggregate {
                r#match,
                table_id,
                out_port,
            } => {
                r#match.encode(w);
                w.u8(*table_id);
                w.pad(1);
                w.u16(out_port.0);
            }
            StatsBody::Port { port_no } => {
                w.u16(port_no.0);
                w.pad(6);
            }
            StatsBody::Queue { port_no, queue_id } => {
                w.u16(port_no.0);
                w.pad(2);
                w.u32(*queue_id);
            }
        }
    }
}

/// `ofp_desc_stats`: the switch's textual self-description.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SwitchDesc {
    /// Manufacturer description.
    pub mfr_desc: String,
    /// Hardware description.
    pub hw_desc: String,
    /// Software description.
    pub sw_desc: String,
    /// Serial number.
    pub serial_num: String,
    /// Human-readable datapath description.
    pub dp_desc: String,
}

/// One `ofp_flow_stats` record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FlowStatsEntry {
    /// Table containing the flow.
    pub table_id: u8,
    /// The flow's match.
    pub r#match: Match,
    /// Seconds installed.
    pub duration_sec: u32,
    /// Sub-second remainder in nanoseconds.
    pub duration_nsec: u32,
    /// Priority.
    pub priority: u16,
    /// Idle timeout.
    pub idle_timeout: u16,
    /// Hard timeout.
    pub hard_timeout: u16,
    /// Cookie.
    pub cookie: u64,
    /// Matched packets.
    pub packet_count: u64,
    /// Matched bytes.
    pub byte_count: u64,
    /// The flow's actions.
    pub actions: Vec<Action>,
}

/// `ofp_aggregate_stats_reply`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AggregateStats {
    /// Matched packets across all selected flows.
    pub packet_count: u64,
    /// Matched bytes across all selected flows.
    pub byte_count: u64,
    /// Number of selected flows.
    pub flow_count: u32,
}

/// One `ofp_table_stats` record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableStatsEntry {
    /// Table id.
    pub table_id: u8,
    /// Table name.
    pub name: String,
    /// Wildcards the table supports.
    pub wildcards: u32,
    /// Maximum entries.
    pub max_entries: u32,
    /// Active entries.
    pub active_count: u32,
    /// Packets looked up.
    pub lookup_count: u64,
    /// Packets that hit.
    pub matched_count: u64,
}

/// One `ofp_port_stats` record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PortStatsEntry {
    /// Port number.
    pub port_no: PortNo,
    /// Received packets.
    pub rx_packets: u64,
    /// Transmitted packets.
    pub tx_packets: u64,
    /// Received bytes.
    pub rx_bytes: u64,
    /// Transmitted bytes.
    pub tx_bytes: u64,
    /// Packets dropped on receive.
    pub rx_dropped: u64,
    /// Packets dropped on transmit.
    pub tx_dropped: u64,
    /// Receive errors.
    pub rx_errors: u64,
    /// Transmit errors.
    pub tx_errors: u64,
}

/// One `ofp_queue_stats` record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct QueueStatsEntry {
    /// Port number.
    pub port_no: PortNo,
    /// Queue id.
    pub queue_id: u32,
    /// Transmitted bytes.
    pub tx_bytes: u64,
    /// Transmitted packets.
    pub tx_packets: u64,
    /// Packets dropped due to overrun.
    pub tx_errors: u64,
}

/// A `STATS_REPLY` body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StatsReplyBody {
    /// Switch description.
    Desc(SwitchDesc),
    /// Individual flow statistics.
    Flow(Vec<FlowStatsEntry>),
    /// Aggregate statistics.
    Aggregate(AggregateStats),
    /// Per-table statistics.
    Table(Vec<TableStatsEntry>),
    /// Per-port statistics.
    Port(Vec<PortStatsEntry>),
    /// Per-queue statistics.
    Queue(Vec<QueueStatsEntry>),
}

impl StatsReplyBody {
    fn stats_type(&self) -> u16 {
        match self {
            StatsReplyBody::Desc(_) => OFPST_DESC,
            StatsReplyBody::Flow(_) => OFPST_FLOW,
            StatsReplyBody::Aggregate(_) => OFPST_AGGREGATE,
            StatsReplyBody::Table(_) => OFPST_TABLE,
            StatsReplyBody::Port(_) => OFPST_PORT,
            StatsReplyBody::Queue(_) => OFPST_QUEUE,
        }
    }

    /// Decodes a full reply body.
    ///
    /// # Errors
    ///
    /// Fails on truncation, an unknown statistics type, or malformed
    /// records.
    pub fn decode(r: &mut Reader<'_>) -> Result<StatsReplyBody, CodecError> {
        let ty = r.u16()?;
        let _flags = r.u16()?;
        Ok(match ty {
            OFPST_DESC => {
                let mfr_desc = read_fixed_string::<256>(r)?;
                let hw_desc = read_fixed_string::<256>(r)?;
                let sw_desc = read_fixed_string::<256>(r)?;
                let serial_num = read_fixed_string::<32>(r)?;
                let dp_desc = read_fixed_string::<256>(r)?;
                StatsReplyBody::Desc(SwitchDesc {
                    mfr_desc,
                    hw_desc,
                    sw_desc,
                    serial_num,
                    dp_desc,
                })
            }
            OFPST_FLOW => {
                let mut entries = Vec::new();
                while r.remaining() > 0 {
                    let len = r.u16()? as usize;
                    if len < 88 {
                        return Err(CodecError::BadLength {
                            context: "ofp_flow_stats.length",
                            found: len,
                        });
                    }
                    let mut e = r.sub(len - 2, "ofp_flow_stats")?;
                    let table_id = e.u8()?;
                    e.skip(1)?;
                    let m = Match::decode(&mut e)?;
                    let duration_sec = e.u32()?;
                    let duration_nsec = e.u32()?;
                    let priority = e.u16()?;
                    let idle_timeout = e.u16()?;
                    let hard_timeout = e.u16()?;
                    e.skip(6)?;
                    let cookie = e.u64()?;
                    let packet_count = e.u64()?;
                    let byte_count = e.u64()?;
                    let alen = e.remaining();
                    let actions = Action::decode_list(&mut e, alen)?;
                    entries.push(FlowStatsEntry {
                        table_id,
                        r#match: m,
                        duration_sec,
                        duration_nsec,
                        priority,
                        idle_timeout,
                        hard_timeout,
                        cookie,
                        packet_count,
                        byte_count,
                        actions,
                    });
                }
                StatsReplyBody::Flow(entries)
            }
            OFPST_AGGREGATE => {
                let packet_count = r.u64()?;
                let byte_count = r.u64()?;
                let flow_count = r.u32()?;
                r.skip(4)?;
                StatsReplyBody::Aggregate(AggregateStats {
                    packet_count,
                    byte_count,
                    flow_count,
                })
            }
            OFPST_TABLE => {
                let mut entries = Vec::new();
                while r.remaining() > 0 {
                    let table_id = r.u8()?;
                    r.skip(3)?;
                    let name = read_fixed_string::<32>(r)?;
                    entries.push(TableStatsEntry {
                        table_id,
                        name,
                        wildcards: r.u32()?,
                        max_entries: r.u32()?,
                        active_count: r.u32()?,
                        lookup_count: r.u64()?,
                        matched_count: r.u64()?,
                    });
                }
                StatsReplyBody::Table(entries)
            }
            OFPST_PORT => {
                let mut entries = Vec::new();
                while r.remaining() > 0 {
                    let port_no = PortNo(r.u16()?);
                    r.skip(6)?;
                    let rx_packets = r.u64()?;
                    let tx_packets = r.u64()?;
                    let rx_bytes = r.u64()?;
                    let tx_bytes = r.u64()?;
                    let rx_dropped = r.u64()?;
                    let tx_dropped = r.u64()?;
                    let rx_errors = r.u64()?;
                    let tx_errors = r.u64()?;
                    // rx_frame_err, rx_over_err, rx_crc_err, collisions
                    r.skip(32)?;
                    entries.push(PortStatsEntry {
                        port_no,
                        rx_packets,
                        tx_packets,
                        rx_bytes,
                        tx_bytes,
                        rx_dropped,
                        tx_dropped,
                        rx_errors,
                        tx_errors,
                    });
                }
                StatsReplyBody::Port(entries)
            }
            OFPST_QUEUE => {
                let mut entries = Vec::new();
                while r.remaining() > 0 {
                    let port_no = PortNo(r.u16()?);
                    r.skip(2)?;
                    entries.push(QueueStatsEntry {
                        port_no,
                        queue_id: r.u32()?,
                        tx_bytes: r.u64()?,
                        tx_packets: r.u64()?,
                        tx_errors: r.u64()?,
                    });
                }
                StatsReplyBody::Queue(entries)
            }
            other => {
                return Err(CodecError::BadValue {
                    field: "ofp_stats_reply.type",
                    value: other as u64,
                })
            }
        })
    }

    /// Encodes the full reply body into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u16(self.stats_type());
        w.u16(0); // flags: no OFPSF_REPLY_MORE continuation
        match self {
            StatsReplyBody::Desc(d) => {
                write_fixed_string::<256>(&d.mfr_desc, w);
                write_fixed_string::<256>(&d.hw_desc, w);
                write_fixed_string::<256>(&d.sw_desc, w);
                write_fixed_string::<32>(&d.serial_num, w);
                write_fixed_string::<256>(&d.dp_desc, w);
            }
            StatsReplyBody::Flow(entries) => {
                for e in entries {
                    let alen: usize = e.actions.iter().map(Action::wire_len).sum();
                    w.u16((88 + alen) as u16);
                    w.u8(e.table_id);
                    w.pad(1);
                    e.r#match.encode(w);
                    w.u32(e.duration_sec);
                    w.u32(e.duration_nsec);
                    w.u16(e.priority);
                    w.u16(e.idle_timeout);
                    w.u16(e.hard_timeout);
                    w.pad(6);
                    w.u64(e.cookie);
                    w.u64(e.packet_count);
                    w.u64(e.byte_count);
                    Action::encode_list(&e.actions, w);
                }
            }
            StatsReplyBody::Aggregate(a) => {
                w.u64(a.packet_count);
                w.u64(a.byte_count);
                w.u32(a.flow_count);
                w.pad(4);
            }
            StatsReplyBody::Table(entries) => {
                for e in entries {
                    w.u8(e.table_id);
                    w.pad(3);
                    write_fixed_string::<32>(&e.name, w);
                    w.u32(e.wildcards);
                    w.u32(e.max_entries);
                    w.u32(e.active_count);
                    w.u64(e.lookup_count);
                    w.u64(e.matched_count);
                }
            }
            StatsReplyBody::Port(entries) => {
                for e in entries {
                    w.u16(e.port_no.0);
                    w.pad(6);
                    w.u64(e.rx_packets);
                    w.u64(e.tx_packets);
                    w.u64(e.rx_bytes);
                    w.u64(e.tx_bytes);
                    w.u64(e.rx_dropped);
                    w.u64(e.tx_dropped);
                    w.u64(e.rx_errors);
                    w.u64(e.tx_errors);
                    w.pad(32);
                }
            }
            StatsReplyBody::Queue(entries) => {
                for e in entries {
                    w.u16(e.port_no.0);
                    w.pad(2);
                    w.u32(e.queue_id);
                    w.u64(e.tx_bytes);
                    w.u64(e.tx_packets);
                    w.u64(e.tx_errors);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(b: StatsBody) {
        let mut w = Writer::new();
        b.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "stats req");
        assert_eq!(StatsBody::decode(&mut r).unwrap(), b);
        r.expect_end().unwrap();
    }

    fn roundtrip_reply(b: StatsReplyBody) {
        let mut w = Writer::new();
        b.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "stats reply");
        assert_eq!(StatsReplyBody::decode(&mut r).unwrap(), b);
        r.expect_end().unwrap();
    }

    #[test]
    fn request_bodies_roundtrip() {
        roundtrip_request(StatsBody::Desc);
        roundtrip_request(StatsBody::Flow {
            r#match: Match::exact_in_port(PortNo(1)),
            table_id: 0xff,
            out_port: PortNo::NONE,
        });
        roundtrip_request(StatsBody::Aggregate {
            r#match: Match::all(),
            table_id: 0,
            out_port: PortNo(2),
        });
        roundtrip_request(StatsBody::Table);
        roundtrip_request(StatsBody::Port {
            port_no: PortNo::NONE,
        });
        roundtrip_request(StatsBody::Queue {
            port_no: PortNo::ALL,
            queue_id: 0xffff_ffff,
        });
    }

    #[test]
    fn reply_bodies_roundtrip() {
        roundtrip_reply(StatsReplyBody::Desc(SwitchDesc {
            mfr_desc: "ATTAIN".into(),
            hw_desc: "simulated".into(),
            sw_desc: "netsim-ovs".into(),
            serial_num: "0001".into(),
            dp_desc: "s1".into(),
        }));
        roundtrip_reply(StatsReplyBody::Flow(vec![FlowStatsEntry {
            table_id: 0,
            r#match: Match::all(),
            duration_sec: 1,
            duration_nsec: 2,
            priority: 3,
            idle_timeout: 4,
            hard_timeout: 5,
            cookie: 6,
            packet_count: 7,
            byte_count: 8,
            actions: vec![Action::Output {
                port: PortNo(1),
                max_len: 0,
            }],
        }]));
        roundtrip_reply(StatsReplyBody::Aggregate(AggregateStats {
            packet_count: 10,
            byte_count: 20,
            flow_count: 3,
        }));
        roundtrip_reply(StatsReplyBody::Table(vec![TableStatsEntry {
            table_id: 0,
            name: "classifier".into(),
            wildcards: 0x3f_ffff,
            max_entries: 1024,
            active_count: 12,
            lookup_count: 999,
            matched_count: 900,
        }]));
        roundtrip_reply(StatsReplyBody::Port(vec![PortStatsEntry {
            port_no: PortNo(1),
            rx_packets: 1,
            tx_packets: 2,
            rx_bytes: 3,
            tx_bytes: 4,
            ..Default::default()
        }]));
        roundtrip_reply(StatsReplyBody::Queue(vec![QueueStatsEntry {
            port_no: PortNo(1),
            queue_id: 0,
            tx_bytes: 5,
            tx_packets: 6,
            tx_errors: 0,
        }]));
    }

    #[test]
    fn rejects_unknown_stats_type() {
        let mut w = Writer::new();
        w.u16(42);
        w.u16(0);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "stats req");
        assert!(StatsBody::decode(&mut r).is_err());
        let mut r = Reader::new(&v, "stats reply");
        assert!(StatsReplyBody::decode(&mut r).is_err());
    }
}
