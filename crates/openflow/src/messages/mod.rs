//! OpenFlow 1.0 message body structures.
//!
//! Each submodule implements one spec structure family with symmetric
//! `encode`/`decode` body codecs (the 8-byte header is handled by
//! [`crate::OfMessage`]).

mod config;
mod error_msg;
mod features;
mod flow_mod;
mod flow_removed;
mod packet_in;
mod packet_out;
mod port;
pub(crate) mod queue;
mod stats;

pub use config::SwitchConfig;
pub use error_msg::{bad_request, flow_mod_failed, ErrorCode, ErrorMsg, ErrorType};
pub use features::{PhyPort, SwitchFeatures};
pub use flow_mod::{FlowMod, FlowModCommand, FlowModFlags};
pub use flow_removed::{FlowRemoved, FlowRemovedReason};
pub use packet_in::{PacketIn, PacketInReason};
pub use packet_out::PacketOut;
pub use port::{PortMod, PortStatus, PortStatusReason};
pub use queue::QueueConfig;
pub use stats::{
    AggregateStats, FlowStatsEntry, PortStatsEntry, QueueStatsEntry, StatsBody, StatsReplyBody,
    SwitchDesc, TableStatsEntry,
};
