//! `OFPT_QUEUE_GET_CONFIG_REQUEST` / `REPLY`.

use crate::error::CodecError;
use crate::types::PortNo;
use crate::wire::{Reader, Writer};

/// A minimal `ofp_packet_queue` (queue id plus an optional min-rate
/// property, the only property OpenFlow 1.0 defines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueConfig {
    /// Queue identifier.
    pub queue_id: u32,
    /// Minimum guaranteed rate in 1/10 of a percent, if configured.
    pub min_rate: Option<u16>,
}

const OFPQT_MIN_RATE: u16 = 1;

impl QueueConfig {
    /// Decodes one `ofp_packet_queue`.
    ///
    /// # Errors
    ///
    /// Fails on truncation or inconsistent property lengths.
    pub fn decode(r: &mut Reader<'_>) -> Result<QueueConfig, CodecError> {
        let queue_id = r.u32()?;
        let len = r.u16()? as usize;
        r.skip(2)?;
        if len < 8 {
            return Err(CodecError::BadLength {
                context: "ofp_packet_queue.len",
                found: len,
            });
        }
        let mut props = r.sub(len - 8, "queue properties")?;
        let mut min_rate = None;
        while props.remaining() > 0 {
            let prop = props.u16()?;
            let plen = props.u16()? as usize;
            if plen < 8 {
                return Err(CodecError::BadLength {
                    context: "ofp_queue_prop_header.len",
                    found: plen,
                });
            }
            props.skip(4)?;
            let mut body = props.sub(plen - 8, "queue property body")?;
            if prop == OFPQT_MIN_RATE {
                min_rate = Some(body.u16()?);
                body.skip(6)?;
            }
        }
        Ok(QueueConfig { queue_id, min_rate })
    }

    /// Encodes the queue into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u32(self.queue_id);
        let len = if self.min_rate.is_some() { 8 + 16 } else { 8 };
        w.u16(len as u16);
        w.pad(2);
        if let Some(rate) = self.min_rate {
            w.u16(OFPQT_MIN_RATE);
            w.u16(16);
            w.pad(4);
            w.u16(rate);
            w.pad(6);
        }
    }
}

/// Decodes the body of a `QUEUE_GET_CONFIG_REQUEST`: the queried port.
pub(crate) fn decode_request(r: &mut Reader<'_>) -> Result<PortNo, CodecError> {
    let port = PortNo(r.u16()?);
    r.skip(2)?;
    Ok(port)
}

/// Encodes the body of a `QUEUE_GET_CONFIG_REQUEST`.
pub(crate) fn encode_request(port: PortNo, w: &mut Writer) {
    w.u16(port.0);
    w.pad(2);
}

/// Decodes the body of a `QUEUE_GET_CONFIG_REPLY`.
pub(crate) fn decode_reply(r: &mut Reader<'_>) -> Result<(PortNo, Vec<QueueConfig>), CodecError> {
    let port = PortNo(r.u16()?);
    r.skip(6)?;
    let mut queues = Vec::new();
    while r.remaining() > 0 {
        queues.push(QueueConfig::decode(r)?);
    }
    Ok((port, queues))
}

/// Encodes the body of a `QUEUE_GET_CONFIG_REPLY`.
pub(crate) fn encode_reply(port: PortNo, queues: &[QueueConfig], w: &mut Writer) {
    w.u16(port.0);
    w.pad(6);
    for q in queues {
        q.encode(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_roundtrip_with_min_rate() {
        let q = QueueConfig {
            queue_id: 3,
            min_rate: Some(500),
        };
        let mut w = Writer::new();
        q.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "queue");
        assert_eq!(QueueConfig::decode(&mut r).unwrap(), q);
        r.expect_end().unwrap();
    }

    #[test]
    fn queue_roundtrip_bare() {
        let q = QueueConfig {
            queue_id: 0,
            min_rate: None,
        };
        let mut w = Writer::new();
        q.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "queue");
        assert_eq!(QueueConfig::decode(&mut r).unwrap(), q);
    }

    #[test]
    fn reply_roundtrip() {
        let queues = vec![
            QueueConfig {
                queue_id: 1,
                min_rate: Some(100),
            },
            QueueConfig {
                queue_id: 2,
                min_rate: None,
            },
        ];
        let mut w = Writer::new();
        encode_reply(PortNo(9), &queues, &mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "queue reply");
        let (port, decoded) = decode_reply(&mut r).unwrap();
        assert_eq!(port, PortNo(9));
        assert_eq!(decoded, queues);
    }
}
