//! `OFPT_FLOW_MOD`.

use crate::actions::Action;
use crate::error::CodecError;
use crate::r#match::Match;
use crate::types::{buffer_id_from_wire, buffer_id_to_wire, BufferId, PortNo};
use crate::wire::{Reader, Writer};
use std::fmt;

/// `ofp_flow_mod_command`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum FlowModCommand {
    /// Add a new flow entry.
    Add = 0,
    /// Modify the actions of all matching (subsumed) entries.
    Modify = 1,
    /// Modify the actions of the entry strictly equal in match and
    /// priority.
    ModifyStrict = 2,
    /// Delete all matching (subsumed) entries.
    Delete = 3,
    /// Delete the strictly equal entry.
    DeleteStrict = 4,
}

impl FlowModCommand {
    /// Decodes a wire value.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadValue`] for values above 4.
    pub fn from_wire(v: u16) -> Result<FlowModCommand, CodecError> {
        Ok(match v {
            0 => FlowModCommand::Add,
            1 => FlowModCommand::Modify,
            2 => FlowModCommand::ModifyStrict,
            3 => FlowModCommand::Delete,
            4 => FlowModCommand::DeleteStrict,
            other => {
                return Err(CodecError::BadValue {
                    field: "ofp_flow_mod.command",
                    value: other as u64,
                })
            }
        })
    }

    /// Whether this is one of the delete commands.
    pub fn is_delete(&self) -> bool {
        matches!(self, FlowModCommand::Delete | FlowModCommand::DeleteStrict)
    }
}

impl fmt::Display for FlowModCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlowModCommand::Add => "ADD",
            FlowModCommand::Modify => "MODIFY",
            FlowModCommand::ModifyStrict => "MODIFY_STRICT",
            FlowModCommand::Delete => "DELETE",
            FlowModCommand::DeleteStrict => "DELETE_STRICT",
        };
        f.write_str(s)
    }
}

/// `ofp_flow_mod_flags` bitset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FlowModFlags(pub u16);

impl FlowModFlags {
    /// Send a `FLOW_REMOVED` when the entry expires or is deleted.
    pub const SEND_FLOW_REM: u16 = 1 << 0;
    /// Refuse to add if the new entry overlaps an existing one of equal
    /// priority.
    pub const CHECK_OVERLAP: u16 = 1 << 1;
    /// Treat this as an emergency flow entry.
    pub const EMERG: u16 = 1 << 2;

    /// Whether `flag` is set.
    pub fn has(&self, flag: u16) -> bool {
        self.0 & flag != 0
    }
}

/// An `OFPT_FLOW_MOD` body: the controller's flow-table modification
/// request. This is the message the paper's flow-modification-suppression
/// attack (Figure 10) drops on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FlowMod {
    /// Fields to match.
    pub r#match: Match,
    /// Opaque controller cookie.
    pub cookie: u64,
    /// What to do (add/modify/delete).
    pub command: FlowModCommand,
    /// Idle timeout in seconds (0 = none).
    pub idle_timeout: u16,
    /// Hard timeout in seconds (0 = none).
    pub hard_timeout: u16,
    /// Entry priority (higher wins; only meaningful with wildcards).
    pub priority: u16,
    /// Buffered packet to apply the new entry's actions to, if any.
    pub buffer_id: BufferId,
    /// For delete commands, restrict to entries with this output port
    /// ([`PortNo::NONE`] = no restriction).
    pub out_port: PortNo,
    /// Behaviour flags.
    pub flags: FlowModFlags,
    /// New action list (empty = drop).
    pub actions: Vec<Action>,
}

impl FlowMod {
    /// Convenience constructor for an `ADD` with sensible defaults
    /// (priority 32768 like `ovs-ofctl`, no timeouts, no buffer).
    pub fn add(r#match: Match, actions: Vec<Action>) -> FlowMod {
        FlowMod {
            r#match,
            cookie: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 0x8000,
            buffer_id: None,
            out_port: PortNo::NONE,
            flags: FlowModFlags::default(),
            actions,
        }
    }

    /// Decodes the body from `r`.
    ///
    /// # Errors
    ///
    /// Fails on truncation, an undefined command, or malformed actions.
    pub fn decode(r: &mut Reader<'_>) -> Result<FlowMod, CodecError> {
        let m = Match::decode(r)?;
        let cookie = r.u64()?;
        let command = FlowModCommand::from_wire(r.u16()?)?;
        let idle_timeout = r.u16()?;
        let hard_timeout = r.u16()?;
        let priority = r.u16()?;
        let buffer_id = buffer_id_from_wire(r.u32()?);
        let out_port = PortNo(r.u16()?);
        let flags = FlowModFlags(r.u16()?);
        let actions_len = r.remaining();
        let actions = Action::decode_list(r, actions_len)?;
        Ok(FlowMod {
            r#match: m,
            cookie,
            command,
            idle_timeout,
            hard_timeout,
            priority,
            buffer_id,
            out_port,
            flags,
            actions,
        })
    }

    /// Encodes the body into `w`.
    pub fn encode(&self, w: &mut Writer) {
        self.r#match.encode(w);
        w.u64(self.cookie);
        w.u16(self.command as u16);
        w.u16(self.idle_timeout);
        w.u16(self.hard_timeout);
        w.u16(self.priority);
        w.u32(buffer_id_to_wire(self.buffer_id));
        w.u16(self.out_port.0);
        w.u16(self.flags.0);
        Action::encode_list(&self.actions, w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MacAddr;

    #[test]
    fn roundtrip_add() {
        let fm = FlowMod {
            r#match: Match::exact_in_port(PortNo(1)),
            cookie: 7,
            command: FlowModCommand::Add,
            idle_timeout: 5,
            hard_timeout: 30,
            priority: 100,
            buffer_id: Some(3),
            out_port: PortNo::NONE,
            flags: FlowModFlags(FlowModFlags::SEND_FLOW_REM),
            actions: vec![
                Action::SetDlDst(MacAddr::from_low(9)),
                Action::Output {
                    port: PortNo(2),
                    max_len: 0,
                },
            ],
        };
        let mut w = Writer::new();
        fm.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "flow_mod");
        assert_eq!(FlowMod::decode(&mut r).unwrap(), fm);
        r.expect_end().unwrap();
    }

    #[test]
    fn roundtrip_delete_with_out_port() {
        let fm = FlowMod {
            command: FlowModCommand::Delete,
            out_port: PortNo(4),
            actions: vec![],
            ..FlowMod::add(Match::all(), vec![])
        };
        let mut w = Writer::new();
        fm.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "flow_mod");
        let d = FlowMod::decode(&mut r).unwrap();
        assert!(d.command.is_delete());
        assert_eq!(d.out_port, PortNo(4));
    }

    #[test]
    fn rejects_unknown_command() {
        let fm = FlowMod::add(Match::all(), vec![]);
        let mut w = Writer::new();
        fm.encode(&mut w);
        let mut v = w.into_vec();
        v[49] = 99; // command low byte (40-byte match + 8-byte cookie + 1)
        let mut r = Reader::new(&v, "flow_mod");
        assert!(FlowMod::decode(&mut r).is_err());
    }

    #[test]
    fn flags_bit_test() {
        let f = FlowModFlags(FlowModFlags::CHECK_OVERLAP);
        assert!(f.has(FlowModFlags::CHECK_OVERLAP));
        assert!(!f.has(FlowModFlags::SEND_FLOW_REM));
    }
}
