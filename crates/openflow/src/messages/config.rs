//! `OFPT_GET_CONFIG_REPLY` / `OFPT_SET_CONFIG` (`ofp_switch_config`).

use crate::error::CodecError;
use crate::wire::{Reader, Writer};

/// `ofp_switch_config` body shared by `GET_CONFIG_REPLY` and `SET_CONFIG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchConfig {
    /// `OFPC_FRAG_*` fragment-handling flags.
    pub flags: u16,
    /// Max bytes of a packet to send to the controller on table miss.
    pub miss_send_len: u16,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        // The spec default: send up to 128 bytes on miss.
        SwitchConfig {
            flags: 0,
            miss_send_len: 128,
        }
    }
}

impl SwitchConfig {
    /// Decodes the 4-byte body.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn decode(r: &mut Reader<'_>) -> Result<SwitchConfig, CodecError> {
        Ok(SwitchConfig {
            flags: r.u16()?,
            miss_send_len: r.u16()?,
        })
    }

    /// Encodes the body into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u16(self.flags);
        w.u16(self.miss_send_len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let c = SwitchConfig {
            flags: 1,
            miss_send_len: 0xffff,
        };
        let mut w = Writer::new();
        c.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "config");
        assert_eq!(SwitchConfig::decode(&mut r).unwrap(), c);
        r.expect_end().unwrap();
    }

    #[test]
    fn default_miss_send_len_is_128() {
        assert_eq!(SwitchConfig::default().miss_send_len, 128);
    }
}
