//! `OFPT_PORT_STATUS` and `OFPT_PORT_MOD`.

use crate::error::CodecError;
use crate::messages::features::PhyPort;
use crate::types::{MacAddr, PortNo};
use crate::wire::{Reader, Writer};

/// What changed about a port (`ofp_port_reason`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PortStatusReason {
    /// The port was added.
    Add = 0,
    /// The port was removed.
    Delete = 1,
    /// An attribute of the port changed.
    Modify = 2,
}

impl PortStatusReason {
    /// Decodes a wire value.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadValue`] for values above 2.
    pub fn from_wire(v: u8) -> Result<PortStatusReason, CodecError> {
        match v {
            0 => Ok(PortStatusReason::Add),
            1 => Ok(PortStatusReason::Delete),
            2 => Ok(PortStatusReason::Modify),
            other => Err(CodecError::BadValue {
                field: "ofp_port_status.reason",
                value: other as u64,
            }),
        }
    }
}

/// An `OFPT_PORT_STATUS` body: asynchronous port change notification.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PortStatus {
    /// What happened.
    pub reason: PortStatusReason,
    /// The port's (new) description.
    pub desc: PhyPort,
}

impl PortStatus {
    /// Decodes the body from `r`.
    ///
    /// # Errors
    ///
    /// Fails on truncation or an undefined reason.
    pub fn decode(r: &mut Reader<'_>) -> Result<PortStatus, CodecError> {
        let reason = PortStatusReason::from_wire(r.u8()?)?;
        r.skip(7)?;
        let desc = PhyPort::decode(r)?;
        Ok(PortStatus { reason, desc })
    }

    /// Encodes the body into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u8(self.reason as u8);
        w.pad(7);
        self.desc.encode(w);
    }
}

/// An `OFPT_PORT_MOD` body: controller request to change port behaviour.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PortMod {
    /// Port to modify.
    pub port_no: PortNo,
    /// Port MAC (sanity check against misdirected mods).
    pub hw_addr: MacAddr,
    /// New `OFPPC_*` config bits.
    pub config: u32,
    /// Which config bits to change.
    pub mask: u32,
    /// Features to advertise (0 = unchanged).
    pub advertise: u32,
}

impl PortMod {
    /// Decodes the body from `r`.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn decode(r: &mut Reader<'_>) -> Result<PortMod, CodecError> {
        let port_no = PortNo(r.u16()?);
        let hw_addr = MacAddr(r.array::<6>()?);
        let config = r.u32()?;
        let mask = r.u32()?;
        let advertise = r.u32()?;
        r.skip(4)?;
        Ok(PortMod {
            port_no,
            hw_addr,
            config,
            mask,
            advertise,
        })
    }

    /// Encodes the body into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u16(self.port_no.0);
        w.bytes(&self.hw_addr.0);
        w.u32(self.config);
        w.u32(self.mask);
        w.u32(self.advertise);
        w.pad(4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_status_roundtrip() {
        let ps = PortStatus {
            reason: PortStatusReason::Modify,
            desc: PhyPort::simulated(PortNo(2), MacAddr::from_low(2)),
        };
        let mut w = Writer::new();
        ps.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "port_status");
        assert_eq!(PortStatus::decode(&mut r).unwrap(), ps);
        r.expect_end().unwrap();
    }

    #[test]
    fn port_mod_roundtrip() {
        let pm = PortMod {
            port_no: PortNo(3),
            hw_addr: MacAddr::from_low(3),
            config: 1,
            mask: 1,
            advertise: 0,
        };
        let mut w = Writer::new();
        pm.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "port_mod");
        assert_eq!(PortMod::decode(&mut r).unwrap(), pm);
        r.expect_end().unwrap();
    }

    #[test]
    fn port_status_rejects_bad_reason() {
        let mut w = Writer::new();
        w.u8(5);
        w.pad(7);
        PhyPort::simulated(PortNo(1), MacAddr::ZERO).encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "port_status");
        assert!(PortStatus::decode(&mut r).is_err());
    }
}
