//! `OFPT_ERROR` message.

use crate::error::CodecError;
use crate::wire::{Reader, Writer};
use std::fmt;

/// Top-level error categories (`ofp_error_type`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
#[allow(missing_docs)]
pub enum ErrorType {
    HelloFailed = 0,
    BadRequest = 1,
    BadAction = 2,
    FlowModFailed = 3,
    PortModFailed = 4,
    QueueOpFailed = 5,
}

impl ErrorType {
    /// Decodes a wire value.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadValue`] for undefined categories.
    pub fn from_wire(v: u16) -> Result<ErrorType, CodecError> {
        Ok(match v {
            0 => ErrorType::HelloFailed,
            1 => ErrorType::BadRequest,
            2 => ErrorType::BadAction,
            3 => ErrorType::FlowModFailed,
            4 => ErrorType::PortModFailed,
            5 => ErrorType::QueueOpFailed,
            other => {
                return Err(CodecError::BadValue {
                    field: "ofp_error_msg.type",
                    value: other as u64,
                })
            }
        })
    }
}

impl fmt::Display for ErrorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorType::HelloFailed => "HELLO_FAILED",
            ErrorType::BadRequest => "BAD_REQUEST",
            ErrorType::BadAction => "BAD_ACTION",
            ErrorType::FlowModFailed => "FLOW_MOD_FAILED",
            ErrorType::PortModFailed => "PORT_MOD_FAILED",
            ErrorType::QueueOpFailed => "QUEUE_OP_FAILED",
        };
        f.write_str(s)
    }
}

/// The per-category error code. Codes are kept numeric because their
/// meaning depends on [`ErrorType`]; well-known values are exposed as
/// constants.
pub type ErrorCode = u16;

/// Well-known `FLOW_MOD_FAILED` codes used by the switch model.
pub mod flow_mod_failed {
    use super::ErrorCode;
    /// Flow not added because of full tables.
    pub const ALL_TABLES_FULL: ErrorCode = 0;
    /// Attempted to add overlapping flow with `CHECK_OVERLAP` set.
    pub const OVERLAP: ErrorCode = 1;
    /// Permissions error.
    pub const EPERM: ErrorCode = 2;
    /// Flow not added because of unsupported idle/hard timeout.
    pub const BAD_EMERG_TIMEOUT: ErrorCode = 3;
    /// Unsupported or unknown command.
    pub const BAD_COMMAND: ErrorCode = 4;
    /// Unsupported action list.
    pub const UNSUPPORTED: ErrorCode = 5;
}

/// Well-known `BAD_REQUEST` codes used by the switch model.
pub mod bad_request {
    use super::ErrorCode;
    /// `ofp_header.version` not supported.
    pub const BAD_VERSION: ErrorCode = 0;
    /// `ofp_header.type` not supported.
    pub const BAD_TYPE: ErrorCode = 1;
    /// Specified buffer does not exist.
    pub const BUFFER_UNKNOWN: ErrorCode = 8;
}

/// An `OFPT_ERROR` message body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ErrorMsg {
    /// Error category.
    pub error_type: ErrorType,
    /// Category-specific code.
    pub code: ErrorCode,
    /// At least 64 bytes of the offending request (or an ASCII reason for
    /// `HELLO_FAILED`).
    pub data: Vec<u8>,
}

impl ErrorMsg {
    /// Decodes the body from `r` (consumes the remainder as `data`).
    ///
    /// # Errors
    ///
    /// Fails on truncation or an undefined error category.
    pub fn decode(r: &mut Reader<'_>) -> Result<ErrorMsg, CodecError> {
        let error_type = ErrorType::from_wire(r.u16()?)?;
        let code = r.u16()?;
        let data = r.rest().to_vec();
        Ok(ErrorMsg {
            error_type,
            code,
            data,
        })
    }

    /// Encodes the body into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u16(self.error_type as u16);
        w.u16(self.code);
        w.bytes(&self.data);
    }
}

impl fmt::Display for ErrorMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} code {}", self.error_type, self.code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let e = ErrorMsg {
            error_type: ErrorType::FlowModFailed,
            code: flow_mod_failed::OVERLAP,
            data: vec![1, 2, 3],
        };
        let mut w = Writer::new();
        e.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "error");
        assert_eq!(ErrorMsg::decode(&mut r).unwrap(), e);
    }

    #[test]
    fn rejects_unknown_category() {
        let mut w = Writer::new();
        w.u16(99);
        w.u16(0);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "error");
        assert!(ErrorMsg::decode(&mut r).is_err());
    }

    #[test]
    fn display_names_category() {
        let e = ErrorMsg {
            error_type: ErrorType::BadRequest,
            code: bad_request::BUFFER_UNKNOWN,
            data: vec![],
        };
        assert_eq!(e.to_string(), "BAD_REQUEST code 8");
    }
}
