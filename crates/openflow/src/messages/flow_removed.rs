//! `OFPT_FLOW_REMOVED`.

use crate::error::CodecError;
use crate::r#match::Match;
use crate::wire::{Reader, Writer};

/// Why a flow entry was removed (`ofp_flow_removed_reason`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FlowRemovedReason {
    /// The idle timeout elapsed without traffic.
    IdleTimeout = 0,
    /// The hard timeout elapsed.
    HardTimeout = 1,
    /// The entry was deleted by a `FLOW_MOD`.
    Delete = 2,
    /// The entry was evicted to make room for a new one (Open vSwitch's
    /// eviction extension; OpenFlow standardized the same value as
    /// `OFPRR_EVICTION` in 1.4).
    Eviction = 3,
}

impl FlowRemovedReason {
    /// Decodes a wire value.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadValue`] for values above 3.
    pub fn from_wire(v: u8) -> Result<FlowRemovedReason, CodecError> {
        match v {
            0 => Ok(FlowRemovedReason::IdleTimeout),
            1 => Ok(FlowRemovedReason::HardTimeout),
            2 => Ok(FlowRemovedReason::Delete),
            3 => Ok(FlowRemovedReason::Eviction),
            other => Err(CodecError::BadValue {
                field: "ofp_flow_removed.reason",
                value: other as u64,
            }),
        }
    }
}

/// An `OFPT_FLOW_REMOVED` body: switch notification that an entry expired.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FlowRemoved {
    /// The removed entry's match.
    pub r#match: Match,
    /// The removed entry's cookie.
    pub cookie: u64,
    /// The removed entry's priority.
    pub priority: u16,
    /// Removal reason.
    pub reason: FlowRemovedReason,
    /// Seconds the entry was installed.
    pub duration_sec: u32,
    /// Sub-second remainder in nanoseconds.
    pub duration_nsec: u32,
    /// The entry's idle timeout.
    pub idle_timeout: u16,
    /// Packets matched over the entry's lifetime.
    pub packet_count: u64,
    /// Bytes matched over the entry's lifetime.
    pub byte_count: u64,
}

impl FlowRemoved {
    /// Decodes the body from `r`.
    ///
    /// # Errors
    ///
    /// Fails on truncation or an undefined reason.
    pub fn decode(r: &mut Reader<'_>) -> Result<FlowRemoved, CodecError> {
        let m = Match::decode(r)?;
        let cookie = r.u64()?;
        let priority = r.u16()?;
        let reason = FlowRemovedReason::from_wire(r.u8()?)?;
        r.skip(1)?;
        let duration_sec = r.u32()?;
        let duration_nsec = r.u32()?;
        let idle_timeout = r.u16()?;
        r.skip(2)?;
        let packet_count = r.u64()?;
        let byte_count = r.u64()?;
        Ok(FlowRemoved {
            r#match: m,
            cookie,
            priority,
            reason,
            duration_sec,
            duration_nsec,
            idle_timeout,
            packet_count,
            byte_count,
        })
    }

    /// Encodes the body into `w`.
    pub fn encode(&self, w: &mut Writer) {
        self.r#match.encode(w);
        w.u64(self.cookie);
        w.u16(self.priority);
        w.u8(self.reason as u8);
        w.pad(1);
        w.u32(self.duration_sec);
        w.u32(self.duration_nsec);
        w.u16(self.idle_timeout);
        w.pad(2);
        w.u64(self.packet_count);
        w.u64(self.byte_count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let fr = FlowRemoved {
            r#match: Match::all(),
            cookie: 0xc0ffee,
            priority: 10,
            reason: FlowRemovedReason::IdleTimeout,
            duration_sec: 12,
            duration_nsec: 345,
            idle_timeout: 5,
            packet_count: 100,
            byte_count: 6400,
        };
        let mut w = Writer::new();
        fr.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "flow_removed");
        assert_eq!(FlowRemoved::decode(&mut r).unwrap(), fr);
        r.expect_end().unwrap();
    }

    #[test]
    fn eviction_reason_roundtrips() {
        let fr = FlowRemoved {
            r#match: Match::all(),
            cookie: 0,
            priority: 0,
            reason: FlowRemovedReason::Eviction,
            duration_sec: 0,
            duration_nsec: 0,
            idle_timeout: 0,
            packet_count: 0,
            byte_count: 0,
        };
        let mut w = Writer::new();
        fr.encode(&mut w);
        let v = w.into_vec();
        assert_eq!(v[50], 3);
        let mut r = Reader::new(&v, "flow_removed");
        assert_eq!(
            FlowRemoved::decode(&mut r).unwrap().reason,
            FlowRemovedReason::Eviction
        );
    }

    #[test]
    fn rejects_bad_reason() {
        let fr = FlowRemoved {
            r#match: Match::all(),
            cookie: 0,
            priority: 0,
            reason: FlowRemovedReason::Delete,
            duration_sec: 0,
            duration_nsec: 0,
            idle_timeout: 0,
            packet_count: 0,
            byte_count: 0,
        };
        let mut w = Writer::new();
        fr.encode(&mut w);
        let mut v = w.into_vec();
        v[50] = 7; // reason byte (40 match + 8 cookie + 2 priority)
        let mut r = Reader::new(&v, "flow_removed");
        assert!(FlowRemoved::decode(&mut r).is_err());
    }
}
