//! `OFPT_PACKET_OUT`.

use crate::actions::Action;
use crate::error::CodecError;
use crate::types::{buffer_id_from_wire, buffer_id_to_wire, BufferId, PortNo};
use crate::wire::{Reader, Writer};

/// An `OFPT_PACKET_OUT` body: a controller instruction to emit a packet.
///
/// Exactly one of `buffer_id` (release a switch-buffered packet) or `data`
/// (send raw bytes) carries the payload; when `buffer_id` is `Some`, `data`
/// must be empty.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PacketOut {
    /// Buffered packet to release, if any.
    pub buffer_id: BufferId,
    /// The port the packet notionally arrived on ([`PortNo::NONE`] if
    /// controller-originated), used by `output:IN_PORT` and `FLOOD`.
    pub in_port: PortNo,
    /// Actions applied to the packet (an empty list drops it).
    pub actions: Vec<Action>,
    /// Raw frame bytes when not using a buffer.
    pub data: Vec<u8>,
}

impl PacketOut {
    /// Decodes the body from `r`.
    ///
    /// # Errors
    ///
    /// Fails on truncation or malformed actions.
    pub fn decode(r: &mut Reader<'_>) -> Result<PacketOut, CodecError> {
        let buffer_id = buffer_id_from_wire(r.u32()?);
        let in_port = PortNo(r.u16()?);
        let actions_len = r.u16()? as usize;
        let actions = Action::decode_list(r, actions_len)?;
        let data = r.rest().to_vec();
        Ok(PacketOut {
            buffer_id,
            in_port,
            actions,
            data,
        })
    }

    /// Encodes the body into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u32(buffer_id_to_wire(self.buffer_id));
        w.u16(self.in_port.0);
        let len: usize = self.actions.iter().map(Action::wire_len).sum();
        w.u16(len as u16);
        Action::encode_list(&self.actions, w);
        w.bytes(&self.data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_data() {
        let p = PacketOut {
            buffer_id: None,
            in_port: PortNo::NONE,
            actions: vec![Action::Output {
                port: PortNo::FLOOD,
                max_len: 0,
            }],
            data: vec![0xde, 0xad],
        };
        let mut w = Writer::new();
        p.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "packet_out");
        assert_eq!(PacketOut::decode(&mut r).unwrap(), p);
    }

    #[test]
    fn roundtrip_buffered_release() {
        let p = PacketOut {
            buffer_id: Some(5),
            in_port: PortNo(2),
            actions: vec![
                Action::SetTpDst(80),
                Action::Output {
                    port: PortNo(1),
                    max_len: 0,
                },
            ],
            data: vec![],
        };
        let mut w = Writer::new();
        p.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "packet_out");
        assert_eq!(PacketOut::decode(&mut r).unwrap(), p);
    }

    #[test]
    fn empty_action_list_is_a_drop() {
        let p = PacketOut {
            buffer_id: Some(1),
            in_port: PortNo(1),
            actions: vec![],
            data: vec![],
        };
        let mut w = Writer::new();
        p.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "packet_out");
        let d = PacketOut::decode(&mut r).unwrap();
        assert!(d.actions.is_empty());
    }
}
