//! `OFPT_PACKET_IN`.

use crate::error::CodecError;
use crate::types::{buffer_id_from_wire, buffer_id_to_wire, BufferId, PortNo};
use crate::wire::{Reader, Writer};

/// Why a packet was sent to the controller (`ofp_packet_in_reason`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PacketInReason {
    /// No matching flow entry (table miss).
    NoMatch = 0,
    /// An explicit `output:CONTROLLER` action.
    Action = 1,
}

impl PacketInReason {
    /// Decodes a wire value.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadValue`] for values above 1.
    pub fn from_wire(v: u8) -> Result<PacketInReason, CodecError> {
        match v {
            0 => Ok(PacketInReason::NoMatch),
            1 => Ok(PacketInReason::Action),
            other => Err(CodecError::BadValue {
                field: "ofp_packet_in.reason",
                value: other as u64,
            }),
        }
    }
}

/// An `OFPT_PACKET_IN` body: a data-plane packet delivered to the
/// controller.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PacketIn {
    /// Buffer holding the full packet on the switch, if buffered.
    pub buffer_id: BufferId,
    /// Full length of the original frame.
    pub total_len: u16,
    /// Port the frame arrived on.
    pub in_port: PortNo,
    /// Delivery reason.
    pub reason: PacketInReason,
    /// The frame (possibly truncated to `miss_send_len` when buffered).
    pub data: Vec<u8>,
}

impl PacketIn {
    /// Decodes the body from `r`.
    ///
    /// # Errors
    ///
    /// Fails on truncation or an undefined reason.
    pub fn decode(r: &mut Reader<'_>) -> Result<PacketIn, CodecError> {
        let buffer_id = buffer_id_from_wire(r.u32()?);
        let total_len = r.u16()?;
        let in_port = PortNo(r.u16()?);
        let reason = PacketInReason::from_wire(r.u8()?)?;
        r.skip(1)?;
        let data = r.rest().to_vec();
        Ok(PacketIn {
            buffer_id,
            total_len,
            in_port,
            reason,
            data,
        })
    }

    /// Encodes the body into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u32(buffer_id_to_wire(self.buffer_id));
        w.u16(self.total_len);
        w.u16(self.in_port.0);
        w.u8(self.reason as u8);
        w.pad(1);
        w.bytes(&self.data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_buffered() {
        let p = PacketIn {
            buffer_id: Some(77),
            total_len: 1500,
            in_port: PortNo(4),
            reason: PacketInReason::NoMatch,
            data: vec![0xaa; 128],
        };
        let mut w = Writer::new();
        p.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "packet_in");
        assert_eq!(PacketIn::decode(&mut r).unwrap(), p);
    }

    #[test]
    fn roundtrip_unbuffered() {
        let p = PacketIn {
            buffer_id: None,
            total_len: 60,
            in_port: PortNo(1),
            reason: PacketInReason::Action,
            data: vec![1, 2, 3],
        };
        let mut w = Writer::new();
        p.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "packet_in");
        assert_eq!(PacketIn::decode(&mut r).unwrap(), p);
    }

    #[test]
    fn rejects_bad_reason() {
        let mut w = Writer::new();
        w.u32(0xffff_ffff);
        w.u16(0);
        w.u16(0);
        w.u8(9);
        w.pad(1);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "packet_in");
        assert!(PacketIn::decode(&mut r).is_err());
    }
}
