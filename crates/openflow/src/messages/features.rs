//! `OFPT_FEATURES_REPLY` (`ofp_switch_features`) and `ofp_phy_port`.

use crate::error::CodecError;
use crate::types::{DatapathId, MacAddr, PortNo};
use crate::wire::{Reader, Writer};

/// Wire size of `ofp_phy_port`.
pub const OFP_PHY_PORT_LEN: usize = 48;

/// Description of one physical switch port (`ofp_phy_port`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PhyPort {
    /// Port number.
    pub port_no: PortNo,
    /// Port MAC address.
    pub hw_addr: MacAddr,
    /// Human-readable name (at most 15 bytes on the wire).
    pub name: String,
    /// `OFPPC_*` configuration flags.
    pub config: u32,
    /// `OFPPS_*` state flags.
    pub state: u32,
    /// Current features bitmap.
    pub curr: u32,
    /// Advertised features bitmap.
    pub advertised: u32,
    /// Supported features bitmap.
    pub supported: u32,
    /// Peer-advertised features bitmap.
    pub peer: u32,
}

impl PhyPort {
    /// A simulated 100 Mb/s full-duplex copper port, matching the paper's
    /// GENI testbed links.
    pub fn simulated(port_no: PortNo, hw_addr: MacAddr) -> PhyPort {
        const OFPPF_100MB_FD: u32 = 1 << 3;
        const OFPPF_COPPER: u32 = 1 << 7;
        PhyPort {
            port_no,
            hw_addr,
            name: format!("eth{}", port_no.0),
            config: 0,
            state: 0,
            curr: OFPPF_100MB_FD | OFPPF_COPPER,
            advertised: OFPPF_100MB_FD | OFPPF_COPPER,
            supported: OFPPF_100MB_FD | OFPPF_COPPER,
            peer: 0,
        }
    }

    /// Decodes one `ofp_phy_port`.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn decode(r: &mut Reader<'_>) -> Result<PhyPort, CodecError> {
        let port_no = PortNo(r.u16()?);
        let hw_addr = MacAddr(r.array::<6>()?);
        let raw_name = r.array::<16>()?;
        let end = raw_name.iter().position(|&b| b == 0).unwrap_or(16);
        let name = String::from_utf8_lossy(&raw_name[..end]).into_owned();
        Ok(PhyPort {
            port_no,
            hw_addr,
            name,
            config: r.u32()?,
            state: r.u32()?,
            curr: r.u32()?,
            advertised: r.u32()?,
            supported: r.u32()?,
            peer: r.u32()?,
        })
    }

    /// Encodes the port into `w` (exactly 48 bytes).
    pub fn encode(&self, w: &mut Writer) {
        w.u16(self.port_no.0);
        w.bytes(&self.hw_addr.0);
        let mut name = [0u8; 16];
        let src = self.name.as_bytes();
        let n = src.len().min(15);
        name[..n].copy_from_slice(&src[..n]);
        w.bytes(&name);
        w.u32(self.config);
        w.u32(self.state);
        w.u32(self.curr);
        w.u32(self.advertised);
        w.u32(self.supported);
        w.u32(self.peer);
    }
}

/// `ofp_switch_features`: the body of a `FEATURES_REPLY`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SwitchFeatures {
    /// Unique switch identifier.
    pub datapath_id: DatapathId,
    /// Packets the switch can buffer while awaiting controller decisions.
    pub n_buffers: u32,
    /// Number of flow tables.
    pub n_tables: u8,
    /// `OFPC_*` capability flags.
    pub capabilities: u32,
    /// Bitmap of supported `OFPAT_*` actions.
    pub actions: u32,
    /// Port inventory.
    pub ports: Vec<PhyPort>,
}

impl SwitchFeatures {
    /// Decodes the body from `r`, consuming all remaining ports.
    ///
    /// # Errors
    ///
    /// Fails on truncation or if the trailing bytes are not a whole number
    /// of `ofp_phy_port` records.
    pub fn decode(r: &mut Reader<'_>) -> Result<SwitchFeatures, CodecError> {
        let datapath_id = DatapathId(r.u64()?);
        let n_buffers = r.u32()?;
        let n_tables = r.u8()?;
        r.skip(3)?;
        let capabilities = r.u32()?;
        let actions = r.u32()?;
        if !r.remaining().is_multiple_of(OFP_PHY_PORT_LEN) {
            return Err(CodecError::BadLength {
                context: "ofp_switch_features.ports",
                found: r.remaining(),
            });
        }
        let mut ports = Vec::with_capacity(r.remaining() / OFP_PHY_PORT_LEN);
        while r.remaining() > 0 {
            ports.push(PhyPort::decode(r)?);
        }
        Ok(SwitchFeatures {
            datapath_id,
            n_buffers,
            n_tables,
            capabilities,
            actions,
            ports,
        })
    }

    /// Encodes the body into `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u64(self.datapath_id.0);
        w.u32(self.n_buffers);
        w.u8(self.n_tables);
        w.pad(3);
        w.u32(self.capabilities);
        w.u32(self.actions);
        for p in &self.ports {
            p.encode(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phy_port_roundtrip() {
        let p = PhyPort::simulated(PortNo(3), MacAddr::from_low(0x33));
        let mut w = Writer::new();
        p.encode(&mut w);
        let v = w.into_vec();
        assert_eq!(v.len(), OFP_PHY_PORT_LEN);
        let mut r = Reader::new(&v, "phy_port");
        assert_eq!(PhyPort::decode(&mut r).unwrap(), p);
    }

    #[test]
    fn long_port_names_are_truncated_to_15_bytes() {
        let mut p = PhyPort::simulated(PortNo(1), MacAddr::ZERO);
        p.name = "a-very-long-interface-name".to_string();
        let mut w = Writer::new();
        p.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "phy_port");
        let decoded = PhyPort::decode(&mut r).unwrap();
        assert_eq!(decoded.name, "a-very-long-int");
    }

    #[test]
    fn features_roundtrip() {
        let f = SwitchFeatures {
            datapath_id: DatapathId(0x42),
            n_buffers: 256,
            n_tables: 1,
            capabilities: 0x87,
            actions: 0xfff,
            ports: vec![
                PhyPort::simulated(PortNo(1), MacAddr::from_low(1)),
                PhyPort::simulated(PortNo(2), MacAddr::from_low(2)),
            ],
        };
        let mut w = Writer::new();
        f.encode(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v, "features");
        assert_eq!(SwitchFeatures::decode(&mut r).unwrap(), f);
    }

    #[test]
    fn rejects_partial_port_record() {
        let f = SwitchFeatures {
            datapath_id: DatapathId(1),
            n_buffers: 0,
            n_tables: 1,
            capabilities: 0,
            actions: 0,
            ports: vec![],
        };
        let mut w = Writer::new();
        f.encode(&mut w);
        w.pad(7); // not a whole ofp_phy_port
        let v = w.into_vec();
        let mut r = Reader::new(&v, "features");
        assert!(SwitchFeatures::decode(&mut r).is_err());
    }
}
