//! Property-based tests: every generated message survives an
//! encode→decode roundtrip, and the decoder never panics on arbitrary
//! bytes (the safety property the injector's FUZZMESSAGE action depends
//! on).

use attain_openflow::packet::{self, Ethernet, TcpFlags};
use attain_openflow::{
    Action, ErrorMsg, ErrorType, FlowMod, FlowModCommand, FlowModFlags, FlowRemoved,
    FlowRemovedReason, MacAddr, Match, OfMessage, PacketIn, PacketInReason, PacketOut, PortNo,
    StatsBody, SwitchConfig, Wildcards,
};
use proptest::prelude::*;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_port() -> impl Strategy<Value = PortNo> {
    prop_oneof![
        (1u16..=0xff00).prop_map(PortNo),
        Just(PortNo::FLOOD),
        Just(PortNo::CONTROLLER),
        Just(PortNo::NONE),
    ]
}

fn arb_wildcards() -> impl Strategy<Value = Wildcards> {
    (0u32..=0x003f_ffff).prop_map(Wildcards)
}

fn arb_match() -> impl Strategy<Value = Match> {
    (
        arb_wildcards(),
        arb_port(),
        arb_mac(),
        arb_mac(),
        any::<u16>(),
        0u8..8,
        any::<u16>(),
        (any::<u8>(), any::<u8>(), any::<u32>(), any::<u32>()),
        any::<u16>(),
        any::<u16>(),
    )
        .prop_map(
            |(
                wildcards,
                in_port,
                dl_src,
                dl_dst,
                dl_vlan,
                dl_vlan_pcp,
                dl_type,
                l3,
                tp_src,
                tp_dst,
            )| {
                let (nw_tos, nw_proto, nw_src, nw_dst) = l3;
                Match {
                    wildcards,
                    in_port,
                    dl_src,
                    dl_dst,
                    dl_vlan,
                    dl_vlan_pcp,
                    dl_type,
                    nw_tos,
                    nw_proto,
                    nw_src,
                    nw_dst,
                    tp_src,
                    tp_dst,
                }
            },
        )
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (arb_port(), any::<u16>()).prop_map(|(port, max_len)| Action::Output { port, max_len }),
        any::<u16>().prop_map(Action::SetVlanVid),
        (0u8..8).prop_map(Action::SetVlanPcp),
        Just(Action::StripVlan),
        arb_mac().prop_map(Action::SetDlSrc),
        arb_mac().prop_map(Action::SetDlDst),
        any::<u32>().prop_map(Action::SetNwSrc),
        any::<u32>().prop_map(Action::SetNwDst),
        any::<u8>().prop_map(Action::SetNwTos),
        any::<u16>().prop_map(Action::SetTpSrc),
        any::<u16>().prop_map(Action::SetTpDst),
        (arb_port(), any::<u32>()).prop_map(|(port, queue_id)| Action::Enqueue { port, queue_id }),
    ]
}

fn arb_flow_mod() -> impl Strategy<Value = FlowMod> {
    (
        arb_match(),
        any::<u64>(),
        0u16..5,
        any::<u16>(),
        any::<u16>(),
        any::<u16>(),
        proptest::option::of(any::<u32>().prop_map(|v| v & 0x7fff_ffff)),
        arb_port(),
        0u16..8,
        proptest::collection::vec(arb_action(), 0..4),
    )
        .prop_map(
            |(m, cookie, cmd, idle, hard, priority, buffer_id, out_port, flags, actions)| FlowMod {
                r#match: m,
                cookie,
                command: FlowModCommand::from_wire(cmd).unwrap(),
                idle_timeout: idle,
                hard_timeout: hard,
                priority,
                buffer_id,
                out_port,
                flags: FlowModFlags(flags),
                actions,
            },
        )
}

fn arb_message() -> impl Strategy<Value = OfMessage> {
    prop_oneof![
        Just(OfMessage::Hello),
        Just(OfMessage::FeaturesRequest),
        Just(OfMessage::BarrierRequest),
        Just(OfMessage::BarrierReply),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(OfMessage::EchoRequest),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(OfMessage::EchoReply),
        (
            0u16..6,
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..32)
        )
            .prop_map(|(t, code, data)| OfMessage::Error(ErrorMsg {
                error_type: ErrorType::from_wire(t).unwrap(),
                code,
                data,
            })),
        (any::<u16>(), any::<u16>()).prop_map(|(flags, miss_send_len)| OfMessage::SetConfig(
            SwitchConfig {
                flags,
                miss_send_len
            }
        )),
        (
            proptest::option::of(any::<u32>().prop_map(|v| v & 0x7fff_ffff)),
            any::<u16>(),
            arb_port(),
            0u8..2,
            proptest::collection::vec(any::<u8>(), 0..128),
        )
            .prop_map(|(buffer_id, total_len, in_port, reason, data)| {
                OfMessage::PacketIn(PacketIn {
                    buffer_id,
                    total_len,
                    in_port,
                    reason: PacketInReason::from_wire(reason).unwrap(),
                    data,
                })
            }),
        (
            proptest::option::of(any::<u32>().prop_map(|v| v & 0x7fff_ffff)),
            arb_port(),
            proptest::collection::vec(arb_action(), 0..4),
            proptest::collection::vec(any::<u8>(), 0..128),
        )
            .prop_map(|(buffer_id, in_port, actions, data)| {
                OfMessage::PacketOut(PacketOut {
                    buffer_id,
                    in_port,
                    actions,
                    data,
                })
            }),
        arb_flow_mod().prop_map(OfMessage::FlowMod),
        (
            arb_match(),
            any::<u64>(),
            any::<u16>(),
            0u8..3,
            any::<u32>(),
            any::<u64>()
        )
            .prop_map(
                |(m, cookie, priority, reason, dur, count)| OfMessage::FlowRemoved(FlowRemoved {
                    r#match: m,
                    cookie,
                    priority,
                    reason: FlowRemovedReason::from_wire(reason).unwrap(),
                    duration_sec: dur,
                    duration_nsec: dur.wrapping_mul(7) % 1_000_000_000,
                    idle_timeout: priority,
                    packet_count: count,
                    byte_count: count.wrapping_mul(64),
                })
            ),
        arb_match().prop_map(|m| OfMessage::StatsRequest(StatsBody::Flow {
            r#match: m,
            table_id: 0xff,
            out_port: PortNo::NONE,
        })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn message_roundtrip(msg in arb_message(), xid in any::<u32>()) {
        let bytes = msg.encode(xid);
        let (decoded, got_xid) = OfMessage::decode(&bytes).unwrap();
        prop_assert_eq!(got_xid, xid);
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any result is fine; panicking is not.
        let _ = OfMessage::decode(&bytes);
        let _ = OfMessage::frame_len(&bytes);
        let _ = Ethernet::decode(&bytes);
        let _ = packet::flow_key(&bytes, PortNo(1));
    }

    #[test]
    fn match_roundtrip_and_reflexive_semantics(m in arb_match()) {
        let mut w = attain_openflow::Writer::new();
        m.encode(&mut w);
        let v = w.into_vec();
        let mut r = attain_openflow::Reader::new(&v, "ofp_match");
        let decoded = Match::decode(&mut r).unwrap();
        prop_assert_eq!(decoded, m);
        // Subsumption is reflexive and ALL subsumes everything.
        prop_assert!(m.subsumes(&m));
        prop_assert!(Match::all().subsumes(&m));
        prop_assert!(m.overlaps(&m));
    }

    #[test]
    fn exact_match_agrees_with_flow_key(
        src in arb_mac(),
        dst in arb_mac(),
        sport in 1024u16..65535,
        dport in 1u16..1024,
        seq in any::<u32>(),
    ) {
        let frame = packet::tcp_segment(
            src, dst,
            "10.0.1.1".parse().unwrap(),
            "10.0.2.2".parse().unwrap(),
            sport, dport, seq, 0, TcpFlags::SYN, vec![],
        );
        let key = packet::flow_key(&frame.encode(), PortNo(1));
        let m = Match::from_flow_key(&key);
        prop_assert!(m.matches(&key));
    }

    #[test]
    fn frames_roundtrip(
        src in arb_mac(),
        dst in arb_mac(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        sport in any::<u16>(),
        dport in any::<u16>(),
    ) {
        let frame = packet::udp_datagram(
            src, dst,
            "192.168.0.1".parse().unwrap(),
            "192.168.0.2".parse().unwrap(),
            sport, dport, payload,
        );
        let bytes = frame.encode();
        prop_assert_eq!(Ethernet::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn subsumption_implies_match_containment(a in arb_match(), key_seed in any::<u64>()) {
        // If `a` subsumes an exact match built from a key, then `a` matches
        // that key.
        let key = attain_openflow::FlowKey {
            in_port: PortNo((key_seed % 48 + 1) as u16),
            dl_src: MacAddr::from_low(key_seed & 0xffff),
            dl_dst: MacAddr::from_low((key_seed >> 16) & 0xffff),
            dl_vlan: (key_seed >> 32) as u16,
            dl_vlan_pcp: ((key_seed >> 48) & 0x7) as u8,
            dl_type: 0x0800,
            nw_tos: 0,
            nw_proto: 6,
            nw_src: key_seed as u32,
            nw_dst: (key_seed >> 8) as u32,
            tp_src: (key_seed >> 3) as u16,
            tp_dst: (key_seed >> 5) as u16,
        };
        let exact = Match::from_flow_key(&key);
        if a.subsumes(&exact) {
            prop_assert!(a.matches(&key));
        }
    }
}
