//! Property coverage for the L2–L4 packet codec (`packet` module):
//! every frame the builders can produce encodes → decodes → re-encodes
//! byte-identically, and no truncation or mutation of those bytes can
//! panic the decoder or the lenient `flow_key` extractor.

use attain_openflow::packet::{
    arp_reply, arp_request, flow_key, icmp_echo_reply, icmp_echo_request, tcp_segment,
    udp_datagram, Ethernet, TcpFlags,
};
use attain_openflow::{MacAddr, PortNo};
use proptest::collection::vec;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn mac() -> impl Strategy<Value = MacAddr> {
    any::<u16>().prop_map(|n| MacAddr::from_low(n as u64))
}

fn ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn payload() -> impl Strategy<Value = Vec<u8>> {
    vec(any::<u8>(), 0..128)
}

/// Any frame a simulated host can emit.
fn frame() -> impl Strategy<Value = Ethernet> {
    prop_oneof![
        (mac(), ip(), ip()).prop_map(|(m, s, t)| arp_request(m, s, t)),
        (mac(), ip(), mac(), ip()).prop_map(|(sm, si, tm, ti)| arp_reply(sm, si, tm, ti)),
        (
            mac(),
            mac(),
            ip(),
            ip(),
            any::<u16>(),
            any::<u16>(),
            payload()
        )
            .prop_map(|(sm, dm, si, di, id, seq, p)| icmp_echo_request(sm, dm, si, di, id, seq, p)),
        (
            mac(),
            mac(),
            ip(),
            ip(),
            any::<u16>(),
            any::<u16>(),
            payload()
        )
            .prop_map(|(sm, dm, si, di, id, seq, p)| icmp_echo_reply(sm, dm, si, di, id, seq, p)),
        (
            (mac(), mac(), ip(), ip()),
            (
                any::<u16>(),
                any::<u16>(),
                any::<u32>(),
                any::<u32>(),
                any::<u8>()
            ),
            payload()
        )
            .prop_map(|((sm, dm, si, di), (sp, dp, seq, ack, fl), p)| tcp_segment(
                sm,
                dm,
                si,
                di,
                sp,
                dp,
                seq,
                ack,
                // Only six flag bits exist on the wire (FIN…URG).
                TcpFlags(fl & 0x3f),
                p
            )),
        (
            mac(),
            mac(),
            ip(),
            ip(),
            any::<u16>(),
            any::<u16>(),
            payload()
        )
            .prop_map(|(sm, dm, si, di, sp, dp, p)| udp_datagram(sm, dm, si, di, sp, dp, p)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode → encode is the identity on bytes.
    #[test]
    fn frames_roundtrip_byte_identically(f in frame()) {
        let bytes = f.encode();
        let decoded = Ethernet::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &f);
        prop_assert_eq!(decoded.encode(), bytes);
    }

    /// Truncating a valid frame anywhere must error, never panic —
    /// and never still claim success with trailing fields missing.
    #[test]
    fn truncation_never_panics(f in frame(), cut in 0usize..1514) {
        let bytes = f.encode();
        let cut = cut.min(bytes.len());
        let _ = Ethernet::decode(&bytes[..cut]);
        // The lenient extractor must classify, not crash.
        let _ = flow_key(&bytes[..cut], PortNo(1));
    }

    /// Arbitrary byte soup: the strict decoder errors or produces a
    /// frame; the lenient flow-key extractor always produces a key.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..256)) {
        let _ = Ethernet::decode(&bytes);
        let _ = flow_key(&bytes, PortNo(7));
    }

    /// Single-byte corruption of a valid frame: decode may fail or
    /// succeed, but a successful decode must re-encode without panic.
    #[test]
    fn mutated_frames_never_panic(f in frame(), pos in any::<u16>(), val in any::<u8>()) {
        let mut bytes = f.encode();
        let pos = pos as usize % bytes.len().max(1);
        if !bytes.is_empty() {
            bytes[pos] = val;
        }
        if let Ok(decoded) = Ethernet::decode(&bytes) {
            let _ = decoded.encode();
        }
        let _ = flow_key(&bytes, PortNo(3));
    }
}
