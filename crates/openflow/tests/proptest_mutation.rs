//! Decoder robustness against *mutations of valid frames* — the byte
//! errors the simulator's corruption fault injects (single flipped
//! bits), plus truncations and extensions. Complements the
//! arbitrary-bytes property in `proptest_roundtrip.rs`: mutated valid
//! frames exercise much deeper decoder paths than random noise, because
//! the header is usually still plausible.

use attain_openflow::{
    Action, ErrorMsg, ErrorType, FlowMod, Match, OfMessage, PacketIn, PacketInReason, PacketOut,
    PortNo, StatsBody,
};
use proptest::prelude::*;

/// A representative valid frame of every interesting shape the switch
/// and controllers exchange.
fn valid_frames() -> Vec<Vec<u8>> {
    let flow_mod = FlowMod {
        priority: 100,
        idle_timeout: 5,
        actions: vec![
            Action::Output {
                port: PortNo(2),
                max_len: 0,
            },
            Action::SetNwSrc(0x0a000001),
        ],
        ..FlowMod::add(Match::exact_in_port(PortNo(1)), vec![])
    };
    let packet_in = PacketIn {
        buffer_id: Some(7),
        total_len: 64,
        in_port: PortNo(1),
        reason: PacketInReason::NoMatch,
        data: vec![0xAA; 60],
    };
    let packet_out = PacketOut {
        buffer_id: None,
        in_port: PortNo(1),
        actions: vec![Action::Output {
            port: PortNo::FLOOD,
            max_len: 0,
        }],
        data: vec![0x55; 60],
    };
    let error = ErrorMsg {
        error_type: ErrorType::BadRequest,
        code: 1,
        data: vec![1, 2, 3, 4],
    };
    let stats = StatsBody::Flow {
        r#match: Match::all(),
        table_id: 0xff,
        out_port: PortNo::NONE,
    };
    vec![
        OfMessage::Hello.encode(1),
        OfMessage::EchoRequest(vec![9, 9, 9]).encode(2),
        OfMessage::FeaturesRequest.encode(3),
        OfMessage::FlowMod(flow_mod).encode(4),
        OfMessage::PacketIn(packet_in).encode(5),
        OfMessage::PacketOut(packet_out).encode(6),
        OfMessage::Error(error).encode(7),
        OfMessage::StatsRequest(stats).encode(8),
        OfMessage::BarrierRequest.encode(9),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// A single flipped bit — exactly what the corruption fault does —
    /// must never panic the decoder, and a successful decode must
    /// re-encode without panicking.
    #[test]
    fn bit_flipped_frames_never_panic(frame_idx in 0usize..9, bit in 0usize..512) {
        let frame = valid_frames().swap_remove(frame_idx);
        let bit = bit % (frame.len() * 8);
        let mut mutated = frame;
        mutated[bit / 8] ^= 1 << (bit % 8);
        if let Ok((msg, xid)) = OfMessage::decode(&mutated) {
            let _ = msg.try_encode(xid);
        }
    }

    /// Multi-byte stomps (burst errors) must never panic either.
    #[test]
    fn byte_stomped_frames_never_panic(
        frame_idx in 0usize..9,
        offset in 0usize..128,
        junk in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let frame = valid_frames().swap_remove(frame_idx);
        let offset = offset % frame.len();
        let mut mutated = frame;
        for (i, b) in junk.iter().enumerate() {
            if let Some(slot) = mutated.get_mut(offset + i) {
                *slot = *b;
            }
        }
        if let Ok((msg, xid)) = OfMessage::decode(&mutated) {
            let _ = msg.try_encode(xid);
        }
    }

    /// Truncations and extensions break the declared-length framing
    /// invariant, so they must be rejected — and must not panic.
    #[test]
    fn truncated_and_extended_frames_are_rejected(frame_idx in 0usize..9, delta in 1usize..32) {
        let frame = valid_frames().swap_remove(frame_idx);
        let cut = frame.len().saturating_sub(delta);
        prop_assert!(OfMessage::decode(&frame[..cut]).is_err());
        let mut extended = frame;
        extended.extend(std::iter::repeat_n(0u8, delta));
        prop_assert!(OfMessage::decode(&extended).is_err());
    }

    /// Unchanged frames round-trip bit for bit: decode must be the
    /// exact inverse of encode on every representative frame.
    #[test]
    fn unmutated_frames_roundtrip_exactly(frame_idx in 0usize..9) {
        let frame = valid_frames().swap_remove(frame_idx);
        let (msg, xid) = OfMessage::decode(&frame).expect("valid frame decodes");
        prop_assert_eq!(msg.encode(xid), frame);
    }
}
