//! Golden wire-format tests: hand-computed byte sequences from the
//! OpenFlow 1.0.0 specification, pinning the codec to the exact on-wire
//! layout (roundtrip tests alone cannot catch a symmetric encode/decode
//! bug).

use attain_openflow::{
    Action, FlowMod, FlowModCommand, FlowModFlags, Match, OfMessage, PortNo, Reader, Wildcards,
};

fn hex(s: &str) -> Vec<u8> {
    let clean: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    (0..clean.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&clean[i..i + 2], 16).expect("valid hex"))
        .collect()
}

#[test]
fn hello_is_eight_bytes() {
    assert_eq!(OfMessage::Hello.encode(1), hex("01 00 0008 00000001"),);
}

#[test]
fn echo_request_carries_its_payload() {
    assert_eq!(
        OfMessage::EchoRequest(b"hi".to_vec()).encode(2),
        hex("01 02 000a 00000002 6869"),
    );
}

#[test]
fn barrier_request_type_is_18() {
    assert_eq!(
        OfMessage::BarrierRequest.encode(0x10),
        hex("01 12 0008 00000010"),
    );
}

#[test]
fn features_request_type_is_5() {
    assert_eq!(
        OfMessage::FeaturesRequest.encode(0xdead_beef),
        hex("01 05 0008 deadbeef"),
    );
}

#[test]
fn packet_out_with_one_output_action() {
    let po = OfMessage::PacketOut(attain_openflow::PacketOut {
        buffer_id: None,
        in_port: PortNo::NONE,
        actions: vec![Action::Output {
            port: PortNo(2),
            max_len: 0,
        }],
        data: vec![],
    });
    // header(8) + buffer(4) + in_port(2) + actions_len(2) + action(8) = 24.
    assert_eq!(
        po.encode(3),
        hex("01 0d 0018 00000003  ffffffff ffff 0008  0000 0008 0002 0000"),
    );
}

#[test]
fn exact_in_port_match_layout() {
    // ofp_match: wildcards=OFPFW_ALL & !IN_PORT = 0x003ffffe, in_port=5,
    // every other field zero — 40 bytes.
    let m = Match::exact_in_port(PortNo(5));
    let mut w = attain_openflow::Writer::new();
    m.encode(&mut w);
    assert_eq!(
        w.into_vec(),
        hex("003ffffe 0005 000000000000 000000000000 0000 00 00 0000 00 00 0000 00000000 00000000 0000 0000"),
    );
}

#[test]
fn flow_mod_add_layout() {
    // A FLOW_MOD ADD: match-all, cookie 0, idle 5, hard 0, priority
    // 0x8000, no buffer, out_port NONE, no flags, one OUTPUT:1 action.
    let fm = OfMessage::FlowMod(FlowMod {
        r#match: Match::all(),
        cookie: 0,
        command: FlowModCommand::Add,
        idle_timeout: 5,
        hard_timeout: 0,
        priority: 0x8000,
        buffer_id: None,
        out_port: PortNo::NONE,
        flags: FlowModFlags(0),
        actions: vec![Action::Output {
            port: PortNo(1),
            max_len: 0,
        }],
    });
    // 8 header + 40 match + 24 body + 8 action = 80 = 0x50.
    assert_eq!(
        fm.encode(7),
        hex("01 0e 0050 00000007
             003fffff 0000 000000000000 000000000000 0000 00 00 0000 00 00 0000 00000000 00000000 0000 0000
             0000000000000000
             0000 0005 0000 8000 ffffffff ffff 0000
             0000 0008 0001 0000"),
    );
}

#[test]
fn wildcard_bits_match_the_spec_table() {
    // Spec §5.2.3 values.
    assert_eq!(Wildcards::IN_PORT, 1 << 0);
    assert_eq!(Wildcards::DL_VLAN, 1 << 1);
    assert_eq!(Wildcards::DL_SRC, 1 << 2);
    assert_eq!(Wildcards::DL_DST, 1 << 3);
    assert_eq!(Wildcards::DL_TYPE, 1 << 4);
    assert_eq!(Wildcards::NW_PROTO, 1 << 5);
    assert_eq!(Wildcards::TP_SRC, 1 << 6);
    assert_eq!(Wildcards::TP_DST, 1 << 7);
    assert_eq!(Wildcards::DL_VLAN_PCP, 1 << 20);
    assert_eq!(Wildcards::NW_TOS, 1 << 21);
    assert_eq!(Wildcards::ALL.0, 0x003f_ffff);
}

#[test]
fn decode_of_spec_bytes_yields_expected_structs() {
    // Decode a hand-written PACKET_IN: buffer 0x2a, total_len 60,
    // in_port 3, reason NO_MATCH, 4 data bytes.
    let bytes = hex("01 0a 0016 00000009  0000002a 003c 0003 00 00 de ad be ef");
    let (msg, xid) = OfMessage::decode(&bytes).expect("valid spec bytes");
    assert_eq!(xid, 9);
    let OfMessage::PacketIn(pi) = msg else {
        panic!("expected packet in");
    };
    assert_eq!(pi.buffer_id, Some(0x2a));
    assert_eq!(pi.total_len, 60);
    assert_eq!(pi.in_port, PortNo(3));
    assert_eq!(pi.data, hex("deadbeef"));
}

#[test]
fn match_decode_from_reader_consumes_forty_bytes() {
    let bytes = hex(
        "003fffff 0000 000000000000 000000000000 0000 00 00 0000 00 00 0000 00000000 00000000 0000 0000 ff",
    );
    let mut r = Reader::new(&bytes, "golden");
    let m = Match::decode(&mut r).expect("valid match");
    assert_eq!(m, Match::all());
    assert_eq!(r.remaining(), 1);
}
