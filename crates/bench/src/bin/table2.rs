//! Regenerates **Table II**: the connection-interruption experiment
//! (paper §VII-C) — four access checks per controller and fail mode.
//!
//! Usage: `cargo run --release -p attain-bench --bin table2`

use attain_bench::render_table;
use attain_controllers::ControllerKind;
use attain_injector::harness::{run_connection_interruption, InterruptionOutcome};
use attain_netsim::FailMode;

fn mark(ok: bool) -> String {
    if ok {
        "yes".into()
    } else {
        "NO".into()
    }
}

fn main() {
    println!("Table II — connection interruption experiment");
    println!("(pings: rows 1-2 at t=30 s, row 3 at t=50 s, row 4 at t=95 s)\n");

    let mut outs: Vec<InterruptionOutcome> = Vec::new();
    for kind in ControllerKind::ALL {
        for mode in [FailMode::Safe, FailMode::Secure] {
            eprintln!("running {kind} / {mode:?}…");
            outs.push(run_connection_interruption(kind, mode));
        }
    }

    let header: Vec<String> = std::iter::once("".to_string())
        .chain(outs.iter().map(|o| {
            format!(
                "{}/{}",
                o.controller,
                match o.fail_mode {
                    FailMode::Safe => "Safe",
                    FailMode::Secure => "Secure",
                }
            )
        }))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let row = |label: &str, f: &dyn Fn(&InterruptionOutcome) -> bool| -> Vec<String> {
        std::iter::once(label.to_string())
            .chain(outs.iter().map(|o| mark(f(o))))
            .collect()
    };
    let rows = vec![
        row(
            "External user can access an external network host? (t=30s)",
            &|o| o.ext_to_ext.accessible(),
        ),
        row(
            "Internal user can access an external network host? (t=30s)",
            &|o| o.int_to_ext_before.accessible(),
        ),
        row(
            "External user can access an internal network host? (t=50s)",
            &|o| o.ext_to_int.accessible(),
        ),
        row(
            "Internal user can access an external network host? (t=95s)",
            &|o| o.int_to_ext_after.accessible(),
        ),
    ];
    println!("{}", render_table(&header_refs, &rows));

    println!("attack progression:");
    for o in &outs {
        println!(
            "  {:<18} final state {} (φ2 fired {}×) — {}{}",
            format!("{}/{:?}:", o.controller, o.fail_mode),
            o.final_state,
            o.phi2_fires,
            if o.unauthorized_access() {
                "UNAUTHORIZED INCREASED ACCESS"
            } else {
                "isolation held"
            },
            if o.legitimate_dos() {
                "; DoS AGAINST LEGITIMATE TRAFFIC"
            } else {
                ""
            },
        );
    }
    println!(
        "\nNote: Ryu's L2-only flow-mod matches never satisfy φ2's nw_src read, so the\n\
         attack stalls in σ2 and the connection is never interrupted (paper §VII-C4)."
    );
}
