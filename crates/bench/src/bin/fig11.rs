//! Regenerates **Figure 11**: the flow-modification-suppression
//! experiment (paper §VII-B) — (a) iperf throughput and (b) ping latency
//! between `h1` and `h6`, baseline vs. under attack, for Floodlight,
//! POX, and Ryu. An asterisk (*) denotes denial of service (zero
//! throughput / infinite latency), as in the paper.
//!
//! Usage: `cargo run --release -p attain-bench --bin fig11 [--quick]`

use attain_bench::render_table;
use attain_controllers::ControllerKind;
use attain_injector::harness::{run_flow_mod_suppression, Fidelity, SuppressionOutcome};

fn fmt_throughput(o: &SuppressionOutcome) -> String {
    if o.iperf_denied() {
        "*".to_string()
    } else {
        format!("{:.1}", o.mean_throughput_mbps())
    }
}

fn fmt_latency(o: &SuppressionOutcome) -> String {
    if o.ping_denied() {
        "*".to_string()
    } else {
        format!("{:.2}", o.ping.avg_rtt_ms().unwrap_or(f64::NAN))
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let fidelity = if quick {
        Fidelity::quick()
    } else {
        Fidelity::paper()
    };
    println!(
        "Figure 11 — flow modification suppression ({} ping trials, {} x {} s iperf trials)",
        fidelity.ping_trials, fidelity.iperf_trials, fidelity.iperf_secs
    );
    println!("An asterisk (*) denotes a denial of service (throughput zero, latency infinite).\n");

    let mut runs: Vec<(SuppressionOutcome, SuppressionOutcome)> = Vec::new();
    for kind in ControllerKind::ALL {
        eprintln!("running {kind} baseline…");
        let baseline = run_flow_mod_suppression(kind, false, &fidelity);
        eprintln!("running {kind} under attack…");
        let attacked = run_flow_mod_suppression(kind, true, &fidelity);
        runs.push((baseline, attacked));
    }

    // (a) Throughput.
    println!("(a) iperf throughput h1→h6 [Mb/s]");
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|(b, a)| {
            vec![
                b.controller.to_string(),
                fmt_throughput(b),
                fmt_throughput(a),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["controller", "baseline", "attack"], &rows)
    );

    // (b) Latency.
    println!("(b) ping latency h1→h6 [ms, mean over trials]");
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|(b, a)| {
            vec![
                b.controller.to_string(),
                fmt_latency(b),
                fmt_latency(a),
                format!("{:.1}%", b.ping.loss_pct()),
                format!("{:.1}%", a.ping.loss_pct()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "controller",
                "baseline",
                "attack",
                "loss (base)",
                "loss (attack)"
            ],
            &rows
        )
    );

    // Control-plane load (the paper's "increased control plane traffic").
    println!("control plane load (messages over the whole run)");
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|(b, a)| {
            vec![
                b.controller.to_string(),
                b.packet_ins.to_string(),
                a.packet_ins.to_string(),
                b.flow_mods_sent.to_string(),
                a.flow_mods_sent.to_string(),
                a.phi1_fires.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "controller",
                "PACKET_IN (base)",
                "PACKET_IN (attack)",
                "FLOW_MOD (base)",
                "FLOW_MOD (attack)",
                "suppressed"
            ],
            &rows
        )
    );

    // Per-trial series, for plotting Figure 11 exactly.
    println!("per-trial iperf series [Mb/s] (baseline | attack):");
    for (b, a) in &runs {
        let series = |o: &SuppressionOutcome| {
            o.iperf
                .iter()
                .map(|s| {
                    if s.is_denial_of_service() {
                        "*".to_string()
                    } else {
                        format!("{:.1}", s.throughput_mbps())
                    }
                })
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "  {:<11} {} | {}",
            b.controller.to_string(),
            series(b),
            series(a)
        );
    }
}
