//! Environment-fault recovery: the §VII-C interruption attack composed
//! with testbed failures — a flapping backbone link, seeded packet loss,
//! a controller crash/restart, and a switch power-cycle.
//!
//! Every scenario runs **twice with the same seed** and the two traces
//! are compared byte for byte: the fault machinery must not disturb the
//! simulator's determinism.
//!
//! Usage: `cargo run --release -p attain-bench --bin faults [--quick] [--seed N]`

use attain_bench::render_table;
use attain_controllers::ControllerKind;
use attain_injector::harness::{run_fault_recovery, FaultRecoveryOutcome};
use attain_netsim::FailMode;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(0x00A7_7A17);

    println!("Environment-fault recovery (seed {seed:#x})");
    println!("timeline: t=15s s3-s4 flaps ×2, t=20s s1-s2 1% loss,");
    println!("          t=45s c1 crashes, t=70s c1 restarts, t=85s s4 power-cycles\n");

    let kinds: &[ControllerKind] = if quick {
        &[ControllerKind::Floodlight]
    } else {
        &ControllerKind::ALL
    };

    let mut outs: Vec<FaultRecoveryOutcome> = Vec::new();
    for &kind in kinds {
        for mode in [FailMode::Safe, FailMode::Secure] {
            eprintln!("running {kind} / {mode:?} (twice, determinism check)…");
            let a = run_fault_recovery(kind, mode, seed);
            let b = run_fault_recovery(kind, mode, seed);
            assert_eq!(
                a.trace_lines, b.trace_lines,
                "same seed must reproduce the trace byte for byte"
            );
            outs.push(a);
        }
    }

    let header: Vec<String> = std::iter::once("h6 -> h1".to_string())
        .chain(outs.iter().map(|o| {
            format!(
                "{}/{}",
                o.controller,
                match o.fail_mode {
                    FailMode::Safe => "Safe",
                    FailMode::Secure => "Secure",
                }
            )
        }))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let row = |label: &str, f: &dyn Fn(&FaultRecoveryOutcome) -> String| -> Vec<String> {
        std::iter::once(label.to_string())
            .chain(outs.iter().map(f))
            .collect()
    };
    let check = |c: &attain_injector::harness::AccessCheck| c.to_string();
    let rows = vec![
        row("healthy (t=30s)", &|o| check(&o.before)),
        row("controller down (t=61s)", &|o| check(&o.during)),
        row("after restart (t=95s)", &|o| check(&o.after)),
    ];
    println!("{}", render_table(&header_refs, &rows));
    println!(
        "(fail-safe recovers after the restart via s2's standalone fallback;\n\
         fail-secure stays dark because the σ3 interruption keeps dropping\n\
         c1-s2 control traffic even once the controller is back)\n"
    );

    for o in &outs {
        println!(
            "{}/{:?}: final state {} (φ2 fired {}×), {} trace events",
            o.controller,
            o.fail_mode,
            o.final_state,
            o.phi2_fires,
            o.trace_lines.len()
        );
        println!("{}", o.report);
    }
    println!("determinism: all same-seed run pairs produced identical traces");
}
