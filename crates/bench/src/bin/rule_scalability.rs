//! Regenerates the **§VI-D scalability analysis**: measured per-message
//! rule-evaluation time against the paper's asymptotic bounds —
//! `O(|Φ| + |α_executed|)` when at most one conditional matches, and
//! `O(|Φ| · |α_max|)` when all of them do — plus the memory-complexity
//! formulas for `N_D` and `N_C`.
//!
//! Usage: `cargo run --release -p attain-bench --bin rule_scalability`

use attain_bench::{bench_message, render_table, rule_sweep_executor};
use attain_core::exec::InjectorInput;
use attain_core::model::ConnectionId;
use attain_core::scenario;
use std::time::Instant;

fn measure_ns_per_message(rules: usize, all_match: bool) -> f64 {
    let mut exec = rule_sweep_executor(rules, all_match);
    let msg = bench_message();
    // Warm up, then measure enough iterations to dominate timer noise.
    let iters: u64 = (2_000_000 / (rules as u64 + 10)).max(200);
    for i in 0..iters / 10 {
        exec.on_message(InjectorInput {
            conn: ConnectionId(0),
            to_controller: true,
            frame: msg.clone(),
            now_ns: i,
        });
    }
    let start = Instant::now();
    for i in 0..iters {
        exec.on_message(InjectorInput {
            conn: ConnectionId(0),
            to_controller: true,
            frame: msg.clone(),
            now_ns: i,
        });
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    println!("Section VI-D — scalability analysis\n");

    println!("(1) memory complexity of the system model representations");
    let sc = scenario::enterprise_network();
    let (nd_bound, nc_bound) = sc.system.memory_complexity_bounds();
    let s = sc.system.switches().count();
    let h = sc.system.hosts().count();
    let c = sc.system.controllers().count();
    let rows = vec![
        vec![
            "N_D (data plane graph)".into(),
            format!("O((|S|+|H|)^2) = O(({s}+{h})^2)"),
            nd_bound.to_string(),
            sc.system.data_plane().len().to_string(),
        ],
        vec![
            "N_C (control plane relation)".into(),
            format!("O(|C|*|S|) = O({c}*{s})"),
            nc_bound.to_string(),
            sc.system.connection_count().to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "structure",
                "paper bound",
                "worst case",
                "case study actual"
            ],
            &rows
        )
    );

    println!("(2) runtime complexity of rule execution (per message)");
    let sizes = [1usize, 4, 16, 64, 256, 1024];
    let mut rows = Vec::new();
    for &n in &sizes {
        let one = measure_ns_per_message(n, false);
        let all = measure_ns_per_message(n, true);
        rows.push(vec![
            n.to_string(),
            format!("{one:.0}"),
            format!("{all:.0}"),
            format!("{:.2}", all / one),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "|Φ| rules",
                "≤1 match [ns/msg]  O(|Φ|+|α|)",
                "all match [ns/msg]  O(|Φ|·|α_max|)",
                "ratio"
            ],
            &rows
        )
    );
    println!(
        "Both cases grow linearly in |Φ|; the all-match case carries the extra\n\
         per-rule action cost — the two §VI-D2 regimes."
    );
}
