//! Shared formatting and workload helpers for the experiment binaries
//! and criterion benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use attain_core::exec::{AttackExecutor, DispatchMode};
use attain_core::lang::AttackAction;
use attain_core::lang::{Attack, AttackState, Expr, Property, Rule, Value};
use attain_core::model::{AttackModel, CapabilitySet, ConnectionId, SystemModel};
use attain_openflow::OfType;

/// Renders an ASCII table: a header row plus data rows, columns padded
/// to content width.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let rule: String = {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    let fmt_row = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            let pad = w - cell.chars().count();
            s.push(' ');
            s.push_str(cell);
            s.push_str(&" ".repeat(pad + 1));
            s.push('|');
        }
        s
    };
    let mut out = String::new();
    out.push_str(&rule);
    out.push('\n');
    out.push_str(&fmt_row(
        &header.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&rule);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out.push_str(&rule);
    out.push('\n');
    out
}

/// Builds a synthetic system model with one controller and one switch
/// (for executor micro-benchmarks).
pub fn tiny_system() -> (SystemModel, AttackModel) {
    let mut m = SystemModel::new();
    let c = m.add_controller("c1").expect("fresh model");
    let s = m.add_switch("s1").expect("fresh model");
    let h1 = m.add_host("h1", None, None).expect("fresh model");
    let h2 = m.add_host("h2", None, None).expect("fresh model");
    m.add_host_link(h1, s, 1).expect("valid link");
    m.add_host_link(h2, s, 2).expect("valid link");
    m.add_connection(c, s).expect("fresh connection");
    let model = AttackModel::uniform(&m, CapabilitySet::no_tls());
    (m, model)
}

/// Builds an attack whose single state holds `n` rules, for the §VI-D
/// runtime-complexity sweeps.
///
/// * `all_match = false`: every rule's conditional tests a distinct
///   length (at most one can be true) — the paper's first case,
///   `O(|Φ| + |α_executed|)`.
/// * `all_match = true`: every conditional is satisfied by every message
///   — the second case, `O(|Φ| · |α_max|)`.
pub fn rule_sweep_attack(n: usize, all_match: bool) -> Attack {
    let rules = (0..n)
        .map(|i| Rule {
            name: format!("phi{i}"),
            connections: vec![ConnectionId(0)],
            required: CapabilitySet::no_tls(),
            condition: if all_match {
                // length >= 0: always true, but still a real property read.
                Expr::Ge(
                    Box::new(Expr::Prop(Property::Length)),
                    Box::new(Expr::Lit(Value::Int(0))),
                )
            } else {
                // Matches only messages of one specific length, which the
                // bench workload never produces (i ≠ message length).
                Expr::eq(
                    Expr::Prop(Property::Length),
                    Expr::Lit(Value::Int(1_000_000 + i as i64)),
                )
            },
            actions: vec![AttackAction::ReadMetadata],
        })
        .collect();
    Attack {
        name: format!("sweep_{n}_{all_match}"),
        states: vec![AttackState {
            name: "s".into(),
            rules,
        }],
        start: 0,
    }
}

/// Builds an executor over [`tiny_system`] running [`rule_sweep_attack`].
///
/// # Panics
///
/// Panics if the synthetic attack fails validation (a bug here, not in
/// caller input).
pub fn rule_sweep_executor(n: usize, all_match: bool) -> AttackExecutor {
    rule_sweep_executor_mode(n, all_match, DispatchMode::default())
}

/// [`rule_sweep_executor`] pinned to an explicit [`DispatchMode`], for
/// scan-vs-dispatch comparison sweeps.
///
/// # Panics
///
/// Panics if the synthetic attack fails validation (a bug here, not in
/// caller input).
pub fn rule_sweep_executor_mode(n: usize, all_match: bool, mode: DispatchMode) -> AttackExecutor {
    let (system, model) = tiny_system();
    AttackExecutor::new(system, model, rule_sweep_attack(n, all_match))
        .expect("synthetic sweep attack validates")
        .with_dispatch_mode(mode)
}

/// The eight message types the mixed-type workload cycles through.
const MIXED_TYPES: [OfType; 8] = [
    OfType::Hello,
    OfType::EchoRequest,
    OfType::EchoReply,
    OfType::FeaturesRequest,
    OfType::GetConfigRequest,
    OfType::BarrierRequest,
    OfType::BarrierReply,
    OfType::FlowMod,
];

/// Builds an attack whose `n` rules anchor on a type-equality guard —
/// rule `i` watches `MIXED_TYPES[i % 8]` — followed by a length test no
/// workload message satisfies. Against [`mixed_messages`], hash
/// dispatch narrows each message to the ~`n/8` rules of its type
/// instead of scanning all `n`; the residual length conjunct keeps
/// every candidate a real (non-firing) evaluation.
pub fn mixed_type_attack(n: usize) -> Attack {
    let rules = (0..n)
        .map(|i| Rule {
            name: format!("phi{i}"),
            connections: vec![ConnectionId(0)],
            required: CapabilitySet::no_tls(),
            condition: Expr::and(
                Expr::eq(
                    Expr::Prop(Property::Type),
                    Expr::Lit(Value::MsgType(MIXED_TYPES[i % MIXED_TYPES.len()])),
                ),
                Expr::eq(
                    Expr::Prop(Property::Length),
                    Expr::Lit(Value::Int(1_000_000 + i as i64)),
                ),
            ),
            actions: vec![AttackAction::ReadMetadata],
        })
        .collect();
    Attack {
        name: format!("mixed_{n}"),
        states: vec![AttackState {
            name: "s".into(),
            rules,
        }],
        start: 0,
    }
}

/// Builds an executor over [`tiny_system`] running [`mixed_type_attack`]
/// in the given dispatch mode.
///
/// # Panics
///
/// Panics if the synthetic attack fails validation (a bug here, not in
/// caller input).
pub fn mixed_type_executor(n: usize, mode: DispatchMode) -> AttackExecutor {
    let (system, model) = tiny_system();
    AttackExecutor::new(system, model, mixed_type_attack(n))
        .expect("synthetic mixed-type attack validates")
        .with_dispatch_mode(mode)
}

/// One encoded frame per [`mixed_type_attack`] message type, so a
/// round-robin over the returned set exercises every dispatch bucket.
pub fn mixed_messages() -> Vec<attain_openflow::Frame> {
    use attain_openflow::{Frame, OfMessage};
    vec![
        Frame::new(OfMessage::Hello.encode(1)),
        Frame::new(OfMessage::EchoRequest(vec![7u8; 32]).encode(2)),
        Frame::new(OfMessage::EchoReply(vec![7u8; 32]).encode(3)),
        Frame::new(OfMessage::FeaturesRequest.encode(4)),
        Frame::new(OfMessage::GetConfigRequest.encode(5)),
        Frame::new(OfMessage::BarrierRequest.encode(6)),
        Frame::new(OfMessage::BarrierReply.encode(7)),
        Frame::new(
            OfMessage::FlowMod(attain_openflow::FlowMod::add(
                attain_openflow::Match::all(),
                vec![],
            ))
            .encode(8),
        ),
    ]
}

/// A representative message workload for executor benches: one encoded
/// `ECHO_REQUEST` (the length no sweep rule matches), as a shared
/// [`Frame`](attain_openflow::Frame) so benches feed the executor the
/// same way the proxies do — a refcount bump per message.
pub fn bench_message() -> attain_openflow::Frame {
    attain_openflow::Frame::new(attain_openflow::OfMessage::EchoRequest(vec![7u8; 32]).encode(1))
}

/// Human-readable OF type histogram line from counts.
pub fn type_histogram(counts: &[(OfType, u64)]) -> String {
    counts
        .iter()
        .map(|(t, n)| format!("{t}×{n}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Adaptive wall-clock timing for machine-readable bench reports.
pub mod timing {
    use std::time::{Duration, Instant};

    /// Measures `f`'s mean wall-clock cost in nanoseconds per call.
    ///
    /// Calibrates a batch size until one batch takes at least ~1 ms,
    /// then measures batches for a ~200 ms budget — enough to keep
    /// sub-100ns routines out of timer-resolution noise without the
    /// statistical machinery of a full benchmark harness.
    pub fn measure_ns(mut f: impl FnMut()) -> f64 {
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            if t.elapsed() >= Duration::from_millis(1) || batch >= 1 << 30 {
                break;
            }
            batch *= 8;
        }
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < Duration::from_millis(200) {
            for _ in 0..batch {
                f();
            }
            iters += batch;
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    }
}

/// A machine-readable benchmark report, written as JSON without any
/// serialization dependency (the container builds offline).
#[derive(Debug, Clone)]
pub struct BenchReport {
    bench: String,
    results: Vec<(String, f64)>,
}

impl BenchReport {
    /// An empty report for the benchmark suite `bench`.
    pub fn new(bench: impl Into<String>) -> BenchReport {
        BenchReport {
            bench: bench.into(),
            results: Vec::new(),
        }
    }

    /// Appends one measured point.
    pub fn record(&mut self, name: impl Into<String>, ns_per_iter: f64) {
        self.results.push((name.into(), ns_per_iter));
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => vec!['\\', '"'],
                    '\\' => vec!['\\', '\\'],
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", esc(&self.bench)));
        out.push_str("  \"results\": [\n");
        for (i, (name, ns)) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"ns_per_iter\": {:.2}}}{}\n",
                esc(name),
                ns,
                comma
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attain_core::exec::InjectorInput;

    #[test]
    fn table_renders_with_padding() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["alpha".into(), "1".into()],
                vec!["b".into(), "10000".into()],
            ],
        );
        assert!(t.contains("| alpha | 1     |"));
        assert!(t.contains("| b     | 10000 |"));
        assert!(t.starts_with('+'));
    }

    #[test]
    fn bench_report_renders_valid_json() {
        let mut r = BenchReport::new("flow_table");
        r.record("lookup_hit_exact/64", 41.5);
        r.record("odd \"name\"", 1.0);
        let json = r.to_json();
        assert!(json.contains("\"bench\": \"flow_table\""));
        assert!(json.contains("{\"name\": \"lookup_hit_exact/64\", \"ns_per_iter\": 41.50},"));
        assert!(json.contains("odd \\\"name\\\""));
        // Last element carries no trailing comma.
        assert!(json.contains("1.00}\n"));
    }

    #[test]
    fn measure_ns_returns_positive_time() {
        // Keep it cheap: measure an empty closure; even that takes >0 ns
        // amortized, and must not panic or divide by zero.
        let ns = timing::measure_ns(|| {});
        assert!(ns >= 0.0);
        assert!(ns.is_finite());
    }

    #[test]
    fn mixed_type_workload_agrees_across_dispatch_modes() {
        let mut scan = mixed_type_executor(64, DispatchMode::Scan);
        let mut compiled = mixed_type_executor(64, DispatchMode::Compiled);
        for (i, frame) in mixed_messages().iter().cycle().take(32).enumerate() {
            let input = |frame: &attain_openflow::Frame| InjectorInput {
                conn: ConnectionId(0),
                to_controller: true,
                frame: frame.clone(),
                now_ns: i as u64 * 1_000,
            };
            let a = scan.on_message(input(frame));
            let b = compiled.on_message(input(frame));
            assert_eq!(a, b);
            assert_eq!(a.deliveries.len(), 1); // nothing fires: pass-through
        }
        assert_eq!(scan.log().events(), compiled.log().events());
    }

    #[test]
    fn sweep_attacks_validate_and_run() {
        for all_match in [false, true] {
            let mut exec = rule_sweep_executor(64, all_match);
            let msg = bench_message();
            let out = exec.on_message(InjectorInput {
                conn: ConnectionId(0),
                to_controller: true,
                frame: msg.clone(),
                now_ns: 0,
            });
            assert_eq!(out.deliveries.len(), 1); // default pass either way
            let fired: u64 = (0..64)
                .map(|i| exec.log().rule_fires(&format!("phi{i}")))
                .sum();
            assert_eq!(fired, if all_match { 64 } else { 0 });
        }
    }
}
