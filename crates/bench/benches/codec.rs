//! OpenFlow 1.0 codec throughput: the encode/decode work on the
//! injector's hot path (the paper's protocol message encoder/decoder,
//! §VI-B2).

use attain_openflow::packet::{self, TcpFlags};
use attain_openflow::{
    Action, FlowMod, MacAddr, Match, OfMessage, PacketIn, PacketInReason, PortNo,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn flow_mod() -> OfMessage {
    OfMessage::FlowMod(FlowMod {
        idle_timeout: 5,
        ..FlowMod::add(
            Match::exact_in_port(PortNo(1)),
            vec![Action::Output {
                port: PortNo(2),
                max_len: 0,
            }],
        )
    })
}

fn packet_in() -> OfMessage {
    let frame = packet::tcp_segment(
        MacAddr::from_low(1),
        MacAddr::from_low(2),
        "10.0.0.1".parse().unwrap(),
        "10.0.0.6".parse().unwrap(),
        30000,
        5001,
        1,
        1,
        TcpFlags::ACK,
        vec![0x49; 64],
    );
    OfMessage::PacketIn(PacketIn {
        buffer_id: Some(7),
        total_len: frame.wire_len() as u16,
        in_port: PortNo(3),
        reason: PacketInReason::NoMatch,
        data: frame.encode(),
    })
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for (name, msg) in [("flow_mod", flow_mod()), ("packet_in", packet_in())] {
        let bytes = msg.encode(1);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_function(format!("encode/{name}"), |b| {
            b.iter(|| black_box(&msg).encode(1))
        });
        group.bench_function(format!("decode/{name}"), |b| {
            b.iter(|| OfMessage::decode(black_box(&bytes)).unwrap())
        });
    }
    // The switch's per-packet classification step.
    let frame = packet::tcp_segment(
        MacAddr::from_low(1),
        MacAddr::from_low(2),
        "10.0.0.1".parse().unwrap(),
        "10.0.0.6".parse().unwrap(),
        30000,
        5001,
        1,
        1,
        TcpFlags::ACK,
        vec![0x49; 1460],
    )
    .encode();
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("flow_key/full_frame", |b| {
        b.iter(|| packet::flow_key(black_box(&frame), PortNo(1)))
    });
    group.bench_function("flow_key/truncated_128", |b| {
        b.iter(|| packet::flow_key(black_box(&frame[..128]), PortNo(1)))
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
