//! The flow-table overflow family's cost and accuracy sweeps.
//!
//! Three groups, each swept over the overflow policies at capacities
//! 64/256/1024:
//!
//! * `fill` — amortized per-entry install cost while filling an empty
//!   bounded table to capacity (the attack's ramp phase);
//! * `install_at_capacity` — the steady-state cost of one more install
//!   into a full table: victim selection plus index churn under the
//!   evicting policies, the refusal path under `reject`;
//! * `inference_estimate` — not a timing at all: the capacity the
//!   data-plane probe host recovers from RTT inflection against a Ryu
//!   controller (see `netsim/tests/capacity_inference.rs`). The value
//!   recorded is the estimate in entries, so the checked-in JSON pins
//!   the ±5% accuracy claim alongside the timings.
//!
//! Besides the interactive criterion output, a full run (not under
//! `cargo test`) writes `BENCH_table_overflow.json` at the workspace
//! root.

use attain_bench::{timing, BenchReport};
use attain_controllers::Ryu;
use attain_netsim::{EvictionPolicy, FlowTable, HostCommand, NetworkBuilder, SimTime, Simulation};
use attain_openflow::{Action, FlowKey, FlowMod, MacAddr, Match, PortNo};
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;

const CAPACITIES: [usize; 3] = [64, 256, 1024];
const POLICIES: [EvictionPolicy; 3] = [
    EvictionPolicy::Reject,
    EvictionPolicy::EvictLru,
    EvictionPolicy::EvictLowestPriority,
];

fn nth_key(i: usize) -> FlowKey {
    FlowKey {
        in_port: PortNo((i % 48 + 1) as u16),
        dl_src: MacAddr::from_low(i as u64),
        dl_dst: MacAddr::from_low((i * 7) as u64),
        dl_type: 0x0800,
        nw_proto: 6,
        nw_src: i as u32,
        nw_dst: (i * 13) as u32,
        tp_src: (i % 65_535) as u16,
        tp_dst: 80,
        ..FlowKey::default()
    }
}

fn nth_add(i: usize) -> FlowMod {
    FlowMod::add(
        Match::from_flow_key(&nth_key(i)),
        vec![Action::Output {
            port: PortNo(2),
            max_len: 0,
        }],
    )
}

fn filled_table(capacity: usize, policy: EvictionPolicy) -> FlowTable {
    let mut t = FlowTable::with_policy(capacity, policy);
    for i in 0..capacity {
        t.apply(&nth_add(i), SimTime::ZERO).expect("table has room");
    }
    t
}

/// Runs the capacity-inference probe against a bounded switch under a
/// Ryu controller and returns the recovered estimate.
fn probe_estimate(capacity: usize, policy: EvictionPolicy) -> Option<usize> {
    let mut sim: Simulation = {
        let mut b = NetworkBuilder::new();
        let h1 = b.host("h1", "10.0.0.1");
        let h2 = b.host("h2", "10.0.0.2");
        let s1 = b.switch("s1");
        b.set_table(s1, capacity, policy);
        b.link(h1, s1);
        b.link(h2, s1);
        let c1 = b.controller("c1", Box::new(Ryu::new()));
        b.control(c1, s1);
        b.build()
    };
    let h1 = sim.node_id("h1").expect("h1 exists");
    sim.schedule_command(
        SimTime::from_secs(10),
        HostCommand::Probe {
            host: h1,
            dst: "10.0.0.2".parse().expect("valid address"),
            fill: capacity as u32,
            gap: SimTime::from_millis(10),
            label: format!("bench capprobe {capacity} {}", policy.name()),
        },
    );
    let horizon = 10 + (2 * capacity as u64 + 20) / 100 + 2;
    sim.run_until(SimTime::from_secs(horizon));
    sim.probe_stats()[0].estimate()
}

fn bench_table_overflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_overflow");
    for policy in POLICIES {
        group.bench_with_input(
            BenchmarkId::new("install_at_capacity", policy.name()),
            &policy,
            |b, &policy| {
                let mut t = filled_table(1024, policy);
                let mut i = 1024usize;
                b.iter(|| {
                    i += 1;
                    black_box(t.apply(&nth_add(i), SimTime::ZERO).ok());
                });
            },
        );
    }
    group.finish();
}

/// Re-measures every point with the plain wall-clock timer and writes
/// the machine-readable report next to the workspace manifest.
fn emit_report() {
    let mut report = BenchReport::new("table_overflow");
    for policy in POLICIES {
        for cap in CAPACITIES {
            let ns = timing::measure_ns(|| {
                black_box(filled_table(cap, policy));
            });
            report.record(format!("fill/{}/{cap}", policy.name()), ns / cap as f64);
        }
    }
    for policy in POLICIES {
        for cap in CAPACITIES {
            let mut t = filled_table(cap, policy);
            let mut i = cap;
            let ns = timing::measure_ns(|| {
                i += 1;
                black_box(t.apply(&nth_add(i), SimTime::ZERO).ok());
            });
            report.record(format!("install_at_capacity/{}/{cap}", policy.name()), ns);
        }
    }
    for policy in POLICIES {
        for cap in CAPACITIES {
            let estimate = probe_estimate(cap, policy).expect("probe completes") as f64;
            report.record(
                format!("inference_estimate/{}/{cap}", policy.name()),
                estimate,
            );
        }
    }
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_table_overflow.json"
    );
    match report.write(path) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_table_overflow);

fn main() {
    benches();
    // Keep `cargo test` runs (which pass --test to harness-less bench
    // binaries) fast: the report is a full-measurement artifact.
    if !std::env::args().any(|a| a == "--test") {
        emit_report();
    }
}
