//! Simulator substrate throughput: virtual-seconds of case-study
//! workload simulated per wall-second — bounds how large an experiment
//! campaign the framework sustains.

use attain_controllers::ControllerKind;
use attain_injector::harness::build_case_study;
use attain_netsim::{FailMode, HostCommand, SimTime};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("case_study_ping_20s", |b| {
        b.iter(|| {
            let mut sim = build_case_study(ControllerKind::Floodlight, FailMode::Secure);
            let h1 = sim.node_id("h1").expect("case study has h1");
            sim.set_trace_events(false);
            sim.schedule_command(
                SimTime::from_secs(5),
                HostCommand::Ping {
                    host: h1,
                    dst: "10.0.0.6".parse().expect("valid address"),
                    count: 10,
                    interval: SimTime::from_secs(1),
                    label: "bench".into(),
                },
            );
            sim.run_until(SimTime::from_secs(20));
            sim.ping_stats()[0].received()
        });
    });
    group.bench_function("case_study_iperf_5s", |b| {
        b.iter(|| {
            let mut sim = build_case_study(ControllerKind::Floodlight, FailMode::Secure);
            let h1 = sim.node_id("h1").expect("case study has h1");
            let h6 = sim.node_id("h6").expect("case study has h6");
            sim.set_trace_events(false);
            sim.schedule_command(
                SimTime::from_secs(5),
                HostCommand::IperfServer {
                    host: h6,
                    port: 5001,
                },
            );
            sim.schedule_command(
                SimTime::from_secs(6),
                HostCommand::IperfClient {
                    host: h1,
                    dst: "10.0.0.6".parse().expect("valid address"),
                    port: 5001,
                    duration: SimTime::from_secs(5),
                    label: "bench".into(),
                },
            );
            sim.run_until(SimTime::from_secs(15));
            sim.iperf_stats()[0].bytes
        });
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
