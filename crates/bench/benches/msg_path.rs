//! End-to-end control-plane message-path cost: allocations and time per
//! message on the interposed proxy pipeline (§VI-C's hot loop).
//!
//! Three workloads, each measured for wall-clock ns/message and — via a
//! counting global allocator — heap allocations and allocated bytes per
//! message:
//!
//! * `executor_pass` — the §VI-D sweep executor (64 non-matching rules)
//!   passing an `ECHO_REQUEST` through unchanged: the pure pass-through
//!   path every interposed message pays.
//! * `executor_duplicate` — a single always-firing `DUPLICATEMESSAGE`
//!   rule: the replay/duplication path the `Frame` refactor turns into a
//!   refcount bump.
//! * `sim_e2e` — the full §VII case-study network (4 switches, 6 hosts,
//!   DMZ firewall controller) with the trivial pass-all attack
//!   interposed, driven by a ping workload; cost is amortized over every
//!   control-plane message the proxy saw.
//!
//! A full run (not under `cargo test`) writes `BENCH_msg_path.json` at
//! the workspace root with a `baseline` section (the pre-`Frame`
//! `Vec<u8>` message path, captured once and kept as constants here) and
//! a `current` section (this build), so the allocation delta of the
//! refactor stays visible across revisions.

use attain_bench::{bench_message, rule_sweep_executor, timing, tiny_system};
use attain_controllers::ControllerKind;
use attain_core::exec::{AttackExecutor, InjectorInput};
use attain_core::lang::{Attack, AttackAction, AttackState, Expr, Property, Rule, Value};
use attain_core::model::{CapabilitySet, ConnectionId};
use attain_core::scenario;
use attain_injector::harness::{attach_attack, build_case_study};
use attain_netsim::{FailMode, HostCommand, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------------

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Wraps the system allocator, counting every allocation and its size.
/// Deallocations are not counted: the metric of interest is how much
/// fresh heap the message path requests per message.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Point {
    name: &'static str,
    ns_per_msg: f64,
    allocs_per_msg: f64,
    alloc_bytes_per_msg: f64,
}

/// An attack whose single rule always fires and duplicates the message.
fn duplicate_executor() -> AttackExecutor {
    let (system, model) = tiny_system();
    let attack = Attack {
        name: "dup".into(),
        states: vec![AttackState {
            name: "s".into(),
            rules: vec![Rule {
                name: "phi0".into(),
                connections: vec![ConnectionId(0)],
                required: CapabilitySet::no_tls(),
                condition: Expr::Ge(
                    Box::new(Expr::Prop(Property::Length)),
                    Box::new(Expr::Lit(Value::Int(0))),
                ),
                actions: vec![AttackAction::Duplicate],
            }],
        }],
        start: 0,
    };
    AttackExecutor::new(system, model, attack).expect("duplicate attack validates")
}

/// Measures one executor workload: allocation counting over a fixed
/// batch, then wall-clock timing (counted separately so timing noise
/// cannot perturb the deterministic allocation numbers).
fn measure_executor(name: &'static str, mut exec: AttackExecutor, iters: u64) -> Point {
    let msg = bench_message();
    let run_one = |exec: &mut AttackExecutor, now: &mut u64| {
        *now += 1_000;
        let out = exec.on_message(InjectorInput {
            conn: ConnectionId(0),
            to_controller: true,
            frame: msg.clone(),
            now_ns: *now,
        });
        black_box(out);
    };
    // Warm up (executor log buffers etc. reach steady state).
    let mut now = 0u64;
    for _ in 0..64 {
        run_one(&mut exec, &mut now);
    }
    let (calls0, bytes0) = alloc_snapshot();
    for _ in 0..iters {
        run_one(&mut exec, &mut now);
    }
    let (calls1, bytes1) = alloc_snapshot();
    let ns = timing::measure_ns(|| run_one(&mut exec, &mut now));
    Point {
        name,
        ns_per_msg: ns,
        allocs_per_msg: (calls1 - calls0) as f64 / iters as f64,
        alloc_bytes_per_msg: (bytes1 - bytes0) as f64 / iters as f64,
    }
}

/// The end-to-end pipeline: the §VII case study with the trivial
/// pass-all attack interposed, a 30-trial ping workload, costs amortized
/// over every control-plane message that crossed the proxy.
fn measure_sim_e2e() -> Point {
    let build = || {
        let mut sim = build_case_study(ControllerKind::Floodlight, FailMode::Secure);
        let _exec = attach_attack(&mut sim, scenario::attacks::TRIVIAL_PASS);
        let h1 = sim.node_id("h1").expect("case study has h1");
        sim.schedule_command(
            SimTime::from_secs(1),
            HostCommand::Ping {
                host: h1,
                dst: "10.0.0.6".parse().expect("valid address"),
                count: 30,
                interval: SimTime::from_secs(1),
                label: "bench ping".into(),
            },
        );
        sim
    };
    // Allocation pass: count only the run, not construction.
    let mut sim = build();
    let (calls0, bytes0) = alloc_snapshot();
    let t = std::time::Instant::now();
    sim.run_until(SimTime::from_secs(40));
    let wall_ns = t.elapsed().as_nanos() as f64;
    let (calls1, bytes1) = alloc_snapshot();
    let msgs = sim.trace().control_message_total();
    assert!(msgs > 0, "e2e bench saw no control-plane traffic");
    Point {
        name: "sim_e2e",
        ns_per_msg: wall_ns / msgs as f64,
        allocs_per_msg: (calls1 - calls0) as f64 / msgs as f64,
        alloc_bytes_per_msg: (bytes1 - bytes0) as f64 / msgs as f64,
    }
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// The pre-`Frame` baseline: the same three workloads measured at the
/// commit before the message path moved from owned `Vec<u8>` hops to
/// shared `Frame`s. Kept as constants so every future run of this bench
/// reports the refactor's delta. `None` until captured.
///
/// Captured on the pre-refactor tree (commit after PR 4):
/// `(name, ns_per_msg, allocs_per_msg, alloc_bytes_per_msg)`. The
/// allocation columns are deterministic; the ns column is indicative.
const BASELINE: Option<[(&str, f64, f64, f64); 3]> = Some([
    ("executor_pass", 2926.9, 3.000, 128.0),
    ("executor_duplicate", 461.6, 8.001, 648.9),
    ("sim_e2e", 2665.2, 26.417, 2817.0),
]);

fn json_point(name: &str, ns: f64, allocs: f64, bytes: f64) -> String {
    format!(
        "    {{\"name\": \"{name}\", \"ns_per_msg\": {ns:.1}, \"allocs_per_msg\": {allocs:.3}, \"alloc_bytes_per_msg\": {bytes:.1}}}"
    )
}

fn emit_report(points: &[Point]) {
    let mut out = String::from("{\n  \"bench\": \"msg_path\",\n");
    out.push_str("  \"baseline\": [\n");
    if let Some(base) = BASELINE {
        let rendered: Vec<String> = base
            .iter()
            .map(|(n, ns, a, b)| json_point(n, *ns, *a, *b))
            .collect();
        out.push_str(&rendered.join(",\n"));
        out.push('\n');
    }
    out.push_str("  ],\n  \"current\": [\n");
    let rendered: Vec<String> = points
        .iter()
        .map(|p| {
            json_point(
                p.name,
                p.ns_per_msg,
                p.allocs_per_msg,
                p.alloc_bytes_per_msg,
            )
        })
        .collect();
    out.push_str(&rendered.join(",\n"));
    out.push_str("\n  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_msg_path.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    // Under `cargo test` the harness-less bench binary gets `--test`:
    // run a one-message smoke of each workload and exit fast.
    if std::env::args().any(|a| a == "--test") {
        let p = measure_executor("executor_pass", rule_sweep_executor(64, false), 1);
        assert!(p.allocs_per_msg >= 0.0);
        return;
    }
    let points = vec![
        measure_executor("executor_pass", rule_sweep_executor(64, false), 10_000),
        measure_executor("executor_duplicate", duplicate_executor(), 10_000),
        measure_sim_e2e(),
    ];
    for p in &points {
        println!(
            "{:<20} {:>10.1} ns/msg {:>8.3} allocs/msg {:>10.1} B/msg",
            p.name, p.ns_per_msg, p.allocs_per_msg, p.alloc_bytes_per_msg
        );
    }
    emit_report(&points);
}
