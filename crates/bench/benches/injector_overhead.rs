//! Interposition overhead ablation: what the proxy costs per message
//! when it does nothing (Figure 5's trivial attack) versus when an
//! attack's rules run — the overhead a practitioner's testbed pays for
//! hosting ATTAIN at all.

use attain_core::exec::{AttackExecutor, InjectorInput};
use attain_core::model::ConnectionId;
use attain_core::{dsl, scenario};
use attain_openflow::{FlowMod, Frame, Match, OfMessage};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn executor(source: &str) -> AttackExecutor {
    let sc = scenario::enterprise_network();
    let compiled = dsl::compile(source, &sc.system, &sc.attack_model).expect("attack compiles");
    AttackExecutor::new(sc.system, sc.attack_model, compiled.attack).expect("attack validates")
}

fn bench_injector_overhead(c: &mut Criterion) {
    let flow_mod = Frame::new(OfMessage::FlowMod(FlowMod::add(Match::all(), vec![])).encode(1));
    let mut group = c.benchmark_group("injector_overhead");
    group.throughput(Throughput::Elements(1));
    let cases = [
        ("trivial_pass", scenario::attacks::TRIVIAL_PASS),
        (
            "flow_mod_suppression",
            scenario::attacks::FLOW_MOD_SUPPRESSION,
        ),
        (
            "connection_interruption",
            scenario::attacks::CONNECTION_INTERRUPTION,
        ),
        (
            "counted_suppression",
            scenario::attacks::COUNTED_SUPPRESSION,
        ),
    ];
    for (name, source) in cases {
        group.bench_function(name, |b| {
            let mut exec = executor(source);
            let mut now = 0u64;
            b.iter(|| {
                now += 1;
                exec.on_message(InjectorInput {
                    conn: ConnectionId(0),
                    to_controller: false,
                    frame: flow_mod.clone(),
                    now_ns: now,
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_injector_overhead);
criterion_main!(benches);
