//! §VI-D2 runtime complexity: per-message rule evaluation cost as the
//! rule count |Φ| grows, under both the reference scan and the compiled
//! per-state dispatcher.
//!
//! Three workloads:
//!
//! * `one_match` — every rule tests a distinct length no message has
//!   (≤1 can be true). Under the scan this is the paper's
//!   `O(|Φ| + |α_executed|)` case; the dispatcher resolves it with one
//!   equality-bucket probe and no candidates.
//! * `all_match` — every conditional is satisfied by every message
//!   (`O(|Φ| · |α_max|)`). Dispatch cannot help here by construction:
//!   all |Φ| rules are candidates, so both modes pay the full
//!   evaluation cost — the floor the dispatcher must not regress.
//! * `mixed_types` — rules anchor on 8 distinct message types and the
//!   workload round-robins one frame of each, so hash dispatch
//!   narrows each message to ~|Φ|/8 real (non-firing) candidate
//!   evaluations: the selectivity regime between the two extremes.
//!
//! Besides the interactive criterion output, a full run (not under
//! `cargo test`) re-measures every point in **both** dispatch modes
//! with the plain wall-clock timer and writes `BENCH_rule_eval.json`
//! at the workspace root with `scan_ns_per_iter` and
//! `dispatch_ns_per_iter` columns, so the speedup stays checked in
//! across revisions.

use attain_bench::{
    bench_message, mixed_messages, mixed_type_executor, rule_sweep_executor_mode, timing,
};
use attain_core::exec::{AttackExecutor, DispatchMode, InjectorInput};
use attain_core::model::ConnectionId;
use attain_openflow::Frame;
use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const SIZES: [usize; 5] = [1, 8, 64, 256, 1024];

/// One message through the executor; `now` advances so sleep/wakeup
/// arithmetic stays monotone across iterations.
fn step(exec: &mut AttackExecutor, frame: &Frame, now: &mut u64) {
    *now += 1_000;
    let out = exec.on_message(InjectorInput {
        conn: ConnectionId(0),
        to_controller: true,
        frame: frame.clone(),
        now_ns: *now,
    });
    black_box(out);
}

fn bench_rule_eval(c: &mut Criterion) {
    let msg = bench_message();
    let mixed = mixed_messages();
    let mut group = c.benchmark_group("rule_eval");
    for &rules in &SIZES {
        group.throughput(Throughput::Elements(1));
        for (label, all_match) in [("one_match", false), ("all_match", true)] {
            group.bench_with_input(BenchmarkId::new(label, rules), &rules, |b, &rules| {
                let mut exec = rule_sweep_executor_mode(rules, all_match, DispatchMode::Compiled);
                let mut now = 0u64;
                b.iter(|| step(&mut exec, &msg, &mut now));
            });
        }
        group.bench_with_input(
            BenchmarkId::new("mixed_types", rules),
            &rules,
            |b, &rules| {
                let mut exec = mixed_type_executor(rules, DispatchMode::Compiled);
                let mut now = 0u64;
                let mut i = 0usize;
                b.iter(|| {
                    let frame = &mixed[i % mixed.len()];
                    i += 1;
                    step(&mut exec, frame, &mut now);
                });
            },
        );
    }
    group.finish();
}

/// Measures one (executor, workload) point: mean ns/message with the
/// frame set cycled round-robin.
fn measure_point(mut exec: AttackExecutor, frames: &[Frame]) -> f64 {
    let mut now = 0u64;
    let mut i = 0usize;
    timing::measure_ns(move || {
        let frame = &frames[i % frames.len()];
        i += 1;
        step(&mut exec, frame, &mut now);
    })
}

/// Re-measures every point under both dispatch modes and writes the
/// two-column machine-readable report next to the workspace manifest.
fn emit_report() {
    let single = vec![bench_message()];
    let mixed = mixed_messages();
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for &rules in &SIZES {
        for (label, all_match) in [("one_match", false), ("all_match", true)] {
            let scan = measure_point(
                rule_sweep_executor_mode(rules, all_match, DispatchMode::Scan),
                &single,
            );
            let dispatch = measure_point(
                rule_sweep_executor_mode(rules, all_match, DispatchMode::Compiled),
                &single,
            );
            rows.push((format!("{label}/{rules}"), scan, dispatch));
        }
        let scan = measure_point(mixed_type_executor(rules, DispatchMode::Scan), &mixed);
        let dispatch = measure_point(mixed_type_executor(rules, DispatchMode::Compiled), &mixed);
        rows.push((format!("mixed_types/{rules}"), scan, dispatch));
    }
    let mut out = String::from("{\n  \"bench\": \"rule_eval\",\n  \"results\": [\n");
    for (i, (name, scan, dispatch)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"scan_ns_per_iter\": {scan:.2}, \"dispatch_ns_per_iter\": {dispatch:.2}}}{comma}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rule_eval.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    for (name, scan, dispatch) in &rows {
        println!("{name:<18} scan {scan:>12.1} ns/msg   dispatch {dispatch:>12.1} ns/msg");
    }
}

criterion_group!(benches, bench_rule_eval);

fn main() {
    benches();
    // Keep `cargo test` runs (which pass --test to harness-less bench
    // binaries) fast: the report is a full-measurement artifact.
    if !std::env::args().any(|a| a == "--test") {
        emit_report();
    }
}
