//! §VI-D2 runtime complexity: per-message rule evaluation cost as the
//! rule count |Φ| grows, in both the ≤1-match and all-match regimes.

use attain_bench::{bench_message, rule_sweep_executor};
use attain_core::exec::InjectorInput;
use attain_core::model::ConnectionId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_rule_eval(c: &mut Criterion) {
    let msg = bench_message();
    let mut group = c.benchmark_group("rule_eval");
    for &rules in &[1usize, 8, 64, 256, 1024] {
        group.throughput(Throughput::Elements(1));
        for (label, all_match) in [("one_match", false), ("all_match", true)] {
            group.bench_with_input(BenchmarkId::new(label, rules), &rules, |b, &rules| {
                let mut exec = rule_sweep_executor(rules, all_match);
                let mut now = 0u64;
                b.iter(|| {
                    now += 1;
                    exec.on_message(InjectorInput {
                        conn: ConnectionId(0),
                        to_controller: true,
                        frame: msg.clone(),
                        now_ns: now,
                    })
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rule_eval);
criterion_main!(benches);
