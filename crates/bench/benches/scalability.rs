//! Event-queue scaling: binary heap vs. hierarchical timer wheel.
//!
//! The sharded engine's claim is that pop/push cost stays flat as the
//! pending-event population grows — the property that lets one process
//! simulate a thousand-switch fabric with 100k in-flight flows. This
//! bench pins it: `pop_push` holds a queue at a steady population of
//! 10^3..10^6 pending events and measures one pop-plus-reschedule cycle
//! (the simulator's hot loop) under both schedulers.
//!
//! The heap pays O(log n) sift costs that grow with the population; the
//! wheel pays O(1) slot filing plus amortized cascades. Both backends
//! pop in exactly the same order (pinned by the engine's unit tests and
//! the `scale_determinism` suite); this bench is about cost only.
//!
//! A full run (not under `cargo test`) also writes
//! `BENCH_queue_scaling.json` at the workspace root.

use attain_bench::{timing, BenchReport};
use attain_netsim::engine::{EventKind, EventQueue, NodeId, SchedulerConfig, TimerToken};
use attain_netsim::SimTime;
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;

const POPULATIONS: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

fn timer(i: usize) -> EventKind {
    EventKind::NodeTimer {
        node: NodeId(i % 1024),
        token: TimerToken::SwitchTick,
    }
}

/// A queue pre-filled to `n` pending events spread over a seconds-wide
/// horizon — the population mix a large fabric run sustains. Times are
/// scheduled in nondecreasing order, as the simulator does (an effect's
/// delay is never negative): feeding a timer wheel monotonically is
/// part of its contract, and feeding it randomly shuffled times would
/// measure a workload the engine cannot generate.
fn filled(config: SchedulerConfig, n: usize) -> EventQueue {
    let mut q = EventQueue::with_config(config, n);
    // Deterministic varied strides (golden-ratio hash of i) so events
    // spread unevenly across slots and levels without an RNG dependency.
    let mut t: u64 = 0;
    for i in 0..n {
        let stride = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 50; // 0..16384 ns
        t += stride;
        q.schedule(SimTime(t), timer(i));
    }
    q
}

/// One hot-loop cycle: pop the minimum, schedule a successor a few
/// microseconds ahead of it (what frame hops and timer re-arms do).
fn pop_push_cycle(q: &mut EventQueue, i: usize) {
    let (now, _kind) = q.pop().expect("queue stays populated");
    q.schedule(now + SimTime::from_micros(7), timer(i));
}

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_scaling");
    for &n in &POPULATIONS {
        for (label, config) in [
            ("heap", SchedulerConfig::heap(1)),
            ("wheel", SchedulerConfig::wheel(1)),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("pop_push_{label}"), n),
                &n,
                |b, &n| {
                    let mut q = filled(config, n);
                    let mut i = n;
                    b.iter(|| {
                        pop_push_cycle(black_box(&mut q), i);
                        i += 1;
                    });
                },
            );
        }
    }
    group.finish();
}

/// Re-measures every point with the plain wall-clock timer and writes
/// the machine-readable report next to the workspace manifest.
fn emit_report() {
    let mut report = BenchReport::new("queue_scaling");
    for &n in &POPULATIONS {
        for (label, config) in [
            ("heap", SchedulerConfig::heap(1)),
            ("wheel", SchedulerConfig::wheel(1)),
        ] {
            let mut q = filled(config, n);
            let mut i = n;
            let ns = timing::measure_ns(|| {
                pop_push_cycle(black_box(&mut q), i);
                i += 1;
            });
            report.record(format!("pop_push_{label}/{n}"), ns);
        }
    }
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_queue_scaling.json"
    );
    match report.write(path) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_queue);

fn main() {
    benches();
    // Keep `cargo test` runs (which pass --test to harness-less bench
    // binaries) fast: the report is a full-measurement artifact.
    if !std::env::args().any(|a| a == "--test") {
        emit_report();
    }
}
