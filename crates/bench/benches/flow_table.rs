//! Flow-table lookup scaling in the OVS model: classifier cost against
//! table occupancy (an ablation for the simulator substrate's
//! fidelity/performance trade-off).
//!
//! Two sweeps:
//!
//! * `lookup_miss` — a packet matching nothing. Under the old linear
//!   scan this cost grew with occupancy; the two-tier classifier
//!   resolves it with one hash probe plus the (empty) wildcard tier.
//! * `lookup_hit_exact` — a packet hitting an installed exact-match
//!   entry, the table-occupancy sweep (64 → 10k) that demonstrates the
//!   exact tier's O(1) behaviour.
//!
//! Besides the interactive criterion output, a full run (not under
//! `cargo test`) writes `BENCH_flow_table.json` at the workspace root
//! with ns/iter for every point, for offline comparison across
//! revisions.

use attain_bench::{timing, BenchReport};
use attain_netsim::{FlowTable, SimTime};
use attain_openflow::{packet, Action, FlowKey, FlowMod, MacAddr, Match, PortNo};
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;

const MISS_SIZES: [usize; 4] = [16, 128, 1024, 10_240];
const HIT_SIZES: [usize; 4] = [64, 1024, 4096, 10_240];

fn nth_key(i: usize) -> FlowKey {
    FlowKey {
        in_port: PortNo((i % 48 + 1) as u16),
        dl_src: MacAddr::from_low(i as u64),
        dl_dst: MacAddr::from_low((i * 7) as u64),
        dl_type: 0x0800,
        nw_proto: 6,
        nw_src: i as u32,
        nw_dst: (i * 13) as u32,
        tp_src: (i % 65_535) as u16,
        tp_dst: 80,
        ..FlowKey::default()
    }
}

fn filled_table(entries: usize) -> FlowTable {
    let mut t = FlowTable::new(entries.max(1024));
    for i in 0..entries {
        let fm = FlowMod::add(
            Match::from_flow_key(&nth_key(i)),
            vec![Action::Output {
                port: PortNo(2),
                max_len: 0,
            }],
        );
        t.apply(&fm, SimTime::ZERO).expect("table has room");
    }
    t
}

fn miss_key() -> FlowKey {
    // A flow no installed entry admits: the worst case every packet of a
    // new flow pays.
    let miss_frame = packet::tcp_segment(
        MacAddr::from_low(0xdead),
        MacAddr::from_low(0xbeef),
        "192.168.9.9".parse().unwrap(),
        "192.168.9.10".parse().unwrap(),
        9999,
        443,
        1,
        1,
        packet::TcpFlags::SYN,
        vec![],
    )
    .encode();
    packet::flow_key(&miss_frame, PortNo(47))
}

fn bench_flow_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_table");
    let miss = miss_key();
    for &n in &MISS_SIZES {
        group.bench_with_input(BenchmarkId::new("lookup_miss", n), &n, |b, &n| {
            let mut t = filled_table(n);
            b.iter(|| t.lookup(black_box(&miss), 64, SimTime::ZERO));
        });
    }
    for &n in &HIT_SIZES {
        group.bench_with_input(BenchmarkId::new("lookup_hit_exact", n), &n, |b, &n| {
            let mut t = filled_table(n);
            let key = nth_key(n / 2);
            b.iter(|| t.lookup(black_box(&key), 64, SimTime::ZERO));
        });
    }
    group.finish();
}

/// Re-measures every point with the plain wall-clock timer and writes
/// the machine-readable report next to the workspace manifest.
fn emit_report() {
    let mut report = BenchReport::new("flow_table");
    let miss = miss_key();
    for &n in &MISS_SIZES {
        let mut t = filled_table(n);
        let ns = timing::measure_ns(|| {
            black_box(t.lookup(black_box(&miss), 64, SimTime::ZERO));
        });
        report.record(format!("lookup_miss/{n}"), ns);
    }
    for &n in &HIT_SIZES {
        let mut t = filled_table(n);
        let key = nth_key(n / 2);
        let ns = timing::measure_ns(|| {
            black_box(t.lookup(black_box(&key), 64, SimTime::ZERO));
        });
        report.record(format!("lookup_hit_exact/{n}"), ns);
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_flow_table.json");
    match report.write(path) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_flow_table);

fn main() {
    benches();
    // Keep `cargo test` runs (which pass --test to harness-less bench
    // binaries) fast: the report is a full-measurement artifact.
    if !std::env::args().any(|a| a == "--test") {
        emit_report();
    }
}
