//! Flow-table lookup scaling in the OVS model: linear-scan classifier
//! cost against table occupancy (an ablation for the simulator
//! substrate's fidelity/performance trade-off).

use attain_netsim::{FlowTable, SimTime};
use attain_openflow::{packet, Action, FlowKey, FlowMod, MacAddr, Match, PortNo};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn filled_table(entries: usize) -> FlowTable {
    let mut t = FlowTable::new(entries.max(1024));
    for i in 0..entries {
        let key = FlowKey {
            in_port: PortNo((i % 48 + 1) as u16),
            dl_src: MacAddr::from_low(i as u64),
            dl_dst: MacAddr::from_low((i * 7) as u64),
            dl_type: 0x0800,
            nw_proto: 6,
            nw_src: i as u32,
            nw_dst: (i * 13) as u32,
            tp_src: (i % 65_535) as u16,
            tp_dst: 80,
            ..FlowKey::default()
        };
        let fm = FlowMod::add(
            Match::from_flow_key(&key),
            vec![Action::Output {
                port: PortNo(2),
                max_len: 0,
            }],
        );
        t.apply(&fm, SimTime::ZERO).expect("table has room");
    }
    t
}

fn bench_flow_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_table");
    // A miss scans the whole table: the worst case every packet of a new
    // flow pays.
    let miss_frame = packet::tcp_segment(
        MacAddr::from_low(0xdead),
        MacAddr::from_low(0xbeef),
        "192.168.9.9".parse().unwrap(),
        "192.168.9.10".parse().unwrap(),
        9999,
        443,
        1,
        1,
        packet::TcpFlags::SYN,
        vec![],
    )
    .encode();
    let miss_key = packet::flow_key(&miss_frame, PortNo(47));
    for &n in &[16usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::new("lookup_miss", n), &n, |b, &n| {
            let mut t = filled_table(n);
            b.iter(|| t.lookup(black_box(&miss_key), 64, SimTime::ZERO));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow_table);
criterion_main!(benches);
