//! The DMZ firewall policy module for the case-study switch `s2`.

use crate::learning::MatchStyle;
use crate::traits::{Controller, ControllerKind, Outbox};
use attain_openflow::packet::{self, EtherType};
use attain_openflow::{
    DatapathId, FlowKey, FlowMod, FlowModCommand, FlowModFlags, OfMessage, PacketIn, PacketOut,
    PortNo, SwitchFeatures,
};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// The enterprise case study's DMZ isolation policy (paper §VII-A):
/// of the traffic entering the firewall switch from the external side,
/// the enterprise's own DMZ machines (the public web server) are
/// trusted to talk inward, while Internet traffic arriving through the
/// gateway may reach only the published destinations — everything else
/// toward the internal network is denied. This is the minimal policy
/// under which the paper's h1↔h6 workloads flow freely while
/// `h2 → internal` constitutes "unauthorized increased access"
/// (Table II).
///
/// ARP is always allowed — hosts must be able to resolve addresses for
/// the *permitted* flows, and the firewall filters at L3.
#[derive(Debug, Clone)]
pub struct DmzPolicy {
    /// The firewall switch's datapath id (`s2` in the case study).
    pub firewall_dpid: DatapathId,
    /// The firewall port facing the external segment.
    pub external_port: PortNo,
    /// External sources trusted to reach the internal network (the DMZ
    /// web server `h1`).
    pub trusted_sources: BTreeSet<Ipv4Addr>,
    /// Destinations untrusted external traffic may still reach.
    pub allowed_external_dsts: BTreeSet<Ipv4Addr>,
}

/// The policy's verdict for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forward normally (delegate to the learning switch).
    Allow,
    /// Block, installing a deny flow entry.
    Deny,
}

impl DmzPolicy {
    /// Decides the policy verdict for a packet summarized by `key`
    /// arriving at switch `dpid`.
    pub fn decide(&self, dpid: DatapathId, key: &FlowKey) -> Verdict {
        if dpid != self.firewall_dpid || key.in_port != self.external_port {
            return Verdict::Allow;
        }
        if key.dl_type != EtherType::IPV4.0 {
            // ARP and other non-IP control traffic passes.
            return Verdict::Allow;
        }
        let src = Ipv4Addr::from(key.nw_src);
        if self.trusted_sources.contains(&src) {
            return Verdict::Allow;
        }
        let dst = Ipv4Addr::from(key.nw_dst);
        if self.allowed_external_dsts.contains(&dst) {
            Verdict::Allow
        } else {
            Verdict::Deny
        }
    }
}

/// A controller composed of a DMZ firewall in front of a learning switch.
///
/// On a denied packet, the firewall installs a **deny flow mod** (empty
/// action list) whose match is built in the inner controller's
/// [`MatchStyle`] — exactly the message the connection-interruption
/// attack's rule `φ2` waits for. Allowed packets are handed to the inner
/// learning switch untouched.
pub struct DmzFirewall {
    inner: Box<dyn Controller>,
    policy: DmzPolicy,
    deny_idle_timeout: u16,
}

impl std::fmt::Debug for DmzFirewall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DmzFirewall")
            .field("inner", &self.inner.kind())
            .field("policy", &self.policy)
            .finish()
    }
}

impl MatchStyle {
    /// The match style a given controller implementation uses when its
    /// applications construct flow mods.
    pub fn for_kind(kind: ControllerKind) -> MatchStyle {
        match kind {
            ControllerKind::Floodlight => MatchStyle::L3Aware,
            ControllerKind::Pox | ControllerKind::Beacon => MatchStyle::FullExact,
            // The hub never builds flow mods of its own; if a policy
            // module on top of it must, an L2 match is all the state a
            // hub-style application keeps.
            ControllerKind::Ryu | ControllerKind::Hub => MatchStyle::L2Only,
        }
    }
}

impl DmzFirewall {
    /// Wraps `inner` with `policy`.
    pub fn new(inner: Box<dyn Controller>, policy: DmzPolicy) -> DmzFirewall {
        DmzFirewall {
            inner,
            policy,
            deny_idle_timeout: 10,
        }
    }

    /// The wrapped policy.
    pub fn policy(&self) -> &DmzPolicy {
        &self.policy
    }
}

impl Controller for DmzFirewall {
    fn kind(&self) -> ControllerKind {
        self.inner.kind()
    }

    fn on_switch_connect(&mut self, dpid: DatapathId, features: &SwitchFeatures, out: &mut Outbox) {
        self.inner.on_switch_connect(dpid, features, out);
    }

    fn on_packet_in(&mut self, dpid: DatapathId, pi: &PacketIn, out: &mut Outbox) {
        let key = packet::flow_key(&pi.data, pi.in_port);
        if self.policy.decide(dpid, &key) == Verdict::Deny {
            let style = MatchStyle::for_kind(self.inner.kind());
            // The deny entry outranks any learning-switch entry.
            out.send(
                dpid,
                OfMessage::FlowMod(FlowMod {
                    r#match: style.build(&key),
                    cookie: 0xf14e_0000, // firewall app cookie
                    command: FlowModCommand::Add,
                    idle_timeout: self.deny_idle_timeout,
                    hard_timeout: 0,
                    priority: 0xf000,
                    buffer_id: pi.buffer_id,
                    out_port: PortNo::NONE,
                    flags: FlowModFlags::default(),
                    actions: vec![], // drop
                }),
            );
            if pi.buffer_id.is_none() {
                // Nothing buffered; nothing further to do. For buffered
                // packets the (empty-action) flow mod releases the buffer.
            } else if self.inner.kind() != ControllerKind::Pox {
                // Floodlight's and Ryu's firewall apps free the buffer
                // explicitly rather than relying on the flow mod.
                out.send(
                    dpid,
                    OfMessage::PacketOut(PacketOut {
                        buffer_id: pi.buffer_id,
                        in_port: pi.in_port,
                        actions: vec![],
                        data: vec![],
                    }),
                );
            }
            return;
        }
        self.inner.on_packet_in(dpid, pi, out);
    }

    fn on_message(&mut self, dpid: DatapathId, msg: &OfMessage, out: &mut Outbox) {
        self.inner.on_message(dpid, msg, out);
    }

    fn on_switch_disconnect(&mut self, dpid: DatapathId) {
        self.inner.on_switch_disconnect(dpid);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn processing_delay_us(&self) -> u64 {
        self.inner.processing_delay_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Floodlight, Pox, Ryu};
    use attain_openflow::{MacAddr, PacketInReason};

    fn policy() -> DmzPolicy {
        DmzPolicy {
            firewall_dpid: DatapathId(2),
            external_port: PortNo(1),
            trusted_sources: ["10.0.0.1".parse().unwrap()].into_iter().collect(),
            allowed_external_dsts: ["10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap()]
                .into_iter()
                .collect(),
        }
    }

    fn icmp_packet_in(dst_ip: &str, in_port: u16, buffer: Option<u32>) -> PacketIn {
        let frame = packet::icmp_echo_request(
            MacAddr::from_low(0x22),
            MacAddr::from_low(0x33),
            "10.0.0.2".parse().unwrap(),
            dst_ip.parse().unwrap(),
            1,
            1,
            vec![0; 16],
        );
        PacketIn {
            buffer_id: buffer,
            total_len: frame.wire_len() as u16,
            in_port: PortNo(in_port),
            reason: PacketInReason::NoMatch,
            data: frame.encode(),
        }
    }

    #[test]
    fn verdicts_follow_the_paper_policy() {
        let p = policy();
        let mk = |dpid: u64, in_port: u16, dl_type: u16, src: &str, dst: &str| {
            let key = FlowKey {
                in_port: PortNo(in_port),
                dl_type,
                nw_src: u32::from(src.parse::<Ipv4Addr>().unwrap()),
                nw_dst: u32::from(dst.parse::<Ipv4Addr>().unwrap()),
                ..FlowKey::default()
            };
            p.decide(DatapathId(dpid), &key)
        };
        // Gateway (Internet) → internal host: denied.
        assert_eq!(mk(2, 1, 0x0800, "10.0.0.2", "10.0.0.3"), Verdict::Deny);
        // Gateway → published web server: allowed.
        assert_eq!(mk(2, 1, 0x0800, "10.0.0.2", "10.0.0.1"), Verdict::Allow);
        // Trusted web server → internal host: allowed (the Fig. 11
        // h1↔h6 workload path).
        assert_eq!(mk(2, 1, 0x0800, "10.0.0.1", "10.0.0.6"), Verdict::Allow);
        // Internal side of the firewall: always allowed.
        assert_eq!(mk(2, 2, 0x0800, "10.0.0.2", "10.0.0.3"), Verdict::Allow);
        // Different switch: not the firewall's business.
        assert_eq!(mk(3, 1, 0x0800, "10.0.0.2", "10.0.0.3"), Verdict::Allow);
        // ARP through the external port: allowed.
        assert_eq!(mk(2, 1, 0x0806, "10.0.0.2", "10.0.0.3"), Verdict::Allow);
    }

    #[test]
    fn floodlight_deny_flow_mod_names_nw_src() {
        let mut fw = DmzFirewall::new(Box::new(Floodlight::new()), policy());
        let mut out = Outbox::new();
        fw.on_packet_in(
            DatapathId(2),
            &icmp_packet_in("10.0.0.5", 1, Some(3)),
            &mut out,
        );
        let msgs = out.drain();
        let OfMessage::FlowMod(fm) = &msgs[0].1 else {
            panic!("expected deny flow mod");
        };
        assert!(fm.actions.is_empty());
        assert_eq!(
            fm.r#match.nw_src_addr(),
            Some("10.0.0.2".parse().unwrap()),
            "φ2 must be able to read nw_src from a Floodlight deny rule"
        );
        // Buffer freed by an explicit empty packet out.
        assert!(matches!(&msgs[1].1, OfMessage::PacketOut(po) if po.actions.is_empty()));
    }

    #[test]
    fn pox_deny_flow_mod_names_nw_src_and_carries_buffer() {
        let mut fw = DmzFirewall::new(Box::new(Pox::new()), policy());
        let mut out = Outbox::new();
        fw.on_packet_in(
            DatapathId(2),
            &icmp_packet_in("10.0.0.5", 1, Some(3)),
            &mut out,
        );
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        let OfMessage::FlowMod(fm) = &msgs[0].1 else {
            panic!("expected deny flow mod");
        };
        assert_eq!(fm.buffer_id, Some(3));
        assert!(fm.r#match.nw_src_addr().is_some());
    }

    #[test]
    fn ryu_deny_flow_mod_wildcards_nw_src() {
        let mut fw = DmzFirewall::new(Box::new(Ryu::new()), policy());
        let mut out = Outbox::new();
        fw.on_packet_in(
            DatapathId(2),
            &icmp_packet_in("10.0.0.5", 1, Some(3)),
            &mut out,
        );
        let msgs = out.drain();
        let OfMessage::FlowMod(fm) = &msgs[0].1 else {
            panic!("expected deny flow mod");
        };
        assert_eq!(
            fm.r#match.nw_src_addr(),
            None,
            "Ryu's L2-only match hides nw_src from φ2 — the paper's anomaly"
        );
    }

    #[test]
    fn allowed_traffic_reaches_the_inner_learning_switch() {
        let mut fw = DmzFirewall::new(Box::new(Floodlight::new()), policy());
        let mut out = Outbox::new();
        fw.on_packet_in(
            DatapathId(2),
            &icmp_packet_in("10.0.0.1", 1, Some(3)),
            &mut out,
        );
        let msgs = out.drain();
        // Inner Floodlight floods (unknown dst): no deny rule installed.
        assert_eq!(msgs.len(), 1);
        assert!(matches!(&msgs[0].1, OfMessage::PacketOut(_)));
    }

    #[test]
    fn internal_to_external_is_never_firewalled() {
        let mut fw = DmzFirewall::new(Box::new(Floodlight::new()), policy());
        let mut out = Outbox::new();
        // Arrives on the internal port 2.
        fw.on_packet_in(
            DatapathId(2),
            &icmp_packet_in("10.0.0.99", 2, Some(3)),
            &mut out,
        );
        let msgs = out.drain();
        assert!(matches!(&msgs[0].1, OfMessage::PacketOut(_)));
    }
}
