//! The Beacon v1.0.4 `LearningSwitch` bundle model.

use crate::learning::{L2Table, MatchStyle};
use crate::traits::{Controller, ControllerKind, Outbox};
use attain_openflow::{
    packet, Action, DatapathId, FlowMod, FlowModCommand, FlowModFlags, OfMessage, PacketIn,
    PacketOut, PortNo, SwitchFeatures,
};

/// Beacon v1.0.4 `LearningSwitch` (the JVM controller Floodlight forked
/// from).
///
/// Behavioural fingerprint:
/// * flow mods carry an **exact 12-tuple** match (Beacon builds its match
///   with `OFMatch.loadFromPacket`, like POX's `from_packet`);
/// * idle timeout 5 s, no hard timeout;
/// * the flow mod carries **`buffer_id`** itself — like POX, the buffered
///   packet is released only when the flow mod applies, so suppressing
///   flow mods deadlocks the data plane;
/// * JVM runtime: fast per-message dispatch.
///
/// In the campaign matrix Beacon therefore pairs POX's
/// deadlock-under-suppression with Floodlight's short idle timeout — a
/// combination neither paper controller exhibits.
#[derive(Debug, Default)]
pub struct Beacon {
    table: L2Table,
}

/// Beacon `LearningSwitch`'s idle timeout.
const IDLE_TIMEOUT: u16 = 5;

impl Beacon {
    /// Creates a fresh instance with an empty MAC table.
    pub fn new() -> Beacon {
        Beacon::default()
    }
}

impl Controller for Beacon {
    fn kind(&self) -> ControllerKind {
        ControllerKind::Beacon
    }

    fn on_switch_connect(
        &mut self,
        _dpid: DatapathId,
        _features: &SwitchFeatures,
        _out: &mut Outbox,
    ) {
    }

    fn on_packet_in(&mut self, dpid: DatapathId, pi: &PacketIn, out: &mut Outbox) {
        let key = packet::flow_key(&pi.data, pi.in_port);
        self.table.learn(dpid, key.dl_src, pi.in_port);

        let dst_port = if key.dl_dst.is_multicast() {
            None
        } else {
            self.table.lookup(dpid, key.dl_dst)
        };
        match dst_port {
            Some(port) if port != pi.in_port => {
                // Known destination: one flow mod, buffer attached.
                out.send(
                    dpid,
                    OfMessage::FlowMod(FlowMod {
                        r#match: MatchStyle::FullExact.build(&key),
                        cookie: 0,
                        command: FlowModCommand::Add,
                        idle_timeout: IDLE_TIMEOUT,
                        hard_timeout: 0,
                        priority: 0x8000,
                        buffer_id: pi.buffer_id,
                        out_port: PortNo::NONE,
                        flags: FlowModFlags::default(),
                        actions: vec![Action::Output { port, max_len: 0 }],
                    }),
                );
                if pi.buffer_id.is_none() {
                    out.send(
                        dpid,
                        OfMessage::PacketOut(PacketOut {
                            buffer_id: None,
                            in_port: pi.in_port,
                            actions: vec![Action::Output { port, max_len: 0 }],
                            data: pi.data.clone(),
                        }),
                    );
                }
            }
            _ => {
                // Unknown destination (or apparent hairpin): flood.
                out.send(
                    dpid,
                    OfMessage::PacketOut(PacketOut {
                        buffer_id: pi.buffer_id,
                        in_port: pi.in_port,
                        actions: vec![Action::Output {
                            port: PortNo::FLOOD,
                            max_len: 0,
                        }],
                        data: if pi.buffer_id.is_none() {
                            pi.data.clone()
                        } else {
                            vec![]
                        },
                    }),
                );
            }
        }
    }

    fn on_switch_disconnect(&mut self, dpid: DatapathId) {
        self.table.forget_switch(dpid);
    }

    fn reset(&mut self) {
        self.table.clear();
    }

    fn processing_delay_us(&self) -> u64 {
        // JVM with a leaner pipeline than Floodlight's service chain.
        250
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attain_openflow::{MacAddr, PacketInReason, Wildcards};

    fn packet_in(src: u64, dst: u64, in_port: u16, buffer: Option<u32>) -> PacketIn {
        let frame = packet::icmp_echo_request(
            MacAddr::from_low(src),
            MacAddr::from_low(dst),
            format!("10.0.0.{src}").parse().unwrap(),
            format!("10.0.0.{dst}").parse().unwrap(),
            1,
            1,
            vec![0; 16],
        );
        PacketIn {
            buffer_id: buffer,
            total_len: frame.wire_len() as u16,
            in_port: PortNo(in_port),
            reason: PacketInReason::NoMatch,
            data: frame.encode(),
        }
    }

    #[test]
    fn known_destination_attaches_buffer_to_exact_match_flow_mod() {
        let mut c = Beacon::new();
        let mut out = Outbox::new();
        c.on_packet_in(DatapathId(1), &packet_in(2, 1, 2, None), &mut out);
        out.drain();
        c.on_packet_in(DatapathId(1), &packet_in(1, 2, 1, Some(5)), &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        let OfMessage::FlowMod(fm) = &msgs[0].1 else {
            panic!("expected flow mod");
        };
        assert_eq!(fm.buffer_id, Some(5));
        assert_eq!(fm.idle_timeout, 5);
        assert_eq!(fm.hard_timeout, 0);
        assert_eq!(fm.r#match.wildcards, Wildcards::NONE);
    }

    #[test]
    fn unknown_destination_floods() {
        let mut c = Beacon::new();
        let mut out = Outbox::new();
        c.on_packet_in(DatapathId(1), &packet_in(1, 2, 1, Some(3)), &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        let OfMessage::PacketOut(po) = &msgs[0].1 else {
            panic!("expected packet out");
        };
        assert_eq!(po.buffer_id, Some(3));
    }

    #[test]
    fn reset_forgets_everything() {
        let mut c = Beacon::new();
        let mut out = Outbox::new();
        c.on_packet_in(DatapathId(1), &packet_in(2, 1, 2, None), &mut out);
        out.drain();
        c.reset();
        c.on_packet_in(DatapathId(1), &packet_in(1, 2, 1, None), &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1); // floods again: table wiped
        assert!(matches!(&msgs[0].1, OfMessage::PacketOut(_)));
    }
}
