//! A static flooding hub (POX `forwarding.hub` style).

use crate::traits::{Controller, ControllerKind, Outbox};
use attain_openflow::{Action, DatapathId, OfMessage, PacketIn, PacketOut, PortNo, SwitchFeatures};

/// A hub: every `PACKET_IN` is answered with a flooding `PACKET_OUT`;
/// no state is learned and no flow entries are ever installed.
///
/// The hub is the campaign's degenerate corner of the controller space.
/// Because it never sends a `FLOW_MOD`, attacks that key on flow
/// modifications (`flow_mod_suppression`, `counted_suppression`,
/// `replay_flow_mods`, the interruption trigger `φ2`) have nothing to
/// match — the expectation table predicts those cells stay silent, and
/// the differential oracle verifies it. The price is permanent
/// control-plane load: every data-plane packet round-trips through the
/// controller forever.
#[derive(Debug, Default)]
pub struct Hub;

impl Hub {
    /// Creates a hub.
    pub fn new() -> Hub {
        Hub
    }
}

impl Controller for Hub {
    fn kind(&self) -> ControllerKind {
        ControllerKind::Hub
    }

    fn on_switch_connect(
        &mut self,
        _dpid: DatapathId,
        _features: &SwitchFeatures,
        _out: &mut Outbox,
    ) {
    }

    fn on_packet_in(&mut self, dpid: DatapathId, pi: &PacketIn, out: &mut Outbox) {
        out.send(
            dpid,
            OfMessage::PacketOut(PacketOut {
                buffer_id: pi.buffer_id,
                in_port: pi.in_port,
                actions: vec![Action::Output {
                    port: PortNo::FLOOD,
                    max_len: 0,
                }],
                data: if pi.buffer_id.is_none() {
                    pi.data.clone()
                } else {
                    vec![]
                },
            }),
        );
    }

    fn processing_delay_us(&self) -> u64 {
        // CPython, but the handler is a one-liner.
        800
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attain_openflow::{packet, MacAddr, PacketInReason};

    #[test]
    fn every_packet_floods_and_none_installs_flows() {
        let mut c = Hub::new();
        let mut out = Outbox::new();
        let frame = packet::icmp_echo_request(
            MacAddr::from_low(1),
            MacAddr::from_low(2),
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            1,
            1,
            vec![0; 16],
        );
        for buffer in [Some(1), Some(2), None] {
            let pi = PacketIn {
                buffer_id: buffer,
                total_len: frame.wire_len() as u16,
                in_port: PortNo(1),
                reason: PacketInReason::NoMatch,
                data: frame.encode(),
            };
            c.on_packet_in(DatapathId(1), &pi, &mut out);
        }
        let msgs = out.drain();
        assert_eq!(msgs.len(), 3);
        for (_, msg) in &msgs {
            let OfMessage::PacketOut(po) = msg else {
                panic!("hub must only send packet outs");
            };
            assert_eq!(
                po.actions,
                vec![Action::Output {
                    port: PortNo::FLOOD,
                    max_len: 0
                }]
            );
        }
    }
}
