//! The POX v0.2.0 `forwarding.l2_learning` model.

use crate::learning::{L2Table, MatchStyle};
use crate::traits::{Controller, ControllerKind, Outbox};
use attain_openflow::{
    packet, Action, DatapathId, FlowMod, FlowModCommand, FlowModFlags, OfMessage, PacketIn,
    PacketOut, PortNo, SwitchFeatures,
};

/// POX v0.2.0 `forwarding.l2_learning` learning switch.
///
/// Behavioural fingerprint (see the crate docs table):
/// * flow mods carry an **exact 12-tuple** match built with
///   `ofp_match.from_packet` — including concrete `nw_src`/`nw_dst`;
/// * idle timeout 10 s, hard timeout 30 s;
/// * the flow mod carries **`buffer_id`** itself: the switch forwards the
///   buffered packet only when the flow mod is applied. Suppressing flow
///   mods therefore silently discards every first packet of every flow —
///   the full denial of service the paper marks with an asterisk in
///   Figure 11.
#[derive(Debug, Default)]
pub struct Pox {
    table: L2Table,
}

/// POX l2_learning's `idle_timeout=10`.
const IDLE_TIMEOUT: u16 = 10;
/// POX l2_learning's `hard_timeout=30`.
const HARD_TIMEOUT: u16 = 30;

impl Pox {
    /// Creates a fresh instance with an empty MAC table.
    pub fn new() -> Pox {
        Pox::default()
    }
}

impl Controller for Pox {
    fn kind(&self) -> ControllerKind {
        ControllerKind::Pox
    }

    fn on_switch_connect(
        &mut self,
        _dpid: DatapathId,
        _features: &SwitchFeatures,
        _out: &mut Outbox,
    ) {
    }

    fn on_packet_in(&mut self, dpid: DatapathId, pi: &PacketIn, out: &mut Outbox) {
        let key = packet::flow_key(&pi.data, pi.in_port);
        self.table.learn(dpid, key.dl_src, pi.in_port);

        let dst_port = if key.dl_dst.is_multicast() {
            None
        } else {
            self.table.lookup(dpid, key.dl_dst)
        };
        match dst_port {
            Some(port) if port == pi.in_port => {
                // l2_learning installs a short drop flow for the hairpin
                // case ("same port" warning path).
                out.send(
                    dpid,
                    OfMessage::FlowMod(FlowMod {
                        r#match: MatchStyle::FullExact.build(&key),
                        cookie: 0,
                        command: FlowModCommand::Add,
                        idle_timeout: IDLE_TIMEOUT,
                        hard_timeout: HARD_TIMEOUT,
                        priority: 0x8000,
                        buffer_id: pi.buffer_id,
                        out_port: PortNo::NONE,
                        flags: FlowModFlags::default(),
                        actions: vec![], // drop
                    }),
                );
            }
            Some(port) => {
                // The defining POX behaviour: one flow mod, buffer
                // attached, no separate packet out.
                out.send(
                    dpid,
                    OfMessage::FlowMod(FlowMod {
                        r#match: MatchStyle::FullExact.build(&key),
                        cookie: 0,
                        command: FlowModCommand::Add,
                        idle_timeout: IDLE_TIMEOUT,
                        hard_timeout: HARD_TIMEOUT,
                        priority: 0x8000,
                        buffer_id: pi.buffer_id,
                        out_port: PortNo::NONE,
                        flags: FlowModFlags::default(),
                        actions: vec![Action::Output { port, max_len: 0 }],
                    }),
                );
                if pi.buffer_id.is_none() {
                    // Unbuffered packet-in: l2_learning resends the raw
                    // packet alongside the flow mod.
                    out.send(
                        dpid,
                        OfMessage::PacketOut(PacketOut {
                            buffer_id: None,
                            in_port: pi.in_port,
                            actions: vec![Action::Output { port, max_len: 0 }],
                            data: pi.data.clone(),
                        }),
                    );
                }
            }
            None => {
                out.send(
                    dpid,
                    OfMessage::PacketOut(PacketOut {
                        buffer_id: pi.buffer_id,
                        in_port: pi.in_port,
                        actions: vec![Action::Output {
                            port: PortNo::FLOOD,
                            max_len: 0,
                        }],
                        data: if pi.buffer_id.is_none() {
                            pi.data.clone()
                        } else {
                            vec![]
                        },
                    }),
                );
            }
        }
    }

    fn on_switch_disconnect(&mut self, dpid: DatapathId) {
        self.table.forget_switch(dpid);
    }

    fn reset(&mut self) {
        self.table.clear();
    }

    fn processing_delay_us(&self) -> u64 {
        // CPython event loop: the slowest of the three platforms.
        1200
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attain_openflow::{MacAddr, PacketInReason, Wildcards};

    fn packet_in(src: u64, dst: u64, in_port: u16, buffer: Option<u32>) -> PacketIn {
        let frame = packet::icmp_echo_request(
            MacAddr::from_low(src),
            MacAddr::from_low(dst),
            format!("10.0.0.{src}").parse().unwrap(),
            format!("10.0.0.{dst}").parse().unwrap(),
            1,
            1,
            vec![0; 16],
        );
        PacketIn {
            buffer_id: buffer,
            total_len: frame.wire_len() as u16,
            in_port: PortNo(in_port),
            reason: PacketInReason::NoMatch,
            data: frame.encode(),
        }
    }

    #[test]
    fn known_destination_attaches_buffer_to_flow_mod() {
        let mut c = Pox::new();
        let mut out = Outbox::new();
        c.on_packet_in(DatapathId(1), &packet_in(2, 1, 2, None), &mut out);
        out.drain();
        c.on_packet_in(DatapathId(1), &packet_in(1, 2, 1, Some(11)), &mut out);
        let msgs = out.drain();
        // Exactly one message: the flow mod releases the buffer itself.
        assert_eq!(msgs.len(), 1);
        let OfMessage::FlowMod(fm) = &msgs[0].1 else {
            panic!("expected flow mod");
        };
        assert_eq!(fm.buffer_id, Some(11));
        assert_eq!(fm.idle_timeout, 10);
        assert_eq!(fm.hard_timeout, 30);
        assert_eq!(fm.r#match.wildcards, Wildcards::NONE); // exact 12-tuple
    }

    #[test]
    fn unbuffered_packet_in_gets_companion_packet_out() {
        let mut c = Pox::new();
        let mut out = Outbox::new();
        c.on_packet_in(DatapathId(1), &packet_in(2, 1, 2, None), &mut out);
        out.drain();
        c.on_packet_in(DatapathId(1), &packet_in(1, 2, 1, None), &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 2);
        assert!(matches!(&msgs[0].1, OfMessage::FlowMod(_)));
        let OfMessage::PacketOut(po) = &msgs[1].1 else {
            panic!("expected packet out");
        };
        assert!(!po.data.is_empty());
    }

    #[test]
    fn unknown_destination_floods_via_packet_out() {
        let mut c = Pox::new();
        let mut out = Outbox::new();
        c.on_packet_in(DatapathId(1), &packet_in(1, 2, 1, Some(4)), &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        let OfMessage::PacketOut(po) = &msgs[0].1 else {
            panic!("expected packet out");
        };
        assert_eq!(po.buffer_id, Some(4));
    }

    #[test]
    fn hairpin_installs_drop_flow() {
        let mut c = Pox::new();
        let mut out = Outbox::new();
        c.on_packet_in(DatapathId(1), &packet_in(2, 1, 1, None), &mut out);
        out.drain();
        c.on_packet_in(DatapathId(1), &packet_in(1, 2, 1, Some(8)), &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        let OfMessage::FlowMod(fm) = &msgs[0].1 else {
            panic!("expected flow mod");
        };
        assert!(fm.actions.is_empty());
    }
}
