//! Shared L2-learning machinery and the per-controller match styles.

use attain_openflow::{DatapathId, FlowKey, MacAddr, Match, PortNo, Wildcards};
use std::collections::HashMap;

/// The MAC learning table shared by all three controller models: one
/// `(switch, MAC) → port` map, exactly what `l2_learning`/`simple_switch`
/// keep per datapath.
#[derive(Debug, Clone, Default)]
pub struct L2Table {
    entries: HashMap<(DatapathId, MacAddr), PortNo>,
}

impl L2Table {
    /// Creates an empty table.
    pub fn new() -> L2Table {
        L2Table::default()
    }

    /// Records that `mac` was seen on `port` of switch `dpid`.
    pub fn learn(&mut self, dpid: DatapathId, mac: MacAddr, port: PortNo) {
        self.entries.insert((dpid, mac), port);
    }

    /// Looks up the port `mac` was last seen on at `dpid`.
    pub fn lookup(&self, dpid: DatapathId, mac: MacAddr) -> Option<PortNo> {
        self.entries.get(&(dpid, mac)).copied()
    }

    /// Drops everything learned at `dpid` (on disconnect).
    pub fn forget_switch(&mut self, dpid: DatapathId) {
        self.entries.retain(|(d, _), _| *d != dpid);
    }

    /// Drops everything (on controller restart).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of learned entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been learned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// How a controller constructs the match of the flow mods it installs —
/// the implementation detail the connection-interruption attack's rule
/// `φ2` hinges on (paper §VII-C4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchStyle {
    /// Floodlight `Forwarding`: ingress port, MACs, ethertype, and the
    /// IP/ARP network addresses — but not ToS or transport ports.
    L3Aware,
    /// POX `l2_learning`: `ofp_match.from_packet` — an exact match on all
    /// twelve fields.
    FullExact,
    /// Ryu `simple_switch`: L2 only — ingress port and MACs. The network
    /// addresses are *wildcarded*, which is why `φ2` (which reads
    /// `nw_src`) never fires against Ryu.
    L2Only,
}

impl MatchStyle {
    /// Builds a flow-mod match for `key` in this style.
    pub fn build(&self, key: &FlowKey) -> Match {
        match self {
            MatchStyle::FullExact => Match::from_flow_key(key),
            MatchStyle::L2Only => {
                let w = Wildcards::ALL.0
                    & !(Wildcards::IN_PORT | Wildcards::DL_SRC | Wildcards::DL_DST);
                Match {
                    wildcards: Wildcards(w),
                    in_port: key.in_port,
                    dl_src: key.dl_src,
                    dl_dst: key.dl_dst,
                    ..Match::all()
                }
            }
            MatchStyle::L3Aware => {
                let w = Wildcards(
                    Wildcards::ALL.0
                        & !(Wildcards::IN_PORT
                            | Wildcards::DL_SRC
                            | Wildcards::DL_DST
                            | Wildcards::DL_TYPE),
                )
                .with_nw_src_ignored_bits(0)
                .with_nw_dst_ignored_bits(0);
                Match {
                    wildcards: w,
                    in_port: key.in_port,
                    dl_src: key.dl_src,
                    dl_dst: key.dl_dst,
                    dl_type: key.dl_type,
                    nw_src: key.nw_src,
                    nw_dst: key.nw_dst,
                    ..Match::all()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey {
            in_port: PortNo(2),
            dl_src: MacAddr::from_low(1),
            dl_dst: MacAddr::from_low(2),
            dl_vlan: 0xffff,
            dl_vlan_pcp: 0,
            dl_type: 0x0800,
            nw_tos: 0,
            nw_proto: 6,
            nw_src: 0x0a000101,
            nw_dst: 0x0a000202,
            tp_src: 1234,
            tp_dst: 80,
        }
    }

    #[test]
    fn l2_table_learn_lookup_forget() {
        let mut t = L2Table::new();
        t.learn(DatapathId(1), MacAddr::from_low(5), PortNo(3));
        t.learn(DatapathId(2), MacAddr::from_low(5), PortNo(7));
        assert_eq!(
            t.lookup(DatapathId(1), MacAddr::from_low(5)),
            Some(PortNo(3))
        );
        assert_eq!(
            t.lookup(DatapathId(2), MacAddr::from_low(5)),
            Some(PortNo(7))
        );
        assert_eq!(t.lookup(DatapathId(3), MacAddr::from_low(5)), None);
        t.forget_switch(DatapathId(1));
        assert_eq!(t.lookup(DatapathId(1), MacAddr::from_low(5)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn relearning_moves_the_port() {
        let mut t = L2Table::new();
        t.learn(DatapathId(1), MacAddr::from_low(5), PortNo(3));
        t.learn(DatapathId(1), MacAddr::from_low(5), PortNo(4));
        assert_eq!(
            t.lookup(DatapathId(1), MacAddr::from_low(5)),
            Some(PortNo(4))
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn full_exact_pins_every_field() {
        let m = MatchStyle::FullExact.build(&key());
        assert_eq!(m.wildcards, Wildcards::NONE);
        assert_eq!(m.nw_src_addr().map(u32::from), Some(0x0a000101));
    }

    #[test]
    fn l2_only_wildcards_network_addresses() {
        let m = MatchStyle::L2Only.build(&key());
        assert!(m.wildcards.nw_src_all());
        assert!(m.wildcards.nw_dst_all());
        assert_eq!(m.nw_src_addr(), None); // φ2 cannot read an nw_src here
        assert!(m.matches(&key()));
    }

    #[test]
    fn l3_aware_pins_ips_but_not_ports() {
        let m = MatchStyle::L3Aware.build(&key());
        assert_eq!(m.nw_src_addr().map(u32::from), Some(0x0a000101));
        assert_eq!(m.nw_dst_addr().map(u32::from), Some(0x0a000202));
        assert!(m.wildcards.has(Wildcards::TP_SRC));
        assert!(m.wildcards.has(Wildcards::TP_DST));
        assert!(m.matches(&key()));
        // Same hosts, different TCP ports: still matches (coarser than POX).
        let mut k2 = key();
        k2.tp_src = 9999;
        assert!(m.matches(&k2));
        assert!(!MatchStyle::FullExact.build(&key()).matches(&k2));
    }

    #[test]
    fn all_styles_match_their_own_key() {
        for style in [
            MatchStyle::L3Aware,
            MatchStyle::FullExact,
            MatchStyle::L2Only,
        ] {
            assert!(style.build(&key()).matches(&key()), "{style:?}");
        }
    }
}
