//! The Ryu v4.5 `simple_switch` (OpenFlow 1.0) model.

use crate::learning::{L2Table, MatchStyle};
use crate::traits::{Controller, ControllerKind, Outbox};
use attain_openflow::{
    packet, Action, DatapathId, FlowMod, FlowModCommand, FlowModFlags, OfMessage, PacketIn,
    PacketOut, PortNo, SwitchFeatures,
};

/// Ryu v4.5 `simple_switch` learning switch.
///
/// Behavioural fingerprint (see the crate docs table):
/// * flow mods carry an **L2-only** match (`in_port`, `dl_src`, `dl_dst`)
///   with the network addresses wildcarded and **no timeouts** — the
///   attribute difference that keeps the connection-interruption attack's
///   rule `φ2` (which reads `nw_src`) from ever firing against Ryu
///   (paper §VII-C4);
/// * every packet-in is answered with a `PACKET_OUT` (buffer or raw
///   data), with the flow mod sent unbuffered alongside — so flow-mod
///   suppression degrades Ryu but does not deadlock it.
#[derive(Debug, Default)]
pub struct Ryu {
    table: L2Table,
}

impl Ryu {
    /// Creates a fresh instance with an empty MAC table.
    pub fn new() -> Ryu {
        Ryu::default()
    }
}

impl Controller for Ryu {
    fn kind(&self) -> ControllerKind {
        ControllerKind::Ryu
    }

    fn on_switch_connect(
        &mut self,
        _dpid: DatapathId,
        _features: &SwitchFeatures,
        _out: &mut Outbox,
    ) {
    }

    fn on_packet_in(&mut self, dpid: DatapathId, pi: &PacketIn, out: &mut Outbox) {
        let key = packet::flow_key(&pi.data, pi.in_port);
        self.table.learn(dpid, key.dl_src, pi.in_port);

        let out_action = if key.dl_dst.is_multicast() {
            Action::Output {
                port: PortNo::FLOOD,
                max_len: 0,
            }
        } else {
            match self.table.lookup(dpid, key.dl_dst) {
                Some(port) => Action::Output { port, max_len: 0 },
                None => Action::Output {
                    port: PortNo::FLOOD,
                    max_len: 0,
                },
            }
        };

        // simple_switch: install a flow only once the destination is
        // known (never for floods), always without a buffer.
        if let Action::Output { port, .. } = out_action {
            if port != PortNo::FLOOD {
                out.send(
                    dpid,
                    OfMessage::FlowMod(FlowMod {
                        r#match: MatchStyle::L2Only.build(&key),
                        cookie: 0,
                        command: FlowModCommand::Add,
                        idle_timeout: 0,
                        hard_timeout: 0,
                        priority: 1,
                        buffer_id: None, // OFP_NO_BUFFER in simple_switch
                        out_port: PortNo::NONE,
                        flags: FlowModFlags::default(),
                        actions: vec![out_action.clone()],
                    }),
                );
            }
        }

        // simple_switch always emits the packet-out, releasing the buffer
        // (or resending the raw data) regardless of the flow mod's fate.
        out.send(
            dpid,
            OfMessage::PacketOut(PacketOut {
                buffer_id: pi.buffer_id,
                in_port: pi.in_port,
                actions: vec![out_action],
                data: if pi.buffer_id.is_none() {
                    pi.data.clone()
                } else {
                    vec![]
                },
            }),
        );
    }

    fn on_switch_disconnect(&mut self, dpid: DatapathId) {
        self.table.forget_switch(dpid);
    }

    fn reset(&mut self) {
        self.table.clear();
    }

    fn processing_delay_us(&self) -> u64 {
        // CPython with an eventlet hub: between Floodlight and POX.
        800
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attain_openflow::{MacAddr, PacketInReason};

    fn packet_in(src: u64, dst: u64, in_port: u16, buffer: Option<u32>) -> PacketIn {
        let frame = packet::icmp_echo_request(
            MacAddr::from_low(src),
            MacAddr::from_low(dst),
            format!("10.0.0.{src}").parse().unwrap(),
            format!("10.0.0.{dst}").parse().unwrap(),
            1,
            1,
            vec![0; 16],
        );
        PacketIn {
            buffer_id: buffer,
            total_len: frame.wire_len() as u16,
            in_port: PortNo(in_port),
            reason: PacketInReason::NoMatch,
            data: frame.encode(),
        }
    }

    #[test]
    fn known_destination_sends_flow_mod_and_packet_out() {
        let mut c = Ryu::new();
        let mut out = Outbox::new();
        c.on_packet_in(DatapathId(1), &packet_in(2, 1, 2, None), &mut out);
        out.drain();
        c.on_packet_in(DatapathId(1), &packet_in(1, 2, 1, Some(5)), &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 2);
        let OfMessage::FlowMod(fm) = &msgs[0].1 else {
            panic!("expected flow mod");
        };
        // The φ2-defeating behaviours: nw fields wildcarded, no buffer,
        // no timeouts.
        assert_eq!(fm.r#match.nw_src_addr(), None);
        assert_eq!(fm.r#match.nw_dst_addr(), None);
        assert_eq!(fm.buffer_id, None);
        assert_eq!(fm.idle_timeout, 0);
        assert_eq!(fm.hard_timeout, 0);
        let OfMessage::PacketOut(po) = &msgs[1].1 else {
            panic!("expected packet out");
        };
        assert_eq!(po.buffer_id, Some(5)); // buffer released here, not by the flow mod
    }

    #[test]
    fn unknown_destination_floods_without_flow_mod() {
        let mut c = Ryu::new();
        let mut out = Outbox::new();
        c.on_packet_in(DatapathId(1), &packet_in(1, 9, 1, Some(2)), &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        let OfMessage::PacketOut(po) = &msgs[0].1 else {
            panic!("expected packet out");
        };
        assert_eq!(
            po.actions,
            vec![Action::Output {
                port: PortNo::FLOOD,
                max_len: 0
            }]
        );
    }

    #[test]
    fn unbuffered_packet_out_carries_raw_data() {
        let mut c = Ryu::new();
        let mut out = Outbox::new();
        let pi = packet_in(1, 9, 1, None);
        c.on_packet_in(DatapathId(1), &pi, &mut out);
        let msgs = out.drain();
        let OfMessage::PacketOut(po) = &msgs[0].1 else {
            panic!("expected packet out");
        };
        assert_eq!(po.data, pi.data);
    }
}
