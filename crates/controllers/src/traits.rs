//! The [`Controller`] trait: how a harness hosts a controller model.

use attain_openflow::{DatapathId, OfMessage, PacketIn, SwitchFeatures};
use std::fmt;

/// Which controller implementation a value models.
///
/// Used by experiment harnesses to iterate over the paper's three
/// controllers and label results. The campaign harness additionally
/// sweeps two non-paper applications ([`Beacon`](crate::Beacon) and
/// [`Hub`](crate::Hub)) that widen the behavioural space attacks are
/// regressed against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ControllerKind {
    /// Floodlight v1.2, `Forwarding` module.
    Floodlight,
    /// POX v0.2.0, `forwarding.l2_learning`.
    Pox,
    /// Ryu v4.5, `simple_switch`.
    Ryu,
    /// Beacon v1.0.4, `LearningSwitch` bundle.
    Beacon,
    /// A static flooding hub (POX `forwarding.hub` style): never learns,
    /// never installs flows.
    Hub,
}

impl ControllerKind {
    /// All three paper controllers, in the paper's order.
    pub const ALL: [ControllerKind; 3] = [
        ControllerKind::Floodlight,
        ControllerKind::Pox,
        ControllerKind::Ryu,
    ];

    /// The five controller applications the conformance campaign sweeps:
    /// the paper's three plus Beacon and the hub.
    pub const CAMPAIGN: [ControllerKind; 5] = [
        ControllerKind::Floodlight,
        ControllerKind::Pox,
        ControllerKind::Ryu,
        ControllerKind::Beacon,
        ControllerKind::Hub,
    ];

    /// A lowercase machine-readable label (campaign cell names, CLI
    /// filters, golden-file keys).
    pub fn slug(&self) -> &'static str {
        match self {
            ControllerKind::Floodlight => "floodlight",
            ControllerKind::Pox => "pox",
            ControllerKind::Ryu => "ryu",
            ControllerKind::Beacon => "beacon",
            ControllerKind::Hub => "hub",
        }
    }

    /// Parses a [`slug`](ControllerKind::slug) back to a kind.
    pub fn from_slug(s: &str) -> Option<ControllerKind> {
        ControllerKind::CAMPAIGN.into_iter().find(|k| k.slug() == s)
    }

    // ---- behavioural predicates -------------------------------------
    //
    // The campaign's expectation table is derived from these rather than
    // hard-coded per cell: each predicate names the implementation
    // detail that makes an attack manifest (or stay silent) against a
    // given controller, mirroring the paper's §VII analysis.

    /// Whether the application installs flow entries at all. The hub
    /// forwards every packet by `PACKET_OUT`, so attacks that target
    /// `FLOW_MOD`s have nothing to bite on.
    pub fn installs_flows(&self) -> bool {
        !matches!(self, ControllerKind::Hub)
    }

    /// Whether buffered packets are released only by the `FLOW_MOD`
    /// itself (`buffer_id` attached). Suppressing flow mods then
    /// deadlocks the data plane — the paper's POX asterisk in Figure 11.
    pub fn releases_buffer_via_flow_mod(&self) -> bool {
        matches!(self, ControllerKind::Pox | ControllerKind::Beacon)
    }

    /// Whether the flow mods this application (and the DMZ firewall
    /// module running on it) construct expose a concrete `nw_src` — the
    /// field the connection-interruption attack's rule `φ2` reads.
    /// Ryu's L2-only matches wildcard it, which is why the paper's §VII-C
    /// attack never fires against Ryu; the hub sends no flow mods at all.
    pub fn flow_mod_exposes_nw_src(&self) -> bool {
        matches!(
            self,
            ControllerKind::Floodlight | ControllerKind::Pox | ControllerKind::Beacon
        )
    }

    /// Whether installed flows are permanent (no idle/hard timeout).
    /// Ryu's timeout-free entries mean a suppression that arms *after*
    /// the first installs never gets another `FLOW_MOD` to matter for
    /// the steady workload — and timeout-guarded attacks (matching
    /// `idle_timeout > 0`) never trigger at all.
    pub fn installs_permanent_flows(&self) -> bool {
        matches!(self, ControllerKind::Ryu)
    }
}

impl fmt::Display for ControllerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ControllerKind::Floodlight => "Floodlight",
            ControllerKind::Pox => "POX",
            ControllerKind::Ryu => "Ryu",
            ControllerKind::Beacon => "Beacon",
            ControllerKind::Hub => "Hub",
        };
        f.write_str(s)
    }
}

/// Messages a controller wants sent, collected during one callback.
///
/// The hosting harness drains the outbox after each callback and delivers
/// each message on the named switch's control-plane connection.
#[derive(Debug, Default)]
pub struct Outbox {
    msgs: Vec<(DatapathId, OfMessage)>,
}

impl Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Outbox {
        Outbox::default()
    }

    /// Queues `msg` for delivery to switch `dpid`.
    pub fn send(&mut self, dpid: DatapathId, msg: OfMessage) {
        self.msgs.push((dpid, msg));
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Drains the queued messages in send order.
    pub fn drain(&mut self) -> Vec<(DatapathId, OfMessage)> {
        std::mem::take(&mut self.msgs)
    }
}

/// A controller application hosted on a control-plane connection.
///
/// The harness performs the OpenFlow handshake (HELLO exchange,
/// `FEATURES_REQUEST`) itself and surfaces the interesting milestones to
/// the application, mirroring how Floodlight/POX/Ryu applications sit on
/// top of their platforms' channel handlers.
///
/// Implementations must be deterministic: the simulator replays identical
/// event orders and expects identical outputs.
pub trait Controller: Send {
    /// Which implementation this models.
    fn kind(&self) -> ControllerKind;

    /// A switch completed the handshake (its `FEATURES_REPLY` arrived).
    fn on_switch_connect(&mut self, dpid: DatapathId, features: &SwitchFeatures, out: &mut Outbox);

    /// A `PACKET_IN` arrived from a connected switch.
    fn on_packet_in(&mut self, dpid: DatapathId, packet_in: &PacketIn, out: &mut Outbox);

    /// Any other message arrived (echo and handshake traffic is handled by
    /// the harness and not surfaced).
    fn on_message(&mut self, dpid: DatapathId, msg: &OfMessage, out: &mut Outbox) {
        let _ = (dpid, msg, out);
    }

    /// The switch's connection died (the harness's liveness check failed).
    fn on_switch_disconnect(&mut self, dpid: DatapathId) {
        let _ = dpid;
    }

    /// The controller process was restarted: discard all learned state, as
    /// a freshly started Floodlight/POX/Ryu would. Harnesses call this on
    /// crash and on restart so the application never carries state across
    /// a process boundary.
    fn reset(&mut self) {}

    /// Mean per-message processing latency in microseconds, modelling the
    /// platform runtime (JVM vs. CPython). Harnesses add this to every
    /// reply's departure time.
    fn processing_delay_us(&self) -> u64 {
        500
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_preserves_send_order() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.send(DatapathId(1), OfMessage::BarrierRequest);
        out.send(DatapathId(2), OfMessage::Hello);
        assert_eq!(out.len(), 2);
        let drained = out.drain();
        assert_eq!(drained[0].0, DatapathId(1));
        assert_eq!(drained[1].0, DatapathId(2));
        assert!(out.is_empty());
    }

    #[test]
    fn kind_display_matches_paper_names() {
        assert_eq!(ControllerKind::Floodlight.to_string(), "Floodlight");
        assert_eq!(ControllerKind::Pox.to_string(), "POX");
        assert_eq!(ControllerKind::Ryu.to_string(), "Ryu");
        assert_eq!(ControllerKind::ALL.len(), 3);
    }
}
