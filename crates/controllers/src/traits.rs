//! The [`Controller`] trait: how a harness hosts a controller model.

use attain_openflow::{DatapathId, OfMessage, PacketIn, SwitchFeatures};
use std::fmt;

/// Which controller implementation a value models.
///
/// Used by experiment harnesses to iterate over the paper's three
/// controllers and label results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControllerKind {
    /// Floodlight v1.2, `Forwarding` module.
    Floodlight,
    /// POX v0.2.0, `forwarding.l2_learning`.
    Pox,
    /// Ryu v4.5, `simple_switch`.
    Ryu,
}

impl ControllerKind {
    /// All three paper controllers, in the paper's order.
    pub const ALL: [ControllerKind; 3] = [
        ControllerKind::Floodlight,
        ControllerKind::Pox,
        ControllerKind::Ryu,
    ];
}

impl fmt::Display for ControllerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ControllerKind::Floodlight => "Floodlight",
            ControllerKind::Pox => "POX",
            ControllerKind::Ryu => "Ryu",
        };
        f.write_str(s)
    }
}

/// Messages a controller wants sent, collected during one callback.
///
/// The hosting harness drains the outbox after each callback and delivers
/// each message on the named switch's control-plane connection.
#[derive(Debug, Default)]
pub struct Outbox {
    msgs: Vec<(DatapathId, OfMessage)>,
}

impl Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Outbox {
        Outbox::default()
    }

    /// Queues `msg` for delivery to switch `dpid`.
    pub fn send(&mut self, dpid: DatapathId, msg: OfMessage) {
        self.msgs.push((dpid, msg));
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Drains the queued messages in send order.
    pub fn drain(&mut self) -> Vec<(DatapathId, OfMessage)> {
        std::mem::take(&mut self.msgs)
    }
}

/// A controller application hosted on a control-plane connection.
///
/// The harness performs the OpenFlow handshake (HELLO exchange,
/// `FEATURES_REQUEST`) itself and surfaces the interesting milestones to
/// the application, mirroring how Floodlight/POX/Ryu applications sit on
/// top of their platforms' channel handlers.
///
/// Implementations must be deterministic: the simulator replays identical
/// event orders and expects identical outputs.
pub trait Controller: Send {
    /// Which implementation this models.
    fn kind(&self) -> ControllerKind;

    /// A switch completed the handshake (its `FEATURES_REPLY` arrived).
    fn on_switch_connect(&mut self, dpid: DatapathId, features: &SwitchFeatures, out: &mut Outbox);

    /// A `PACKET_IN` arrived from a connected switch.
    fn on_packet_in(&mut self, dpid: DatapathId, packet_in: &PacketIn, out: &mut Outbox);

    /// Any other message arrived (echo and handshake traffic is handled by
    /// the harness and not surfaced).
    fn on_message(&mut self, dpid: DatapathId, msg: &OfMessage, out: &mut Outbox) {
        let _ = (dpid, msg, out);
    }

    /// The switch's connection died (the harness's liveness check failed).
    fn on_switch_disconnect(&mut self, dpid: DatapathId) {
        let _ = dpid;
    }

    /// The controller process was restarted: discard all learned state, as
    /// a freshly started Floodlight/POX/Ryu would. Harnesses call this on
    /// crash and on restart so the application never carries state across
    /// a process boundary.
    fn reset(&mut self) {}

    /// Mean per-message processing latency in microseconds, modelling the
    /// platform runtime (JVM vs. CPython). Harnesses add this to every
    /// reply's departure time.
    fn processing_delay_us(&self) -> u64 {
        500
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_preserves_send_order() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.send(DatapathId(1), OfMessage::BarrierRequest);
        out.send(DatapathId(2), OfMessage::Hello);
        assert_eq!(out.len(), 2);
        let drained = out.drain();
        assert_eq!(drained[0].0, DatapathId(1));
        assert_eq!(drained[1].0, DatapathId(2));
        assert!(out.is_empty());
    }

    #[test]
    fn kind_display_matches_paper_names() {
        assert_eq!(ControllerKind::Floodlight.to_string(), "Floodlight");
        assert_eq!(ControllerKind::Pox.to_string(), "POX");
        assert_eq!(ControllerKind::Ryu.to_string(), "Ryu");
        assert_eq!(ControllerKind::ALL.len(), 3);
    }
}
