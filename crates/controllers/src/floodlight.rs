//! The Floodlight v1.2 `Forwarding` module model.

use crate::learning::{L2Table, MatchStyle};
use crate::traits::{Controller, ControllerKind, Outbox};
use attain_openflow::{
    packet, Action, DatapathId, FlowMod, FlowModCommand, FlowModFlags, Match, OfMessage, PacketIn,
    PacketOut, PortNo, SwitchFeatures,
};

/// Floodlight v1.2 `Forwarding` learning switch.
///
/// Behavioural fingerprint (see the crate docs table):
/// * flow mods carry an **L3-aware** match (MACs + ethertype + IP
///   addresses) with a 5 s idle timeout and priority 1;
/// * the buffered packet is released by a **separate `PACKET_OUT`**, never
///   by attaching `buffer_id` to the flow mod — so suppressing flow mods
///   degrades Floodlight but does not deadlock it.
#[derive(Debug, Default)]
pub struct Floodlight {
    table: L2Table,
}

/// Floodlight's `FLOWMOD_DEFAULT_IDLE_TIMEOUT`.
const IDLE_TIMEOUT: u16 = 5;
/// Floodlight's `FLOWMOD_DEFAULT_PRIORITY`.
const PRIORITY: u16 = 1;

impl Floodlight {
    /// Creates a fresh instance with an empty MAC table.
    pub fn new() -> Floodlight {
        Floodlight::default()
    }
}

impl Controller for Floodlight {
    fn kind(&self) -> ControllerKind {
        ControllerKind::Floodlight
    }

    fn on_switch_connect(
        &mut self,
        _dpid: DatapathId,
        _features: &SwitchFeatures,
        _out: &mut Outbox,
    ) {
    }

    fn on_packet_in(&mut self, dpid: DatapathId, pi: &PacketIn, out: &mut Outbox) {
        let key = packet::flow_key(&pi.data, pi.in_port);
        self.table.learn(dpid, key.dl_src, pi.in_port);

        let dst_port = if key.dl_dst.is_multicast() {
            None
        } else {
            self.table.lookup(dpid, key.dl_dst)
        };
        match dst_port {
            Some(port) if port == pi.in_port => {
                // Destination apparently behind the ingress port: release
                // the buffer without forwarding.
                out.send(
                    dpid,
                    OfMessage::PacketOut(PacketOut {
                        buffer_id: pi.buffer_id,
                        in_port: pi.in_port,
                        actions: vec![],
                        data: if pi.buffer_id.is_none() {
                            pi.data.clone()
                        } else {
                            vec![]
                        },
                    }),
                );
            }
            Some(port) => {
                let m: Match = MatchStyle::L3Aware.build(&key);
                out.send(
                    dpid,
                    OfMessage::FlowMod(FlowMod {
                        r#match: m,
                        cookie: 0x20_000000, // Forwarding's app cookie
                        command: FlowModCommand::Add,
                        idle_timeout: IDLE_TIMEOUT,
                        hard_timeout: 0,
                        priority: PRIORITY,
                        buffer_id: None, // never attached: see crate docs
                        out_port: PortNo::NONE,
                        flags: FlowModFlags::default(),
                        actions: vec![Action::Output { port, max_len: 0 }],
                    }),
                );
                out.send(
                    dpid,
                    OfMessage::PacketOut(PacketOut {
                        buffer_id: pi.buffer_id,
                        in_port: pi.in_port,
                        actions: vec![Action::Output { port, max_len: 0 }],
                        data: if pi.buffer_id.is_none() {
                            pi.data.clone()
                        } else {
                            vec![]
                        },
                    }),
                );
            }
            None => {
                out.send(
                    dpid,
                    OfMessage::PacketOut(PacketOut {
                        buffer_id: pi.buffer_id,
                        in_port: pi.in_port,
                        actions: vec![Action::Output {
                            port: PortNo::FLOOD,
                            max_len: 0,
                        }],
                        data: if pi.buffer_id.is_none() {
                            pi.data.clone()
                        } else {
                            vec![]
                        },
                    }),
                );
            }
        }
    }

    fn on_switch_disconnect(&mut self, dpid: DatapathId) {
        self.table.forget_switch(dpid);
    }

    fn reset(&mut self) {
        self.table.clear();
    }

    fn processing_delay_us(&self) -> u64 {
        // JVM service pipeline: fast steady-state dispatch.
        300
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attain_openflow::{MacAddr, PacketInReason};

    fn packet_in(src: u64, dst: u64, in_port: u16, buffer: Option<u32>) -> PacketIn {
        let frame = packet::icmp_echo_request(
            MacAddr::from_low(src),
            MacAddr::from_low(dst),
            format!("10.0.0.{src}").parse().unwrap(),
            format!("10.0.0.{dst}").parse().unwrap(),
            1,
            1,
            vec![0; 16],
        );
        PacketIn {
            buffer_id: buffer,
            total_len: frame.wire_len() as u16,
            in_port: PortNo(in_port),
            reason: PacketInReason::NoMatch,
            data: frame.encode(),
        }
    }

    #[test]
    fn unknown_destination_floods() {
        let mut c = Floodlight::new();
        let mut out = Outbox::new();
        c.on_packet_in(DatapathId(1), &packet_in(1, 2, 1, Some(7)), &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        let OfMessage::PacketOut(po) = &msgs[0].1 else {
            panic!("expected packet out");
        };
        assert_eq!(po.buffer_id, Some(7));
        assert_eq!(
            po.actions,
            vec![Action::Output {
                port: PortNo::FLOOD,
                max_len: 0
            }]
        );
    }

    #[test]
    fn known_destination_installs_flow_and_separate_packet_out() {
        let mut c = Floodlight::new();
        let mut out = Outbox::new();
        // Learn h2 at port 2 via a first packet.
        c.on_packet_in(DatapathId(1), &packet_in(2, 1, 2, None), &mut out);
        out.drain();
        // Now h1 → h2 is forwardable.
        c.on_packet_in(DatapathId(1), &packet_in(1, 2, 1, Some(9)), &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 2);
        let OfMessage::FlowMod(fm) = &msgs[0].1 else {
            panic!("expected flow mod first");
        };
        // The load-bearing behaviours: no buffer on the flow mod, L3-aware
        // match with a concrete nw_src, 5 s idle timeout.
        assert_eq!(fm.buffer_id, None);
        assert_eq!(fm.idle_timeout, 5);
        assert!(fm.r#match.nw_src_addr().is_some());
        let OfMessage::PacketOut(po) = &msgs[1].1 else {
            panic!("expected packet out second");
        };
        assert_eq!(po.buffer_id, Some(9));
        assert_eq!(
            po.actions,
            vec![Action::Output {
                port: PortNo(2),
                max_len: 0
            }]
        );
    }

    #[test]
    fn hairpin_destination_releases_buffer_without_forwarding() {
        let mut c = Floodlight::new();
        let mut out = Outbox::new();
        c.on_packet_in(DatapathId(1), &packet_in(2, 1, 1, None), &mut out);
        out.drain();
        c.on_packet_in(DatapathId(1), &packet_in(1, 2, 1, Some(3)), &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        let OfMessage::PacketOut(po) = &msgs[0].1 else {
            panic!("expected packet out");
        };
        assert!(po.actions.is_empty());
        assert_eq!(po.buffer_id, Some(3));
    }

    #[test]
    fn broadcast_always_floods_even_after_learning() {
        let mut c = Floodlight::new();
        let mut out = Outbox::new();
        let frame = packet::arp_request(
            MacAddr::from_low(1),
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
        );
        let pi = PacketIn {
            buffer_id: None,
            total_len: frame.wire_len() as u16,
            in_port: PortNo(1),
            reason: PacketInReason::NoMatch,
            data: frame.encode(),
        };
        c.on_packet_in(DatapathId(1), &pi, &mut out);
        let msgs = out.drain();
        let OfMessage::PacketOut(po) = &msgs[0].1 else {
            panic!("expected packet out");
        };
        assert_eq!(
            po.actions,
            vec![Action::Output {
                port: PortNo::FLOOD,
                max_len: 0
            }]
        );
        assert_eq!(po.data, pi.data); // unbuffered: data resent verbatim
    }

    #[test]
    fn disconnect_forgets_learned_macs() {
        let mut c = Floodlight::new();
        let mut out = Outbox::new();
        c.on_packet_in(DatapathId(1), &packet_in(2, 1, 2, None), &mut out);
        out.drain();
        c.on_switch_disconnect(DatapathId(1));
        c.on_packet_in(DatapathId(1), &packet_in(1, 2, 1, None), &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1); // flood again: table was cleared
        assert!(matches!(&msgs[0].1, OfMessage::PacketOut(_)));
    }
}
