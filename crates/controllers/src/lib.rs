//! Models of the Floodlight, POX, and Ryu SDN controllers.
//!
//! The ATTAIN paper's evaluation (§VII) runs identical attacks against
//! Floodlight v1.2's `Forwarding` module, POX v0.2.0's
//! `forwarding.l2_learning`, and Ryu v4.5's `simple_switch` — and its
//! headline finding is that the *same* attack manifests differently per
//! controller. This crate reimplements the three learning-switch
//! applications with exactly the behavioural differences that drive those
//! divergent manifestations:
//!
//! | behaviour | [`Floodlight`] | [`Pox`] | [`Ryu`] |
//! |---|---|---|---|
//! | releases the buffered packet via | separate `PACKET_OUT` | the `FLOW_MOD` itself (`buffer_id` attached) | separate `PACKET_OUT` |
//! | flow-mod match fields | L3-aware (ports + MACs + ethertype + IPs) | exact 12-tuple (`ofp_match.from_packet`) | L2 only (`in_port`, `dl_src`, `dl_dst`) |
//! | idle / hard timeout | 5 s / none | 10 s / 30 s | none / none |
//!
//! Consequences (reproduced by the experiment suite):
//!
//! * Under **flow-modification suppression** (paper Figure 10/11), POX's
//!   buffered packets are released only by the suppressed `FLOW_MOD`, so
//!   the data plane deadlocks — a full denial of service. Floodlight and
//!   Ryu keep forwarding each packet via `PACKET_OUT` at controller speed:
//!   degraded service and ballooning control-plane traffic, but no DoS.
//! * Under **connection interruption** (paper Figure 12/Table II), the
//!   attack's rule `φ2` matches a `FLOW_MOD` whose match names `nw_src =
//!   h2`. Floodlight and POX construct such matches; Ryu's L2-only match
//!   never satisfies `φ2`, so against Ryu the attack never reaches its
//!   dropping state — the paper's reported Ryu anomaly.
//!
//! The crate also provides [`DmzFirewall`], a policy wrapper for the case
//! study's DMZ switch `s2`, and the [`Controller`] trait through which the
//! network simulator (or any other harness) hosts a controller.
//!
//! Beyond the paper's three, two further applications widen the
//! behavioural space the conformance campaign sweeps
//! ([`ControllerKind::CAMPAIGN`]): [`Beacon`] v1.0.4's `LearningSwitch`
//! (exact-match like POX, 5 s idle timeout like Floodlight, buffer
//! released by the flow mod) and a static flooding [`Hub`] (no learning,
//! no flow mods at all).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod beacon;
mod firewall;
mod floodlight;
mod hub;
mod learning;
mod pox;
mod ryu;
mod traits;

pub use beacon::Beacon;
pub use firewall::{DmzFirewall, DmzPolicy};
pub use floodlight::Floodlight;
pub use hub::Hub;
pub use learning::{L2Table, MatchStyle};
pub use pox::Pox;
pub use ryu::Ryu;
pub use traits::{Controller, ControllerKind, Outbox};

impl ControllerKind {
    /// Instantiates a fresh (bare, un-wrapped) application of this kind.
    pub fn instantiate(&self) -> Box<dyn Controller> {
        match self {
            ControllerKind::Floodlight => Box::new(Floodlight::new()),
            ControllerKind::Pox => Box::new(Pox::new()),
            ControllerKind::Ryu => Box::new(Ryu::new()),
            ControllerKind::Beacon => Box::new(Beacon::new()),
            ControllerKind::Hub => Box::new(Hub::new()),
        }
    }
}
