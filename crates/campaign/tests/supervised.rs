//! Supervised-execution contract, driven by the crate's own chaos
//! cells (`--features test_faults`): a panicking worker and a
//! virtual-time livelock are contained and annotated while every
//! healthy cell in the same campaign still completes — and the report
//! bytes stay independent of the worker count.

#![cfg(feature = "test_faults")]

use attain_campaign::cell::chaos;
use attain_campaign::{attacks, run_with, CellStatus, Matrix, RunnerConfig};
use attain_controllers::ControllerKind;
use attain_netsim::FailMode;
use std::time::Duration;

fn chaos_matrix() -> Matrix {
    Matrix {
        attacks: ["trivial_pass", chaos::PANIC_CELL, chaos::LIVELOCK_CELL]
            .iter()
            .map(|name| attacks::by_name(name).expect("attack exists"))
            .collect(),
        controllers: vec![ControllerKind::Pox, ControllerKind::Ryu],
        fail_modes: vec![FailMode::Secure],
        seeds: vec![1],
    }
}

#[test]
fn chaos_cells_are_contained_and_annotated() {
    let matrix = chaos_matrix();
    let report = run_with(&matrix, &RunnerConfig::new(2));
    assert_eq!(report.cells.len(), 6);

    for cell in &report.cells {
        if cell.attack == chaos::PANIC_CELL {
            match &cell.status {
                CellStatus::Panicked { msg } => assert_eq!(msg, chaos::PANIC_MESSAGE),
                other => panic!("{}: expected Panicked, got {other:?}", cell.name),
            }
            assert!(cell.observed.is_none(), "{} must be unjudged", cell.name);
            assert!(!cell.pass);
        } else if cell.attack == chaos::LIVELOCK_CELL {
            match &cell.status {
                CellStatus::BudgetExhausted { livelock, events } => {
                    assert!(*livelock, "{}: livelock detector must fire", cell.name);
                    assert!(*events > 0);
                }
                other => panic!("{}: expected BudgetExhausted, got {other:?}", cell.name),
            }
            assert!(cell.observed.is_none(), "{} must be unjudged", cell.name);
            assert!(!cell.pass);
        } else {
            // Healthy neighbours of chaos cells still complete and pass
            // (trivial_pass shares its baseline with the chaos cells).
            assert!(
                matches!(cell.status, CellStatus::Completed(_)),
                "{}: expected Completed, got {:?}",
                cell.name,
                cell.status
            );
            assert!(cell.pass, "{} must pass", cell.name);
        }
    }
    assert_eq!(report.unjudged(), 4);
    assert_eq!(report.passed(), 2);

    // Degraded mode is visible, machine-readable, and never aborts.
    let json = report.canonical_json();
    assert!(json.contains("\"status\": \"panicked\""), "{json}");
    assert!(json.contains("\"status\": \"budget-exhausted\""), "{json}");
    assert!(json.contains("\"verdict\": \"unjudged\""), "{json}");
    assert!(json.contains(chaos::PANIC_MESSAGE), "{json}");
    assert!(json.contains("livelock detected"), "{json}");
    assert!(json.contains("\"unjudged\": 4"), "{json}");

    // Unjudged cells never leak into the golden digests.
    let golden = report.golden_digests();
    assert_eq!(golden.lines().count(), 2, "{golden}");
    assert!(!golden.contains(chaos::PANIC_CELL), "{golden}");
    assert!(!golden.contains(chaos::LIVELOCK_CELL), "{golden}");
}

#[test]
fn chaos_report_is_byte_identical_across_thread_counts() {
    let matrix = chaos_matrix();
    let serial = run_with(&matrix, &RunnerConfig::new(1));
    let parallel = run_with(&matrix, &RunnerConfig::new(4));
    assert_eq!(
        serial.canonical_json(),
        parallel.canonical_json(),
        "degraded-mode report bytes must not depend on the worker count"
    );
}

#[test]
fn wall_clock_supervisor_cancels_a_livelocked_cell() {
    let matrix = Matrix {
        attacks: vec![attacks::by_name(chaos::LIVELOCK_CELL).expect("attack exists")],
        controllers: vec![ControllerKind::Pox],
        fail_modes: vec![FailMode::Secure],
        seeds: vec![1],
    };
    // Disarm the deterministic livelock detector so only the wall-clock
    // deadline can stop the spin; exercise one same-seed retry too.
    let mut cfg = RunnerConfig::new(1);
    cfg.livelock_bound = u64::MAX;
    cfg.cell_timeout = Some(Duration::from_millis(200));
    cfg.retries = 1;
    cfg.retry_backoff = Duration::from_millis(10);
    let report = run_with(&matrix, &cfg);
    assert_eq!(report.cells.len(), 1);
    assert_eq!(report.cells[0].status, CellStatus::TimedOut);
    assert!(report.cells[0].observed.is_none());
    assert_eq!(report.unjudged(), 1);
    let json = report.canonical_json();
    assert!(json.contains("\"status\": \"timed-out\""), "{json}");
    assert!(json.contains("cancelled by wall-clock deadline"), "{json}");
}
