//! The fingerprint-accuracy arm as a regression surface: the timing
//! fingerprinting attack must identify every controller application
//! from virtual-time observables alone, across both fail modes and all
//! campaign seeds, and the resulting confusion matrix must be pinned
//! and `--jobs`-invariant.
//!
//! The classification evidence is entirely in-band: `PACKET_IN →
//! FLOW_MOD` service-time means on the `(c1, s1)` channel separate
//! Beacon (1.25 ms), Floodlight (1.30 ms), Ryu (1.80 ms), and POX
//! (2.20 ms), while the hub betrays itself behaviourally (no installs,
//! heavy flooding). See `scenario::attacks::FINGERPRINT_THEN_ATTACK`.

use attain_campaign::{attacks, cell, oracle, runner, Filter, Matrix};
use attain_controllers::ControllerKind;
use attain_netsim::FailMode;

fn fingerprint_matrix() -> Matrix {
    let mut matrix = Matrix::full();
    Filter::parse(&format!("attack={}", oracle::FINGERPRINT_ATTACK))
        .unwrap()
        .apply(&mut matrix);
    matrix
}

#[test]
fn classifies_every_application_across_fail_modes_and_seeds() {
    let attack = attacks::by_name(oracle::FINGERPRINT_ATTACK).expect("attack shipped");
    for kind in ControllerKind::CAMPAIGN {
        for fail_mode in [FailMode::Safe, FailMode::Secure] {
            for seed in [1u64, 2, 3] {
                let outcome = cell::run_cell(&attack, kind, fail_mode, seed)
                    .unwrap_or_else(|e| panic!("{kind}/{fail_mode:?}/s{seed}: {e}"));
                let predicted = oracle::fingerprint_prediction(&outcome);
                assert_eq!(
                    predicted,
                    Some(kind),
                    "{kind}/{fail_mode:?}/s{seed}: final state {:?} predicts {predicted:?}",
                    outcome.final_state
                );
            }
        }
    }
}

#[test]
fn hub_is_never_misclassified_as_a_learning_switch() {
    // The hub's timing signature (800 µs) collides with Ryu's — the
    // attack must separate them behaviourally, never by latency. Pin
    // that the hub cells end in `attack_hub` specifically and that the
    // only rule to fire before the payload is the hub classifier.
    let attack = attacks::by_name(oracle::FINGERPRINT_ATTACK).unwrap();
    for seed in [1u64, 2, 3] {
        let outcome = cell::run_cell(&attack, ControllerKind::Hub, FailMode::Secure, seed).unwrap();
        assert_eq!(outcome.final_state.as_deref(), Some("attack_hub"));
        let classifier_fires: Vec<&str> = outcome
            .rule_fires
            .iter()
            .filter(|(name, n)| name.starts_with("classify_") && *n > 0)
            .map(|(name, _)| name.as_str())
            .collect();
        assert_eq!(
            classifier_fires,
            ["classify_hub"],
            "s{seed}: exactly one classifier may fire"
        );
    }
}

#[test]
fn confusion_matrix_is_diagonal_and_jobs_invariant() {
    let matrix = fingerprint_matrix();
    let serial = runner::run(&matrix, 1);
    let parallel = runner::run(&matrix, 4);
    assert_eq!(
        serial.canonical_json(),
        parallel.canonical_json(),
        "fingerprint cells and confusion matrix must not depend on --jobs"
    );

    let confusion = serial
        .confusion_matrix()
        .expect("fingerprint cells present");
    assert_eq!(confusion, parallel.confusion_matrix().unwrap());
    // 2 fail modes × 3 seeds per application, every one on the diagonal.
    assert_eq!(confusion.total(), 30);
    assert_eq!(confusion.correct(), 30);
    for (kind, preds) in &confusion.rows {
        assert_eq!(
            preds.as_slice(),
            [(kind.slug().to_string(), 6)],
            "{kind}: all six cells must predict the true application"
        );
    }

    // The canonical report serializes the matrix into the summary.
    let json = serial.canonical_json();
    assert!(
        json.contains("\"fingerprint\": {\"attack\": \"fingerprint_then_attack\", \"cells\": 30, \"correct\": 30"),
        "summary must carry the fingerprint tally: {json}"
    );
    assert!(json.contains("\"confusion\": {\"floodlight\": {\"floodlight\": 6}, \"pox\": {\"pox\": 6}, \"ryu\": {\"ryu\": 6}, \"beacon\": {\"beacon\": 6}, \"hub\": {\"hub\": 6}}"));
}

#[test]
fn reports_without_fingerprint_cells_carry_no_confusion_matrix() {
    let mut matrix = Matrix::full();
    Filter::parse("attack=trivial_pass,controller=pox,fail=secure,seed=1")
        .unwrap()
        .apply(&mut matrix);
    let report = runner::run(&matrix, 1);
    assert!(report.confusion_matrix().is_none());
    assert!(!report.canonical_json().contains("\"fingerprint\""));
}

#[test]
fn misclassified_prediction_fails_the_cell_even_when_the_class_matches() {
    // The fingerprint arm is additive: a cell whose differential class
    // is in the expected set but whose prediction names the wrong
    // application must not pass. Exercised by relabelling a real Ryu
    // outcome as a Floodlight cell through the oracle helpers.
    let attack = attacks::by_name(oracle::FINGERPRINT_ATTACK).unwrap();
    let outcome = cell::run_cell(&attack, ControllerKind::Ryu, FailMode::Secure, 1).unwrap();
    let predicted = oracle::fingerprint_prediction(&outcome).expect("ryu cell classifies");
    assert_eq!(predicted, ControllerKind::Ryu);
    assert_ne!(
        predicted,
        ControllerKind::Floodlight,
        "a wrong-application prediction must be distinguishable"
    );
}
