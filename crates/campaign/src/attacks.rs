//! The campaign's attack inventory: every shipped `attacks/*.atk`.
//!
//! Sources are embedded at compile time so the campaign binary and the
//! conformance tests run from any working directory; a tier-1 test
//! (`tests/atk_files.rs`) separately pins the on-disk files to the
//! bundled sources.

use attain_core::scenario;
use attain_netsim::EvictionPolicy;

/// How an attack description binds to a system model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Compiled against the §VII enterprise scenario and run on the
    /// case-study network (Figure 8/9).
    Enterprise,
    /// A self-contained document carrying its own `system` and
    /// `capabilities` blocks; run on the topology it declares.
    SelfContained,
}

/// A per-cell flow-table bound: one switch runs with a finite table
/// and an overflow policy, applied identically to the attacked run and
/// its differential baseline (the bound is environment, not attack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableOverride {
    /// The switch whose table is bounded (by builder name).
    pub switch: &'static str,
    /// Maximum resident flow entries.
    pub capacity: usize,
    /// What a full table does with the next install.
    pub policy: EvictionPolicy,
}

/// The overflow family's environment: the branch switch `s4` bounded
/// at eight entries with LRU eviction, small enough that the phantom
/// installs evict the workload's flows within one ping window.
pub const TABLE_OVERFLOW_BOUND: TableOverride = TableOverride {
    switch: "s4",
    capacity: 8,
    policy: EvictionPolicy::EvictLru,
};

/// One campaign attack: a named `.atk` source plus its scope.
#[derive(Debug, Clone, Copy)]
pub struct AttackDef {
    /// The attack's file stem (`attacks/<name>.atk`), used in cell names.
    pub name: &'static str,
    /// The DSL source text.
    pub source: &'static str,
    /// Enterprise-scenario attack or self-contained document.
    pub scope: Scope,
    /// A flow-table bound the cell's environment applies, if any.
    pub table: Option<TableOverride>,
}

/// Every shipped attack, in matrix order: the nine enterprise attacks
/// in their `scenario::attacks::ALL` order, then the self-contained
/// demo document.
pub fn all() -> Vec<AttackDef> {
    let mut v: Vec<AttackDef> = scenario::attacks::ALL
        .iter()
        .map(|&(name, source)| AttackDef {
            name,
            source,
            scope: Scope::Enterprise,
            table: (name == "table_overflow").then_some(TABLE_OVERFLOW_BOUND),
        })
        .collect();
    v.push(AttackDef {
        name: "self_contained_demo",
        source: include_str!("../../../attacks/self_contained_demo.atk"),
        scope: Scope::SelfContained,
        table: None,
    });
    // Chaos cells: the sources are the trivial baseline (so shared
    // baselines stay healthy); `cell::run` intercepts the names and
    // misbehaves only on the attacked half of the pair.
    #[cfg(feature = "test_faults")]
    {
        v.push(AttackDef {
            name: crate::cell::chaos::PANIC_CELL,
            source: scenario::attacks::TRIVIAL_PASS,
            scope: Scope::Enterprise,
            table: None,
        });
        v.push(AttackDef {
            name: crate::cell::chaos::LIVELOCK_CELL,
            source: scenario::attacks::TRIVIAL_PASS,
            scope: Scope::Enterprise,
            table: None,
        });
    }
    v
}

/// Looks up an attack by name.
pub fn by_name(name: &str) -> Option<AttackDef> {
    all().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_covers_every_shipped_atk_file() {
        let names: Vec<_> = all().iter().map(|a| a.name).collect();
        let expected = if cfg!(feature = "test_faults") {
            13
        } else {
            11
        };
        assert_eq!(
            names.len(),
            expected,
            "expected the eleven shipped attacks (plus chaos cells under test_faults)"
        );
        assert_eq!(names[0], "trivial_pass", "baseline attack leads the matrix");
        assert!(names.contains(&"self_contained_demo"));
    }

    #[test]
    fn only_the_overflow_attack_bounds_a_table() {
        for a in all() {
            if a.name == "table_overflow" {
                assert_eq!(a.table, Some(TABLE_OVERFLOW_BOUND));
            } else {
                assert_eq!(a.table, None, "{} must not bound a table", a.name);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(
            by_name("flow_mod_suppression").unwrap().scope,
            Scope::Enterprise
        );
        assert_eq!(
            by_name("self_contained_demo").unwrap().scope,
            Scope::SelfContained
        );
        assert!(by_name("no_such_attack").is_none());
    }
}
