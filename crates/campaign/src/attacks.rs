//! The campaign's attack inventory: every shipped `attacks/*.atk`.
//!
//! Sources are embedded at compile time so the campaign binary and the
//! conformance tests run from any working directory; a tier-1 test
//! (`tests/atk_files.rs`) separately pins the on-disk files to the
//! bundled sources.

use attain_core::scenario;

/// How an attack description binds to a system model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Compiled against the §VII enterprise scenario and run on the
    /// case-study network (Figure 8/9).
    Enterprise,
    /// A self-contained document carrying its own `system` and
    /// `capabilities` blocks; run on the topology it declares.
    SelfContained,
}

/// One campaign attack: a named `.atk` source plus its scope.
#[derive(Debug, Clone, Copy)]
pub struct AttackDef {
    /// The attack's file stem (`attacks/<name>.atk`), used in cell names.
    pub name: &'static str,
    /// The DSL source text.
    pub source: &'static str,
    /// Enterprise-scenario attack or self-contained document.
    pub scope: Scope,
}

/// Every shipped attack, in matrix order: the eight enterprise attacks
/// in their `scenario::attacks::ALL` order, then the self-contained
/// demo document.
pub fn all() -> Vec<AttackDef> {
    let mut v: Vec<AttackDef> = scenario::attacks::ALL
        .iter()
        .map(|&(name, source)| AttackDef {
            name,
            source,
            scope: Scope::Enterprise,
        })
        .collect();
    v.push(AttackDef {
        name: "self_contained_demo",
        source: include_str!("../../../attacks/self_contained_demo.atk"),
        scope: Scope::SelfContained,
    });
    v
}

/// Looks up an attack by name.
pub fn by_name(name: &str) -> Option<AttackDef> {
    all().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_covers_every_shipped_atk_file() {
        let names: Vec<_> = all().iter().map(|a| a.name).collect();
        assert_eq!(names.len(), 9, "expected the nine shipped attacks");
        assert_eq!(names[0], "trivial_pass", "baseline attack leads the matrix");
        assert!(names.contains(&"self_contained_demo"));
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(
            by_name("flow_mod_suppression").unwrap().scope,
            Scope::Enterprise
        );
        assert_eq!(
            by_name("self_contained_demo").unwrap().scope,
            Scope::SelfContained
        );
        assert!(by_name("no_such_attack").is_none());
    }
}
