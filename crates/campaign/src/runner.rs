//! The supervised worker pool: executes every cell (and each distinct
//! baseline exactly once) across `jobs` threads, then merges results
//! back in matrix order.
//!
//! Determinism argument: each unit is a single-threaded seeded
//! simulation (a pure function of its coordinates), workers only race
//! for *which* unit to run next (an atomic cursor), and assembly
//! iterates the matrix — never the completion order. Hence the report
//! is byte-identical for any `jobs ≥ 1`.
//!
//! Supervision argument: every unit runs inside `catch_unwind`, writes
//! its [`CellStatus`] into a private `OnceLock` slot (no shared mutex
//! to poison), and is bounded three ways — a deterministic event
//! budget, a deterministic livelock detector, and a wall-clock
//! deadline heap that cancels overrunners through a [`CancelToken`].
//! Only wall-clock timeouts are retried (same seed, exponential
//! backoff): they are the one nondeterministic failure mode, so a
//! flaky host gets another chance while deterministic failures
//! (panics, budget halts, setup errors) are reported as-is.

use crate::attacks::{AttackDef, Scope};
use crate::cell::{run_baseline_limited, run_cell_limited, CellError, CellLimits, CellOutcome};
use crate::matrix::{fail_slug, Matrix};
use crate::oracle;
use crate::report::{CampaignReport, CellReport};
use attain_controllers::ControllerKind;
use attain_netsim::{CancelToken, FailMode};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default per-instant event bound: orders of magnitude above anything
/// a healthy cell dispatches at one virtual time, small enough to trip
/// a genuine livelock in milliseconds.
pub const DEFAULT_LIVELOCK_BOUND: u64 = 200_000;

/// How one cell (or baseline) run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CellStatus {
    /// The simulation reached its horizon and produced an outcome.
    Completed(CellOutcome),
    /// Setup failed deterministically (attack compile/validate error,
    /// malformed workload); the message is the error rendered.
    Failed {
        /// What went wrong.
        msg: String,
    },
    /// The unit panicked; the payload was captured and the worker
    /// survived.
    Panicked {
        /// The panic payload (or a placeholder for non-string payloads).
        msg: String,
    },
    /// The supervisor's wall-clock deadline cancelled the run (after
    /// any configured retries).
    TimedOut,
    /// A deterministic run budget halted the simulation.
    BudgetExhausted {
        /// Events dispatched when the budget tripped.
        events: u64,
        /// `true` when the livelock detector fired rather than the
        /// total event cap.
        livelock: bool,
    },
}

impl CellStatus {
    /// The outcome, when the run completed.
    pub fn outcome(&self) -> Option<&CellOutcome> {
        match self {
            CellStatus::Completed(o) => Some(o),
            _ => None,
        }
    }

    /// Stable machine-readable status name (reported in JSON).
    pub fn slug(&self) -> &'static str {
        match self {
            CellStatus::Completed(_) => "completed",
            CellStatus::Failed { .. } => "failed",
            CellStatus::Panicked { .. } => "panicked",
            CellStatus::TimedOut => "timed-out",
            CellStatus::BudgetExhausted { .. } => "budget-exhausted",
        }
    }

    /// Human-readable annotation for incomplete cells (`None` when the
    /// cell completed). Deterministic for deterministic failures.
    pub fn annotation(&self) -> Option<String> {
        match self {
            CellStatus::Completed(_) => None,
            CellStatus::Failed { msg } => Some(msg.clone()),
            CellStatus::Panicked { msg } => Some(format!("worker panicked: {msg}")),
            CellStatus::TimedOut => Some("cancelled by wall-clock deadline".into()),
            CellStatus::BudgetExhausted { events, livelock } => Some(if *livelock {
                format!("livelock detected: {events} events without advancing virtual time")
            } else {
                format!("event budget exhausted after {events} events")
            }),
        }
    }
}

/// Supervision knobs for a campaign run.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker threads.
    pub jobs: usize,
    /// Wall-clock deadline per unit attempt; `None` disables the
    /// supervisor thread entirely.
    pub cell_timeout: Option<Duration>,
    /// Deterministic cap on total simulator events per unit.
    pub max_events: Option<u64>,
    /// Deterministic cap on events at one virtual instant.
    pub livelock_bound: u64,
    /// Same-seed retries for timed-out units (the one nondeterministic
    /// failure mode). Deterministic failures are never retried.
    pub retries: u32,
    /// Backoff before the first retry; doubles per further attempt.
    pub retry_backoff: Duration,
}

impl RunnerConfig {
    /// Defaults: no wall-clock timeout, no event cap, the stock
    /// livelock bound, no retries.
    pub fn new(jobs: usize) -> RunnerConfig {
        RunnerConfig {
            jobs,
            cell_timeout: None,
            max_events: None,
            livelock_bound: DEFAULT_LIVELOCK_BOUND,
            retries: 0,
            retry_backoff: Duration::from_millis(100),
        }
    }
}

struct UnitSpec {
    attack: AttackDef,
    controller: ControllerKind,
    fail_mode: FailMode,
    seed: u64,
    attacked: bool,
}

/// Baselines are shared per topology: every enterprise attack diffs
/// against the one enterprise baseline for its (controller, fail,
/// seed); each self-contained document has its own topology and so its
/// own baseline.
fn topology_key(attack: &AttackDef) -> &'static str {
    match attack.scope {
        Scope::Enterprise => "enterprise",
        Scope::SelfContained => attack.name,
    }
}

// ---- wall-clock deadline supervisor ---------------------------------------

struct Deadline {
    due: Instant,
    seq: u64,
    token: CancelToken,
}

impl PartialEq for Deadline {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl Eq for Deadline {}
impl PartialOrd for Deadline {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Deadline {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// One thread holding a deadline min-heap; workers register `(due,
/// token)` pairs and the thread cancels whatever overruns. Dropping
/// the supervisor closes the channel and joins the thread.
struct Supervisor {
    tx: Option<mpsc::Sender<Deadline>>,
    handle: Option<JoinHandle<()>>,
    seq: AtomicUsize,
}

impl Supervisor {
    fn spawn() -> Supervisor {
        let (tx, rx) = mpsc::channel::<Deadline>();
        let handle = std::thread::spawn(move || {
            let mut heap: BinaryHeap<Reverse<Deadline>> = BinaryHeap::new();
            loop {
                let wait = match heap.peek() {
                    Some(Reverse(d)) => d.due.saturating_duration_since(Instant::now()),
                    None => Duration::from_secs(3600),
                };
                match rx.recv_timeout(wait) {
                    Ok(d) => heap.push(Reverse(d)),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    // All workers done; pending deadlines are moot.
                    Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
                let now = Instant::now();
                while heap.peek().is_some_and(|Reverse(d)| d.due <= now) {
                    if let Some(Reverse(d)) = heap.pop() {
                        d.token.cancel();
                    }
                }
            }
        });
        Supervisor {
            tx: Some(tx),
            handle: Some(handle),
            seq: AtomicUsize::new(0),
        }
    }

    fn register(&self, due: Instant, token: CancelToken) {
        if let Some(tx) = &self.tx {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed) as u64;
            let _ = tx.send(Deadline { due, seq, token });
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

// ---- the pool -------------------------------------------------------------

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one unit once, fully contained: panics become `Panicked`,
/// errors become their statuses.
fn attempt_unit(u: &UnitSpec, limits: &CellLimits) -> CellStatus {
    let result = catch_unwind(AssertUnwindSafe(|| {
        if u.attacked {
            run_cell_limited(&u.attack, u.controller, u.fail_mode, u.seed, limits)
        } else {
            run_baseline_limited(&u.attack, u.controller, u.fail_mode, u.seed, limits)
        }
    }));
    match result {
        Ok(Ok(outcome)) => CellStatus::Completed(outcome),
        Ok(Err(CellError::Failed(msg))) => CellStatus::Failed { msg },
        Ok(Err(CellError::BudgetExhausted { events, livelock })) => {
            CellStatus::BudgetExhausted { events, livelock }
        }
        Ok(Err(CellError::Cancelled)) => CellStatus::TimedOut,
        Err(payload) => CellStatus::Panicked {
            msg: panic_message(payload),
        },
    }
}

/// Runs one unit under supervision, retrying wall-clock timeouts with
/// exponential backoff.
fn run_supervised(u: &UnitSpec, cfg: &RunnerConfig, supervisor: Option<&Supervisor>) -> CellStatus {
    let mut attempt = 0u32;
    loop {
        let token = CancelToken::new();
        if let (Some(sup), Some(timeout)) = (supervisor, cfg.cell_timeout) {
            sup.register(Instant::now() + timeout, token.clone());
        }
        let limits = CellLimits {
            max_events: cfg.max_events,
            livelock_bound: Some(cfg.livelock_bound),
            cancel: Some(token),
        };
        let status = attempt_unit(u, &limits);
        if status == CellStatus::TimedOut && attempt < cfg.retries {
            let backoff = cfg.retry_backoff.saturating_mul(1u32 << attempt.min(10));
            attempt += 1;
            std::thread::sleep(backoff);
            continue;
        }
        return status;
    }
}

fn run_pool(units: &[UnitSpec], cfg: &RunnerConfig) -> Vec<CellStatus> {
    let supervisor = cfg.cell_timeout.map(|_| Supervisor::spawn());
    // Per-slot storage: a panicking worker (even one that somehow
    // escapes `catch_unwind`) can poison nothing — every other slot
    // still fills and the merge proceeds.
    let results: Vec<OnceLock<CellStatus>> = (0..units.len()).map(|_| OnceLock::new()).collect();
    let jobs = cfg.jobs.max(1).min(units.len().max(1));
    if jobs <= 1 {
        for (i, u) in units.iter().enumerate() {
            let _ = results[i].set(run_supervised(u, cfg, supervisor.as_ref()));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= units.len() {
                        break;
                    }
                    let _ = results[i].set(run_supervised(&units[i], cfg, supervisor.as_ref()));
                });
            }
        });
    }
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner().unwrap_or(CellStatus::Panicked {
                msg: "worker vanished before storing a result".into(),
            })
        })
        .collect()
}

/// Runs the whole campaign on `jobs` worker threads with default
/// supervision (deterministic livelock bound only).
pub fn run(matrix: &Matrix, jobs: usize) -> CampaignReport {
    run_with(matrix, &RunnerConfig::new(jobs))
}

/// Runs the whole campaign under an explicit [`RunnerConfig`].
pub fn run_with(matrix: &Matrix, cfg: &RunnerConfig) -> CampaignReport {
    let started = Instant::now();
    let cells = matrix.cells();

    // One baseline unit per distinct (topology, controller, fail,
    // seed), then every attacked cell in matrix order.
    let mut units: Vec<UnitSpec> = Vec::new();
    let mut baseline_slot: BTreeMap<(&str, &str, &str, u64), usize> = BTreeMap::new();
    for cell in &cells {
        let attack = matrix.attacks[cell.attack];
        let key = (
            topology_key(&attack),
            cell.controller.slug(),
            fail_slug(cell.fail_mode),
            cell.seed,
        );
        baseline_slot.entry(key).or_insert_with(|| {
            units.push(UnitSpec {
                attack,
                controller: cell.controller,
                fail_mode: cell.fail_mode,
                seed: cell.seed,
                attacked: false,
            });
            units.len() - 1
        });
    }
    let first_cell_unit = units.len();
    for cell in &cells {
        units.push(UnitSpec {
            attack: matrix.attacks[cell.attack],
            controller: cell.controller,
            fail_mode: cell.fail_mode,
            seed: cell.seed,
            attacked: true,
        });
    }

    let results = run_pool(&units, cfg);

    let mut reports = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        let attack = &matrix.attacks[cell.attack];
        let key = (
            topology_key(attack),
            cell.controller.slug(),
            fail_slug(cell.fail_mode),
            cell.seed,
        );
        let status = results[first_cell_unit + i].clone();
        let baseline = &results[baseline_slot[&key]];
        let observed = oracle::judge(&status, baseline);
        let expected = oracle::expected(attack.name, cell.controller, cell.fail_mode);
        let mut pass = observed.is_some_and(|o| expected.contains(&o));
        // Fingerprint-accuracy arm: the fingerprinting attack's cells
        // additionally require the predicted application (its final
        // payload state) to be the one actually under test.
        if attack.name == oracle::FINGERPRINT_ATTACK {
            pass = pass
                && status
                    .outcome()
                    .is_some_and(|o| oracle::fingerprint_prediction(o) == Some(cell.controller));
        }
        reports.push(CellReport {
            name: matrix.cell_name(cell),
            attack: attack.name.to_string(),
            controller: cell.controller,
            fail_mode: cell.fail_mode,
            seed: cell.seed,
            status,
            observed,
            expected,
            pass,
        });
    }
    CampaignReport {
        matrix: matrix.clone(),
        cells: reports,
        wall_ms_total: started.elapsed().as_millis() as u64,
        jobs: cfg.jobs.max(1),
    }
}
