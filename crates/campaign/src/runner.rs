//! The worker pool: executes every cell (and each distinct baseline
//! exactly once) across `jobs` threads, then merges results back in
//! matrix order.
//!
//! Determinism argument: each unit is a single-threaded seeded
//! simulation (a pure function of its coordinates), workers only race
//! for *which* unit to run next (an atomic cursor), and assembly
//! iterates the matrix — never the completion order. Hence the report
//! is byte-identical for any `jobs ≥ 1`.

use crate::attacks::{AttackDef, Scope};
use crate::cell::{run_baseline, run_cell, CellOutcome};
use crate::matrix::{fail_slug, Matrix};
use crate::oracle;
use crate::report::{CampaignReport, CellReport};
use attain_controllers::ControllerKind;
use attain_netsim::FailMode;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

struct UnitSpec {
    attack: AttackDef,
    controller: ControllerKind,
    fail_mode: FailMode,
    seed: u64,
    attacked: bool,
}

/// Baselines are shared per topology: every enterprise attack diffs
/// against the one enterprise baseline for its (controller, fail,
/// seed); each self-contained document has its own topology and so its
/// own baseline.
fn topology_key(attack: &AttackDef) -> &'static str {
    match attack.scope {
        Scope::Enterprise => "enterprise",
        Scope::SelfContained => attack.name,
    }
}

fn run_pool(units: &[UnitSpec], jobs: usize) -> Vec<CellOutcome> {
    let run_unit = |u: &UnitSpec| {
        if u.attacked {
            run_cell(&u.attack, u.controller, u.fail_mode, u.seed)
        } else {
            run_baseline(&u.attack, u.controller, u.fail_mode, u.seed)
        }
    };
    if jobs <= 1 || units.len() <= 1 {
        return units.iter().map(run_unit).collect();
    }
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<CellOutcome>>> = Mutex::new(vec![None; units.len()]);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(units.len()) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= units.len() {
                    break;
                }
                let outcome = run_unit(&units[i]);
                results.lock().expect("result store poisoned")[i] = Some(outcome);
            });
        }
    });
    results
        .into_inner()
        .expect("result store poisoned")
        .into_iter()
        .map(|o| o.expect("every unit completed"))
        .collect()
}

/// Runs the whole campaign on `jobs` worker threads.
pub fn run(matrix: &Matrix, jobs: usize) -> CampaignReport {
    let started = Instant::now();
    let cells = matrix.cells();

    // One baseline unit per distinct (topology, controller, fail,
    // seed), then every attacked cell in matrix order.
    let mut units: Vec<UnitSpec> = Vec::new();
    let mut baseline_slot: BTreeMap<(&str, &str, &str, u64), usize> = BTreeMap::new();
    for cell in &cells {
        let attack = matrix.attacks[cell.attack];
        let key = (
            topology_key(&attack),
            cell.controller.slug(),
            fail_slug(cell.fail_mode),
            cell.seed,
        );
        baseline_slot.entry(key).or_insert_with(|| {
            units.push(UnitSpec {
                attack,
                controller: cell.controller,
                fail_mode: cell.fail_mode,
                seed: cell.seed,
                attacked: false,
            });
            units.len() - 1
        });
    }
    let first_cell_unit = units.len();
    for cell in &cells {
        units.push(UnitSpec {
            attack: matrix.attacks[cell.attack],
            controller: cell.controller,
            fail_mode: cell.fail_mode,
            seed: cell.seed,
            attacked: true,
        });
    }

    let results = run_pool(&units, jobs);

    let mut reports = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        let attack = &matrix.attacks[cell.attack];
        let key = (
            topology_key(attack),
            cell.controller.slug(),
            fail_slug(cell.fail_mode),
            cell.seed,
        );
        let outcome = results[first_cell_unit + i].clone();
        let baseline = &results[baseline_slot[&key]];
        let observed = oracle::classify(&outcome, baseline);
        let expected = oracle::expected(attack.name, cell.controller, cell.fail_mode);
        reports.push(CellReport {
            name: matrix.cell_name(cell),
            attack: attack.name.to_string(),
            controller: cell.controller,
            fail_mode: cell.fail_mode,
            seed: cell.seed,
            outcome,
            observed,
            expected,
            pass: expected.contains(&observed),
        });
    }
    CampaignReport {
        matrix: matrix.clone(),
        cells: reports,
        wall_ms_total: started.elapsed().as_millis() as u64,
        jobs: jobs.max(1),
    }
}
