//! Running one matrix cell: an isolated simulator scenario driving a
//! fixed workload, with or without the cell's attack interposed.
//!
//! Each cell is strictly single-threaded and seeded, so a cell's
//! [`CellOutcome`] is a pure function of `(attack, controller,
//! fail_mode, seed)` — the property the thread-count-invariance test
//! pins down. Wall-clock time is measured but excluded from the
//! report's canonical bytes.
//!
//! Cells run under supervision: every setup failure is a [`CellError`]
//! rather than a panic, and the simulation itself runs against the
//! [`CellLimits`]' deterministic budget and cancellation token, so a
//! runaway or malformed cell degrades into an annotated status instead
//! of taking its worker (and the campaign) down.

use crate::attacks::{AttackDef, Scope};
use attain_controllers::ControllerKind;
use attain_core::dsl;
use attain_core::exec::AttackExecutor;
use attain_injector::harness::{build_case_study, build_simulation, try_attach_attack};
use attain_injector::SimInjector;
use attain_netsim::{
    CancelToken, DetRng, Direction, FailMode, HaltReason, HostCommand, RunBudget, SimTime,
    Simulation, TraceDigest,
};
use attain_openflow::OfType;
use std::fmt;

/// Why a cell failed to produce an outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellError {
    /// The cell could not be set up: attack compile/validate failure,
    /// missing workload host or IP, malformed document. Deterministic.
    Failed(String),
    /// The simulation tripped its deterministic run budget.
    BudgetExhausted {
        /// Events dispatched when the budget tripped.
        events: u64,
        /// `true` when the per-instant livelock detector fired (virtual
        /// time stopped advancing), `false` for the total event cap.
        livelock: bool,
    },
    /// The supervisor's cancellation token fired (wall-clock timeout).
    Cancelled,
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::Failed(msg) => write!(f, "failed: {msg}"),
            CellError::BudgetExhausted { events, livelock } => {
                if *livelock {
                    write!(f, "livelock detected after {events} events")
                } else {
                    write!(f, "event budget exhausted after {events} events")
                }
            }
            CellError::Cancelled => write!(f, "cancelled by supervisor"),
        }
    }
}

/// Execution bounds a cell runs under. The default is unlimited — the
/// pre-supervision behaviour.
#[derive(Debug, Clone, Default)]
pub struct CellLimits {
    /// Cap on total dispatched simulator events.
    pub max_events: Option<u64>,
    /// Cap on events at one virtual instant (livelock detector).
    pub livelock_bound: Option<u64>,
    /// Cooperative cancellation checked in the event loop.
    pub cancel: Option<CancelToken>,
}

impl CellLimits {
    fn to_budget(&self) -> RunBudget {
        RunBudget {
            max_events: self.max_events,
            max_events_per_instant: self.livelock_bound,
            cancel: self.cancel.clone(),
        }
    }
}

/// One ping run's observable result.
#[derive(Debug, Clone, PartialEq)]
pub struct PingRow {
    /// The workload label (`w1`, `w2`, `trigger`, `probe`).
    pub label: String,
    /// Echo requests sent.
    pub transmitted: u32,
    /// Echo replies received.
    pub received: u32,
    /// Mean round-trip time over the successful trials, if any.
    pub avg_rtt_ms: Option<f64>,
}

/// Everything a cell run exposes to the oracles and the report.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// FNV-1a digest over the rendered control-plane trace + counters.
    pub digest: TraceDigest,
    /// `PACKET_IN`s observed at the proxy.
    pub packet_ins: u64,
    /// `FLOW_MOD`s the controller emitted (pre-interposition).
    pub flow_mods: u64,
    /// All control-plane messages observed at the proxy.
    pub control_total: u64,
    /// Data-plane frames dropped (fail-secure lockdown, dead links…).
    pub frames_dropped: u64,
    /// Every workload ping run, in schedule order.
    pub pings: Vec<PingRow>,
    /// The attack state the executor ended in (`None` for baselines).
    pub final_state: Option<String>,
    /// Per-rule fire counts, in rule-name order (empty for baselines).
    pub rule_fires: Vec<(String, u64)>,
    /// Host wall-clock spent running the cell, in milliseconds.
    pub wall_ms: u64,
}

/// Workload start-time jitter in milliseconds, derived from the seed.
///
/// The fault RNG streams are only consulted when a fault plan arms
/// them, so without this jitter every seed would replay byte-identical
/// traces and the seed axis would be vacuous.
fn jitter_ms(seed: u64) -> u64 {
    DetRng::new(seed).next_u64() % 400
}

fn schedule_ping(
    sim: &mut Simulation,
    at: SimTime,
    host: &str,
    dst_ip: &str,
    count: u32,
    label: &str,
) -> Result<(), CellError> {
    let host = sim
        .node_id(host)
        .ok_or_else(|| CellError::Failed(format!("workload host {host} missing from topology")))?;
    let dst = dst_ip
        .parse()
        .map_err(|_| CellError::Failed(format!("workload address {dst_ip} does not parse")))?;
    sim.schedule_command(
        at,
        HostCommand::Ping {
            host,
            dst,
            count,
            interval: SimTime::from_secs(1),
            label: label.into(),
        },
    );
    Ok(())
}

/// Schedules the enterprise workload (all times jittered by the seed):
/// `t≈10` the primary h1→h6 window, `t≈20` the Table II trigger
/// traffic h2→h3 (which also probes unauthorized access), `t≈42` a
/// second h1→h6 window after any interruption fallout has landed,
/// `t≈44` a late h2→h3 probe for post-failover access.
fn enterprise_workload(sim: &mut Simulation, seed: u64) -> Result<SimTime, CellError> {
    let j = jitter_ms(seed) as f64 / 1000.0;
    let at = |base: u64| SimTime::from_secs_f64(base as f64 + j);
    schedule_ping(sim, at(10), "h1", "10.0.0.6", 8, "w1")?;
    schedule_ping(sim, at(20), "h2", "10.0.0.3", 10, "trigger")?;
    schedule_ping(sim, at(42), "h1", "10.0.0.6", 6, "w2")?;
    schedule_ping(sim, at(44), "h2", "10.0.0.3", 6, "probe")?;
    Ok(SimTime::from_secs(65))
}

/// Schedules the self-contained-document workload: two ping windows
/// between the document's first two hosts (the demo's `web → db`),
/// the second one measuring post-engagement service.
fn document_workload(
    sim: &mut Simulation,
    system: &attain_core::model::SystemModel,
    seed: u64,
) -> Result<SimTime, CellError> {
    let hosts: Vec<_> = system.hosts().map(|(_, h)| h.clone()).collect();
    if hosts.len() < 2 {
        return Err(CellError::Failed(
            "self-contained campaign documents need two hosts for the ping workload".into(),
        ));
    }
    let src = &hosts[0].name;
    let dst = hosts[1]
        .ip
        .ok_or_else(|| CellError::Failed(format!("campaign host {} has no IP", hosts[1].name)))?
        .to_string();
    let j = jitter_ms(seed) as f64 / 1000.0;
    let at = |base: u64| SimTime::from_secs_f64(base as f64 + j);
    schedule_ping(sim, at(10), src, &dst, 8, "w1")?;
    schedule_ping(sim, at(25), src, &dst, 6, "w2")?;
    Ok(SimTime::from_secs(40))
}

struct ExecHandleOutcome {
    final_state: Option<String>,
    rule_fires: Vec<(String, u64)>,
}

fn collect(sim: &Simulation, exec: ExecHandleOutcome, wall_ms: u64) -> CellOutcome {
    CellOutcome {
        digest: sim.trace().digest(),
        packet_ins: sim
            .trace()
            .control_message_count(OfType::PacketIn, Direction::SwitchToController),
        flow_mods: sim
            .trace()
            .control_message_count(OfType::FlowMod, Direction::ControllerToSwitch),
        control_total: sim.trace().control_message_total(),
        frames_dropped: sim.frames_dropped,
        pings: sim
            .ping_stats()
            .iter()
            .map(|s| PingRow {
                label: s.label.clone(),
                transmitted: s.transmitted(),
                received: s.received(),
                avg_rtt_ms: s.avg_rtt_ms(),
            })
            .collect(),
        final_state: exec.final_state,
        rule_fires: exec.rule_fires,
        wall_ms,
    }
}

/// Maps a finished run's halt reason onto the cell's fate.
fn judge_halt(halt: HaltReason) -> Result<(), CellError> {
    match halt {
        HaltReason::Horizon => Ok(()),
        HaltReason::EventBudget { events } => Err(CellError::BudgetExhausted {
            events,
            livelock: false,
        }),
        HaltReason::Livelock { events_at_instant } => Err(CellError::BudgetExhausted {
            events: events_at_instant,
            livelock: true,
        }),
        HaltReason::Cancelled => Err(CellError::Cancelled),
    }
}

fn run(
    attack: &AttackDef,
    kind: ControllerKind,
    fail_mode: FailMode,
    seed: u64,
    attach: bool,
    limits: &CellLimits,
) -> Result<CellOutcome, CellError> {
    #[cfg(feature = "test_faults")]
    if attach {
        // The injected-fault cells misbehave only when attacked, so the
        // shared enterprise baseline they reuse stays healthy.
        if attack.name == chaos::PANIC_CELL {
            panic!("{}", chaos::PANIC_MESSAGE);
        }
        if attack.name == chaos::LIVELOCK_CELL {
            return chaos::run_livelock(kind, fail_mode, seed, limits);
        }
    }
    let started = std::time::Instant::now();
    let (mut sim, handle, horizon) = match attack.scope {
        Scope::Enterprise => {
            let mut sim = build_case_study(kind, fail_mode);
            // A table bound is part of the cell's environment: the
            // baseline runs against the same bounded switch, so the
            // diff isolates the attack, not the capacity.
            if let Some(t) = attack.table {
                sim.set_table_config(t.switch, t.capacity, t.policy);
            }
            let handle = if attach {
                Some(
                    try_attach_attack(&mut sim, attack.source)
                        .map_err(|e| CellError::Failed(format!("{}: {e}", attack.name)))?,
                )
            } else {
                None
            };
            sim.set_fault_seed(seed);
            let horizon = enterprise_workload(&mut sim, seed)?;
            (sim, handle, horizon)
        }
        Scope::SelfContained => {
            let doc = dsl::compile_document(attack.source).map_err(|e| {
                CellError::Failed(format!("{}: document does not compile: {e}", attack.name))
            })?;
            let mut sim = build_simulation(&doc.system, fail_mode, |_| kind.instantiate());
            let handle = if attach {
                let compiled = doc.attacks.first().ok_or_else(|| {
                    CellError::Failed(format!("{}: document declares no attack", attack.name))
                })?;
                let exec = AttackExecutor::new(
                    doc.system.clone(),
                    doc.attack_model.clone(),
                    compiled.attack.clone(),
                )
                .map_err(|e| {
                    CellError::Failed(format!("{}: attack does not validate: {e}", attack.name))
                })?;
                let (injector, handle) = SimInjector::new(exec, &doc.system, &sim);
                sim.set_interposer(Box::new(injector));
                Some(handle)
            } else {
                None
            };
            sim.set_fault_seed(seed);
            let horizon = document_workload(&mut sim, &doc.system, seed)?;
            (sim, handle, horizon)
        }
    };
    sim.set_run_budget(limits.to_budget());
    judge_halt(sim.run_until(horizon))?;
    let exec = match handle {
        Some(handle) => {
            let exec = handle.lock();
            ExecHandleOutcome {
                final_state: Some(exec.current_state_name().to_string()),
                rule_fires: exec
                    .log()
                    .rule_fire_counts()
                    .map(|(name, n)| (name.to_string(), n))
                    .collect(),
            }
        }
        None => ExecHandleOutcome {
            final_state: None,
            rule_fires: Vec::new(),
        },
    };
    Ok(collect(&sim, exec, started.elapsed().as_millis() as u64))
}

/// Runs one attacked cell to completion under the default (unlimited)
/// limits.
pub fn run_cell(
    attack: &AttackDef,
    kind: ControllerKind,
    fail_mode: FailMode,
    seed: u64,
) -> Result<CellOutcome, CellError> {
    run_cell_limited(attack, kind, fail_mode, seed, &CellLimits::default())
}

/// Runs one attacked cell under explicit execution limits.
pub fn run_cell_limited(
    attack: &AttackDef,
    kind: ControllerKind,
    fail_mode: FailMode,
    seed: u64,
    limits: &CellLimits,
) -> Result<CellOutcome, CellError> {
    run(attack, kind, fail_mode, seed, true, limits)
}

/// Runs the cell's differential baseline: the identical topology,
/// workload, and seed with **no interposer at all**. A pass-through
/// interposition is timing-transparent (`pass` re-schedules at the
/// connection's own latency), so `trivial_pass` cells must classify as
/// Silent against this baseline — the campaign's proxy-transparency
/// invariant.
pub fn run_baseline(
    attack: &AttackDef,
    kind: ControllerKind,
    fail_mode: FailMode,
    seed: u64,
) -> Result<CellOutcome, CellError> {
    run_baseline_limited(attack, kind, fail_mode, seed, &CellLimits::default())
}

/// Runs the cell's differential baseline under explicit limits.
pub fn run_baseline_limited(
    attack: &AttackDef,
    kind: ControllerKind,
    fail_mode: FailMode,
    seed: u64,
    limits: &CellLimits,
) -> Result<CellOutcome, CellError> {
    run(attack, kind, fail_mode, seed, false, limits)
}

/// Deliberately misbehaving cells, compiled only under the
/// `test_faults` feature: the campaign's own fault injection, proving
/// the supervisor contains a panicking worker and a livelocked event
/// loop while every healthy cell still completes.
#[cfg(feature = "test_faults")]
pub mod chaos {
    use super::*;
    use attain_netsim::{Interposer, InterposerActions, ProxiedMessage};

    /// Attack name whose attacked runs panic the worker.
    pub const PANIC_CELL: &str = "__panic_cell";
    /// Attack name whose attacked runs stop advancing virtual time.
    pub const LIVELOCK_CELL: &str = "__livelock_cell";
    /// The fixed panic payload (fixed so reports stay byte-identical
    /// across thread counts).
    pub const PANIC_MESSAGE: &str = "injected chaos: deliberate worker panic";

    /// An interposer that re-arms a wakeup at `now` forever: the event
    /// loop spins at one virtual instant until the livelock detector
    /// (or a wall-clock cancel) stops it.
    struct Spin;

    impl Interposer for Spin {
        fn on_message(&mut self, msg: ProxiedMessage<'_>) -> InterposerActions {
            let mut a = InterposerActions::pass(&msg);
            a.wakeup = Some(msg.now);
            a
        }

        fn on_wakeup(&mut self, now: SimTime) -> InterposerActions {
            InterposerActions {
                wakeup: Some(now),
                ..InterposerActions::default()
            }
        }
    }

    pub(super) fn run_livelock(
        kind: ControllerKind,
        fail_mode: FailMode,
        seed: u64,
        limits: &CellLimits,
    ) -> Result<CellOutcome, CellError> {
        let mut sim = build_case_study(kind, fail_mode);
        sim.set_interposer(Box::new(Spin));
        sim.set_fault_seed(seed);
        let horizon = enterprise_workload(&mut sim, seed)?;
        sim.set_run_budget(limits.to_budget());
        judge_halt(sim.run_until(horizon))?;
        Err(CellError::Failed(
            "livelock cell reached its horizon — the spin interposer never engaged".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks;

    fn run_ok(
        attack: &AttackDef,
        kind: ControllerKind,
        fail_mode: FailMode,
        seed: u64,
    ) -> CellOutcome {
        run_cell(attack, kind, fail_mode, seed).expect("cell completes")
    }

    #[test]
    fn same_cell_twice_is_byte_identical() {
        let a = attacks::by_name("trivial_pass").unwrap();
        let x = run_ok(&a, ControllerKind::Pox, FailMode::Secure, 1);
        let y = run_ok(&a, ControllerKind::Pox, FailMode::Secure, 1);
        assert_eq!(x.digest, y.digest);
        assert_eq!(x.pings, y.pings);
    }

    #[test]
    fn seeds_differentiate_traces() {
        let a = attacks::by_name("trivial_pass").unwrap();
        let x = run_ok(&a, ControllerKind::Floodlight, FailMode::Secure, 1);
        let y = run_ok(&a, ControllerKind::Floodlight, FailMode::Secure, 2);
        assert_ne!(
            x.digest, y.digest,
            "seed must jitter the workload into a distinct trace"
        );
    }

    #[test]
    fn pass_through_interposition_is_transparent() {
        let a = attacks::by_name("trivial_pass").unwrap();
        let attacked = run_ok(&a, ControllerKind::Ryu, FailMode::Safe, 3);
        let baseline =
            run_baseline(&a, ControllerKind::Ryu, FailMode::Safe, 3).expect("baseline completes");
        assert_eq!(attacked.digest, baseline.digest);
        assert_eq!(attacked.pings, baseline.pings);
    }

    #[test]
    fn self_contained_demo_engages_on_flow_timeouts() {
        let a = attacks::by_name("self_contained_demo").unwrap();
        let pox = run_ok(&a, ControllerKind::Pox, FailMode::Secure, 1);
        assert_eq!(pox.final_state.as_deref(), Some("degrade"));
        let ryu = run_ok(&a, ControllerKind::Ryu, FailMode::Secure, 1);
        assert_eq!(
            ryu.final_state.as_deref(),
            Some("observe"),
            "Ryu's timeout-free flow mods must never satisfy the engage guard"
        );
    }

    #[test]
    fn tight_event_budget_surfaces_as_budget_exhausted() {
        let a = attacks::by_name("trivial_pass").unwrap();
        let limits = CellLimits {
            max_events: Some(10),
            ..CellLimits::default()
        };
        let err = run_cell_limited(&a, ControllerKind::Pox, FailMode::Secure, 1, &limits)
            .expect_err("10 events cannot finish the workload");
        assert_eq!(
            err,
            CellError::BudgetExhausted {
                events: 10,
                livelock: false
            }
        );
    }

    #[test]
    fn pre_cancelled_token_surfaces_as_cancelled() {
        let a = attacks::by_name("trivial_pass").unwrap();
        let token = CancelToken::new();
        token.cancel();
        let limits = CellLimits {
            cancel: Some(token),
            ..CellLimits::default()
        };
        let err = run_cell_limited(&a, ControllerKind::Pox, FailMode::Secure, 1, &limits)
            .expect_err("a cancelled token must stop the run");
        assert_eq!(err, CellError::Cancelled);
    }
}
