//! Running one matrix cell: an isolated simulator scenario driving a
//! fixed workload, with or without the cell's attack interposed.
//!
//! Each cell is strictly single-threaded and seeded, so a cell's
//! [`CellOutcome`] is a pure function of `(attack, controller,
//! fail_mode, seed)` — the property the thread-count-invariance test
//! pins down. Wall-clock time is measured but excluded from the
//! report's canonical bytes.

use crate::attacks::{AttackDef, Scope};
use attain_controllers::ControllerKind;
use attain_core::dsl;
use attain_core::exec::AttackExecutor;
use attain_injector::harness::{attach_attack, build_case_study, build_simulation};
use attain_injector::SimInjector;
use attain_netsim::{DetRng, Direction, FailMode, HostCommand, SimTime, Simulation, TraceDigest};
use attain_openflow::OfType;

/// One ping run's observable result.
#[derive(Debug, Clone, PartialEq)]
pub struct PingRow {
    /// The workload label (`w1`, `w2`, `trigger`, `probe`).
    pub label: String,
    /// Echo requests sent.
    pub transmitted: u32,
    /// Echo replies received.
    pub received: u32,
    /// Mean round-trip time over the successful trials, if any.
    pub avg_rtt_ms: Option<f64>,
}

/// Everything a cell run exposes to the oracles and the report.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// FNV-1a digest over the rendered control-plane trace + counters.
    pub digest: TraceDigest,
    /// `PACKET_IN`s observed at the proxy.
    pub packet_ins: u64,
    /// `FLOW_MOD`s the controller emitted (pre-interposition).
    pub flow_mods: u64,
    /// All control-plane messages observed at the proxy.
    pub control_total: u64,
    /// Data-plane frames dropped (fail-secure lockdown, dead links…).
    pub frames_dropped: u64,
    /// Every workload ping run, in schedule order.
    pub pings: Vec<PingRow>,
    /// The attack state the executor ended in (`None` for baselines).
    pub final_state: Option<String>,
    /// Per-rule fire counts, in rule-name order (empty for baselines).
    pub rule_fires: Vec<(String, u64)>,
    /// Host wall-clock spent running the cell, in milliseconds.
    pub wall_ms: u64,
}

/// Workload start-time jitter in milliseconds, derived from the seed.
///
/// The fault RNG streams are only consulted when a fault plan arms
/// them, so without this jitter every seed would replay byte-identical
/// traces and the seed axis would be vacuous.
fn jitter_ms(seed: u64) -> u64 {
    DetRng::new(seed).next_u64() % 400
}

fn schedule_ping(
    sim: &mut Simulation,
    at: SimTime,
    host: &str,
    dst_ip: &str,
    count: u32,
    label: &str,
) {
    let host = sim.node_id(host).expect("workload host exists");
    sim.schedule_command(
        at,
        HostCommand::Ping {
            host,
            dst: dst_ip.parse().expect("valid workload address"),
            count,
            interval: SimTime::from_secs(1),
            label: label.into(),
        },
    );
}

/// Schedules the enterprise workload (all times jittered by the seed):
/// `t≈10` the primary h1→h6 window, `t≈20` the Table II trigger
/// traffic h2→h3 (which also probes unauthorized access), `t≈42` a
/// second h1→h6 window after any interruption fallout has landed,
/// `t≈44` a late h2→h3 probe for post-failover access.
fn enterprise_workload(sim: &mut Simulation, seed: u64) -> SimTime {
    let j = jitter_ms(seed) as f64 / 1000.0;
    let at = |base: u64| SimTime::from_secs_f64(base as f64 + j);
    schedule_ping(sim, at(10), "h1", "10.0.0.6", 8, "w1");
    schedule_ping(sim, at(20), "h2", "10.0.0.3", 10, "trigger");
    schedule_ping(sim, at(42), "h1", "10.0.0.6", 6, "w2");
    schedule_ping(sim, at(44), "h2", "10.0.0.3", 6, "probe");
    SimTime::from_secs(65)
}

/// Schedules the self-contained-document workload: two ping windows
/// between the document's first two hosts (the demo's `web → db`),
/// the second one measuring post-engagement service.
fn document_workload(
    sim: &mut Simulation,
    system: &attain_core::model::SystemModel,
    seed: u64,
) -> SimTime {
    let hosts: Vec<_> = system.hosts().map(|(_, h)| h.clone()).collect();
    assert!(
        hosts.len() >= 2,
        "self-contained campaign documents need two hosts for the ping workload"
    );
    let src = &hosts[0].name;
    let dst = hosts[1].ip.expect("campaign hosts have IPs").to_string();
    let j = jitter_ms(seed) as f64 / 1000.0;
    let at = |base: u64| SimTime::from_secs_f64(base as f64 + j);
    schedule_ping(sim, at(10), src, &dst, 8, "w1");
    schedule_ping(sim, at(25), src, &dst, 6, "w2");
    SimTime::from_secs(40)
}

struct ExecHandleOutcome {
    final_state: Option<String>,
    rule_fires: Vec<(String, u64)>,
}

fn collect(sim: &Simulation, exec: ExecHandleOutcome, wall_ms: u64) -> CellOutcome {
    CellOutcome {
        digest: sim.trace().digest(),
        packet_ins: sim
            .trace()
            .control_message_count(OfType::PacketIn, Direction::SwitchToController),
        flow_mods: sim
            .trace()
            .control_message_count(OfType::FlowMod, Direction::ControllerToSwitch),
        control_total: sim.trace().control_message_total(),
        frames_dropped: sim.frames_dropped,
        pings: sim
            .ping_stats()
            .iter()
            .map(|s| PingRow {
                label: s.label.clone(),
                transmitted: s.transmitted(),
                received: s.received(),
                avg_rtt_ms: s.avg_rtt_ms(),
            })
            .collect(),
        final_state: exec.final_state,
        rule_fires: exec.rule_fires,
        wall_ms,
    }
}

fn run(
    attack: &AttackDef,
    kind: ControllerKind,
    fail_mode: FailMode,
    seed: u64,
    attach: bool,
) -> CellOutcome {
    let started = std::time::Instant::now();
    let (mut sim, handle, horizon) = match attack.scope {
        Scope::Enterprise => {
            let mut sim = build_case_study(kind, fail_mode);
            // A table bound is part of the cell's environment: the
            // baseline runs against the same bounded switch, so the
            // diff isolates the attack, not the capacity.
            if let Some(t) = attack.table {
                sim.set_table_config(t.switch, t.capacity, t.policy);
            }
            let handle = attach.then(|| attach_attack(&mut sim, attack.source));
            sim.set_fault_seed(seed);
            let horizon = enterprise_workload(&mut sim, seed);
            (sim, handle, horizon)
        }
        Scope::SelfContained => {
            let doc = dsl::compile_document(attack.source)
                .unwrap_or_else(|e| panic!("{}: document does not compile: {e}", attack.name));
            let mut sim = build_simulation(&doc.system, fail_mode, |_| kind.instantiate());
            let handle = attach.then(|| {
                let compiled = &doc.attacks[0];
                let exec = AttackExecutor::new(
                    doc.system.clone(),
                    doc.attack_model.clone(),
                    compiled.attack.clone(),
                )
                .unwrap_or_else(|e| panic!("{}: attack does not validate: {e}", attack.name));
                let (injector, handle) = SimInjector::new(exec, &doc.system, &sim);
                sim.set_interposer(Box::new(injector));
                handle
            });
            sim.set_fault_seed(seed);
            let horizon = document_workload(&mut sim, &doc.system, seed);
            (sim, handle, horizon)
        }
    };
    sim.run_until(horizon);
    let exec = match handle {
        Some(handle) => {
            let exec = handle.lock();
            ExecHandleOutcome {
                final_state: Some(exec.current_state_name().to_string()),
                rule_fires: exec
                    .log()
                    .rule_fire_counts()
                    .map(|(name, n)| (name.to_string(), n))
                    .collect(),
            }
        }
        None => ExecHandleOutcome {
            final_state: None,
            rule_fires: Vec::new(),
        },
    };
    collect(&sim, exec, started.elapsed().as_millis() as u64)
}

/// Runs one attacked cell to completion.
pub fn run_cell(
    attack: &AttackDef,
    kind: ControllerKind,
    fail_mode: FailMode,
    seed: u64,
) -> CellOutcome {
    run(attack, kind, fail_mode, seed, true)
}

/// Runs the cell's differential baseline: the identical topology,
/// workload, and seed with **no interposer at all**. A pass-through
/// interposition is timing-transparent (`pass` re-schedules at the
/// connection's own latency), so `trivial_pass` cells must classify as
/// Silent against this baseline — the campaign's proxy-transparency
/// invariant.
pub fn run_baseline(
    attack: &AttackDef,
    kind: ControllerKind,
    fail_mode: FailMode,
    seed: u64,
) -> CellOutcome {
    run(attack, kind, fail_mode, seed, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks;

    #[test]
    fn same_cell_twice_is_byte_identical() {
        let a = attacks::by_name("trivial_pass").unwrap();
        let x = run_cell(&a, ControllerKind::Pox, FailMode::Secure, 1);
        let y = run_cell(&a, ControllerKind::Pox, FailMode::Secure, 1);
        assert_eq!(x.digest, y.digest);
        assert_eq!(x.pings, y.pings);
    }

    #[test]
    fn seeds_differentiate_traces() {
        let a = attacks::by_name("trivial_pass").unwrap();
        let x = run_cell(&a, ControllerKind::Floodlight, FailMode::Secure, 1);
        let y = run_cell(&a, ControllerKind::Floodlight, FailMode::Secure, 2);
        assert_ne!(
            x.digest, y.digest,
            "seed must jitter the workload into a distinct trace"
        );
    }

    #[test]
    fn pass_through_interposition_is_transparent() {
        let a = attacks::by_name("trivial_pass").unwrap();
        let attacked = run_cell(&a, ControllerKind::Ryu, FailMode::Safe, 3);
        let baseline = run_baseline(&a, ControllerKind::Ryu, FailMode::Safe, 3);
        assert_eq!(attacked.digest, baseline.digest);
        assert_eq!(attacked.pings, baseline.pings);
    }

    #[test]
    fn self_contained_demo_engages_on_flow_timeouts() {
        let a = attacks::by_name("self_contained_demo").unwrap();
        let pox = run_cell(&a, ControllerKind::Pox, FailMode::Secure, 1);
        assert_eq!(pox.final_state.as_deref(), Some("degrade"));
        let ryu = run_cell(&a, ControllerKind::Ryu, FailMode::Secure, 1);
        assert_eq!(
            ryu.final_state.as_deref(),
            Some("observe"),
            "Ryu's timeout-free flow mods must never satisfy the engage guard"
        );
    }
}
