//! The conformance campaign: every shipped attack against every
//! controller application under both fail modes, checked by two
//! oracles.
//!
//! The ATTAIN paper's core claim is that one attack description yields
//! *different* manifestations per controller (§VII). This crate turns
//! that claim into a regression surface — a deterministic matrix
//!
//! ```text
//! attacks/*.atk × {Floodlight, POX, Ryu, Beacon, Hub} × {fail-safe, fail-secure} × seeds
//! ```
//!
//! where each cell is an isolated, seeded, virtual-time simulation run
//! on a worker pool ([`runner::run`]) and judged by:
//!
//! * the **differential oracle** ([`oracle::classify`]) — the attacked
//!   run diffed against a same-seed baseline (no interposer) and
//!   classified Silent / ControlPlane / Degraded / Denial, then checked
//!   against the behaviour-derived expectations table
//!   ([`oracle::expected`]);
//! * the **golden-trace oracle** — each cell's control-plane trace
//!   digest pinned under `tests/golden/campaign/`, so any semantic
//!   drift in the DSL pipeline, the injector, a controller model, or
//!   the simulator fails `cargo test` with a cell-naming diff
//!   ([`report::diff_golden`]).
//!
//! Reports are merged in matrix order regardless of scheduling, so the
//! canonical report bytes are identical for any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The campaign result path must degrade, never abort: a cell that
// cannot be judged is reported, not unwrapped. Tests may still unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod attacks;
pub mod cell;
pub mod matrix;
pub mod oracle;
pub mod report;
pub mod runner;

pub use attacks::{AttackDef, Scope};
pub use cell::{CellError, CellLimits, CellOutcome, PingRow};
pub use matrix::{CellId, Filter, Matrix};
pub use oracle::Observed;
pub use report::{diff_golden, CampaignReport, CellReport, ConfusionMatrix};
pub use runner::{run, run_with, CellStatus, RunnerConfig};
