//! Matrix enumeration: which cells a campaign runs, in a fixed order.
//!
//! The matrix order (attack-major, then controller, fail mode, seed) is
//! the report order and the golden-file order; the runner may execute
//! cells in any interleaving but always merges results back into this
//! order, which is what makes the report independent of `--jobs`.

use crate::attacks::{self, AttackDef};
use attain_controllers::ControllerKind;
use attain_netsim::FailMode;
use std::fmt;

/// The seeds a full campaign sweeps per cell.
pub const FULL_SEEDS: [u64; 3] = [1, 2, 3];

/// Renders a fail mode as its cell-name / filter slug.
pub fn fail_slug(mode: FailMode) -> &'static str {
    match mode {
        FailMode::Safe => "safe",
        FailMode::Secure => "secure",
    }
}

fn fail_from_slug(s: &str) -> Option<FailMode> {
    match s {
        "safe" => Some(FailMode::Safe),
        "secure" => Some(FailMode::Secure),
        _ => None,
    }
}

/// One cell's coordinates.
#[derive(Debug, Clone, Copy)]
pub struct CellId {
    /// Index into the matrix's attack list.
    pub attack: usize,
    /// The controller application under test.
    pub controller: ControllerKind,
    /// The fail mode every switch in the cell runs (for the enterprise
    /// topology: the DMZ switch `s2`; the others fail-secure as in §VII).
    pub fail_mode: FailMode,
    /// The environment seed (fault RNG streams and workload jitter).
    pub seed: u64,
}

/// The campaign matrix: the cross product of four axes.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// Attacks, in matrix order.
    pub attacks: Vec<AttackDef>,
    /// Controller applications.
    pub controllers: Vec<ControllerKind>,
    /// Fail modes.
    pub fail_modes: Vec<FailMode>,
    /// Seeds.
    pub seeds: Vec<u64>,
}

impl Matrix {
    /// The full conformance matrix: all eleven shipped attacks × five
    /// controller applications × both fail modes × three seeds.
    pub fn full() -> Matrix {
        Matrix {
            attacks: attacks::all(),
            controllers: ControllerKind::CAMPAIGN.to_vec(),
            fail_modes: vec![FailMode::Safe, FailMode::Secure],
            seeds: FULL_SEEDS.to_vec(),
        }
    }

    /// The reduced CI matrix: the baseline, the paper's two headline
    /// attacks, the overflow family, and the timing fingerprinter, all
    /// five controllers, both fail modes, one seed.
    pub fn smoke() -> Matrix {
        let keep = [
            "trivial_pass",
            "flow_mod_suppression",
            "connection_interruption",
            "table_overflow",
            "fingerprint_then_attack",
            // With chaos cells compiled in, the smoke matrix carries
            // them too so CI exercises degraded-mode reporting.
            #[cfg(feature = "test_faults")]
            crate::cell::chaos::PANIC_CELL,
            #[cfg(feature = "test_faults")]
            crate::cell::chaos::LIVELOCK_CELL,
        ];
        Matrix {
            attacks: attacks::all()
                .into_iter()
                .filter(|a| keep.contains(&a.name))
                .collect(),
            controllers: ControllerKind::CAMPAIGN.to_vec(),
            fail_modes: vec![FailMode::Safe, FailMode::Secure],
            seeds: vec![1],
        }
    }

    /// All cells in matrix order.
    pub fn cells(&self) -> Vec<CellId> {
        let mut out = Vec::with_capacity(
            self.attacks.len() * self.controllers.len() * self.fail_modes.len() * self.seeds.len(),
        );
        for (ai, _) in self.attacks.iter().enumerate() {
            for &controller in &self.controllers {
                for &fail_mode in &self.fail_modes {
                    for &seed in &self.seeds {
                        out.push(CellId {
                            attack: ai,
                            controller,
                            fail_mode,
                            seed,
                        });
                    }
                }
            }
        }
        out
    }

    /// The cell's report / golden-file name.
    pub fn cell_name(&self, cell: &CellId) -> String {
        format!(
            "{}/{}/{}/s{}",
            self.attacks[cell.attack].name,
            cell.controller.slug(),
            fail_slug(cell.fail_mode),
            cell.seed
        )
    }
}

/// A `--only` restriction: retains matching values on each named axis.
#[derive(Debug, Clone, Default)]
pub struct Filter {
    /// Keep only this attack (by file stem).
    pub attack: Option<String>,
    /// Keep only this controller.
    pub controller: Option<ControllerKind>,
    /// Keep only this fail mode.
    pub fail_mode: Option<FailMode>,
    /// Keep only this seed.
    pub seed: Option<u64>,
}

/// A malformed `--only` expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterError(pub String);

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad --only filter: {}", self.0)
    }
}

impl std::error::Error for FilterError {}

impl Filter {
    /// Parses `attack=…,controller=…,fail=…,seed=…` (any subset, any
    /// order).
    pub fn parse(spec: &str) -> Result<Filter, FilterError> {
        let mut f = Filter::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| FilterError(format!("`{part}` is not key=value")))?;
            match key.trim() {
                "attack" => f.attack = Some(value.trim().to_string()),
                "controller" => {
                    f.controller =
                        Some(ControllerKind::from_slug(value.trim()).ok_or_else(|| {
                            FilterError(format!("unknown controller `{}`", value.trim()))
                        })?)
                }
                "fail" => {
                    f.fail_mode = Some(fail_from_slug(value.trim()).ok_or_else(|| {
                        FilterError(format!("fail mode `{}` is not safe|secure", value.trim()))
                    })?)
                }
                "seed" => {
                    f.seed = Some(value.trim().parse().map_err(|_| {
                        FilterError(format!("seed `{}` is not a number", value.trim()))
                    })?)
                }
                other => return Err(FilterError(format!("unknown axis `{other}`"))),
            }
        }
        Ok(f)
    }

    /// Restricts `matrix` to the filtered axis values. Unknown attack
    /// names yield an empty axis (and so an empty campaign) rather than
    /// an error, matching `grep`-style filter semantics.
    pub fn apply(&self, matrix: &mut Matrix) {
        if let Some(name) = &self.attack {
            matrix.attacks.retain(|a| a.name == *name);
        }
        if let Some(kind) = self.controller {
            matrix.controllers.retain(|&c| c == kind);
        }
        if let Some(mode) = self.fail_mode {
            matrix.fail_modes.retain(|&m| m == mode);
        }
        if let Some(seed) = self.seed {
            matrix.seeds.retain(|&s| s == seed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matrix_has_expected_shape() {
        let m = Matrix::full();
        let attacks = if cfg!(feature = "test_faults") {
            13
        } else {
            11
        };
        assert_eq!(m.cells().len(), attacks * 5 * 2 * 3);
        let names: Vec<_> = m.cells().iter().map(|c| m.cell_name(c)).collect();
        assert_eq!(names[0], "trivial_pass/floodlight/safe/s1");
        // No duplicates.
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn filter_parses_and_restricts() {
        let f =
            Filter::parse("attack=flow_mod_suppression,controller=pox,fail=secure,seed=2").unwrap();
        let mut m = Matrix::full();
        f.apply(&mut m);
        let cells = m.cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(m.cell_name(&cells[0]), "flow_mod_suppression/pox/secure/s2");
    }

    #[test]
    fn filter_rejects_garbage() {
        assert!(Filter::parse("controller=nox").is_err());
        assert!(Filter::parse("bogus=1").is_err());
        assert!(Filter::parse("attack").is_err());
        assert!(Filter::parse("fail=open").is_err());
    }

    #[test]
    fn smoke_matrix_is_a_subset_of_full() {
        let full = Matrix::full();
        let full_names: Vec<_> = full.cells().iter().map(|c| full.cell_name(c)).collect();
        let smoke = Matrix::smoke();
        for cell in smoke.cells() {
            assert!(full_names.contains(&smoke.cell_name(&cell)));
        }
        let attacks = if cfg!(feature = "test_faults") { 7 } else { 5 };
        assert_eq!(smoke.cells().len(), attacks * 5 * 2);
    }
}
