//! The campaign's two oracles.
//!
//! **Differential oracle** — every attacked cell is diffed against a
//! same-seed, same-topology baseline run (no interposer) and classified
//! by the strongest observable deviation:
//!
//! * [`Observed::Denial`] — the primary workload lost *every* packet;
//! * [`Observed::Degraded`] — some ping run delivered a different
//!   packet count (including *more*: unauthorized access is a
//!   deviation too) or latency at least doubled;
//! * [`Observed::ControlPlane`] — the data plane matched but the
//!   control-plane trace (digest or counters) did not;
//! * [`Observed::Silent`] — byte-identical trace: the attack left no
//!   observable footprint at the proxy.
//!
//! The classification is compared against [`expected`], the campaign's
//! expectations table. The table is *derived* from the controllers'
//! behavioural predicates (`releases_buffer_via_flow_mod`,
//! `flow_mod_exposes_nw_src`, `installs_flows`) rather than hard-coded
//! per cell, so adding a controller with known traits extends the
//! table automatically — this is the paper's §VII analysis
//! (suppression → DoS only where the buffer rides the FLOW_MOD;
//! interruption → never triggers where matches hide `nw_src`) written
//! as executable rules.
//!
//! **Golden-trace oracle** — each cell's trace digest is pinned under
//! `tests/golden/campaign/`, failing `cargo test` on semantic drift;
//! see the `report` module and `tests/campaign_conformance.rs`.

use crate::cell::CellOutcome;
use crate::runner::CellStatus;
use attain_controllers::ControllerKind;
use attain_netsim::FailMode;
use std::fmt;

/// What the differential oracle observed, weakest to strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Observed {
    /// No deviation at all from the baseline run.
    Silent,
    /// Control-plane trace deviates; data plane unaffected.
    ControlPlane,
    /// Data-plane service deviates (loss, gain, or ≥2× latency).
    Degraded,
    /// The primary workload was entirely denied.
    Denial,
}

impl Observed {
    /// Stable lower-case name used in reports and golden files.
    pub fn slug(&self) -> &'static str {
        match self {
            Observed::Silent => "silent",
            Observed::ControlPlane => "control-plane",
            Observed::Degraded => "degraded",
            Observed::Denial => "denial",
        }
    }
}

impl fmt::Display for Observed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// Classifies an attacked run against its same-seed baseline.
pub fn classify(attacked: &CellOutcome, baseline: &CellOutcome) -> Observed {
    // Primary workload: the `w*` windows (h1→h6 / web→db). The trigger
    // and probe runs are deviation evidence but not "the service".
    let primary = |o: &CellOutcome| -> (u32, u32) {
        o.pings
            .iter()
            .filter(|p| p.label.starts_with('w'))
            .fold((0, 0), |(tx, rx), p| (tx + p.transmitted, rx + p.received))
    };
    let (base_tx, base_rx) = primary(baseline);
    let (_, att_rx) = primary(attacked);
    if base_tx > 0 && base_rx > 0 && att_rx == 0 {
        return Observed::Denial;
    }

    let mut degraded = false;
    for b in &baseline.pings {
        let Some(a) = attacked.pings.iter().find(|p| p.label == b.label) else {
            degraded = true;
            continue;
        };
        if a.received != b.received {
            degraded = true;
        }
        // Latency counts as degradation only when it at least doubles
        // AND grows by >1 ms, so controller-path noise near zero does
        // not flap the verdict.
        if let (Some(ar), Some(br)) = (a.avg_rtt_ms, b.avg_rtt_ms) {
            if ar > 2.0 * br && ar - br > 1.0 {
                degraded = true;
            }
        }
    }
    if degraded {
        return Observed::Degraded;
    }

    let control_differs = attacked.digest != baseline.digest
        || attacked.packet_ins != baseline.packet_ins
        || attacked.flow_mods != baseline.flow_mods
        || attacked.control_total != baseline.control_total;
    if control_differs {
        return Observed::ControlPlane;
    }
    Observed::Silent
}

/// Judges a supervised cell: classifies when both the attacked run and
/// its baseline completed, `None` (*Unjudged*) otherwise. An incomplete
/// cell carries no outcome, so there is nothing sound to diff — the
/// report annotates the status instead of guessing a verdict.
pub fn judge(attacked: &CellStatus, baseline: &CellStatus) -> Option<Observed> {
    match (attacked.outcome(), baseline.outcome()) {
        (Some(a), Some(b)) => Some(classify(a, b)),
        _ => None,
    }
}

use Observed::{ControlPlane, Degraded, Denial, Silent};

/// The attack whose cells the fingerprint-accuracy arm scores.
pub const FINGERPRINT_ATTACK: &str = "fingerprint_then_attack";

/// The controller the fingerprinting attack claims to have identified:
/// its payload states follow the `attack_<controller-slug>` naming
/// convention, so a completed cell's final state *is* the prediction.
/// `None` when the run never left `watch` (no classification) or ended
/// in a state outside the convention.
pub fn fingerprint_prediction(outcome: &CellOutcome) -> Option<ControllerKind> {
    outcome
        .final_state
        .as_deref()?
        .strip_prefix("attack_")
        .and_then(ControllerKind::from_slug)
}

/// The expectations table: which classifications are acceptable for
/// `(attack, controller, fail_mode)`, across every seed.
///
/// Every entry is a singleton: across the whole matrix the outcome is
/// structurally forced by the controller's behavioural traits, and the
/// campaign empirically confirms the same class for every seed. The
/// `fail_mode` axis changes *how* a class manifests (fail-safe turns
/// the interruption into unauthorized access, fail-secure into a DoS
/// on legitimate traffic — both Degraded) but never the class itself,
/// which the table makes explicit by ignoring it.
pub fn expected(attack: &str, kind: ControllerKind, _fail_mode: FailMode) -> &'static [Observed] {
    match attack {
        // The Figure 5 no-op: pass-through interposition is
        // timing-transparent, so the diff against the interposer-free
        // baseline must vanish entirely.
        "trivial_pass" => &[Silent],

        // Unconditional suppression (Figure 10's σ1) and the Figure 6
        // history machine — which, once it has seen a PACKET_IN
        // followed by a FLOW_MOD, also drops every further FLOW_MOD.
        // Both kill (nearly) all installs, so the §VII Figure 11 split
        // applies to each.
        "flow_mod_suppression" | "message_history" => {
            if kind.releases_buffer_via_flow_mod() {
                // POX/Beacon release the buffered packet only via the
                // suppressed FLOW_MOD: full data-plane deadlock.
                &[Denial]
            } else if kind.installs_flows() {
                // Floodlight/Ryu keep forwarding via PACKET_OUT at
                // controller speed: service survives, slower.
                &[Degraded]
            } else {
                // Hub's data plane never depended on flows; only the
                // DMZ firewall's deny entries are suppressed, which
                // opens nothing but keeps the misses coming.
                &[ControlPlane]
            }
        }

        // Suppression arming only after the 10th FLOW_MOD: what is
        // left to suppress depends on what each application still
        // needs from the control plane by then.
        "counted_suppression" => {
            if kind.releases_buffer_via_flow_mod() {
                // The threshold trips mid-workload; from then on POX/
                // Beacon deadlock exactly as under full suppression.
                &[Denial]
            } else if !kind.installs_flows() {
                // Hub: the only FLOW_MODs ever sent are the firewall's
                // few deny entries — the counter never reaches 10 and
                // the attack never arms.
                &[Silent]
            } else if kind.installs_permanent_flows() {
                // Ryu's first installs are permanent, so the workload
                // rides them untouched; only the firewall's later deny
                // re-installs get eaten.
                &[ControlPlane]
            } else {
                // Floodlight's 5 s idle timeouts force re-installs
                // after the threshold: service survives via
                // PACKET_OUT, degraded.
                &[Degraded]
            }
        }

        // §VII-C: the trigger φ2 reads `nw_src` from the firewall's
        // deny FLOW_MOD, which only exists where the match style
        // exposes it — the paper's Ryu anomaly, inherited by Hub.
        // Where it arms, severing (c1,s2) is a data-plane deviation
        // either way: fail-safe hands s2 to standalone forwarding
        // (the h2→h3 probe *gains* packets — unauthorized access),
        // fail-secure locks the DMZ down (the late h1→h6 window loses
        // them — DoS against legitimate traffic).
        "connection_interruption" => {
            if kind.flow_mod_exposes_nw_src() {
                &[Degraded]
            } else {
                &[Silent]
            }
        }

        // Holding the first two PACKET_INs until a third arrives
        // stalls ARP/first-flight resolution long enough to cost
        // data-plane packets under every application.
        "reorder_packet_ins" => &[Degraded],

        // Replayed FLOW_MODs are idempotent against the flow table but
        // the duplicates shift expiry bookkeeping and elicit extra
        // control traffic; the data plane never notices.
        "replay_flow_mods" => &[ControlPlane],

        // Corrupting every 10th controller-bound message loses enough
        // PACKET_INs/installs to drop pings everywhere — even the hub
        // floods via the controller path on every packet.
        "fuzz_control_plane" => &[Degraded],

        // The demo's engage guard needs a FLOW_MOD with
        // `idle_timeout > 0` on (c1,s2): Ryu's are timeout-free and
        // Hub sends none, so against them the attack never leaves its
        // read-only `observe` state. Elsewhere it shrinks the timeout
        // and delays (c1,s2), degrading the second window.
        "self_contained_demo" => {
            if kind.installs_flows() && !kind.installs_permanent_flows() {
                &[Degraded]
            } else {
                &[Silent]
            }
        }

        // Overflow family: phantom-port PACKET_IN corruption arms after
        // two installs on the bounded s4 and then poisons every miss —
        // junk entries (matching ports that do not exist) crowd the
        // eight-entry table and the controller learns hosts at phantom
        // ports, black-holing its PACKET_OUTs. Hub never installs, so
        // the watch counter never reaches two; Ryu's permanent flows
        // absorb the workload before the attack arms, so no further
        // PACKET_IN from s4 ever reaches the corruptor. Every
        // timeout-driven application keeps re-missing into poisoned
        // state: service survives off-path but the h1→h6 windows lose
        // packets.
        "table_overflow" => {
            if !kind.installs_flows() || kind.installs_permanent_flows() {
                &[Silent]
            } else {
                &[Degraded]
            }
        }

        // Timing fingerprint, then the identified application's worst
        // payload. The per-application payloads all manifest on the
        // data plane except against Ryu: its permanent flows carry the
        // workload even after the s1 control channel is severed, so
        // only the control-plane trace deviates.
        FINGERPRINT_ATTACK => {
            if kind.installs_permanent_flows() {
                &[ControlPlane]
            } else {
                &[Degraded]
            }
        }

        // Unknown attack (a future .atk file without a table entry):
        // accept anything rather than fail spuriously; the golden
        // digests still pin its exact behaviour.
        _ => &[Silent, ControlPlane, Degraded, Denial],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::PingRow;
    use attain_netsim::TraceDigest;

    fn outcome(pings: Vec<PingRow>, digest: u64) -> CellOutcome {
        CellOutcome {
            digest: TraceDigest(digest),
            packet_ins: 10,
            flow_mods: 4,
            control_total: 30,
            frames_dropped: 0,
            pings,
            final_state: None,
            rule_fires: Vec::new(),
            wall_ms: 0,
        }
    }

    fn row(label: &str, rx: u32) -> PingRow {
        PingRow {
            label: label.into(),
            transmitted: 8,
            received: rx,
            avg_rtt_ms: (rx > 0).then_some(1.0),
        }
    }

    #[test]
    fn classification_ladder() {
        let base = outcome(vec![row("w1", 8), row("trigger", 0)], 1);
        assert_eq!(classify(&base.clone(), &base), Silent);

        let mut cp = base.clone();
        cp.digest = TraceDigest(2);
        assert_eq!(classify(&cp, &base), ControlPlane);

        let deg = outcome(vec![row("w1", 5), row("trigger", 0)], 2);
        assert_eq!(classify(&deg, &base), Degraded);

        // Gaining packets (unauthorized access) is degradation too.
        let gain = outcome(vec![row("w1", 8), row("trigger", 6)], 2);
        assert_eq!(classify(&gain, &base), Degraded);

        let dead = outcome(vec![row("w1", 0), row("trigger", 0)], 3);
        assert_eq!(classify(&dead, &base), Denial);
    }

    #[test]
    fn latency_doubling_is_degradation() {
        let mut base = outcome(vec![row("w1", 8)], 1);
        base.pings[0].avg_rtt_ms = Some(2.0);
        let mut slow = base.clone();
        slow.digest = TraceDigest(9);
        slow.pings[0].avg_rtt_ms = Some(6.5);
        assert_eq!(classify(&slow, &base), Degraded);
        // Sub-millisecond wobble is not.
        slow.pings[0].avg_rtt_ms = Some(2.8);
        assert_eq!(classify(&slow, &base), ControlPlane);
    }

    #[test]
    fn expectations_encode_the_papers_findings() {
        use attain_netsim::FailMode::Secure;
        // Figure 11: suppression is a DoS exactly where the buffer
        // rides the FLOW_MOD.
        assert_eq!(
            expected("flow_mod_suppression", ControllerKind::Pox, Secure),
            &[Denial]
        );
        assert_eq!(
            expected("flow_mod_suppression", ControllerKind::Ryu, Secure),
            &[Degraded]
        );
        // Overflow family: the poisoning bites exactly where flows
        // expire and get re-installed; permanent flows (Ryu) and
        // flowless forwarding (Hub) never feed the corruptor.
        assert_eq!(
            expected("table_overflow", ControllerKind::Floodlight, Secure),
            &[Degraded]
        );
        assert_eq!(
            expected("table_overflow", ControllerKind::Ryu, Secure),
            &[Silent]
        );
        assert_eq!(
            expected("table_overflow", ControllerKind::Hub, Secure),
            &[Silent]
        );
        // Table II: Ryu (and Hub) never arm the interruption.
        assert_eq!(
            expected("connection_interruption", ControllerKind::Ryu, Secure),
            &[Silent]
        );
        assert!(
            expected("connection_interruption", ControllerKind::Beacon, Secure).contains(&Degraded)
        );
    }
}
