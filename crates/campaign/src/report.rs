//! The campaign report: machine-readable JSON plus the golden-digest
//! file format backing the golden-trace oracle.
//!
//! Two byte-level guarantees:
//!
//! * [`CampaignReport::canonical_json`] (wall-times zeroed) is
//!   byte-identical for the same matrix regardless of `--jobs` — the
//!   thread-count-invariance contract.
//! * [`CampaignReport::golden_digests`] is the exact content of
//!   `tests/golden/campaign/*.txt`; [`diff_golden`] renders a
//!   cell-naming diff when a checked-in file drifts.

use crate::cell::CellOutcome;
use crate::matrix::{fail_slug, Matrix};
use crate::oracle::{self, Observed};
use crate::runner::CellStatus;
use attain_controllers::ControllerKind;
use attain_netsim::FailMode;
use std::fmt::Write as _;

/// One classified cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// `attack/controller/failmode/sN`.
    pub name: String,
    /// Attack file stem.
    pub attack: String,
    /// Controller application.
    pub controller: ControllerKind,
    /// Fail mode.
    pub fail_mode: FailMode,
    /// Seed.
    pub seed: u64,
    /// How the supervised run ended; carries the outcome when it
    /// completed.
    pub status: CellStatus,
    /// The differential oracle's classification — `None` when either
    /// the cell or its baseline did not complete (the cell is then
    /// *unjudged*, never silently passed).
    pub observed: Option<Observed>,
    /// The expectations-table entry for this cell.
    pub expected: &'static [Observed],
    /// `observed ∈ expected`; always `false` for unjudged cells.
    pub pass: bool,
}

impl CellReport {
    /// The run's outcome, when it completed.
    pub fn outcome(&self) -> Option<&CellOutcome> {
        self.status.outcome()
    }
}

/// The fingerprint-accuracy arm's tally: how the fingerprinting
/// attack's predictions distribute over the true applications.
///
/// Built by walking the report's cells in matrix order, so it is
/// byte-stable across `--jobs` like everything else in the canonical
/// report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// One row per true application, in [`ControllerKind::CAMPAIGN`]
    /// order: `(true kind, predictions)` where predictions are
    /// `(predicted slug, count)` pairs — the slug is a controller slug
    /// or `"none"` for cells that never classified (or never
    /// completed). Rows and columns with zero counts are omitted.
    pub rows: Vec<(ControllerKind, Vec<(String, usize)>)>,
}

impl ConfusionMatrix {
    /// Cells tallied (the fingerprint attack's judged matrix slice).
    pub fn total(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|(_, preds)| preds.iter())
            .map(|(_, n)| n)
            .sum()
    }

    /// Cells whose prediction matched the true application.
    pub fn correct(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|(kind, preds)| {
                preds
                    .iter()
                    .filter(move |(slug, _)| slug == kind.slug())
                    .map(|(_, n)| n)
            })
            .sum()
    }
}

/// A whole campaign run, in matrix order.
#[derive(Debug)]
pub struct CampaignReport {
    /// The matrix that was run (post-filter).
    pub matrix: Matrix,
    /// One report per cell, in matrix order.
    pub cells: Vec<CellReport>,
    /// Total wall-clock for the run, in milliseconds.
    pub wall_ms_total: u64,
    /// Worker threads used (informational; must not affect canonical
    /// bytes).
    pub jobs: usize,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    // Shortest stable rendering; Rust's f64 Display round-trips.
    format!("{v}")
}

impl CampaignReport {
    /// How many cells passed both oracles' differential half.
    pub fn passed(&self) -> usize {
        self.cells.iter().filter(|c| c.pass).count()
    }

    /// The failing cells, if any. Unjudged cells count as failures —
    /// degraded mode reports them, it never hides them.
    pub fn failures(&self) -> Vec<&CellReport> {
        self.cells.iter().filter(|c| !c.pass).collect()
    }

    /// Cells the oracle could not judge (the cell or its baseline did
    /// not complete).
    pub fn unjudged(&self) -> usize {
        self.cells.iter().filter(|c| c.observed.is_none()).count()
    }

    /// The fingerprint confusion matrix, or `None` when the (filtered)
    /// matrix carries no fingerprinting cells at all.
    pub fn confusion_matrix(&self) -> Option<ConfusionMatrix> {
        let fp: Vec<&CellReport> = self
            .cells
            .iter()
            .filter(|c| c.attack == oracle::FINGERPRINT_ATTACK)
            .collect();
        if fp.is_empty() {
            return None;
        }
        let mut rows = Vec::new();
        for kind in ControllerKind::CAMPAIGN {
            let mut preds: Vec<(String, usize)> = Vec::new();
            for c in fp.iter().filter(|c| c.controller == kind) {
                let slug = c
                    .outcome()
                    .and_then(oracle::fingerprint_prediction)
                    .map_or("none", |k| k.slug());
                match preds.iter_mut().find(|(s, _)| s == slug) {
                    Some((_, n)) => *n += 1,
                    None => preds.push((slug.to_string(), 1)),
                }
            }
            if !preds.is_empty() {
                rows.push((kind, preds));
            }
        }
        Some(ConfusionMatrix { rows })
    }

    /// Renders the report as JSON. With `include_timing` false, every
    /// wall-time is zeroed and the `jobs` field omitted, producing the
    /// canonical bytes compared across thread counts.
    pub fn to_json(&self, include_timing: bool) -> String {
        let mut s = String::with_capacity(self.cells.len() * 512);
        s.push_str("{\n  \"matrix\": {\n    \"attacks\": [");
        for (i, a) in self.matrix.attacks.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\"", json_escape(a.name));
        }
        s.push_str("],\n    \"controllers\": [");
        for (i, c) in self.matrix.controllers.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\"", c.slug());
        }
        s.push_str("],\n    \"fail_modes\": [");
        for (i, m) in self.matrix.fail_modes.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\"", fail_slug(*m));
        }
        s.push_str("],\n    \"seeds\": [");
        for (i, seed) in self.matrix.seeds.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{seed}");
        }
        s.push_str("]\n  },\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push_str(",\n");
            }
            let verdict = match (&c.observed, c.pass) {
                (None, _) => "unjudged",
                (Some(_), true) => "pass",
                (Some(_), false) => "fail",
            };
            let _ = write!(
                s,
                "    {{\"cell\": \"{}\", \"attack\": \"{}\", \"controller\": \"{}\", \
                 \"fail_mode\": \"{}\", \"seed\": {}, \"status\": \"{}\", \
                 \"verdict\": \"{verdict}\"",
                json_escape(&c.name),
                json_escape(&c.attack),
                c.controller.slug(),
                fail_slug(c.fail_mode),
                c.seed,
                c.status.slug(),
            );
            if let Some(observed) = c.observed {
                let _ = write!(s, ", \"observed\": \"{}\"", observed.slug());
            }
            if let Some(annotation) = c.status.annotation() {
                let _ = write!(s, ", \"annotation\": \"{}\"", json_escape(&annotation));
            }
            s.push_str(", \"expected\": [");
            for (j, e) in c.expected.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{}\"", e.slug());
            }
            s.push(']');
            let Some(o) = c.status.outcome() else {
                // Incomplete cells carry no outcome fields: nothing the
                // run did not actually produce appears in the report.
                s.push('}');
                continue;
            };
            let _ = write!(
                s,
                ", \"digest\": \"{}\", \"packet_ins\": {}, \"flow_mods\": {}, \
                 \"control_total\": {}, \"frames_dropped\": {}",
                o.digest, o.packet_ins, o.flow_mods, o.control_total, o.frames_dropped
            );
            if let Some(state) = &o.final_state {
                let _ = write!(s, ", \"final_state\": \"{}\"", json_escape(state));
            }
            s.push_str(", \"rule_fires\": {");
            for (j, (rule, n)) in o.rule_fires.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{}\": {}", json_escape(rule), n);
            }
            s.push_str("}, \"pings\": [");
            for (j, p) in o.pings.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(
                    s,
                    "{{\"label\": \"{}\", \"sent\": {}, \"recv\": {}",
                    json_escape(&p.label),
                    p.transmitted,
                    p.received
                );
                if let Some(rtt) = p.avg_rtt_ms {
                    let _ = write!(s, ", \"avg_rtt_ms\": {}", json_f64(rtt));
                }
                s.push('}');
            }
            let wall = if include_timing { o.wall_ms } else { 0 };
            let _ = write!(s, "], \"wall_ms\": {wall}}}");
        }
        let total = if include_timing {
            self.wall_ms_total
        } else {
            0
        };
        let _ = write!(
            s,
            "\n  ],\n  \"summary\": {{\"cells\": {}, \"pass\": {}, \"fail\": {}, \
             \"unjudged\": {}, \"wall_ms_total\": {total}",
            self.cells.len(),
            self.passed(),
            self.cells.len() - self.passed(),
            self.unjudged(),
        );
        if let Some(m) = self.confusion_matrix() {
            let _ = write!(
                s,
                ", \"fingerprint\": {{\"attack\": \"{}\", \"cells\": {}, \"correct\": {}, \
                 \"confusion\": {{",
                oracle::FINGERPRINT_ATTACK,
                m.total(),
                m.correct(),
            );
            for (i, (kind, preds)) in m.rows.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{}\": {{", kind.slug());
                for (j, (slug, n)) in preds.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "\"{}\": {}", json_escape(slug), n);
                }
                s.push('}');
            }
            s.push_str("}}");
        }
        if include_timing {
            let _ = write!(s, ", \"jobs\": {}", self.jobs);
        }
        s.push_str("}\n}\n");
        s
    }

    /// The canonical bytes: timing-free JSON, identical across `--jobs`.
    pub fn canonical_json(&self) -> String {
        self.to_json(false)
    }

    /// The golden-digest file: one `cell-name digest observed` line per
    /// judged cell, in matrix order. Unjudged cells are omitted —
    /// their traces are incomplete, so they have no stable digest to
    /// pin (annotated degraded-mode cells never corrupt the goldens).
    pub fn golden_digests(&self) -> String {
        let mut s = String::new();
        for c in &self.cells {
            if let (Some(o), Some(observed)) = (c.status.outcome(), c.observed) {
                let _ = writeln!(s, "{} {} {}", c.name, o.digest, observed.slug());
            }
        }
        s
    }
}

/// Diffs freshly computed golden lines against a checked-in file,
/// returning a human-readable, cell-naming report — or `None` when the
/// files agree byte-for-byte.
pub fn diff_golden(checked_in: &str, fresh: &str) -> Option<String> {
    if checked_in == fresh {
        return None;
    }
    let parse = |s: &str| -> Vec<(String, String)> {
        s.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| {
                let mut it = l.splitn(2, ' ');
                let name = it.next().unwrap_or("").to_string();
                let rest = it.next().unwrap_or("").to_string();
                (name, rest)
            })
            .collect()
    };
    let old = parse(checked_in);
    let new = parse(fresh);
    let mut out = String::from("golden campaign digests drifted:\n");
    for (name, fresh_rest) in &new {
        match old.iter().find(|(n, _)| n == name) {
            None => {
                let _ = writeln!(out, "  + {name}: new cell ({fresh_rest})");
            }
            Some((_, old_rest)) if old_rest != fresh_rest => {
                let _ = writeln!(
                    out,
                    "  ! {name}: checked in `{old_rest}`, got `{fresh_rest}`"
                );
            }
            _ => {}
        }
    }
    for (name, old_rest) in &old {
        if !new.iter().any(|(n, _)| n == name) {
            let _ = writeln!(out, "  - {name}: cell vanished (was `{old_rest}`)");
        }
    }
    let _ = writeln!(
        out,
        "  (run with UPDATE_GOLDEN=1 to accept intentional semantic changes)"
    );
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_diff_names_the_drifted_cell() {
        let old =
            "a/pox/secure/s1 0000000000000001 silent\nb/ryu/safe/s2 0000000000000002 denial\n";
        let new =
            "a/pox/secure/s1 0000000000000001 silent\nb/ryu/safe/s2 00000000000000ff degraded\n";
        let d = diff_golden(old, new).expect("drift detected");
        assert!(d.contains("b/ryu/safe/s2"), "{d}");
        assert!(d.contains("UPDATE_GOLDEN=1"), "{d}");
        assert!(diff_golden(old, old).is_none());
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
