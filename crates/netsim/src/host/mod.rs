//! Simulated end hosts: ARP, ICMP echo responder, and the `ping` /
//! `iperf` workload applications.

mod iperf;
mod ping;
mod probe;

pub use iperf::IperfStats;
pub use ping::PingStats;
pub use probe::ProbeStats;

use crate::engine::{Effect, NodeId, TimerToken};
use crate::time::SimTime;
use attain_openflow::packet::{self, ArpOperation, Ethernet, IcmpKind, IpPayload, Payload};
use attain_openflow::{MacAddr, PortNo};
use iperf::{IperfClientApp, IperfServerApp};
use ping::PingApp;
use probe::{CapacityProbeApp, ProbeSend};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// A host's single network interface is always port 1.
pub(crate) const HOST_PORT: PortNo = PortNo(1);

const ARP_RETRY: SimTime = SimTime::from_secs(1);
const ARP_MAX_RETRIES: u32 = 5;

#[derive(Debug)]
struct PendingArp {
    /// Frames waiting for resolution, destination MAC left as broadcast
    /// and patched on flush.
    frames: Vec<Vec<u8>>,
    retries: u32,
}

#[derive(Debug)]
enum App {
    Ping(PingApp),
    IperfServer(IperfServerApp),
    IperfClient(IperfClientApp),
    CapacityProbe(CapacityProbeApp),
}

/// A simulated end host.
#[derive(Debug)]
pub struct Host {
    id: NodeId,
    name: String,
    mac: MacAddr,
    ip: Ipv4Addr,
    arp_table: BTreeMap<Ipv4Addr, MacAddr>,
    pending: BTreeMap<Ipv4Addr, PendingArp>,
    arp_timer_armed: bool,
    apps: Vec<App>,
}

impl Host {
    pub(crate) fn new(id: NodeId, name: String, mac: MacAddr, ip: Ipv4Addr) -> Host {
        Host {
            id,
            name,
            mac,
            ip,
            arp_table: BTreeMap::new(),
            pending: BTreeMap::new(),
            arp_timer_armed: false,
            apps: Vec::new(),
        }
    }

    /// Seeds the ARP table with a static `(ip, mac)` binding (topology
    /// setup for generated workloads: no broadcast warm-up).
    pub(crate) fn prime_arp(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.arp_table.insert(ip, mac);
    }

    /// The host's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The host's name (e.g. `h1`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The host's IPv4 address.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// The host's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// Completed and in-progress ping runs, in start order.
    pub fn ping_stats(&self) -> Vec<PingStats> {
        self.apps
            .iter()
            .filter_map(|a| match a {
                App::Ping(p) => Some(p.stats()),
                _ => None,
            })
            .collect()
    }

    /// Completed and in-progress iperf client runs, in start order.
    pub fn iperf_stats(&self) -> Vec<IperfStats> {
        self.apps
            .iter()
            .filter_map(|a| match a {
                App::IperfClient(c) => Some(c.stats()),
                _ => None,
            })
            .collect()
    }

    /// Completed and in-progress capacity-probe runs, in start order.
    pub fn probe_stats(&self) -> Vec<ProbeStats> {
        self.apps
            .iter()
            .filter_map(|a| match a {
                App::CapacityProbe(p) => Some(p.stats()),
                _ => None,
            })
            .collect()
    }

    // ---- workload control -------------------------------------------------

    pub(crate) fn start_ping(
        &mut self,
        dst: Ipv4Addr,
        count: u32,
        interval: SimTime,
        label: String,
        now: SimTime,
        fx: &mut Vec<Effect>,
    ) {
        let app = self.apps.len();
        // The echo identifier ties replies back to this app slot.
        self.apps.push(App::Ping(PingApp::new(
            label, dst, count, interval, app as u16,
        )));
        fx.push(Effect::Timer {
            at: now,
            token: TimerToken::App { app },
        });
    }

    pub(crate) fn start_iperf_server(&mut self, port: u16) {
        self.apps.push(App::IperfServer(IperfServerApp::new(port)));
    }

    pub(crate) fn start_probe(
        &mut self,
        dst: Ipv4Addr,
        fill: usize,
        gap: SimTime,
        label: String,
        now: SimTime,
        fx: &mut Vec<Effect>,
    ) {
        let app = self.apps.len();
        // The echo identifier ties replies back to this app slot.
        self.apps.push(App::CapacityProbe(CapacityProbeApp::new(
            label, dst, fill, gap, app as u16,
        )));
        fx.push(Effect::Timer {
            at: now,
            token: TimerToken::App { app },
        });
    }

    pub(crate) fn start_iperf_client(
        &mut self,
        dst: Ipv4Addr,
        port: u16,
        duration: SimTime,
        label: String,
        now: SimTime,
        fx: &mut Vec<Effect>,
    ) {
        let app = self.apps.len();
        let src_port = 30000 + app as u16;
        self.apps.push(App::IperfClient(IperfClientApp::new(
            label, dst, port, src_port, duration, now,
        )));
        fx.push(Effect::Timer {
            at: now,
            token: TimerToken::App { app },
        });
    }

    // ---- frame handling ---------------------------------------------------

    pub(crate) fn handle_frame(&mut self, frame: &[u8], now: SimTime, fx: &mut Vec<Effect>) {
        let eth = match Ethernet::decode(frame) {
            Ok(e) => e,
            Err(_) => return,
        };
        if eth.dst != self.mac && !eth.dst.is_broadcast() {
            // A reply addressed to one of our probes' spoofed sources
            // still belongs to us; anything else was flooded for
            // someone else.
            self.deliver_to_probe(&eth, now);
            return;
        }
        match &eth.payload {
            Payload::Arp(arp) => match arp.operation {
                ArpOperation::Request if arp.target_ip == self.ip => {
                    self.arp_table.insert(arp.sender_ip, arp.sender_mac);
                    let reply = packet::arp_reply(self.mac, self.ip, arp.sender_mac, arp.sender_ip);
                    fx.push(Effect::Frame {
                        out_port: HOST_PORT,
                        frame: reply.encode(),
                    });
                }
                ArpOperation::Reply if arp.target_ip == self.ip || eth.dst == self.mac => {
                    self.arp_table.insert(arp.sender_ip, arp.sender_mac);
                    self.flush_pending(arp.sender_ip, arp.sender_mac, fx);
                }
                _ => {}
            },
            Payload::Ipv4(ip) => {
                if ip.dst != self.ip {
                    return;
                }
                match &ip.payload {
                    IpPayload::Icmp(icmp) => match icmp.kind() {
                        IcmpKind::EchoRequest => {
                            let reply = packet::icmp_echo_reply(
                                self.mac,
                                eth.src,
                                self.ip,
                                ip.src,
                                icmp.identifier,
                                icmp.sequence,
                                icmp.payload.clone(),
                            );
                            // Reply goes back through ARP-free fast path:
                            // we already know the sender's MAC.
                            self.arp_table.insert(ip.src, eth.src);
                            fx.push(Effect::Frame {
                                out_port: HOST_PORT,
                                frame: reply.encode(),
                            });
                        }
                        IcmpKind::EchoReply => {
                            let app = icmp.identifier as usize;
                            match self.apps.get_mut(app) {
                                Some(App::Ping(p)) => p.on_reply(icmp.sequence, now),
                                Some(App::CapacityProbe(p)) => p.on_reply(icmp.sequence, now),
                                _ => {}
                            }
                        }
                        _ => {}
                    },
                    IpPayload::Tcp(tcp) => {
                        self.arp_table.insert(ip.src, eth.src);
                        self.handle_tcp(ip.src, eth.src, tcp, now, fx);
                    }
                    _ => {}
                }
            }
            Payload::Other(_) => {}
        }
    }

    /// Routes an echo reply addressed to a spoofed probe source MAC to
    /// the owning capacity-probe app.
    fn deliver_to_probe(&mut self, eth: &Ethernet, now: SimTime) {
        let Payload::Ipv4(ip) = &eth.payload else {
            return;
        };
        let IpPayload::Icmp(icmp) = &ip.payload else {
            return;
        };
        if icmp.kind() != IcmpKind::EchoReply {
            return;
        }
        if let Some(App::CapacityProbe(p)) = self.apps.get_mut(icmp.identifier as usize) {
            if p.owns(eth.dst) {
                p.on_reply(icmp.sequence, now);
            }
        }
    }

    fn handle_tcp(
        &mut self,
        peer_ip: Ipv4Addr,
        peer_mac: MacAddr,
        tcp: &attain_openflow::packet::Tcp,
        now: SimTime,
        fx: &mut Vec<Effect>,
    ) {
        let my_mac = self.mac;
        let my_ip = self.ip;
        // Server side: a listener on the destination port wins.
        for app in &mut self.apps {
            if let App::IperfServer(s) = app {
                if s.port() == tcp.dst_port {
                    for seg in s.on_segment(peer_ip, tcp, now) {
                        let frame = packet::tcp_segment(
                            my_mac,
                            peer_mac,
                            my_ip,
                            peer_ip,
                            seg.src_port,
                            seg.dst_port,
                            seg.seq,
                            seg.ack,
                            seg.flags,
                            seg.payload,
                        );
                        fx.push(Effect::Frame {
                            out_port: HOST_PORT,
                            frame: frame.encode(),
                        });
                    }
                    return;
                }
            }
        }
        // Client side: match on our ephemeral port.
        for app in &mut self.apps {
            if let App::IperfClient(c) = app {
                if c.src_port() == tcp.dst_port {
                    let sends = c.on_segment(tcp, now);
                    self.emit_tcp(peer_ip, sends, now, fx);
                    return;
                }
            }
        }
    }

    fn emit_tcp(
        &mut self,
        dst_ip: Ipv4Addr,
        segs: Vec<iperf::SegmentOut>,
        now: SimTime,
        fx: &mut Vec<Effect>,
    ) {
        for seg in segs {
            let frame = packet::tcp_segment(
                self.mac,
                self.arp_table
                    .get(&dst_ip)
                    .copied()
                    .unwrap_or(MacAddr::BROADCAST),
                self.ip,
                dst_ip,
                seg.src_port,
                seg.dst_port,
                seg.seq,
                seg.ack,
                seg.flags,
                seg.payload,
            );
            self.send_ip_frame(dst_ip, frame.encode(), now, fx);
        }
    }

    /// Sends an IP frame, resolving the destination MAC first if needed.
    /// `frame` must have been built with some placeholder destination MAC;
    /// it is patched on flush.
    fn send_ip_frame(
        &mut self,
        dst_ip: Ipv4Addr,
        frame: Vec<u8>,
        now: SimTime,
        fx: &mut Vec<Effect>,
    ) {
        if let Some(mac) = self.arp_table.get(&dst_ip).copied() {
            let mut f = frame;
            f[..6].copy_from_slice(&mac.0);
            fx.push(Effect::Frame {
                out_port: HOST_PORT,
                frame: f,
            });
            return;
        }
        let first_for_dst = !self.pending.contains_key(&dst_ip);
        self.pending
            .entry(dst_ip)
            .or_insert_with(|| PendingArp {
                frames: Vec::new(),
                retries: 0,
            })
            .frames
            .push(frame);
        if first_for_dst {
            let req = packet::arp_request(self.mac, self.ip, dst_ip);
            fx.push(Effect::Frame {
                out_port: HOST_PORT,
                frame: req.encode(),
            });
        }
        if !self.arp_timer_armed {
            self.arp_timer_armed = true;
            fx.push(Effect::Timer {
                at: now + ARP_RETRY,
                token: TimerToken::ArpRetry,
            });
        }
    }

    fn flush_pending(&mut self, ip: Ipv4Addr, mac: MacAddr, fx: &mut Vec<Effect>) {
        if let Some(p) = self.pending.remove(&ip) {
            for mut frame in p.frames {
                frame[..6].copy_from_slice(&mac.0);
                fx.push(Effect::Frame {
                    out_port: HOST_PORT,
                    frame,
                });
            }
        }
    }

    // ---- timers -----------------------------------------------------------

    pub(crate) fn handle_timer(&mut self, token: TimerToken, now: SimTime, fx: &mut Vec<Effect>) {
        match token {
            TimerToken::App { app } => self.app_timer(app, now, fx),
            TimerToken::ArpRetry => self.arp_retry(now, fx),
            _ => {}
        }
    }

    fn arp_retry(&mut self, now: SimTime, fx: &mut Vec<Effect>) {
        let mut dead = Vec::new();
        let mut requests = Vec::new();
        for (&ip, p) in &mut self.pending {
            p.retries += 1;
            if p.retries > ARP_MAX_RETRIES {
                dead.push(ip);
            } else {
                requests.push(ip);
            }
        }
        for ip in dead {
            // Unreachable: give up, dropping the queued frames.
            self.pending.remove(&ip);
        }
        for ip in requests {
            let req = packet::arp_request(self.mac, self.ip, ip);
            fx.push(Effect::Frame {
                out_port: HOST_PORT,
                frame: req.encode(),
            });
        }
        if self.pending.is_empty() {
            self.arp_timer_armed = false;
        } else {
            fx.push(Effect::Timer {
                at: now + ARP_RETRY,
                token: TimerToken::ArpRetry,
            });
        }
    }

    fn app_timer(&mut self, app: usize, now: SimTime, fx: &mut Vec<Effect>) {
        let my_mac = self.mac;
        let my_ip = self.ip;
        enum Todo {
            None,
            Ping {
                dst: Ipv4Addr,
                ident: u16,
                seq: u16,
                next_at: Option<SimTime>,
            },
            Tcp {
                dst: Ipv4Addr,
                segs: Vec<iperf::SegmentOut>,
                next_at: Option<SimTime>,
            },
            Spoofed {
                dst: Ipv4Addr,
                ident: u16,
                src_mac: MacAddr,
                src_ip: Ipv4Addr,
                seq: u16,
                next_at: Option<SimTime>,
            },
            Quiet {
                next_at: Option<SimTime>,
            },
        }
        let todo = match self.apps.get_mut(app) {
            Some(App::Ping(p)) => match p.on_timer(now) {
                Some((seq, next_at)) => Todo::Ping {
                    dst: p.dst(),
                    ident: p.ident(),
                    seq,
                    next_at,
                },
                None => Todo::None,
            },
            Some(App::IperfClient(c)) => {
                let (segs, next_at) = c.on_timer(now);
                Todo::Tcp {
                    dst: c.dst(),
                    segs,
                    next_at,
                }
            }
            Some(App::CapacityProbe(p)) => {
                let (dst, ident) = (p.dst(), p.ident());
                let (send, next_at) = p.on_timer(now);
                match send {
                    // Warmup trials are ordinary pings from the host's
                    // real address: they share the ping send path.
                    ProbeSend::Warmup { seq } => Todo::Ping {
                        dst,
                        ident,
                        seq,
                        next_at,
                    },
                    ProbeSend::Spoofed {
                        src_mac,
                        src_ip,
                        seq,
                    } => Todo::Spoofed {
                        dst,
                        ident,
                        src_mac,
                        src_ip,
                        seq,
                        next_at,
                    },
                    ProbeSend::Quiet => Todo::Quiet { next_at },
                }
            }
            _ => Todo::None,
        };
        match todo {
            Todo::None => {}
            Todo::Ping {
                dst,
                ident,
                seq,
                next_at,
            } => {
                let frame = packet::icmp_echo_request(
                    my_mac,
                    MacAddr::BROADCAST, // patched by ARP resolution
                    my_ip,
                    dst,
                    ident,
                    seq,
                    vec![0x61; 56], // the classic 56-byte ping payload
                );
                self.send_ip_frame(dst, frame.encode(), now, fx);
                if let Some(at) = next_at {
                    fx.push(Effect::Timer {
                        at,
                        token: TimerToken::App { app },
                    });
                }
            }
            Todo::Tcp { dst, segs, next_at } => {
                self.emit_tcp(dst, segs, now, fx);
                if let Some(at) = next_at {
                    fx.push(Effect::Timer {
                        at,
                        token: TimerToken::App { app },
                    });
                }
            }
            Todo::Spoofed {
                dst,
                ident,
                src_mac,
                src_ip,
                seq,
                next_at,
            } => {
                // Warmup has already resolved the destination MAC; if it
                // somehow has not (unreachable victim), fall back to
                // broadcast so the probe still terminates.
                let dst_mac = self
                    .arp_table
                    .get(&dst)
                    .copied()
                    .unwrap_or(MacAddr::BROADCAST);
                let frame = packet::icmp_echo_request(
                    src_mac,
                    dst_mac,
                    src_ip,
                    dst,
                    ident,
                    seq,
                    vec![0x70; 56],
                );
                fx.push(Effect::Frame {
                    out_port: HOST_PORT,
                    frame: frame.encode(),
                });
                if let Some(at) = next_at {
                    fx.push(Effect::Timer {
                        at,
                        token: TimerToken::App { app },
                    });
                }
            }
            Todo::Quiet { next_at } => {
                if let Some(at) = next_at {
                    fx.push(Effect::Timer {
                        at,
                        token: TimerToken::App { app },
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> Host {
        Host::new(
            NodeId(0),
            "h1".into(),
            MacAddr::from_low(1),
            "10.0.0.1".parse().unwrap(),
        )
    }

    #[test]
    fn answers_arp_requests_for_own_ip() {
        let mut h = host();
        let req = packet::arp_request(
            MacAddr::from_low(2),
            "10.0.0.2".parse().unwrap(),
            "10.0.0.1".parse().unwrap(),
        );
        let mut fx = Vec::new();
        h.handle_frame(&req.encode(), SimTime::ZERO, &mut fx);
        assert_eq!(fx.len(), 1);
        let Effect::Frame { frame, .. } = &fx[0] else {
            panic!("expected frame");
        };
        let eth = Ethernet::decode(frame).unwrap();
        let Payload::Arp(arp) = eth.payload else {
            panic!("expected arp");
        };
        assert_eq!(arp.operation, ArpOperation::Reply);
        assert_eq!(arp.sender_mac, MacAddr::from_low(1));
    }

    #[test]
    fn ignores_arp_requests_for_other_ips() {
        let mut h = host();
        let req = packet::arp_request(
            MacAddr::from_low(2),
            "10.0.0.2".parse().unwrap(),
            "10.0.0.9".parse().unwrap(),
        );
        let mut fx = Vec::new();
        h.handle_frame(&req.encode(), SimTime::ZERO, &mut fx);
        assert!(fx.is_empty());
    }

    #[test]
    fn answers_echo_requests() {
        let mut h = host();
        let req = packet::icmp_echo_request(
            MacAddr::from_low(2),
            MacAddr::from_low(1),
            "10.0.0.2".parse().unwrap(),
            "10.0.0.1".parse().unwrap(),
            7,
            3,
            vec![1, 2, 3],
        );
        let mut fx = Vec::new();
        h.handle_frame(&req.encode(), SimTime::ZERO, &mut fx);
        assert_eq!(fx.len(), 1);
        let Effect::Frame { frame, .. } = &fx[0] else {
            panic!()
        };
        let eth = Ethernet::decode(frame).unwrap();
        let Payload::Ipv4(ip) = eth.payload else {
            panic!()
        };
        let IpPayload::Icmp(icmp) = ip.payload else {
            panic!()
        };
        assert_eq!(icmp.kind(), IcmpKind::EchoReply);
        assert_eq!(icmp.sequence, 3);
        assert_eq!(icmp.payload, vec![1, 2, 3]);
    }

    #[test]
    fn ping_defers_to_arp_then_flushes() {
        let mut h = host();
        let mut fx = Vec::new();
        h.start_ping(
            "10.0.0.2".parse().unwrap(),
            2,
            SimTime::from_secs(1),
            "test".into(),
            SimTime::ZERO,
            &mut fx,
        );
        // Fire the app timer: should produce an ARP request (not the echo).
        let mut fx2 = Vec::new();
        h.handle_timer(TimerToken::App { app: 0 }, SimTime::ZERO, &mut fx2);
        let frames: Vec<_> = fx2
            .iter()
            .filter_map(|e| match e {
                Effect::Frame { frame, .. } => Some(Ethernet::decode(frame).unwrap()),
                _ => None,
            })
            .collect();
        assert_eq!(frames.len(), 1);
        assert!(matches!(frames[0].payload, Payload::Arp(_)));
        // ARP reply arrives: the queued echo flushes with the right MAC.
        let reply = packet::arp_reply(
            MacAddr::from_low(2),
            "10.0.0.2".parse().unwrap(),
            MacAddr::from_low(1),
            "10.0.0.1".parse().unwrap(),
        );
        let mut fx3 = Vec::new();
        h.handle_frame(&reply.encode(), SimTime::from_millis(1), &mut fx3);
        let frames: Vec<_> = fx3
            .iter()
            .filter_map(|e| match e {
                Effect::Frame { frame, .. } => Some(Ethernet::decode(frame).unwrap()),
                _ => None,
            })
            .collect();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].dst, MacAddr::from_low(2));
        assert!(matches!(frames[0].payload, Payload::Ipv4(_)));
    }

    #[test]
    fn ping_round_trip_records_rtt() {
        let mut h = host();
        let mut fx = Vec::new();
        h.start_ping(
            "10.0.0.2".parse().unwrap(),
            1,
            SimTime::from_secs(1),
            "test".into(),
            SimTime::ZERO,
            &mut fx,
        );
        h.arp_table
            .insert("10.0.0.2".parse().unwrap(), MacAddr::from_low(2));
        let mut fx2 = Vec::new();
        h.handle_timer(TimerToken::App { app: 0 }, SimTime::ZERO, &mut fx2);
        // Reply 1.5 ms later.
        let reply = packet::icmp_echo_reply(
            MacAddr::from_low(2),
            MacAddr::from_low(1),
            "10.0.0.2".parse().unwrap(),
            "10.0.0.1".parse().unwrap(),
            0, // app index 0 is the identifier
            1,
            vec![0x61; 56],
        );
        let mut fx3 = Vec::new();
        h.handle_frame(&reply.encode(), SimTime::from_micros(1500), &mut fx3);
        let stats = &h.ping_stats()[0];
        assert_eq!(stats.received(), 1);
        assert!((stats.rtts_ms()[0].unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arp_gives_up_after_max_retries() {
        let mut h = host();
        let mut fx = Vec::new();
        h.start_ping(
            "10.0.0.99".parse().unwrap(),
            1,
            SimTime::from_secs(1),
            "test".into(),
            SimTime::ZERO,
            &mut fx,
        );
        h.handle_timer(TimerToken::App { app: 0 }, SimTime::ZERO, &mut fx);
        assert_eq!(h.pending.len(), 1);
        for i in 0..6 {
            let mut fx2 = Vec::new();
            h.handle_timer(TimerToken::ArpRetry, SimTime::from_secs(1 + i), &mut fx2);
        }
        assert!(h.pending.is_empty());
        // The ping is recorded as lost, not answered.
        assert_eq!(h.ping_stats()[0].received(), 0);
    }
}
