//! The flow-table capacity inference probe: an attacker-side workload
//! that recovers a switch's configured table capacity from the data
//! plane alone.
//!
//! The probe runs four phases against a victim destination:
//!
//! 1. **Warmup** — a few ordinary echo trials. These resolve ARP,
//!    install the probe host's own pair of flow entries, and establish
//!    the *fast-path* RTT baseline (the minimum over the warmup trials;
//!    the first trial pays the table-miss penalty, later ones do not).
//! 2. **Fill** — `fill` echo requests, each from a distinct spoofed
//!    locally-administered source MAC (and a distinct RFC-1918 source
//!    IP, so the victim's ARP table is not corrupted). Under an
//!    L2-learning controller every spoofed flow installs two entries
//!    (request and reply direction), steadily filling the table.
//! 3. **Settle** — a quiet period so in-flight installs complete.
//! 4. **Sweep** — the fill probes are re-sent in *reverse* order. A
//!    probe whose entries are still resident round-trips on the fast
//!    path; an evicted (or never-installed) probe pays controller
//!    round-trips and classifies as slow. The reverse order matters:
//!    under LRU, FIFO, and reject policies alike, any eviction cascade
//!    the sweep itself causes only consumes entries belonging to
//!    already-measured probes.
//!
//! With fast count `F` the capacity estimate is `2F + 2` when probe 0
//! survived (the two warmup entries are also resident — the reject
//! policy's signature) and `2F` otherwise (warmup was evicted first).
//! For even capacities the estimate is exact; odd capacities are off by
//! at most one.

use crate::time::SimTime;
use attain_openflow::MacAddr;
use std::net::Ipv4Addr;

/// Warmup echo trials before the fill phase.
const WARMUP_COUNT: u16 = 3;
/// Quiet gaps between the fill and sweep phases.
const SETTLE_GAPS: u64 = 5;
/// Sweep RTTs more than this far above the warmup baseline are slow.
const SLOW_MARGIN_MS: f64 = 1.0;

/// Results of one capacity-inference probe run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeStats {
    /// The run's label (the command line that started it).
    pub label: String,
    /// The victim destination.
    pub dst: Ipv4Addr,
    /// Spoofed flows sent during the fill phase.
    pub fill: usize,
    warmup_rtts: Vec<Option<f64>>,
    /// Sweep RTTs in *probe index* order (index 0 = first fill probe).
    sweep_rtts: Vec<Option<f64>>,
    done: bool,
}

impl ProbeStats {
    /// Whether the sweep completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The fast-path RTT baseline: minimum warmup RTT, if any reply
    /// arrived.
    pub fn baseline_ms(&self) -> Option<f64> {
        self.warmup_rtts
            .iter()
            .flatten()
            .copied()
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.min(r))))
    }

    /// Sweep RTTs in fill-probe order (`None` = no reply).
    pub fn sweep_rtts_ms(&self) -> &[Option<f64>] {
        &self.sweep_rtts
    }

    /// Whether sweep probe `i` classified as fast (entries resident).
    /// Lost probes are slow: a missing reply is never the fast path.
    pub fn is_fast(&self, i: usize) -> bool {
        match (self.sweep_rtts.get(i), self.baseline_ms()) {
            (Some(Some(rtt)), Some(base)) => *rtt <= base + SLOW_MARGIN_MS,
            _ => false,
        }
    }

    /// Sweep probes that classified as fast.
    pub fn fast_count(&self) -> usize {
        (0..self.sweep_rtts.len())
            .filter(|&i| self.is_fast(i))
            .count()
    }

    /// The inferred table capacity, or `None` before the sweep finishes
    /// (or if no warmup baseline exists).
    ///
    /// Each resident probe accounts for two entries; if probe 0 is
    /// still resident nothing was ever evicted, so the two warmup
    /// entries are resident too.
    pub fn estimate(&self) -> Option<usize> {
        if !self.done {
            return None;
        }
        self.baseline_ms()?;
        let f = self.fast_count();
        Some(2 * f + if self.is_fast(0) { 2 } else { 0 })
    }
}

/// What the probe wants sent when its timer fires.
#[derive(Debug)]
pub(crate) enum ProbeSend {
    /// An ordinary echo request from the host's real address.
    Warmup {
        /// ICMP sequence number.
        seq: u16,
    },
    /// An echo request from a spoofed source.
    Spoofed {
        /// Spoofed source MAC.
        src_mac: MacAddr,
        /// Spoofed source IP.
        src_ip: Ipv4Addr,
        /// ICMP sequence number.
        seq: u16,
    },
    /// Nothing this tick (settling).
    Quiet,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Warmup(u16),
    Fill(usize),
    Settle,
    Sweep(usize),
    Done,
}

/// A running capacity-inference probe on a host.
#[derive(Debug)]
pub(crate) struct CapacityProbeApp {
    label: String,
    dst: Ipv4Addr,
    fill: usize,
    gap: SimTime,
    ident: u16,
    phase: Phase,
    /// Send time per sequence number (1-based), all phases.
    sent_at: Vec<SimTime>,
    rtts: Vec<Option<f64>>,
}

impl CapacityProbeApp {
    pub(crate) fn new(
        label: String,
        dst: Ipv4Addr,
        fill: usize,
        gap: SimTime,
        ident: u16,
    ) -> CapacityProbeApp {
        CapacityProbeApp {
            label,
            dst,
            fill,
            gap,
            ident,
            phase: Phase::Warmup(0),
            sent_at: Vec::new(),
            rtts: Vec::new(),
        }
    }

    pub(crate) fn dst(&self) -> Ipv4Addr {
        self.dst
    }

    pub(crate) fn ident(&self) -> u16 {
        self.ident
    }

    /// The spoofed source MAC for fill probe `i`: locally-administered
    /// unicast, partitioned per app so concurrent probes never collide
    /// with each other or with real host/switch-port MACs.
    fn probe_mac(&self, i: usize) -> MacAddr {
        MacAddr::from_low(0x0200_0000_0000 | (u64::from(self.ident) << 16) | i as u64)
    }

    /// The spoofed source IP for fill probe `i` (172.16/16: never a
    /// simulated host address, so the victim's ARP table stays clean).
    fn probe_ip(&self, i: usize) -> Ipv4Addr {
        Ipv4Addr::from(0xac10_0000_u32 + i as u32 + 1)
    }

    /// Whether `mac` is one of this probe's spoofed sources.
    pub(crate) fn owns(&self, mac: MacAddr) -> bool {
        let mut v = 0u64;
        for b in mac.0 {
            v = v << 8 | u64::from(b);
        }
        let base = 0x0200_0000_0000 | (u64::from(self.ident) << 16);
        v >= base && v < base + self.fill as u64
    }

    /// The timer fired: what to send, and when to fire next (`None`
    /// when the run is over).
    pub(crate) fn on_timer(&mut self, now: SimTime) -> (ProbeSend, Option<SimTime>) {
        let send_seq = |sent_at: &mut Vec<SimTime>, rtts: &mut Vec<Option<f64>>| {
            sent_at.push(now);
            rtts.push(None);
            sent_at.len() as u16
        };
        match self.phase {
            Phase::Warmup(k) => {
                let seq = send_seq(&mut self.sent_at, &mut self.rtts);
                self.phase = if k + 1 < WARMUP_COUNT {
                    Phase::Warmup(k + 1)
                } else {
                    Phase::Fill(0)
                };
                (ProbeSend::Warmup { seq }, Some(now + self.gap))
            }
            Phase::Fill(i) => {
                let seq = send_seq(&mut self.sent_at, &mut self.rtts);
                let send = ProbeSend::Spoofed {
                    src_mac: self.probe_mac(i),
                    src_ip: self.probe_ip(i),
                    seq,
                };
                if i + 1 < self.fill {
                    self.phase = Phase::Fill(i + 1);
                    (send, Some(now + self.gap))
                } else {
                    self.phase = Phase::Settle;
                    let settle = SimTime::from_nanos(self.gap.as_nanos() * SETTLE_GAPS);
                    (send, Some(now + settle))
                }
            }
            Phase::Settle => {
                self.phase = Phase::Sweep(0);
                (ProbeSend::Quiet, Some(now + self.gap))
            }
            Phase::Sweep(p) => {
                // Reverse order: newest fill probe first.
                let i = self.fill - 1 - p;
                let seq = send_seq(&mut self.sent_at, &mut self.rtts);
                let send = ProbeSend::Spoofed {
                    src_mac: self.probe_mac(i),
                    src_ip: self.probe_ip(i),
                    seq,
                };
                if p + 1 < self.fill {
                    self.phase = Phase::Sweep(p + 1);
                    (send, Some(now + self.gap))
                } else {
                    self.phase = Phase::Done;
                    (send, None)
                }
            }
            Phase::Done => (ProbeSend::Quiet, None),
        }
    }

    /// An echo reply with our identifier arrived.
    pub(crate) fn on_reply(&mut self, seq: u16, now: SimTime) {
        let idx = seq as usize;
        if idx == 0 || idx > self.sent_at.len() {
            return;
        }
        let sent = self.sent_at[idx - 1];
        if self.rtts[idx - 1].is_none() {
            self.rtts[idx - 1] = Some(now.saturating_sub(sent).as_millis_f64());
        }
    }

    pub(crate) fn stats(&self) -> ProbeStats {
        let w = WARMUP_COUNT as usize;
        let warmup_rtts = self.rtts.iter().take(w).copied().collect();
        // Sweep seq p (0-based within the sweep) measured fill probe
        // `fill - 1 - p`; re-index into fill-probe order.
        let mut sweep_rtts = vec![None; self.fill];
        for p in 0..self.fill {
            if let Some(&rtt) = self.rtts.get(w + self.fill + p) {
                sweep_rtts[self.fill - 1 - p] = rtt;
            }
        }
        ProbeStats {
            label: self.label.clone(),
            dst: self.dst,
            fill: self.fill,
            warmup_rtts,
            sweep_rtts,
            done: self.phase == Phase::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(fill: usize) -> CapacityProbeApp {
        CapacityProbeApp::new(
            "test".into(),
            "10.0.0.2".parse().unwrap(),
            fill,
            SimTime::from_millis(10),
            0,
        )
    }

    /// Drives the app to completion, replying to every send with the
    /// given per-probe-index RTT (`None` = no reply). Returns the stats.
    fn drive(mut p: CapacityProbeApp, sweep_rtt: impl Fn(usize) -> Option<SimTime>) -> ProbeStats {
        let fill = p.fill;
        let mut now = SimTime::ZERO;
        loop {
            let (send, next) = p.on_timer(now);
            let seq = match send {
                ProbeSend::Warmup { seq } => Some((seq, SimTime::from_micros(200))),
                ProbeSend::Spoofed { seq, src_mac, .. } => {
                    assert!(p.owns(src_mac));
                    let idx_in_run = seq as usize - 1;
                    let w = WARMUP_COUNT as usize;
                    if idx_in_run < w + fill {
                        // Fill phase: always answered (slowly; ignored).
                        Some((seq, SimTime::from_millis(3)))
                    } else {
                        // Sweep: probe index from reverse order.
                        let probe = fill - 1 - (idx_in_run - w - fill);
                        sweep_rtt(probe).map(|rtt| (seq, rtt))
                    }
                }
                ProbeSend::Quiet => None,
            };
            if let Some((seq, rtt)) = seq {
                p.on_reply(seq, now + rtt);
            }
            match next {
                Some(t) => now = t,
                None => break,
            }
        }
        p.stats()
    }

    #[test]
    fn estimate_counts_two_entries_per_fast_probe() {
        // Probes 6..10 resident (fast), 0..6 evicted: an evicting policy
        // with capacity 2*4 = 8.
        let stats = drive(app(10), |i| {
            Some(if i >= 6 {
                SimTime::from_micros(250)
            } else {
                SimTime::from_millis(4)
            })
        });
        assert!(stats.is_done());
        assert_eq!(stats.fast_count(), 4);
        assert!(!stats.is_fast(0));
        assert_eq!(stats.estimate(), Some(8));
    }

    #[test]
    fn resident_probe_zero_adds_warmup_entries() {
        // Probes 0..3 resident, rest rejected: the reject policy with
        // capacity 2 (warmup) + 2*3 = 8.
        let stats = drive(app(10), |i| {
            Some(if i < 3 {
                SimTime::from_micros(250)
            } else {
                SimTime::from_millis(4)
            })
        });
        assert_eq!(stats.estimate(), Some(8));
    }

    #[test]
    fn lost_sweep_replies_classify_slow() {
        let stats = drive(app(4), |i| (i >= 2).then(|| SimTime::from_micros(250)));
        assert_eq!(stats.fast_count(), 2);
        assert_eq!(stats.sweep_rtts_ms()[0], None);
        assert_eq!(stats.estimate(), Some(4));
    }

    #[test]
    fn no_estimate_before_done_or_without_baseline() {
        let mut p = app(4);
        let _ = p.on_timer(SimTime::ZERO);
        assert_eq!(p.stats().estimate(), None);
        // Driven to completion but every reply lost: no baseline.
        let stats = drive(app(4), |_| None);
        // drive() always answers warmups, so force-lose them instead.
        assert!(stats.baseline_ms().is_some());
        let silent = {
            let mut p = app(2);
            let mut now = SimTime::ZERO;
            while let (_, Some(t)) = p.on_timer(now) {
                now = t;
            }
            p.stats()
        };
        assert!(silent.is_done());
        assert_eq!(silent.baseline_ms(), None);
        assert_eq!(silent.estimate(), None);
    }

    #[test]
    fn spoofed_macs_are_locally_administered_and_disjoint_per_app() {
        let a = app(100);
        let mac = a.probe_mac(7);
        assert_eq!(mac.0[0] & 0x03, 0x02); // locally administered unicast
        assert!(a.owns(mac));
        assert!(!a.owns(MacAddr::from_low(8))); // a real host MAC
        let b = CapacityProbeApp::new(
            "other".into(),
            "10.0.0.2".parse().unwrap(),
            100,
            SimTime::from_millis(10),
            1,
        );
        assert!(!a.owns(b.probe_mac(7)));
        assert!(b.owns(b.probe_mac(7)));
    }
}
