//! The `iperf` workload model: a TCP bulk-transfer client/server pair
//! with a fixed-window sender, matching the paper's use of `iperf` for
//! the throughput metric (Figure 11a).
//!
//! The TCP model is deliberately simple — handshake, cumulative ACKs,
//! fixed window, go-back-N retransmission — because the experiments
//! measure how the *network* (and the attacks against its control plane)
//! shapes throughput, not congestion-control dynamics.

use crate::time::SimTime;
use attain_openflow::packet::{Tcp, TcpFlags};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// TCP maximum segment size used by the model (Ethernet MTU minus
/// IP/TCP headers).
pub(crate) const MSS: u32 = 1460;
/// Fixed sender window in segments (≈ 93 KB — enough to fill a 100 Mb/s
/// link at the case-study topology's RTT).
const WINDOW_SEGMENTS: u32 = 64;
/// Retransmission timeout.
const RTO: SimTime = SimTime::from_millis(500);
/// Client tick period (drives retransmission and deadline checks).
const TICK: SimTime = SimTime::from_millis(100);
/// SYN retransmission interval.
const SYN_RETRY: SimTime = SimTime::from_secs(1);
/// SYN attempts before giving up (connection refused → 0 Mb/s).
const SYN_MAX_ATTEMPTS: u32 = 5;
/// After the send deadline, wait at most this long for trailing ACKs.
const DRAIN_GRACE: SimTime = SimTime::from_secs(5);

/// Results of one `iperf` client run.
#[derive(Debug, Clone, PartialEq)]
pub struct IperfStats {
    /// The run's label (the command line that started it).
    pub label: String,
    /// Server address.
    pub dst: Ipv4Addr,
    /// Bytes acknowledged by the server.
    pub bytes: u64,
    /// Configured transfer duration in seconds.
    pub duration_secs: f64,
    /// Whether the TCP connection was ever established.
    pub connected: bool,
    /// Whether the run has finished.
    pub finished: bool,
}

impl IperfStats {
    /// Goodput in Mb/s over the configured duration.
    pub fn throughput_mbps(&self) -> f64 {
        if self.duration_secs <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / self.duration_secs / 1e6
    }

    /// Whether the run amounts to a denial of service (zero throughput —
    /// the paper's asterisk).
    pub fn is_denial_of_service(&self) -> bool {
        self.finished && self.bytes == 0
    }
}

/// A TCP segment a host should emit (L2/L3 wrapping happens in the
/// host).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SegmentOut {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: TcpFlags,
    pub payload: Vec<u8>,
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct ServerConn {
    rcv_nxt: u32,
    bytes: u64,
}

/// An `iperf -s` instance: accepts connections on a port and ACKs
/// whatever arrives.
#[derive(Debug)]
pub(crate) struct IperfServerApp {
    port: u16,
    conns: BTreeMap<(Ipv4Addr, u16), ServerConn>,
}

impl IperfServerApp {
    pub(crate) fn new(port: u16) -> IperfServerApp {
        IperfServerApp {
            port,
            conns: BTreeMap::new(),
        }
    }

    pub(crate) fn port(&self) -> u16 {
        self.port
    }

    /// Total bytes received across all connections.
    #[allow(dead_code)]
    pub(crate) fn bytes_received(&self) -> u64 {
        self.conns.values().map(|c| c.bytes).sum()
    }

    pub(crate) fn on_segment(
        &mut self,
        peer: Ipv4Addr,
        tcp: &Tcp,
        _now: SimTime,
    ) -> Vec<SegmentOut> {
        let key = (peer, tcp.src_port);
        let reply = |seq: u32, ack: u32, flags: TcpFlags| SegmentOut {
            src_port: self.port,
            dst_port: tcp.src_port,
            seq,
            ack,
            flags,
            payload: Vec::new(),
        };
        if tcp.flags.contains(TcpFlags::SYN) {
            // (Re)establish: SYN consumes one sequence number.
            self.conns.insert(
                key,
                ServerConn {
                    rcv_nxt: tcp.seq.wrapping_add(1),
                    bytes: 0,
                },
            );
            return vec![reply(
                0,
                tcp.seq.wrapping_add(1),
                TcpFlags::SYN | TcpFlags::ACK,
            )];
        }
        let Some(conn) = self.conns.get_mut(&key) else {
            // No such connection: RST.
            return vec![reply(0, 0, TcpFlags::RST)];
        };
        if tcp.flags.contains(TcpFlags::FIN) {
            let ack = tcp.seq.wrapping_add(1);
            conn.rcv_nxt = ack;
            return vec![reply(1, ack, TcpFlags::FIN | TcpFlags::ACK)];
        }
        if !tcp.payload.is_empty() {
            if tcp.seq == conn.rcv_nxt {
                conn.rcv_nxt = conn.rcv_nxt.wrapping_add(tcp.payload.len() as u32);
                conn.bytes += tcp.payload.len() as u64;
            }
            // Cumulative ACK either way (duplicate ACK on reordering).
            return vec![reply(1, conn.rcv_nxt, TcpFlags::ACK)];
        }
        Vec::new()
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientState {
    SynSent,
    Established,
    Done,
}

/// An `iperf -c` instance: a fixed-window bulk sender.
#[derive(Debug)]
pub(crate) struct IperfClientApp {
    label: String,
    dst: Ipv4Addr,
    dst_port: u16,
    src_port: u16,
    duration: SimTime,
    state: ClientState,
    syn_attempts: u32,
    last_syn: SimTime,
    /// First unacknowledged sequence number (data starts at 1).
    snd_una: u32,
    /// Next sequence number to send.
    snd_nxt: u32,
    /// Time data transfer began (first ACK of the handshake).
    data_start: SimTime,
    /// Deadline after which no new data is sent.
    deadline: SimTime,
    last_progress: SimTime,
    connected: bool,
}

impl IperfClientApp {
    pub(crate) fn new(
        label: String,
        dst: Ipv4Addr,
        dst_port: u16,
        src_port: u16,
        duration: SimTime,
        now: SimTime,
    ) -> IperfClientApp {
        IperfClientApp {
            label,
            dst,
            dst_port,
            src_port,
            duration,
            state: ClientState::SynSent,
            syn_attempts: 0,
            last_syn: now,
            snd_una: 1,
            snd_nxt: 1,
            data_start: now,
            deadline: now + duration,
            last_progress: now,
            connected: false,
        }
    }

    pub(crate) fn dst(&self) -> Ipv4Addr {
        self.dst
    }

    pub(crate) fn src_port(&self) -> u16 {
        self.src_port
    }

    pub(crate) fn stats(&self) -> IperfStats {
        IperfStats {
            label: self.label.clone(),
            dst: self.dst,
            bytes: (self.snd_una - 1) as u64,
            duration_secs: self.duration.as_secs_f64(),
            connected: self.connected,
            finished: self.state == ClientState::Done,
        }
    }

    fn syn(&self) -> SegmentOut {
        SegmentOut {
            src_port: self.src_port,
            dst_port: self.dst_port,
            seq: 0,
            ack: 0,
            flags: TcpFlags::SYN,
            payload: Vec::new(),
        }
    }

    fn data_segment(&self, seq: u32) -> SegmentOut {
        SegmentOut {
            src_port: self.src_port,
            dst_port: self.dst_port,
            seq,
            ack: 1,
            flags: TcpFlags::ACK,
            payload: vec![0x49; MSS as usize], // 'I' for iperf filler
        }
    }

    /// Sends as much new data as the window and the deadline allow.
    fn fill_window(&mut self, now: SimTime) -> Vec<SegmentOut> {
        let mut out = Vec::new();
        if self.state != ClientState::Established || now >= self.deadline {
            return out;
        }
        let window_bytes = WINDOW_SEGMENTS * MSS;
        while self.snd_nxt.wrapping_sub(self.snd_una) < window_bytes {
            out.push(self.data_segment(self.snd_nxt));
            self.snd_nxt = self.snd_nxt.wrapping_add(MSS);
        }
        out
    }

    /// The client's periodic tick: SYN retries, retransmission, and
    /// completion checks. Returns segments to send and the next tick (or
    /// `None` when done).
    pub(crate) fn on_timer(&mut self, now: SimTime) -> (Vec<SegmentOut>, Option<SimTime>) {
        match self.state {
            ClientState::SynSent => {
                if self.syn_attempts >= SYN_MAX_ATTEMPTS {
                    // Connection never established: 0 Mb/s (DoS).
                    self.state = ClientState::Done;
                    return (Vec::new(), None);
                }
                if self.syn_attempts == 0 || now.saturating_sub(self.last_syn) >= SYN_RETRY {
                    self.syn_attempts += 1;
                    self.last_syn = now;
                    return (vec![self.syn()], Some(now + SYN_RETRY));
                }
                (Vec::new(), Some(now + SYN_RETRY))
            }
            ClientState::Established => {
                // All data sent and acknowledged after the deadline: done.
                if now >= self.deadline && self.snd_una == self.snd_nxt {
                    self.state = ClientState::Done;
                    return (
                        vec![SegmentOut {
                            src_port: self.src_port,
                            dst_port: self.dst_port,
                            seq: self.snd_nxt,
                            ack: 1,
                            flags: TcpFlags::FIN | TcpFlags::ACK,
                            payload: Vec::new(),
                        }],
                        None,
                    );
                }
                // Stuck past the grace period: give up with what we have.
                if now >= self.deadline + DRAIN_GRACE {
                    self.state = ClientState::Done;
                    return (Vec::new(), None);
                }
                // Go-back-N: on RTO, rewind to the first unacked byte.
                let mut out = Vec::new();
                if self.snd_nxt != self.snd_una && now.saturating_sub(self.last_progress) >= RTO {
                    self.snd_nxt = self.snd_una;
                    self.last_progress = now; // back off one RTO per retry
                    out.extend(self.fill_window(now));
                    if out.is_empty() {
                        // Past the deadline with unacked data: retransmit
                        // just the head segment.
                        out.push(self.data_segment(self.snd_una));
                        self.snd_nxt = self.snd_una.wrapping_add(MSS);
                    }
                }
                (out, Some(now + TICK))
            }
            ClientState::Done => (Vec::new(), None),
        }
    }

    /// A segment addressed to our port arrived.
    pub(crate) fn on_segment(&mut self, tcp: &Tcp, now: SimTime) -> Vec<SegmentOut> {
        match self.state {
            ClientState::SynSent => {
                if tcp.flags.contains(TcpFlags::SYN) && tcp.flags.contains(TcpFlags::ACK) {
                    self.state = ClientState::Established;
                    self.connected = true;
                    self.data_start = now;
                    self.deadline = now + self.duration;
                    self.last_progress = now;
                    // No separate bare ACK: the first data segments carry it.
                    return self.fill_window(now);
                }
                Vec::new()
            }
            ClientState::Established => {
                if tcp.flags.contains(TcpFlags::RST) {
                    self.state = ClientState::Done;
                    return Vec::new();
                }
                if tcp.flags.contains(TcpFlags::ACK) {
                    let ack = tcp.ack;
                    if ack.wrapping_sub(self.snd_una) > 0
                        && ack.wrapping_sub(self.snd_una) <= WINDOW_SEGMENTS * MSS
                    {
                        self.snd_una = ack;
                        self.last_progress = now;
                        return self.fill_window(now);
                    }
                }
                Vec::new()
            }
            ClientState::Done => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(src_port: u16, dst_port: u16, seq: u32, ack: u32, flags: TcpFlags, len: usize) -> Tcp {
        Tcp {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 65535,
            payload: vec![0; len],
        }
    }

    #[test]
    fn server_handshake_and_data() {
        let mut s = IperfServerApp::new(5001);
        let peer: Ipv4Addr = "10.0.0.1".parse().unwrap();
        let replies = s.on_segment(
            peer,
            &seg(30000, 5001, 0, 0, TcpFlags::SYN, 0),
            SimTime::ZERO,
        );
        assert_eq!(replies.len(), 1);
        assert!(replies[0].flags.contains(TcpFlags::SYN));
        assert_eq!(replies[0].ack, 1);

        // In-order data advances rcv_nxt and bytes.
        let replies = s.on_segment(
            peer,
            &seg(30000, 5001, 1, 1, TcpFlags::ACK, MSS as usize),
            SimTime::ZERO,
        );
        assert_eq!(replies[0].ack, 1 + MSS);
        assert_eq!(s.bytes_received(), MSS as u64);

        // Out-of-order data re-ACKs the expected byte without counting.
        let replies = s.on_segment(
            peer,
            &seg(30000, 5001, 1 + 3 * MSS, 1, TcpFlags::ACK, MSS as usize),
            SimTime::ZERO,
        );
        assert_eq!(replies[0].ack, 1 + MSS);
        assert_eq!(s.bytes_received(), MSS as u64);
    }

    #[test]
    fn server_rst_for_unknown_connection() {
        let mut s = IperfServerApp::new(5001);
        let peer: Ipv4Addr = "10.0.0.1".parse().unwrap();
        let replies = s.on_segment(
            peer,
            &seg(30000, 5001, 1, 1, TcpFlags::ACK, 100),
            SimTime::ZERO,
        );
        assert!(replies[0].flags.contains(TcpFlags::RST));
    }

    fn client(duration_secs: u64) -> IperfClientApp {
        IperfClientApp::new(
            "test".into(),
            "10.0.0.6".parse().unwrap(),
            5001,
            30000,
            SimTime::from_secs(duration_secs),
            SimTime::ZERO,
        )
    }

    #[test]
    fn client_retries_syn_then_gives_up_as_dos() {
        let mut c = client(10);
        let mut now = SimTime::ZERO;
        let mut syns = 0;
        loop {
            let (segs, next) = c.on_timer(now);
            syns += segs
                .iter()
                .filter(|s| s.flags.contains(TcpFlags::SYN))
                .count();
            match next {
                Some(t) => now = t,
                None => break,
            }
        }
        assert_eq!(syns, SYN_MAX_ATTEMPTS as usize);
        let st = c.stats();
        assert!(st.finished);
        assert!(!st.connected);
        assert_eq!(st.throughput_mbps(), 0.0);
        assert!(st.is_denial_of_service());
    }

    #[test]
    fn client_fills_window_on_syn_ack_and_slides_on_acks() {
        let mut c = client(10);
        c.on_timer(SimTime::ZERO); // sends SYN
        let burst = c.on_segment(
            &seg(5001, 30000, 0, 1, TcpFlags::SYN | TcpFlags::ACK, 0),
            SimTime::from_millis(1),
        );
        assert_eq!(burst.len(), WINDOW_SEGMENTS as usize);
        assert_eq!(burst[0].seq, 1);
        assert_eq!(burst[1].seq, 1 + MSS);

        // ACK of 2 segments opens exactly 2 more slots.
        let more = c.on_segment(
            &seg(5001, 30000, 1, 1 + 2 * MSS, TcpFlags::ACK, 0),
            SimTime::from_millis(2),
        );
        assert_eq!(more.len(), 2);
        assert_eq!(c.stats().bytes, 2 * MSS as u64);
    }

    #[test]
    fn client_rto_rewinds_to_snd_una() {
        let mut c = client(10);
        c.on_timer(SimTime::ZERO);
        c.on_segment(
            &seg(5001, 30000, 0, 1, TcpFlags::SYN | TcpFlags::ACK, 0),
            SimTime::from_millis(1),
        );
        // No ACKs for an RTO: retransmission burst from snd_una = 1.
        let (segs, _) = c.on_timer(SimTime::from_millis(1) + RTO);
        assert!(!segs.is_empty());
        assert_eq!(segs[0].seq, 1);
    }

    #[test]
    fn client_finishes_with_fin_after_deadline() {
        let mut c = client(1);
        c.on_timer(SimTime::ZERO);
        c.on_segment(
            &seg(5001, 30000, 0, 1, TcpFlags::SYN | TcpFlags::ACK, 0),
            SimTime::from_millis(1),
        );
        // Past the deadline, the server ACKs everything in flight (no
        // new data goes out at that point) and the next tick closes the
        // connection with a FIN.
        let acked = c.snd_nxt;
        c.on_segment(
            &seg(5001, 30000, 1, acked, TcpFlags::ACK, 0),
            SimTime::from_secs(2),
        );
        assert_eq!(c.snd_una, c.snd_nxt);
        let (segs, next) = c.on_timer(SimTime::from_millis(2100));
        assert!(segs.iter().any(|s| s.flags.contains(TcpFlags::FIN)));
        assert_eq!(next, None);
        let st = c.stats();
        assert!(st.finished && st.connected);
        assert!(st.bytes > 0);
    }

    #[test]
    fn throughput_math() {
        let st = IperfStats {
            label: "x".into(),
            dst: "10.0.0.1".parse().unwrap(),
            bytes: 12_500_000, // 100 Mbit
            duration_secs: 10.0,
            connected: true,
            finished: true,
        };
        assert!((st.throughput_mbps() - 10.0).abs() < 1e-9);
        assert!(!st.is_denial_of_service());
    }
}
