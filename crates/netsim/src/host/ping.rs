//! The `ping` workload model: periodic ICMP echo trials with RTT and
//! loss accounting, matching the paper's use of `ping` for the latency
//! metric (Figure 11b).

use crate::time::SimTime;
use std::net::Ipv4Addr;

/// Results of one `ping` run.
#[derive(Debug, Clone, PartialEq)]
pub struct PingStats {
    /// The run's label (the command line that started it).
    pub label: String,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Per-trial RTTs in milliseconds; `None` = lost (the paper's
    /// "latency is infinite" asterisk case).
    rtts: Vec<Option<f64>>,
    /// Echo requests sent.
    transmitted: u32,
}

impl PingStats {
    /// Echo requests sent.
    pub fn transmitted(&self) -> u32 {
        self.transmitted
    }

    /// Echo replies received.
    pub fn received(&self) -> u32 {
        self.rtts.iter().filter(|r| r.is_some()).count() as u32
    }

    /// Loss percentage (100 when nothing was sent back, 0 on no data).
    pub fn loss_pct(&self) -> f64 {
        if self.transmitted == 0 {
            return 0.0;
        }
        100.0 * (self.transmitted - self.received()) as f64 / self.transmitted as f64
    }

    /// Per-trial RTTs in milliseconds (`None` = lost).
    pub fn rtts_ms(&self) -> &[Option<f64>] {
        &self.rtts
    }

    /// Mean RTT over answered trials, if any.
    pub fn avg_rtt_ms(&self) -> Option<f64> {
        let answered: Vec<f64> = self.rtts.iter().flatten().copied().collect();
        if answered.is_empty() {
            None
        } else {
            Some(answered.iter().sum::<f64>() / answered.len() as f64)
        }
    }

    /// Minimum RTT over answered trials.
    pub fn min_rtt_ms(&self) -> Option<f64> {
        self.rtts
            .iter()
            .flatten()
            .copied()
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.min(r))))
    }

    /// Maximum RTT over answered trials.
    pub fn max_rtt_ms(&self) -> Option<f64> {
        self.rtts
            .iter()
            .flatten()
            .copied()
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    /// Whether every trial was lost — the paper's denial-of-service
    /// condition for latency ("infinite").
    pub fn is_denial_of_service(&self) -> bool {
        self.transmitted > 0 && self.received() == 0
    }
}

/// A running `ping` instance on a host.
#[derive(Debug)]
pub(crate) struct PingApp {
    label: String,
    dst: Ipv4Addr,
    count: u32,
    interval: SimTime,
    ident: u16,
    sent_at: Vec<SimTime>,
    rtts: Vec<Option<f64>>,
}

impl PingApp {
    pub(crate) fn new(
        label: String,
        dst: Ipv4Addr,
        count: u32,
        interval: SimTime,
        ident: u16,
    ) -> PingApp {
        PingApp {
            label,
            dst,
            count,
            interval,
            ident,
            sent_at: Vec::new(),
            rtts: Vec::new(),
        }
    }

    pub(crate) fn dst(&self) -> Ipv4Addr {
        self.dst
    }

    pub(crate) fn ident(&self) -> u16 {
        self.ident
    }

    /// The app timer fired: returns the sequence number to send (1-based)
    /// and when to fire next, or `None` when all trials are out.
    pub(crate) fn on_timer(&mut self, now: SimTime) -> Option<(u16, Option<SimTime>)> {
        if self.sent_at.len() as u32 >= self.count {
            return None;
        }
        self.sent_at.push(now);
        self.rtts.push(None);
        let seq = self.sent_at.len() as u16;
        let next = if (self.sent_at.len() as u32) < self.count {
            Some(now + self.interval)
        } else {
            None
        };
        Some((seq, next))
    }

    /// An echo reply with our identifier arrived.
    pub(crate) fn on_reply(&mut self, seq: u16, now: SimTime) {
        let idx = seq as usize;
        if idx == 0 || idx > self.sent_at.len() {
            return;
        }
        let sent = self.sent_at[idx - 1];
        if self.rtts[idx - 1].is_none() {
            self.rtts[idx - 1] = Some(now.saturating_sub(sent).as_millis_f64());
        }
    }

    pub(crate) fn stats(&self) -> PingStats {
        PingStats {
            label: self.label.clone(),
            dst: self.dst,
            rtts: self.rtts.clone(),
            transmitted: self.sent_at.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(count: u32) -> PingApp {
        PingApp::new(
            "test".into(),
            "10.0.0.9".parse().unwrap(),
            count,
            SimTime::from_secs(1),
            0,
        )
    }

    #[test]
    fn emits_count_trials_then_stops() {
        let mut p = app(3);
        let mut now = SimTime::ZERO;
        let mut seqs = Vec::new();
        while let Some((seq, next)) = p.on_timer(now) {
            seqs.push(seq);
            match next {
                Some(t) => now = t,
                None => break,
            }
        }
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(p.on_timer(now), None);
        assert_eq!(p.stats().transmitted(), 3);
    }

    #[test]
    fn rtt_and_loss_accounting() {
        let mut p = app(3);
        let (s1, n1) = p.on_timer(SimTime::ZERO).unwrap();
        p.on_reply(s1, SimTime::from_millis(2));
        let (_s2, n2) = p.on_timer(n1.unwrap()).unwrap();
        // trial 2 lost
        let (s3, _) = p.on_timer(n2.unwrap()).unwrap();
        // Sent at t=2 s, answered 3 ms later.
        p.on_reply(s3, SimTime::from_millis(2003));
        let st = p.stats();
        assert_eq!(st.transmitted(), 3);
        assert_eq!(st.received(), 2);
        assert!((st.loss_pct() - 33.333).abs() < 0.01);
        assert_eq!(st.rtts_ms()[1], None);
        assert!((st.avg_rtt_ms().unwrap() - 2.5).abs() < 1e-9);
        assert_eq!(st.min_rtt_ms(), Some(2.0));
        assert_eq!(st.max_rtt_ms(), Some(3.0));
        assert!(!st.is_denial_of_service());
    }

    #[test]
    fn all_lost_is_denial_of_service() {
        let mut p = app(2);
        let (_, n) = p.on_timer(SimTime::ZERO).unwrap();
        p.on_timer(n.unwrap());
        let st = p.stats();
        assert!(st.is_denial_of_service());
        assert_eq!(st.avg_rtt_ms(), None);
        assert_eq!(st.loss_pct(), 100.0);
    }

    #[test]
    fn duplicate_replies_do_not_overwrite() {
        let mut p = app(1);
        let (s, _) = p.on_timer(SimTime::ZERO).unwrap();
        p.on_reply(s, SimTime::from_millis(1));
        p.on_reply(s, SimTime::from_millis(50));
        assert_eq!(p.stats().rtts_ms()[0], Some(1.0));
    }

    #[test]
    fn bogus_sequence_numbers_are_ignored() {
        let mut p = app(1);
        p.on_timer(SimTime::ZERO);
        p.on_reply(0, SimTime::from_millis(1));
        p.on_reply(99, SimTime::from_millis(1));
        assert_eq!(p.stats().received(), 0);
    }
}
