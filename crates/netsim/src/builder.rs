//! Topology construction.
//!
//! Hand-written scenarios call [`NetworkBuilder::build`], which panics
//! on a malformed topology (a typo should fail loudly at the call
//! site). Generators producing thousands of nodes use
//! [`NetworkBuilder::try_build`], which returns a typed [`BuildError`]
//! naming the offending node — builder methods themselves never panic
//! on bad references; every problem is deferred and reported at build
//! time with its context.

use crate::budget::RunBudget;
use crate::controller_host::ControllerHost;
use crate::engine::{NodeId, SchedulerConfig};
use crate::fault::{FaultPlan, FaultSpec};
use crate::host::Host;
use crate::link::{Link, LinkEnd};
use crate::sim::{Connection, Node, Simulation};
use crate::switch::{EvictionPolicy, FailMode, Switch};
use crate::time::SimTime;
use attain_controllers::Controller;
use attain_openflow::{DatapathId, MacAddr, PortNo};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Reference to a controller added to a [`NetworkBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerRef(pub usize);

/// Physical characteristics of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkParams {
    /// Bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub delay: SimTime,
}

impl Default for LinkParams {
    /// The paper's testbed links: 100 Mb/s, with a quarter-millisecond
    /// of propagation/stack delay.
    fn default() -> Self {
        LinkParams {
            bandwidth_bps: 100_000_000,
            delay: SimTime::from_micros(250),
        }
    }
}

/// A malformed topology, detected at build time.
///
/// Every variant names the offending node (or the offending call's
/// position), so a generator emitting thousands of builder calls fails
/// fast with something actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Two nodes share a name.
    DuplicateName {
        /// The repeated name.
        name: String,
    },
    /// A host's IP address did not parse.
    InvalidIp {
        /// The host's name.
        name: String,
        /// The rejected address text.
        ip: String,
    },
    /// A link references a node id that was never created.
    DanglingLink {
        /// Index of the link (in creation order).
        index: usize,
        /// The out-of-range node id.
        id: NodeId,
    },
    /// A link connects a node to itself.
    SelfLink {
        /// The node's name.
        name: String,
    },
    /// A host has more than one link.
    MultihomedHost {
        /// The host's name.
        name: String,
    },
    /// A switch-only configuration call targeted a host or an unknown
    /// id.
    NotASwitch {
        /// The target's name, or `n<id>` if the id was out of range.
        name: String,
        /// Which call misfired (`set_fail_mode`, `set_table`).
        context: &'static str,
    },
    /// A control connection references a controller that was never
    /// added.
    DanglingController {
        /// Index of the control connection (in creation order).
        index: usize,
    },
    /// A control connection's switch end is a host or an unknown id.
    ControlOnHost {
        /// The target's name, or `n<id>` if the id was out of range.
        name: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateName { name } => write!(f, "duplicate node name {name}"),
            BuildError::InvalidIp { name, ip } => write!(f, "host {name}: invalid ip {ip}"),
            BuildError::DanglingLink { index, id } => {
                write!(f, "link #{index} references unknown node {id}")
            }
            BuildError::SelfLink { name } => write!(f, "link connects {name} to itself"),
            BuildError::MultihomedHost { name } => {
                write!(f, "host {name} may have only one link")
            }
            BuildError::NotASwitch { name, context } => {
                write!(f, "{context}: {name} is not a switch")
            }
            BuildError::DanglingController { index } => {
                write!(f, "control #{index} references an unknown controller")
            }
            BuildError::ControlOnHost { name } => write!(
                f,
                "{name} is a host; control connections attach to switches"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

enum NodeSpec {
    Host {
        name: String,
        /// Unparsed: validated in `try_build` so a bad address is a
        /// `BuildError`, not a panic mid-generation.
        ip: String,
    },
    Switch {
        name: String,
        fail_mode: FailMode,
        /// `(capacity, policy)` flow-table bound; `None` keeps the
        /// default (1024 entries, reject-on-full).
        table: Option<(usize, EvictionPolicy)>,
    },
}

impl NodeSpec {
    fn name(&self) -> &str {
        match self {
            NodeSpec::Host { name, .. } | NodeSpec::Switch { name, .. } => name,
        }
    }
}

/// Builds a [`Simulation`] from hosts, switches, links, controllers, and
/// control-plane connections — the system model `(C, S, H, N_D, N_C)` of
/// the paper's §IV-A, in executable form.
#[derive(Default)]
pub struct NetworkBuilder {
    nodes: Vec<NodeSpec>,
    links: Vec<(NodeId, PortNo, NodeId, PortNo, LinkParams)>,
    /// Next free port number per node id (ports are assigned at link
    /// creation, in link order, so generators learn their wiring as
    /// they emit it).
    next_port: Vec<u16>,
    controllers: Vec<(String, Box<dyn Controller>)>,
    controls: Vec<(ControllerRef, NodeId, SimTime)>,
    faults: FaultPlan,
    budget: RunBudget,
    scheduler: SchedulerConfig,
    /// Errors from misused builder calls, reported by `try_build`.
    deferred: Vec<BuildError>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> NetworkBuilder {
        NetworkBuilder::default()
    }

    /// Adds an end host with the given IPv4 address (validated at
    /// build time).
    pub fn host(&mut self, name: &str, ip: &str) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeSpec::Host {
            name: name.to_string(),
            ip: ip.to_string(),
        });
        self.next_port.push(0);
        id
    }

    /// Adds a switch with the default fail mode (`secure`, OVS's
    /// OpenFlow-era default).
    pub fn switch(&mut self, name: &str) -> NodeId {
        self.switch_with_mode(name, FailMode::Secure)
    }

    /// Adds a switch with an explicit fail mode.
    pub fn switch_with_mode(&mut self, name: &str, fail_mode: FailMode) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeSpec::Switch {
            name: name.to_string(),
            fail_mode,
            table: None,
        });
        self.next_port.push(0);
        id
    }

    /// The name a diagnostics message should use for `id`.
    fn name_for(&self, id: NodeId) -> String {
        self.nodes
            .get(id.0)
            .map(|n| n.name().to_string())
            .unwrap_or_else(|| id.to_string())
    }

    /// Changes a switch's fail mode (before `build`). Targeting a host
    /// or an unknown id is reported at build time.
    pub fn set_fail_mode(&mut self, id: NodeId, mode: FailMode) {
        match self.nodes.get_mut(id.0) {
            Some(NodeSpec::Switch { fail_mode, .. }) => *fail_mode = mode,
            _ => {
                let name = self.name_for(id);
                self.deferred.push(BuildError::NotASwitch {
                    name,
                    context: "set_fail_mode",
                });
            }
        }
    }

    /// Bounds a switch's flow table (before `build`): `capacity` entries
    /// plus the overflow policy applied once it fills. Targeting a host
    /// or an unknown id is reported at build time.
    pub fn set_table(&mut self, id: NodeId, capacity: usize, policy: EvictionPolicy) {
        match self.nodes.get_mut(id.0) {
            Some(NodeSpec::Switch { table, .. }) => *table = Some((capacity, policy)),
            _ => {
                let name = self.name_for(id);
                self.deferred.push(BuildError::NotASwitch {
                    name,
                    context: "set_table",
                });
            }
        }
    }

    /// Selects the event-scheduler backend and shard count (default:
    /// timer wheel, one shard). Any choice produces byte-identical
    /// traces; see [`SchedulerConfig`].
    pub fn scheduler(&mut self, config: SchedulerConfig) {
        self.scheduler = config;
    }

    /// Connects two nodes with a default link, returning the assigned
    /// `(port_on_a, port_on_b)`. Port numbers are assigned in
    /// link-creation order, matching the paper's `p_{i,j}` figures.
    pub fn link(&mut self, a: NodeId, b: NodeId) -> (PortNo, PortNo) {
        self.link_with(a, b, LinkParams::default())
    }

    /// Connects two nodes with explicit link parameters, returning the
    /// assigned `(port_on_a, port_on_b)`.
    pub fn link_with(&mut self, a: NodeId, b: NodeId, params: LinkParams) -> (PortNo, PortNo) {
        let mut assign = |id: NodeId| -> PortNo {
            match self.next_port.get_mut(id.0) {
                Some(n) => {
                    *n += 1;
                    PortNo(*n)
                }
                // Dangling id: reported by try_build; the placeholder
                // port never reaches a simulation.
                None => PortNo(0),
            }
        };
        let pa = assign(a);
        let pb = assign(b);
        self.links.push((a, pa, b, pb, params));
        (pa, pb)
    }

    /// Adds a controller hosting `app`.
    pub fn controller(&mut self, name: &str, app: Box<dyn Controller>) -> ControllerRef {
        let r = ControllerRef(self.controllers.len());
        self.controllers.push((name.to_string(), app));
        r
    }

    /// Adds a control-plane connection `(controller, switch)` to `N_C`
    /// with 1 ms one-way latency.
    pub fn control(&mut self, ctrl: ControllerRef, switch: NodeId) {
        self.control_with_latency(ctrl, switch, SimTime::from_millis(1));
    }

    /// Adds a control-plane connection with explicit one-way latency.
    pub fn control_with_latency(&mut self, ctrl: ControllerRef, switch: NodeId, latency: SimTime) {
        self.controls.push((ctrl, switch, latency));
    }

    /// Sets the scenario seed for the per-link loss/corruption streams.
    pub fn fault_seed(&mut self, seed: u64) {
        self.faults.seed = seed;
    }

    /// Schedules an environment fault for `at` (virtual time).
    pub fn fault_at(&mut self, at: SimTime, spec: FaultSpec) {
        self.faults.events.push((at, spec));
    }

    /// Installs the run budget the built simulation will enforce
    /// (default: unlimited).
    pub fn run_budget(&mut self, budget: RunBudget) {
        self.budget = budget;
    }

    /// Schedules a fault from its textual form (`link s1-s2 down`, …).
    ///
    /// # Panics
    ///
    /// Panics if `spec` does not parse; builder-time specs are authored
    /// by the experimenter, so a typo should fail loudly.
    pub fn fault_at_str(&mut self, at: SimTime, spec: &str) {
        let spec = FaultSpec::parse(spec).unwrap_or_else(|e| panic!("{e}"));
        self.fault_at(at, spec);
    }

    /// Validates the accumulated topology, returning the first problem.
    fn validate(&self) -> Result<(), BuildError> {
        if let Some(err) = self.deferred.first() {
            return Err(err.clone());
        }
        let mut seen: HashMap<&str, ()> = HashMap::with_capacity(self.nodes.len());
        for spec in &self.nodes {
            if seen.insert(spec.name(), ()).is_some() {
                return Err(BuildError::DuplicateName {
                    name: spec.name().to_string(),
                });
            }
            if let NodeSpec::Host { name, ip } = spec {
                if ip.parse::<Ipv4Addr>().is_err() {
                    return Err(BuildError::InvalidIp {
                        name: name.clone(),
                        ip: ip.clone(),
                    });
                }
            }
        }
        for (index, &(a, pa, b, pb, _)) in self.links.iter().enumerate() {
            for id in [a, b] {
                if id.0 >= self.nodes.len() {
                    return Err(BuildError::DanglingLink { index, id });
                }
            }
            if a == b {
                return Err(BuildError::SelfLink {
                    name: self.nodes[a.0].name().to_string(),
                });
            }
            for (id, port) in [(a, pa), (b, pb)] {
                if matches!(self.nodes[id.0], NodeSpec::Host { .. })
                    && port != crate::host::HOST_PORT
                {
                    return Err(BuildError::MultihomedHost {
                        name: self.nodes[id.0].name().to_string(),
                    });
                }
            }
        }
        for (index, &(ctrl, switch, _)) in self.controls.iter().enumerate() {
            if ctrl.0 >= self.controllers.len() {
                return Err(BuildError::DanglingController { index });
            }
            match self.nodes.get(switch.0) {
                Some(NodeSpec::Switch { .. }) => {}
                _ => {
                    return Err(BuildError::ControlOnHost {
                        name: self.name_for(switch),
                    });
                }
            }
        }
        Ok(())
    }

    /// Assembles the simulation, returning a typed error for a
    /// malformed topology. This is the generator-facing entry point:
    /// it never panics on topology mistakes.
    pub fn try_build(self) -> Result<Simulation, BuildError> {
        self.validate()?;

        let host_count = self
            .nodes
            .iter()
            .filter(|n| matches!(n, NodeSpec::Host { .. }))
            .count();
        // Topology hints for hot-map pre-sizing (capped: a MAC table
        // only learns sources whose traffic traverses the switch, so
        // reserving the full host count on every switch of a large
        // fabric would be pure waste).
        let mac_hint = host_count.min(4096);
        let capacity_hint = self.nodes.len() * 4 + self.links.len() * 2;

        let mut names = HashMap::with_capacity(self.nodes.len());
        let mut nodes: Vec<Node> = Vec::with_capacity(self.nodes.len());
        let mut dpid = 0u64;
        for (i, spec) in self.nodes.into_iter().enumerate() {
            let id = NodeId(i);
            match spec {
                NodeSpec::Host { name, ip } => {
                    names.insert(name.clone(), id);
                    // Host MACs derive from the node index; switch port
                    // MACs derive from the dpid, so they cannot collide.
                    nodes.push(Node::Host(Host::new(
                        id,
                        name,
                        MacAddr::from_low(i as u64 + 1),
                        ip.parse().expect("validated above"),
                    )));
                }
                NodeSpec::Switch {
                    name,
                    fail_mode,
                    table,
                } => {
                    dpid += 1;
                    names.insert(name.clone(), id);
                    let mut switch = Switch::new(id, name, DatapathId(dpid), fail_mode);
                    if let Some((capacity, policy)) = table {
                        switch.set_table_config(capacity, policy);
                    }
                    switch.reserve_mac_table(mac_hint);
                    nodes.push(Node::Switch(Box::new(switch)));
                }
            }
        }

        let mut links = Vec::with_capacity(self.links.len());
        let mut port_map = HashMap::with_capacity(self.links.len() * 2);
        for (a, pa, b, pb, params) in self.links {
            for (id, port) in [(a, pa), (b, pb)] {
                if let Node::Switch(s) = &mut nodes[id.0] {
                    s.add_port(port);
                }
            }
            let idx = links.len();
            links.push(Link::new(
                LinkEnd { node: a, port: pa },
                LinkEnd { node: b, port: pb },
                params.bandwidth_bps,
                params.delay,
            ));
            port_map.insert((a, pa), idx);
            port_map.insert((b, pb), idx);
        }

        let mut controllers: Vec<ControllerHost> = self
            .controllers
            .into_iter()
            .map(|(name, app)| ControllerHost::new(name, app))
            .collect();
        let mut connections = Vec::with_capacity(self.controls.len());
        for (i, (ctrl, switch, latency)) in self.controls.into_iter().enumerate() {
            if let Node::Switch(s) = &mut nodes[switch.0] {
                s.add_conn(crate::engine::ConnId(i));
            }
            controllers[ctrl.0].add_conn(crate::engine::ConnId(i));
            connections.push(Connection {
                controller: ctrl.0,
                switch,
                latency,
            });
        }

        let mut sim = Simulation::assemble(
            nodes,
            links,
            port_map,
            controllers,
            connections,
            names,
            self.scheduler,
            capacity_hint,
        );
        sim.apply_fault_plan(&self.faults);
        sim.set_run_budget(self.budget);
        Ok(sim)
    }

    /// Assembles the simulation.
    ///
    /// # Panics
    ///
    /// Panics on any [`BuildError`] — duplicate names, invalid IPs,
    /// dangling references, multihomed hosts, controls on hosts. The
    /// non-panicking form is [`NetworkBuilder::try_build`].
    pub fn build(self) -> Simulation {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attain_controllers::Floodlight;

    #[test]
    fn builds_a_minimal_network() {
        let mut b = NetworkBuilder::new();
        let h1 = b.host("h1", "10.0.0.1");
        let h2 = b.host("h2", "10.0.0.2");
        let s1 = b.switch("s1");
        b.link(h1, s1);
        b.link(h2, s1);
        let c1 = b.controller("c1", Box::new(Floodlight::new()));
        b.control(c1, s1);
        let sim = b.build();
        assert_eq!(sim.host("h1").ip(), "10.0.0.1".parse::<Ipv4Addr>().unwrap());
        assert_eq!(sim.switch("s1").dpid(), DatapathId(1));
        let infos = sim.conn_infos();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].controller, "c1");
        assert_eq!(infos[0].switch, "s1");
    }

    #[test]
    fn set_table_bounds_the_switch() {
        let mut b = NetworkBuilder::new();
        let h1 = b.host("h1", "10.0.0.1");
        let s1 = b.switch("s1");
        b.link(h1, s1);
        b.set_table(s1, 8, EvictionPolicy::EvictLru);
        let c1 = b.controller("c1", Box::new(Floodlight::new()));
        b.control(c1, s1);
        let sim = b.build();
        assert_eq!(sim.switch("s1").flow_table().capacity(), 8);
        assert_eq!(
            sim.switch("s1").flow_table().policy(),
            EvictionPolicy::EvictLru
        );
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn rejects_duplicate_names() {
        let mut b = NetworkBuilder::new();
        b.host("h1", "10.0.0.1");
        b.host("h1", "10.0.0.2");
        b.build();
    }

    #[test]
    #[should_panic(expected = "may have only one link")]
    fn rejects_multihomed_hosts() {
        let mut b = NetworkBuilder::new();
        let h1 = b.host("h1", "10.0.0.1");
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        b.link(h1, s1);
        b.link(h1, s2);
        b.build();
    }

    #[test]
    fn try_build_reports_typed_errors() {
        // Duplicate name, surfaced with the offending name.
        let mut b = NetworkBuilder::new();
        b.switch("s1");
        b.switch("s1");
        assert_eq!(
            b.try_build().err(),
            Some(BuildError::DuplicateName { name: "s1".into() })
        );

        // Invalid IP.
        let mut b = NetworkBuilder::new();
        b.host("h1", "10.0.0.256");
        match b.try_build() {
            Err(BuildError::InvalidIp { name, ip }) => {
                assert_eq!(name, "h1");
                assert_eq!(ip, "10.0.0.256");
            }
            other => panic!("expected InvalidIp, got {other:?}"),
        }

        // Dangling link endpoint.
        let mut b = NetworkBuilder::new();
        let s1 = b.switch("s1");
        b.link(s1, NodeId(17));
        assert_eq!(
            b.try_build().err(),
            Some(BuildError::DanglingLink {
                index: 0,
                id: NodeId(17)
            })
        );

        // Self link.
        let mut b = NetworkBuilder::new();
        let s1 = b.switch("s1");
        b.link(s1, s1);
        assert_eq!(
            b.try_build().err(),
            Some(BuildError::SelfLink { name: "s1".into() })
        );

        // Multihomed host.
        let mut b = NetworkBuilder::new();
        let h1 = b.host("h1", "10.0.0.1");
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        b.link(h1, s1);
        b.link(h1, s2);
        assert_eq!(
            b.try_build().err(),
            Some(BuildError::MultihomedHost { name: "h1".into() })
        );

        // set_table on a host (deferred, not a panic).
        let mut b = NetworkBuilder::new();
        let h1 = b.host("h1", "10.0.0.1");
        b.set_table(h1, 8, EvictionPolicy::Reject);
        match b.try_build() {
            Err(BuildError::NotASwitch { name, context }) => {
                assert_eq!(name, "h1");
                assert_eq!(context, "set_table");
            }
            other => panic!("expected NotASwitch, got {other:?}"),
        }

        // Control connection on a host.
        let mut b = NetworkBuilder::new();
        let h1 = b.host("h1", "10.0.0.1");
        let c1 = b.controller("c1", Box::new(Floodlight::new()));
        b.control(c1, h1);
        assert_eq!(
            b.try_build().err(),
            Some(BuildError::ControlOnHost { name: "h1".into() })
        );

        // Control referencing a controller that was never added.
        let mut b = NetworkBuilder::new();
        let s1 = b.switch("s1");
        b.control(ControllerRef(3), s1);
        assert_eq!(
            b.try_build().err(),
            Some(BuildError::DanglingController { index: 0 })
        );

        // Error messages carry the offending name.
        let err = BuildError::DuplicateName {
            name: "e3_1".into(),
        };
        assert!(err.to_string().contains("e3_1"));
    }

    #[test]
    fn switch_ports_number_in_link_order() {
        let mut b = NetworkBuilder::new();
        let h1 = b.host("h1", "10.0.0.1");
        let h2 = b.host("h2", "10.0.0.2");
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        // Figure 3's shape: h1,h2 on s1 (ports 1,2); s1-s2 (s1 port 3).
        let (p1, q1) = b.link(h1, s1);
        b.link(h2, s1);
        let (p3, p4) = b.link(s1, s2);
        assert_eq!((p1, q1), (PortNo(1), PortNo(1)));
        assert_eq!((p3, p4), (PortNo(3), PortNo(1)));
        let sim = b.build();
        assert!(sim.port_map.contains_key(&(s1, PortNo(3))));
        assert!(sim.port_map.contains_key(&(s2, PortNo(1))));
        assert!(!sim.port_map.contains_key(&(s2, PortNo(2))));
    }
}
