//! Topology construction.

use crate::budget::RunBudget;
use crate::controller_host::ControllerHost;
use crate::engine::NodeId;
use crate::fault::{FaultPlan, FaultSpec};
use crate::host::Host;
use crate::link::{Link, LinkEnd};
use crate::sim::{Connection, Node, Simulation};
use crate::switch::{EvictionPolicy, FailMode, Switch};
use crate::time::SimTime;
use attain_controllers::Controller;
use attain_openflow::{DatapathId, MacAddr, PortNo};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Reference to a controller added to a [`NetworkBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerRef(pub usize);

/// Physical characteristics of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkParams {
    /// Bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub delay: SimTime,
}

impl Default for LinkParams {
    /// The paper's testbed links: 100 Mb/s, with a quarter-millisecond
    /// of propagation/stack delay.
    fn default() -> Self {
        LinkParams {
            bandwidth_bps: 100_000_000,
            delay: SimTime::from_micros(250),
        }
    }
}

enum NodeSpec {
    Host {
        name: String,
        ip: Ipv4Addr,
    },
    Switch {
        name: String,
        fail_mode: FailMode,
        /// `(capacity, policy)` flow-table bound; `None` keeps the
        /// default (1024 entries, reject-on-full).
        table: Option<(usize, EvictionPolicy)>,
    },
}

/// Builds a [`Simulation`] from hosts, switches, links, controllers, and
/// control-plane connections — the system model `(C, S, H, N_D, N_C)` of
/// the paper's §IV-A, in executable form.
#[derive(Default)]
pub struct NetworkBuilder {
    nodes: Vec<NodeSpec>,
    links: Vec<(NodeId, NodeId, LinkParams)>,
    controllers: Vec<(String, Box<dyn Controller>)>,
    controls: Vec<(ControllerRef, NodeId, SimTime)>,
    faults: FaultPlan,
    budget: RunBudget,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> NetworkBuilder {
        NetworkBuilder::default()
    }

    /// Adds an end host with the given IPv4 address.
    ///
    /// # Panics
    ///
    /// Panics if `ip` does not parse or `name` is duplicated.
    pub fn host(&mut self, name: &str, ip: &str) -> NodeId {
        self.assert_fresh(name);
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeSpec::Host {
            name: name.to_string(),
            ip: ip.parse().unwrap_or_else(|_| panic!("invalid ip {ip}")),
        });
        id
    }

    /// Adds a switch with the default fail mode (`secure`, OVS's
    /// OpenFlow-era default).
    pub fn switch(&mut self, name: &str) -> NodeId {
        self.switch_with_mode(name, FailMode::Secure)
    }

    /// Adds a switch with an explicit fail mode.
    ///
    /// # Panics
    ///
    /// Panics if `name` is duplicated.
    pub fn switch_with_mode(&mut self, name: &str, fail_mode: FailMode) -> NodeId {
        self.assert_fresh(name);
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeSpec::Switch {
            name: name.to_string(),
            fail_mode,
            table: None,
        });
        id
    }

    /// Changes a switch's fail mode (before `build`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a switch.
    pub fn set_fail_mode(&mut self, id: NodeId, mode: FailMode) {
        match &mut self.nodes[id.0] {
            NodeSpec::Switch { fail_mode, .. } => *fail_mode = mode,
            NodeSpec::Host { name, .. } => panic!("{name} is a host"),
        }
    }

    /// Bounds a switch's flow table (before `build`): `capacity` entries
    /// plus the overflow policy applied once it fills.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a switch.
    pub fn set_table(&mut self, id: NodeId, capacity: usize, policy: EvictionPolicy) {
        match &mut self.nodes[id.0] {
            NodeSpec::Switch { table, .. } => *table = Some((capacity, policy)),
            NodeSpec::Host { name, .. } => panic!("{name} is a host"),
        }
    }

    /// Connects two nodes with a default link. Port numbers are assigned
    /// in link-creation order, matching the paper's `p_{i,j}` figures.
    pub fn link(&mut self, a: NodeId, b: NodeId) {
        self.link_with(a, b, LinkParams::default());
    }

    /// Connects two nodes with explicit link parameters.
    pub fn link_with(&mut self, a: NodeId, b: NodeId, params: LinkParams) {
        self.links.push((a, b, params));
    }

    /// Adds a controller hosting `app`.
    pub fn controller(&mut self, name: &str, app: Box<dyn Controller>) -> ControllerRef {
        let r = ControllerRef(self.controllers.len());
        self.controllers.push((name.to_string(), app));
        r
    }

    /// Adds a control-plane connection `(controller, switch)` to `N_C`
    /// with 1 ms one-way latency.
    pub fn control(&mut self, ctrl: ControllerRef, switch: NodeId) {
        self.control_with_latency(ctrl, switch, SimTime::from_millis(1));
    }

    /// Adds a control-plane connection with explicit one-way latency.
    pub fn control_with_latency(&mut self, ctrl: ControllerRef, switch: NodeId, latency: SimTime) {
        self.controls.push((ctrl, switch, latency));
    }

    /// Sets the scenario seed for the per-link loss/corruption streams.
    pub fn fault_seed(&mut self, seed: u64) {
        self.faults.seed = seed;
    }

    /// Schedules an environment fault for `at` (virtual time).
    pub fn fault_at(&mut self, at: SimTime, spec: FaultSpec) {
        self.faults.events.push((at, spec));
    }

    /// Installs the run budget the built simulation will enforce
    /// (default: unlimited).
    pub fn run_budget(&mut self, budget: RunBudget) {
        self.budget = budget;
    }

    /// Schedules a fault from its textual form (`link s1-s2 down`, …).
    ///
    /// # Panics
    ///
    /// Panics if `spec` does not parse; builder-time specs are authored
    /// by the experimenter, so a typo should fail loudly.
    pub fn fault_at_str(&mut self, at: SimTime, spec: &str) {
        let spec = FaultSpec::parse(spec).unwrap_or_else(|e| panic!("{e}"));
        self.fault_at(at, spec);
    }

    fn assert_fresh(&self, name: &str) {
        let dup = self.nodes.iter().any(|n| match n {
            NodeSpec::Host { name: n, .. } | NodeSpec::Switch { name: n, .. } => n == name,
        });
        assert!(!dup, "duplicate node name {name}");
    }

    /// Assembles the simulation.
    ///
    /// # Panics
    ///
    /// Panics if a host is linked more than once, a control connection
    /// names a host, or a link references an unknown node.
    pub fn build(self) -> Simulation {
        let mut names = HashMap::new();
        let mut nodes: Vec<Node> = Vec::with_capacity(self.nodes.len());
        let mut dpid = 0u64;
        for (i, spec) in self.nodes.into_iter().enumerate() {
            let id = NodeId(i);
            match spec {
                NodeSpec::Host { name, ip } => {
                    names.insert(name.clone(), id);
                    // Host MACs derive from the node index; switch port
                    // MACs derive from the dpid, so they cannot collide.
                    nodes.push(Node::Host(Host::new(
                        id,
                        name,
                        MacAddr::from_low(i as u64 + 1),
                        ip,
                    )));
                }
                NodeSpec::Switch {
                    name,
                    fail_mode,
                    table,
                } => {
                    dpid += 1;
                    names.insert(name.clone(), id);
                    let mut switch = Switch::new(id, name, DatapathId(dpid), fail_mode);
                    if let Some((capacity, policy)) = table {
                        switch.set_table_config(capacity, policy);
                    }
                    nodes.push(Node::Switch(Box::new(switch)));
                }
            }
        }

        let mut next_port: Vec<u16> = vec![0; nodes.len()];
        let mut links = Vec::new();
        let mut port_map = HashMap::new();
        for (a, b, params) in self.links {
            let mut attach = |nodes: &mut Vec<Node>, id: NodeId| -> PortNo {
                next_port[id.0] += 1;
                let port = PortNo(next_port[id.0]);
                match &mut nodes[id.0] {
                    Node::Switch(s) => s.add_port(port),
                    Node::Host(h) => {
                        assert!(
                            port == crate::host::HOST_PORT,
                            "host {} may have only one link",
                            h.name()
                        );
                    }
                }
                port
            };
            let pa = attach(&mut nodes, a);
            let pb = attach(&mut nodes, b);
            let idx = links.len();
            links.push(Link::new(
                LinkEnd { node: a, port: pa },
                LinkEnd { node: b, port: pb },
                params.bandwidth_bps,
                params.delay,
            ));
            port_map.insert((a, pa), idx);
            port_map.insert((b, pb), idx);
        }

        let mut controllers: Vec<ControllerHost> = self
            .controllers
            .into_iter()
            .map(|(name, app)| ControllerHost::new(name, app))
            .collect();
        let mut connections = Vec::new();
        for (i, (ctrl, switch, latency)) in self.controls.into_iter().enumerate() {
            match &mut nodes[switch.0] {
                Node::Switch(s) => s.add_conn(crate::engine::ConnId(i)),
                Node::Host(h) => panic!(
                    "{} is a host; control connections attach to switches",
                    h.name()
                ),
            }
            controllers[ctrl.0].add_conn(crate::engine::ConnId(i));
            connections.push(Connection {
                controller: ctrl.0,
                switch,
                latency,
            });
        }

        let mut sim = Simulation::assemble(nodes, links, port_map, controllers, connections, names);
        sim.apply_fault_plan(&self.faults);
        sim.set_run_budget(self.budget);
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attain_controllers::Floodlight;

    #[test]
    fn builds_a_minimal_network() {
        let mut b = NetworkBuilder::new();
        let h1 = b.host("h1", "10.0.0.1");
        let h2 = b.host("h2", "10.0.0.2");
        let s1 = b.switch("s1");
        b.link(h1, s1);
        b.link(h2, s1);
        let c1 = b.controller("c1", Box::new(Floodlight::new()));
        b.control(c1, s1);
        let sim = b.build();
        assert_eq!(sim.host("h1").ip(), "10.0.0.1".parse::<Ipv4Addr>().unwrap());
        assert_eq!(sim.switch("s1").dpid(), DatapathId(1));
        let infos = sim.conn_infos();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].controller, "c1");
        assert_eq!(infos[0].switch, "s1");
    }

    #[test]
    fn set_table_bounds_the_switch() {
        let mut b = NetworkBuilder::new();
        let h1 = b.host("h1", "10.0.0.1");
        let s1 = b.switch("s1");
        b.link(h1, s1);
        b.set_table(s1, 8, EvictionPolicy::EvictLru);
        let c1 = b.controller("c1", Box::new(Floodlight::new()));
        b.control(c1, s1);
        let sim = b.build();
        assert_eq!(sim.switch("s1").flow_table().capacity(), 8);
        assert_eq!(
            sim.switch("s1").flow_table().policy(),
            EvictionPolicy::EvictLru
        );
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn rejects_duplicate_names() {
        let mut b = NetworkBuilder::new();
        b.host("h1", "10.0.0.1");
        b.host("h1", "10.0.0.2");
    }

    #[test]
    #[should_panic(expected = "may have only one link")]
    fn rejects_multihomed_hosts() {
        let mut b = NetworkBuilder::new();
        let h1 = b.host("h1", "10.0.0.1");
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        b.link(h1, s1);
        b.link(h1, s2);
        b.build();
    }

    #[test]
    fn switch_ports_number_in_link_order() {
        let mut b = NetworkBuilder::new();
        let h1 = b.host("h1", "10.0.0.1");
        let h2 = b.host("h2", "10.0.0.2");
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        // Figure 3's shape: h1,h2 on s1 (ports 1,2); s1-s2 (s1 port 3).
        b.link(h1, s1);
        b.link(h2, s1);
        b.link(s1, s2);
        let sim = b.build();
        assert!(sim.port_map.contains_key(&(s1, PortNo(3))));
        assert!(sim.port_map.contains_key(&(s2, PortNo(1))));
        assert!(!sim.port_map.contains_key(&(s2, PortNo(2))));
    }
}
