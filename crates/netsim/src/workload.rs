//! Traffic-matrix workload generators.
//!
//! ROADMAP item 1 models "millions of users" as aggregate flow churn: a
//! [`TrafficMatrix`] turns a generated [`Topology`](crate::topo::Topology)
//! into many concurrent ping or iperf flows whose endpoints follow a
//! pattern (uniform, hotspot, permutation) and whose start times follow
//! a seeded heavy-tailed inter-arrival process. Everything is scheduled
//! as ordinary [`HostCommand`]s through the normal event queue, so
//! same-seed runs are byte-identical — the workload is data, not code.
//!
//! Determinism notes: endpoint and gap sampling use the integer-only
//! [`DetRng`] (xorshift64*), and the heavy-tail transform is pure u64
//! arithmetic — no floating point — so a seed produces the same
//! schedule on every platform. ARP pairs are primed at apply time
//! (static ARP), because warming a 100k-flow fabric through broadcast
//! ARP would melt it before the experiment starts.

use crate::command::HostCommand;
use crate::fault::DetRng;
use crate::sim::Simulation;
use crate::time::SimTime;
use crate::topo::Topology;
use std::collections::BTreeSet;

/// How flow endpoints are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Source and destination drawn uniformly (src ≠ dst).
    Uniform,
    /// A fixed seeded permutation: flow `i` runs `host[i % n] →
    /// perm[i % n]` (every host talks to exactly one peer — the classic
    /// worst case for single-path load balance).
    Permutation,
    /// Most traffic concentrates on a few destinations.
    Hotspot {
        /// Number of hot destination hosts (clamped to the host count).
        hotspots: usize,
        /// Percent of flows that target a hotspot (0..=100).
        bias_pct: u8,
    },
}

/// What each flow runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// Short ping trains: `count` echoes at `interval`.
    Ping {
        /// Echo trials per flow.
        count: u32,
        /// Interval between trials.
        interval: SimTime,
    },
    /// Iperf bulk transfers of `duration` each (a server is started
    /// once per destination host, on port 5001).
    Iperf {
        /// Transfer duration.
        duration: SimTime,
    },
}

/// A seeded synthetic workload over a generated topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficMatrix {
    /// Endpoint selection pattern.
    pub pattern: TrafficPattern,
    /// Total flows to schedule.
    pub flows: usize,
    /// RNG seed (endpoints, gaps, permutation shuffle).
    pub seed: u64,
    /// When the first flow starts.
    pub start: SimTime,
    /// Mean inter-arrival gap between consecutive flow starts.
    pub mean_gap: SimTime,
    /// What each flow runs.
    pub kind: FlowKind,
}

impl TrafficMatrix {
    /// A ping-based matrix with sensible defaults: uniform pattern,
    /// 3-echo pings at 100 ms, starting at t=1s, 1 ms mean gap.
    pub fn new(flows: usize, seed: u64) -> TrafficMatrix {
        TrafficMatrix {
            pattern: TrafficPattern::Uniform,
            flows,
            seed,
            start: SimTime::from_secs(1),
            mean_gap: SimTime::from_millis(1),
            kind: FlowKind::Ping {
                count: 3,
                interval: SimTime::from_millis(100),
            },
        }
    }

    /// Same matrix, different pattern.
    pub fn with_pattern(mut self, pattern: TrafficPattern) -> TrafficMatrix {
        self.pattern = pattern;
        self
    }

    /// Same matrix, different per-flow workload.
    pub fn with_kind(mut self, kind: FlowKind) -> TrafficMatrix {
        self.kind = kind;
        self
    }

    /// Schedules the matrix onto `sim`: picks endpoints, primes ARP for
    /// every `(src, dst)` pair used, starts iperf servers where needed,
    /// and schedules one command per flow at heavy-tailed arrival times.
    pub fn apply(&self, sim: &mut Simulation, topo: &Topology) -> WorkloadStats {
        let hosts = &topo.hosts;
        assert!(
            hosts.len() >= 2,
            "traffic matrix needs at least two hosts, topology has {}",
            hosts.len()
        );
        let n = hosts.len();
        let mut rng = DetRng::new(self.seed);

        // Pattern state, derived up front so endpoint draws are a pure
        // function of (seed, n, flows).
        let perm = match self.pattern {
            TrafficPattern::Permutation => {
                let mut p: Vec<usize> = (0..n).collect();
                // Seeded Fisher–Yates; derangement enforced per-draw.
                for i in (1..n).rev() {
                    let j = rng.below(i as u64 + 1) as usize;
                    p.swap(i, j);
                }
                p
            }
            _ => Vec::new(),
        };
        let hot: Vec<usize> = match self.pattern {
            TrafficPattern::Hotspot { hotspots, .. } => {
                let count = hotspots.clamp(1, n);
                // Spread hotspots deterministically across the fabric.
                (0..count).map(|i| i * n / count).collect()
            }
            _ => Vec::new(),
        };

        let mut primed: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut servers: BTreeSet<usize> = BTreeSet::new();
        let mut at = self.start;
        let mut last_start = at;
        for i in 0..self.flows {
            let (src, dst) = match self.pattern {
                TrafficPattern::Uniform => {
                    let src = rng.below(n as u64) as usize;
                    let mut dst = rng.below(n as u64 - 1) as usize;
                    if dst >= src {
                        dst += 1;
                    }
                    (src, dst)
                }
                TrafficPattern::Permutation => {
                    let src = i % n;
                    let dst = perm[src];
                    if dst == src {
                        (src, (src + 1) % n)
                    } else {
                        (src, dst)
                    }
                }
                TrafficPattern::Hotspot { bias_pct, .. } => {
                    let src = rng.below(n as u64) as usize;
                    let dst = if rng.chance(bias_pct) {
                        hot[rng.below(hot.len() as u64) as usize]
                    } else {
                        rng.below(n as u64) as usize
                    };
                    if dst == src {
                        (src, (src + 1) % n)
                    } else {
                        (src, dst)
                    }
                }
            };

            if primed.insert((src, dst)) {
                sim.prime_arp(hosts[src].id, hosts[dst].id);
            }
            match self.kind {
                FlowKind::Ping { count, interval } => {
                    sim.schedule_command(
                        at,
                        HostCommand::Ping {
                            host: hosts[src].id,
                            dst: hosts[dst].ip,
                            count,
                            interval,
                            label: format!("tm{i}"),
                        },
                    );
                }
                FlowKind::Iperf { duration } => {
                    if servers.insert(dst) {
                        // The server must exist before the first SYN.
                        sim.schedule_command(
                            self.start,
                            HostCommand::IperfServer {
                                host: hosts[dst].id,
                                port: 5001,
                            },
                        );
                    }
                    sim.schedule_command(
                        at,
                        HostCommand::IperfClient {
                            host: hosts[src].id,
                            dst: hosts[dst].ip,
                            port: 5001,
                            duration,
                            label: format!("tm{i}"),
                        },
                    );
                }
            }
            last_start = at;
            at += heavy_tailed_gap(&mut rng, self.mean_gap);
        }

        WorkloadStats {
            flows: self.flows,
            pairs: primed.len(),
            last_start,
        }
    }
}

/// A heavy-tailed inter-arrival gap with mean ≈ `mean_gap`.
///
/// Pure integer arithmetic: draw `u` uniform in `1..=2^32`, take `w =
/// min(2^32 / u, 64)` — a truncated Pareto(α=1) tail with
/// `E[w] = 64·P(u ≤ 2^26) + E[⌊2^32/u⌋ · 1(u > 2^26)] ≈ 1 + ln 64 − ½
/// ≈ 4.8` — and scale so the expectation lands near `mean_gap`. Most
/// gaps are well under the mean; a few are ~13× longer — flow arrivals
/// burst, like real datacenter traffic, while staying bit-reproducible
/// across platforms (no floats).
fn heavy_tailed_gap(rng: &mut DetRng, mean_gap: SimTime) -> SimTime {
    const CAP: u64 = 64;
    // E[min(2^32/u, CAP)] for u uniform on 1..=2^32, rounded.
    const EXPECTED_W: u64 = 5;
    let u = (rng.next_u64() >> 32) + 1; // 1..=2^32
    let w = ((1u64 << 32) / u).min(CAP);
    SimTime(mean_gap.0.saturating_mul(w) / EXPECTED_W)
}

/// What [`TrafficMatrix::apply`] scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Flows scheduled.
    pub flows: usize,
    /// Distinct `(src, dst)` pairs used (ARP primed for each).
    pub pairs: usize,
    /// Virtual start time of the last flow.
    pub last_start: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::{fat_tree, FatTreeParams};
    use crate::NetworkBuilder;

    fn small_fabric() -> (Simulation, crate::topo::Topology) {
        let mut b = NetworkBuilder::new();
        let t = fat_tree(&mut b, &FatTreeParams::new(4)).unwrap();
        let mut sim = b.build();
        crate::topo::install_fat_tree_routes(&mut sim, &t);
        (sim, t)
    }

    #[test]
    fn uniform_matrix_delivers_pings() {
        let (mut sim, t) = small_fabric();
        let stats = TrafficMatrix::new(32, 7).apply(&mut sim, &t);
        assert_eq!(stats.flows, 32);
        assert!(stats.pairs > 1 && stats.pairs <= 32);
        sim.run_until(SimTime::from_secs(10));
        let pings = sim.ping_stats();
        assert_eq!(pings.len(), 32);
        let delivered: u32 = pings.iter().map(|p| p.received()).sum();
        let sent: u32 = pings.iter().map(|p| p.transmitted()).sum();
        assert_eq!(sent, 96);
        // Routed fabric, no faults: nothing may be lost.
        assert_eq!(delivered, sent);
    }

    #[test]
    fn permutation_is_a_derangement_and_iperf_moves_bytes() {
        let (mut sim, t) = small_fabric();
        let m = TrafficMatrix::new(16, 3)
            .with_pattern(TrafficPattern::Permutation)
            .with_kind(FlowKind::Iperf {
                duration: SimTime::from_secs(1),
            });
        m.apply(&mut sim, &t);
        sim.run_until(SimTime::from_secs(12));
        let iperf = sim.iperf_stats();
        assert_eq!(iperf.len(), 16);
        for s in &iperf {
            assert!(s.bytes > 0, "{}: no bytes", s.label);
        }
    }

    #[test]
    fn hotspot_bias_concentrates_destinations() {
        let (mut sim, t) = small_fabric();
        let m = TrafficMatrix::new(200, 11).with_pattern(TrafficPattern::Hotspot {
            hotspots: 2,
            bias_pct: 90,
        });
        let stats = m.apply(&mut sim, &t);
        // 16 hosts, 200 flows, 90% into 2 destinations: far fewer
        // distinct pairs than uniform would produce.
        assert!(
            stats.pairs < 100,
            "expected concentrated pairs, got {}",
            stats.pairs
        );
    }

    #[test]
    fn same_seed_schedules_identically_and_seeds_differ() {
        // A routed fabric with no controller records no control-plane
        // trace, so fingerprint the data plane: who pinged whom, when
        // each flow's echoes landed.
        let run = |seed: u64| {
            let (mut sim, t) = small_fabric();
            TrafficMatrix::new(64, seed).apply(&mut sim, &t);
            sim.run_until(SimTime::from_secs(10));
            sim.ping_stats()
                .iter()
                .map(|p| format!("{} {} {} {:?}", p.label, p.dst, p.received(), p.rtts_ms()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn gaps_are_heavy_tailed_with_bounded_mean() {
        let mut rng = DetRng::new(9);
        let mean = SimTime::from_millis(1);
        let n = 10_000u64;
        let mut total = 0u64;
        let mut max = 0u64;
        for _ in 0..n {
            let g = heavy_tailed_gap(&mut rng, mean);
            total += g.0;
            max = max.max(g.0);
        }
        let avg = total / n;
        // Mean lands near the nominal gap (within 2x either way)…
        assert!(avg > mean.0 / 2 && avg < mean.0 * 2, "avg {avg}");
        // …while the tail reaches ~3x the mean.
        assert!(max >= mean.0 * 3, "max {max}");
    }
}
