//! Deterministic environment-fault injection.
//!
//! ATTAIN descends from classic fault injection (paper §II): its attacks
//! are *intentional* faults delivered through the control-plane proxy.
//! This module adds the complementary *environmental* faults — link
//! failures, loss/corruption, process crash/restart — so experiments can
//! compose both and measure graceful degradation (fail-secure lockdown,
//! standalone fallback, post-restart reconvergence).
//!
//! Every fault is a virtual-time event: a [`FaultSpec`] applied at a
//! scheduled instant. Randomized faults (per-frame loss and corruption)
//! draw from a per-link [xorshift64*](DetRng) stream derived from a
//! single scenario seed, so a run is a pure function of (topology,
//! schedule, seed): identical seeds yield byte-identical traces, which
//! `scripts/check.sh` enforces.
//!
//! Faults are schedulable three ways:
//!
//! * programmatically — [`NetworkBuilder::fault_at`](crate::NetworkBuilder::fault_at)
//!   or [`Simulation::schedule_fault`](crate::Simulation::schedule_fault);
//! * from the workload schedule — `HostCommand::parse` accepts
//!   `fault link s1-s2 down` style command lines;
//! * from the attack language — the DSL's `fault("…")` action routes
//!   through the injector to the same [`FaultSpec`] grammar.

use crate::time::SimTime;
use std::fmt;

/// Deterministic xorshift64* pseudo-random stream.
///
/// Small, fast, and — crucially — *ours*: fault randomness must never
/// depend on an external crate's generator whose sequence could change
/// under us, because trace determinism across builds is a tested
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a stream from `seed`, decorrelating nearby seeds with a
    /// splitmix64 scramble so per-link streams (seed ⊕ link index) do
    /// not march in lockstep.
    pub fn new(seed: u64) -> DetRng {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        DetRng {
            // xorshift has a zero fixed point; avoid it.
            state: if z == 0 { 0x4d59_5df4_d0f3_3173 } else { z },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// `true` with probability `pct`/100.
    pub fn chance(&mut self, pct: u8) -> bool {
        if pct == 0 {
            return false;
        }
        if pct >= 100 {
            return true;
        }
        (self.next_u64() % 100) < pct as u64
    }

    /// A value in `0..bound` (`0` when `bound` is `0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// What a fault acts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTarget {
    /// The link between two named nodes (order-insensitive).
    Link {
        /// One endpoint's node name.
        a: String,
        /// The other endpoint's node name.
        b: String,
    },
    /// A named controller process.
    Controller(String),
    /// A named switch.
    Switch(String),
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTarget::Link { a, b } => write!(f, "link {a}-{b}"),
            FaultTarget::Controller(c) => write!(f, "controller {c}"),
            FaultTarget::Switch(s) => write!(f, "switch {s}"),
        }
    }
}

/// The fault to apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Sever the link: frames in flight and frames offered while down
    /// are dropped.
    LinkDown,
    /// Restore a severed link.
    LinkUp,
    /// `count` down/up cycles: down for `down`, then up for `up`.
    LinkFlap {
        /// Number of down/up cycles.
        count: u32,
        /// How long each down phase lasts.
        down: SimTime,
        /// How long each up phase lasts (before the next cycle).
        up: SimTime,
    },
    /// Override bandwidth and/or propagation delay.
    LinkDegrade {
        /// New bandwidth in bits per second (`None` keeps the current).
        bandwidth_bps: Option<u64>,
        /// New one-way delay (`None` keeps the current).
        delay: Option<SimTime>,
    },
    /// Restore nominal bandwidth/delay and clear loss/corruption rates.
    LinkRestore,
    /// Drop each traversing frame with probability `pct`%.
    PacketLoss {
        /// Loss probability in percent (0–100).
        pct: u8,
    },
    /// Flip bits in each traversing frame with probability `pct`%.
    PacketCorrupt {
        /// Corruption probability in percent (0–100).
        pct: u8,
    },
    /// Kill the controller process: connections drop, app state is lost.
    ControllerCrash,
    /// Restart a crashed controller with pristine app + handshake state.
    ControllerRestart,
    /// Power-cycle the switch: flow table wiped (no `FLOW_REMOVED`),
    /// buffers and counters cleared, handshake replayed from scratch.
    /// The fail mode governs forwarding until reconnection completes.
    SwitchRestart,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::LinkDown => write!(f, "down"),
            FaultKind::LinkUp => write!(f, "up"),
            FaultKind::LinkFlap { count, down, up } => {
                write!(
                    f,
                    "flap {count} {} {}",
                    down.as_secs_f64(),
                    up.as_secs_f64()
                )
            }
            FaultKind::LinkDegrade {
                bandwidth_bps,
                delay,
            } => {
                write!(f, "degrade")?;
                if let Some(bw) = bandwidth_bps {
                    write!(f, " bw {bw}")?;
                }
                if let Some(d) = delay {
                    write!(f, " delay {}", d.as_secs_f64())?;
                }
                Ok(())
            }
            FaultKind::LinkRestore => write!(f, "restore"),
            FaultKind::PacketLoss { pct } => write!(f, "loss {pct}"),
            FaultKind::PacketCorrupt { pct } => write!(f, "corrupt {pct}"),
            FaultKind::ControllerCrash => write!(f, "crash"),
            FaultKind::ControllerRestart => write!(f, "restart"),
            FaultKind::SwitchRestart => write!(f, "restart"),
        }
    }
}

/// One fault: a target and what happens to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// What the fault acts on.
    pub target: FaultTarget,
    /// The fault to apply.
    pub kind: FaultKind,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault {} {}", self.target, self.kind)
    }
}

/// Error parsing a fault specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultError(String);

impl fmt::Display for ParseFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.0)
    }
}

impl std::error::Error for ParseFaultError {}

fn parse_secs(s: &str, orig: &str) -> Result<SimTime, ParseFaultError> {
    let secs: f64 = s.parse().map_err(|_| ParseFaultError(orig.to_string()))?;
    if !(secs.is_finite() && secs >= 0.0) {
        return Err(ParseFaultError(orig.to_string()));
    }
    Ok(SimTime::from_secs_f64(secs))
}

fn parse_pct(s: &str, orig: &str) -> Result<u8, ParseFaultError> {
    let pct: u8 = s.parse().map_err(|_| ParseFaultError(orig.to_string()))?;
    if pct > 100 {
        return Err(ParseFaultError(orig.to_string()));
    }
    Ok(pct)
}

impl FaultSpec {
    /// Parses the textual grammar (without the leading `fault` keyword):
    ///
    /// * `link A-B down` / `link A-B up`
    /// * `link A-B flap COUNT DOWN_SECS UP_SECS`
    /// * `link A-B degrade [bw BPS] [delay SECS]`
    /// * `link A-B loss PCT` / `link A-B corrupt PCT` (0–100)
    /// * `link A-B restore`
    /// * `controller NAME crash` / `controller NAME restart`
    /// * `switch NAME restart`
    ///
    /// # Errors
    ///
    /// Returns [`ParseFaultError`] for anything else.
    pub fn parse(spec: &str) -> Result<FaultSpec, ParseFaultError> {
        let err = || ParseFaultError(spec.to_string());
        let tokens: Vec<&str> = spec.split_whitespace().collect();
        match tokens.as_slice() {
            ["link", ends, rest @ ..] if !rest.is_empty() => {
                let (a, b) = ends.split_once('-').ok_or_else(err)?;
                if a.is_empty() || b.is_empty() {
                    return Err(err());
                }
                let target = FaultTarget::Link {
                    a: a.to_string(),
                    b: b.to_string(),
                };
                let kind = match rest {
                    ["down"] => FaultKind::LinkDown,
                    ["up"] => FaultKind::LinkUp,
                    ["restore"] => FaultKind::LinkRestore,
                    ["flap", count, down, up] => FaultKind::LinkFlap {
                        count: count.parse().map_err(|_| err())?,
                        down: parse_secs(down, spec)?,
                        up: parse_secs(up, spec)?,
                    },
                    ["loss", pct] => FaultKind::PacketLoss {
                        pct: parse_pct(pct, spec)?,
                    },
                    ["corrupt", pct] => FaultKind::PacketCorrupt {
                        pct: parse_pct(pct, spec)?,
                    },
                    ["degrade", opts @ ..] if !opts.is_empty() => {
                        let mut bandwidth_bps = None;
                        let mut delay = None;
                        let mut i = 0;
                        while i < opts.len() {
                            match opts[i] {
                                "bw" => {
                                    bandwidth_bps = Some(
                                        opts.get(i + 1)
                                            .ok_or_else(err)?
                                            .parse::<u64>()
                                            .ok()
                                            .filter(|&b| b > 0)
                                            .ok_or_else(err)?,
                                    );
                                    i += 2;
                                }
                                "delay" => {
                                    delay =
                                        Some(parse_secs(opts.get(i + 1).ok_or_else(err)?, spec)?);
                                    i += 2;
                                }
                                _ => return Err(err()),
                            }
                        }
                        FaultKind::LinkDegrade {
                            bandwidth_bps,
                            delay,
                        }
                    }
                    _ => return Err(err()),
                };
                Ok(FaultSpec { target, kind })
            }
            ["controller", name, "crash"] => Ok(FaultSpec {
                target: FaultTarget::Controller(name.to_string()),
                kind: FaultKind::ControllerCrash,
            }),
            ["controller", name, "restart"] => Ok(FaultSpec {
                target: FaultTarget::Controller(name.to_string()),
                kind: FaultKind::ControllerRestart,
            }),
            ["switch", name, "restart"] => Ok(FaultSpec {
                target: FaultTarget::Switch(name.to_string()),
                kind: FaultKind::SwitchRestart,
            }),
            _ => Err(err()),
        }
    }
}

/// A schedule of faults plus the scenario seed for randomized ones.
///
/// Built up front and handed to
/// [`NetworkBuilder`](crate::NetworkBuilder) or applied to a built
/// [`Simulation`](crate::Simulation) via
/// [`apply_fault_plan`](crate::Simulation::apply_fault_plan).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Scenario seed for per-link loss/corruption streams.
    pub seed: u64,
    /// Scheduled faults, in any order (the event queue sorts them).
    pub events: Vec<(SimTime, FaultSpec)>,
}

impl FaultPlan {
    /// Creates an empty plan with the given scenario seed.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Schedules `spec` at absolute virtual time `at`.
    pub fn at(&mut self, at: SimTime, spec: FaultSpec) -> &mut Self {
        self.events.push((at, spec));
        self
    }

    /// Schedules a textual spec (the [`FaultSpec::parse`] grammar) at
    /// `at`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseFaultError`] if `spec` does not parse.
    pub fn at_str(&mut self, at: SimTime, spec: &str) -> Result<&mut Self, ParseFaultError> {
        let spec = FaultSpec::parse(spec)?;
        Ok(self.at(at, spec))
    }
}

/// Per-link transmission and fault counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkStats {
    /// One endpoint's node name.
    pub a: String,
    /// The other endpoint's node name.
    pub b: String,
    /// Frames accepted for transmission (both directions).
    pub tx: u64,
    /// Frames dropped by queue overflow (drop-tail, both directions).
    pub queue_drops: u64,
    /// Frames dropped because the link was down.
    pub down_drops: u64,
    /// Frames dropped by the seeded loss process.
    pub lost: u64,
    /// Frames bit-flipped by the seeded corruption process.
    pub corrupted: u64,
    /// Up→down transitions so far.
    pub down_events: u64,
    /// Whether the link is currently up.
    pub up: bool,
}

impl fmt::Display for LinkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-{}: tx {} qdrop {} down-drop {} lost {} corrupt {} down-events {}{}",
            self.a,
            self.b,
            self.tx,
            self.queue_drops,
            self.down_drops,
            self.lost,
            self.corrupted,
            self.down_events,
            if self.up { "" } else { " [DOWN]" },
        )
    }
}

/// Per-controller fault counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControllerFaultStats {
    /// Controller name.
    pub name: String,
    /// Crash faults applied.
    pub crashes: u64,
    /// Restart faults applied.
    pub restarts: u64,
    /// Whether the process is currently alive.
    pub alive: bool,
}

/// Per-switch fault counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchFaultStats {
    /// Switch name.
    pub name: String,
    /// Restart faults applied.
    pub restarts: u64,
    /// Packets dropped in fail-secure lockdown.
    pub secure_drops: u64,
    /// Packets forwarded by standalone learning while disconnected.
    pub standalone_forwards: u64,
}

/// Aggregate fault/drop/corruption accounting for one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Per-link counters, in link-creation order.
    pub links: Vec<LinkStats>,
    /// Per-controller counters, in controller order.
    pub controllers: Vec<ControllerFaultStats>,
    /// Per-switch counters, in node order.
    pub switches: Vec<SwitchFaultStats>,
}

impl FaultReport {
    /// Total frames lost to link faults (down drops + seeded loss).
    pub fn frames_lost(&self) -> u64 {
        self.links.iter().map(|l| l.down_drops + l.lost).sum()
    }

    /// Total frames corrupted by link faults.
    pub fn frames_corrupted(&self) -> u64 {
        self.links.iter().map(|l| l.corrupted).sum()
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "links:")?;
        for l in &self.links {
            writeln!(f, "  {l}")?;
        }
        writeln!(f, "controllers:")?;
        for c in &self.controllers {
            writeln!(
                f,
                "  {}: crashes {} restarts {}{}",
                c.name,
                c.crashes,
                c.restarts,
                if c.alive { "" } else { " [DOWN]" },
            )?;
        }
        writeln!(f, "switches:")?;
        for s in &self.switches {
            writeln!(
                f,
                "  {}: restarts {} secure-drops {} standalone-forwards {}",
                s.name, s.restarts, s.secure_drops, s.standalone_forwards,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        let mut c = DetRng::new(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn rng_zero_seed_works() {
        let mut r = DetRng::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn chance_boundaries() {
        let mut r = DetRng::new(1);
        assert!(!r.chance(0));
        assert!(r.chance(100));
        // 50% over many draws lands near half.
        let hits = (0..10_000).filter(|_| r.chance(50)).count();
        assert!((4_000..6_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn parses_link_faults() {
        assert_eq!(
            FaultSpec::parse("link s1-s2 down").unwrap(),
            FaultSpec {
                target: FaultTarget::Link {
                    a: "s1".into(),
                    b: "s2".into()
                },
                kind: FaultKind::LinkDown,
            }
        );
        assert_eq!(
            FaultSpec::parse("link s1-s2 flap 3 0.5 2").unwrap().kind,
            FaultKind::LinkFlap {
                count: 3,
                down: SimTime::from_millis(500),
                up: SimTime::from_secs(2),
            }
        );
        assert_eq!(
            FaultSpec::parse("link h1-s1 loss 25").unwrap().kind,
            FaultKind::PacketLoss { pct: 25 }
        );
        assert_eq!(
            FaultSpec::parse("link h1-s1 corrupt 100").unwrap().kind,
            FaultKind::PacketCorrupt { pct: 100 }
        );
        assert_eq!(
            FaultSpec::parse("link s1-s2 degrade bw 1000000 delay 0.01")
                .unwrap()
                .kind,
            FaultKind::LinkDegrade {
                bandwidth_bps: Some(1_000_000),
                delay: Some(SimTime::from_millis(10)),
            }
        );
        assert_eq!(
            FaultSpec::parse("link s1-s2 restore").unwrap().kind,
            FaultKind::LinkRestore
        );
    }

    #[test]
    fn parses_process_faults() {
        assert_eq!(
            FaultSpec::parse("controller c1 crash").unwrap(),
            FaultSpec {
                target: FaultTarget::Controller("c1".into()),
                kind: FaultKind::ControllerCrash,
            }
        );
        assert_eq!(
            FaultSpec::parse("controller c1 restart").unwrap().kind,
            FaultKind::ControllerRestart
        );
        assert_eq!(
            FaultSpec::parse("switch s2 restart").unwrap(),
            FaultSpec {
                target: FaultTarget::Switch("s2".into()),
                kind: FaultKind::SwitchRestart,
            }
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "link s1 down",
            "link s1-s2 explode",
            "link -s2 down",
            "link s1-s2 loss 101",
            "link s1-s2 loss -3",
            "link s1-s2 flap 3 0.5",
            "link s1-s2 degrade",
            "link s1-s2 degrade bw 0",
            "controller c1 reboot",
            "switch s1 crash",
            "host h1 down",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn display_round_trips_through_parse() {
        for spec in [
            "link s1-s2 down",
            "link s1-s2 flap 2 0.5 1",
            "link h1-s1 loss 10",
            "controller c1 crash",
            "switch s3 restart",
        ] {
            let parsed = FaultSpec::parse(spec).unwrap();
            let rendered = parsed.to_string();
            let stripped = rendered.strip_prefix("fault ").unwrap();
            assert_eq!(FaultSpec::parse(stripped).unwrap(), parsed);
        }
    }

    #[test]
    fn plan_accumulates_events() {
        let mut plan = FaultPlan::seeded(7);
        plan.at_str(SimTime::from_secs(1), "link s1-s2 down")
            .unwrap()
            .at_str(SimTime::from_secs(2), "link s1-s2 up")
            .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.events.len(), 2);
        assert!(plan.at_str(SimTime::ZERO, "nonsense").is_err());
    }
}
