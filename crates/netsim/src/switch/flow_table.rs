//! The OpenFlow 1.0 flow table with OVS-compatible semantics.

use crate::time::SimTime;
use attain_openflow::{
    Action, FlowKey, FlowMod, FlowModCommand, FlowModFlags, FlowRemovedReason, Match, PortNo,
    Wildcards,
};

/// One installed flow entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEntry {
    /// Fields matched.
    pub r#match: Match,
    /// Priority (only meaningful between wildcarded entries; exact-match
    /// entries always outrank wildcarded ones, per OpenFlow 1.0 §3.4).
    pub priority: u16,
    /// Action list (empty = drop).
    pub actions: Vec<Action>,
    /// Controller cookie.
    pub cookie: u64,
    /// Idle timeout in seconds (0 = none).
    pub idle_timeout: u16,
    /// Hard timeout in seconds (0 = none).
    pub hard_timeout: u16,
    /// Whether to emit `FLOW_REMOVED` on expiry.
    pub send_flow_rem: bool,
    /// Installation time.
    pub installed_at: SimTime,
    /// Last packet match time.
    pub last_matched: SimTime,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
}

impl FlowEntry {
    /// Whether the entry's match has no wildcards at all.
    pub fn is_exact(&self) -> bool {
        self.r#match.wildcards.0 & 0xff == 0
            && !self.r#match.wildcards.has(Wildcards::DL_VLAN_PCP)
            && !self.r#match.wildcards.has(Wildcards::NW_TOS)
            && self.r#match.wildcards.nw_src_ignored_bits() == 0
            && self.r#match.wildcards.nw_dst_ignored_bits() == 0
    }

    /// Whether the entry outputs to `port` (for delete `out_port`
    /// filtering).
    fn outputs_to(&self, port: PortNo) -> bool {
        self.actions
            .iter()
            .any(|a| matches!(a, Action::Output { port: p, .. } if *p == port))
    }
}

/// Why a flow mod could not be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowModError {
    /// `CHECK_OVERLAP` was set and an overlapping same-priority entry
    /// exists.
    Overlap,
    /// The table is full.
    TableFull,
}

/// The result of applying a flow mod.
#[derive(Debug, Default)]
pub struct ApplyOutcome {
    /// Whether a new entry was inserted (add, or modify acting as add).
    pub added: bool,
    /// Entries removed by a delete command, for `FLOW_REMOVED`
    /// notification (only those with `send_flow_rem`).
    pub removed: Vec<FlowEntry>,
}

/// The flow table of one simulated switch.
#[derive(Debug)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    capacity: usize,
    /// Packets looked up (table stats).
    pub lookup_count: u64,
    /// Packets that matched (table stats).
    pub matched_count: u64,
}

impl Default for FlowTable {
    fn default() -> Self {
        FlowTable::new(1024)
    }
}

impl FlowTable {
    /// Creates an empty table holding at most `capacity` entries.
    pub fn new(capacity: usize) -> FlowTable {
        FlowTable {
            entries: Vec::new(),
            capacity,
            lookup_count: 0,
            matched_count: 0,
        }
    }

    /// Active entries, in no particular order.
    pub fn entries(&self) -> &[FlowEntry] {
        &self.entries
    }

    /// Number of active entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the best entry for `key`, updating counters.
    ///
    /// Returns a clone of the winning entry's actions (cloning decouples
    /// the caller from the table borrow; action lists are short).
    pub fn lookup(&mut self, key: &FlowKey, frame_len: usize, now: SimTime) -> Option<Vec<Action>> {
        self.lookup_count += 1;
        let mut best: Option<usize> = None;
        let mut best_rank = (false, 0u16); // (is_exact, priority)
        for (i, e) in self.entries.iter().enumerate() {
            if !e.r#match.matches(key) {
                continue;
            }
            let rank = (e.is_exact(), e.priority);
            if best.is_none() || rank > best_rank {
                best = Some(i);
                best_rank = rank;
            }
        }
        let i = best?;
        self.matched_count += 1;
        let e = &mut self.entries[i];
        e.packet_count += 1;
        e.byte_count += frame_len as u64;
        e.last_matched = now;
        Some(e.actions.clone())
    }

    /// Applies a `FLOW_MOD`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowModError`] on overlap rejection or a full table.
    pub fn apply(&mut self, fm: &FlowMod, now: SimTime) -> Result<ApplyOutcome, FlowModError> {
        match fm.command {
            FlowModCommand::Add => self.add(fm, now).map(|_| ApplyOutcome {
                added: true,
                removed: Vec::new(),
            }),
            FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
                let strict = fm.command == FlowModCommand::ModifyStrict;
                let mut touched = false;
                for e in &mut self.entries {
                    let hit = if strict {
                        e.r#match == fm.r#match && e.priority == fm.priority
                    } else {
                        fm.r#match.subsumes(&e.r#match)
                    };
                    if hit {
                        e.actions = fm.actions.clone();
                        e.cookie = fm.cookie;
                        touched = true;
                    }
                }
                if touched {
                    Ok(ApplyOutcome::default())
                } else {
                    // Per spec: a modify with no target behaves like an add.
                    self.add(fm, now).map(|_| ApplyOutcome {
                        added: true,
                        removed: Vec::new(),
                    })
                }
            }
            FlowModCommand::Delete | FlowModCommand::DeleteStrict => {
                let strict = fm.command == FlowModCommand::DeleteStrict;
                let mut removed = Vec::new();
                self.entries.retain(|e| {
                    let hit = if strict {
                        e.r#match == fm.r#match && e.priority == fm.priority
                    } else {
                        fm.r#match.subsumes(&e.r#match)
                    };
                    let hit = hit && (fm.out_port == PortNo::NONE || e.outputs_to(fm.out_port));
                    if hit && e.send_flow_rem {
                        removed.push(e.clone());
                    }
                    !hit
                });
                Ok(ApplyOutcome {
                    added: false,
                    removed,
                })
            }
        }
    }

    fn add(&mut self, fm: &FlowMod, now: SimTime) -> Result<(), FlowModError> {
        if fm.flags.has(FlowModFlags::CHECK_OVERLAP) {
            let overlapping = self
                .entries
                .iter()
                .any(|e| e.priority == fm.priority && e.r#match.overlaps(&fm.r#match));
            if overlapping {
                return Err(FlowModError::Overlap);
            }
        }
        // Identical match+priority: replace, clearing counters (spec §4.6).
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.r#match == fm.r#match && e.priority == fm.priority)
        {
            *e = FlowEntry {
                r#match: fm.r#match,
                priority: fm.priority,
                actions: fm.actions.clone(),
                cookie: fm.cookie,
                idle_timeout: fm.idle_timeout,
                hard_timeout: fm.hard_timeout,
                send_flow_rem: fm.flags.has(FlowModFlags::SEND_FLOW_REM),
                installed_at: now,
                last_matched: now,
                packet_count: 0,
                byte_count: 0,
            };
            return Ok(());
        }
        if self.entries.len() >= self.capacity {
            return Err(FlowModError::TableFull);
        }
        self.entries.push(FlowEntry {
            r#match: fm.r#match,
            priority: fm.priority,
            actions: fm.actions.clone(),
            cookie: fm.cookie,
            idle_timeout: fm.idle_timeout,
            hard_timeout: fm.hard_timeout,
            send_flow_rem: fm.flags.has(FlowModFlags::SEND_FLOW_REM),
            installed_at: now,
            last_matched: now,
            packet_count: 0,
            byte_count: 0,
        });
        Ok(())
    }

    /// Removes timed-out entries, returning them with their expiry
    /// reasons (all of them, so the switch can count expiries; only those
    /// with `send_flow_rem` warrant a `FLOW_REMOVED`).
    pub fn expire(&mut self, now: SimTime) -> Vec<(FlowEntry, FlowRemovedReason)> {
        let mut out = Vec::new();
        self.entries.retain(|e| {
            if e.hard_timeout > 0
                && now.saturating_sub(e.installed_at) >= SimTime::from_secs(e.hard_timeout as u64)
            {
                out.push((e.clone(), FlowRemovedReason::HardTimeout));
                return false;
            }
            if e.idle_timeout > 0
                && now.saturating_sub(e.last_matched) >= SimTime::from_secs(e.idle_timeout as u64)
            {
                out.push((e.clone(), FlowRemovedReason::IdleTimeout));
                return false;
            }
            true
        });
        out
    }

    /// Removes every entry (used when a switch resets).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attain_openflow::{FlowModFlags, Match};

    fn fm(m: Match, priority: u16, port: u16) -> FlowMod {
        FlowMod {
            priority,
            actions: vec![Action::Output {
                port: PortNo(port),
                max_len: 0,
            }],
            ..FlowMod::add(m, vec![])
        }
    }

    fn key_port(p: u16) -> FlowKey {
        FlowKey {
            in_port: PortNo(p),
            ..FlowKey::default()
        }
    }

    #[test]
    fn add_and_lookup() {
        let mut t = FlowTable::default();
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 10, 2), SimTime::ZERO)
            .unwrap();
        let actions = t.lookup(&key_port(1), 100, SimTime::from_secs(1)).unwrap();
        assert_eq!(
            actions,
            vec![Action::Output {
                port: PortNo(2),
                max_len: 0
            }]
        );
        assert!(t.lookup(&key_port(3), 100, SimTime::ZERO).is_none());
        assert_eq!(t.lookup_count, 2);
        assert_eq!(t.matched_count, 1);
        assert_eq!(t.entries()[0].packet_count, 1);
        assert_eq!(t.entries()[0].byte_count, 100);
    }

    #[test]
    fn higher_priority_wins_among_wildcarded() {
        let mut t = FlowTable::default();
        t.apply(&fm(Match::all(), 1, 7), SimTime::ZERO).unwrap();
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 100, 8), SimTime::ZERO)
            .unwrap();
        let actions = t.lookup(&key_port(1), 10, SimTime::ZERO).unwrap();
        assert_eq!(
            actions,
            vec![Action::Output {
                port: PortNo(8),
                max_len: 0
            }]
        );
    }

    #[test]
    fn exact_match_outranks_higher_priority_wildcard() {
        let mut t = FlowTable::default();
        let key = key_port(1);
        let exact = Match::from_flow_key(&key);
        t.apply(&fm(exact, 1, 9), SimTime::ZERO).unwrap();
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 0xffff, 2), SimTime::ZERO)
            .unwrap();
        let actions = t.lookup(&key, 10, SimTime::ZERO).unwrap();
        assert_eq!(
            actions,
            vec![Action::Output {
                port: PortNo(9),
                max_len: 0
            }]
        );
    }

    #[test]
    fn replace_identical_match_resets_counters() {
        let mut t = FlowTable::default();
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 2), SimTime::ZERO)
            .unwrap();
        t.lookup(&key_port(1), 50, SimTime::ZERO);
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 3), SimTime::from_secs(1))
            .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].packet_count, 0);
        assert_eq!(
            t.entries()[0].actions,
            vec![Action::Output {
                port: PortNo(3),
                max_len: 0
            }]
        );
    }

    #[test]
    fn check_overlap_rejects_conflicts_at_same_priority() {
        let mut t = FlowTable::default();
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 2), SimTime::ZERO)
            .unwrap();
        let mut conflicting = fm(Match::all(), 5, 3);
        conflicting.flags = FlowModFlags(FlowModFlags::CHECK_OVERLAP);
        assert_eq!(
            t.apply(&conflicting, SimTime::ZERO).unwrap_err(),
            FlowModError::Overlap
        );
        // Same flows at a different priority are fine.
        conflicting.priority = 6;
        t.apply(&conflicting, SimTime::ZERO).unwrap();
    }

    #[test]
    fn modify_rewrites_actions_of_subsumed_entries() {
        let mut t = FlowTable::default();
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 2), SimTime::ZERO)
            .unwrap();
        t.apply(&fm(Match::exact_in_port(PortNo(2)), 5, 2), SimTime::ZERO)
            .unwrap();
        let mut m = fm(Match::all(), 0, 9);
        m.command = FlowModCommand::Modify;
        t.apply(&m, SimTime::ZERO).unwrap();
        for e in t.entries() {
            assert_eq!(
                e.actions,
                vec![Action::Output {
                    port: PortNo(9),
                    max_len: 0
                }]
            );
        }
    }

    #[test]
    fn modify_with_no_target_adds() {
        let mut t = FlowTable::default();
        let mut m = fm(Match::exact_in_port(PortNo(4)), 5, 2);
        m.command = FlowModCommand::Modify;
        let outcome = t.apply(&m, SimTime::ZERO).unwrap();
        assert!(outcome.added);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_non_strict_uses_subsumption_and_out_port_filter() {
        let mut t = FlowTable::default();
        let mut a = fm(Match::exact_in_port(PortNo(1)), 5, 2);
        a.flags = FlowModFlags(FlowModFlags::SEND_FLOW_REM);
        t.apply(&a, SimTime::ZERO).unwrap();
        t.apply(&fm(Match::exact_in_port(PortNo(2)), 5, 3), SimTime::ZERO)
            .unwrap();
        // Delete everything that outputs to port 2.
        let mut del = fm(Match::all(), 0, 0);
        del.command = FlowModCommand::Delete;
        del.out_port = PortNo(2);
        del.actions.clear();
        let outcome = t.apply(&del, SimTime::ZERO).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(outcome.removed.len(), 1); // only the SEND_FLOW_REM entry
        assert_eq!(t.entries()[0].actions[0], Action::Output { port: PortNo(3), max_len: 0 });
    }

    #[test]
    fn delete_strict_requires_exact_match_and_priority() {
        let mut t = FlowTable::default();
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 2), SimTime::ZERO)
            .unwrap();
        let mut del = fm(Match::exact_in_port(PortNo(1)), 6, 0);
        del.command = FlowModCommand::DeleteStrict;
        t.apply(&del, SimTime::ZERO).unwrap();
        assert_eq!(t.len(), 1); // wrong priority: no effect
        del.priority = 5;
        t.apply(&del, SimTime::ZERO).unwrap();
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn idle_and_hard_timeouts_expire() {
        let mut t = FlowTable::default();
        let mut idle = fm(Match::exact_in_port(PortNo(1)), 5, 2);
        idle.idle_timeout = 5;
        t.apply(&idle, SimTime::ZERO).unwrap();
        let mut hard = fm(Match::exact_in_port(PortNo(2)), 5, 2);
        hard.hard_timeout = 30;
        t.apply(&hard, SimTime::ZERO).unwrap();

        // Traffic keeps the idle entry alive at t=4.
        t.lookup(&key_port(1), 10, SimTime::from_secs(4));
        assert!(t.expire(SimTime::from_secs(5)).is_empty());
        // No traffic until t=9: idle entry dies (4+5).
        let gone = t.expire(SimTime::from_secs(9));
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].1, FlowRemovedReason::IdleTimeout);
        // Hard timeout fires at t=30 regardless of traffic.
        t.lookup(&key_port(2), 10, SimTime::from_secs(29));
        let gone = t.expire(SimTime::from_secs(30));
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].1, FlowRemovedReason::HardTimeout);
        assert!(t.is_empty());
    }

    #[test]
    fn table_full_is_reported() {
        let mut t = FlowTable::new(2);
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 2), SimTime::ZERO)
            .unwrap();
        t.apply(&fm(Match::exact_in_port(PortNo(2)), 5, 2), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            t.apply(&fm(Match::exact_in_port(PortNo(3)), 5, 2), SimTime::ZERO)
                .unwrap_err(),
            FlowModError::TableFull
        );
    }
}
