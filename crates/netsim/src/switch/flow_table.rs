//! The OpenFlow 1.0 flow table with OVS-compatible semantics.
//!
//! # Classifier structure
//!
//! Lookup used to be a linear scan over a flat `Vec<FlowEntry>`. The
//! table is now a two-tier classifier in the style of Open vSwitch:
//!
//! * **Exact tier** — entries whose match constrains every field (no
//!   wildcards at all) live in a `HashMap<FlowKey, _>` keyed by the one
//!   flow key they admit. A packet probes this map first: O(1), and by
//!   OpenFlow 1.0 §3.4 an exact entry outranks every wildcarded entry
//!   regardless of priority, so a hit ends the search.
//! * **Wildcard tier** — remaining entries are kept sorted by
//!   (priority descending, insertion order ascending), each carrying its
//!   [`MatchBits`] — the match pre-compiled at insert time into packed
//!   value/mask words — so evaluation is five masked 64-bit compares and
//!   the first hit is the winner (early exit).
//!
//! Entries live in an arena of slots with stable ids; a per-slot
//! generation counter lets the timeout index invalidate lazily. That
//! index is a min-heap of `(deadline, slot, generation)` triples:
//! [`FlowTable::expire`] pops only entries whose provisional deadline
//! has passed instead of scanning the whole table each tick. A popped
//! triple whose generation is stale (entry replaced or removed) is
//! discarded; one whose idle deadline moved forward because traffic
//! refreshed `last_matched` is re-armed at the new deadline. The packet
//! path never touches the heap.
//!
//! The observable semantics — priority ties, exact-beats-wildcard,
//! counters, overlap/subsumption, timeout behaviour, and the order of
//! removal notifications — are identical to the old scan; a differential
//! property test in `tests/proptest_netsim.rs` drives both this
//! classifier and a reference linear scan through random command
//! sequences and asserts they never diverge.

use crate::time::SimTime;
use attain_openflow::{
    Action, FlowKey, FlowKeyBits, FlowMod, FlowModCommand, FlowModFlags, FlowRemovedReason, Match,
    MatchBits, PortNo,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// One installed flow entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEntry {
    /// Fields matched.
    pub r#match: Match,
    /// Priority (only meaningful between wildcarded entries; exact-match
    /// entries always outrank wildcarded ones, per OpenFlow 1.0 §3.4).
    pub priority: u16,
    /// Action list (empty = drop). Shared so that lookups and stats can
    /// hand the list out without deep-cloning it.
    pub actions: Arc<[Action]>,
    /// Controller cookie.
    pub cookie: u64,
    /// Idle timeout in seconds (0 = none).
    pub idle_timeout: u16,
    /// Hard timeout in seconds (0 = none).
    pub hard_timeout: u16,
    /// Whether to emit `FLOW_REMOVED` on expiry.
    pub send_flow_rem: bool,
    /// Installation time.
    pub installed_at: SimTime,
    /// Last packet match time.
    pub last_matched: SimTime,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// Cached `(is_exact, priority)` ordering rank, fixed at insert
    /// (both inputs are immutable for the entry's lifetime).
    rank: (bool, u16),
}

impl FlowEntry {
    fn from_mod(fm: &FlowMod, now: SimTime) -> FlowEntry {
        FlowEntry {
            r#match: fm.r#match,
            priority: fm.priority,
            actions: fm.actions.as_slice().into(),
            cookie: fm.cookie,
            idle_timeout: fm.idle_timeout,
            hard_timeout: fm.hard_timeout,
            send_flow_rem: fm.flags.has(FlowModFlags::SEND_FLOW_REM),
            installed_at: now,
            last_matched: now,
            packet_count: 0,
            byte_count: 0,
            rank: (fm.r#match.is_exact(), fm.priority),
        }
    }

    /// Whether the entry's match has no wildcards at all.
    pub fn is_exact(&self) -> bool {
        self.rank.0
    }

    /// The `(is_exact, priority)` rank ordering entries during lookup.
    pub fn rank(&self) -> (bool, u16) {
        self.rank
    }

    /// Whether the entry outputs to `port` (for delete `out_port`
    /// filtering).
    fn outputs_to(&self, port: PortNo) -> bool {
        self.actions
            .iter()
            .any(|a| matches!(a, Action::Output { port: p, .. } if *p == port))
    }

    /// When the hard timeout fires, if one is set.
    fn hard_deadline(&self) -> Option<SimTime> {
        (self.hard_timeout > 0).then(|| {
            SimTime(
                self.installed_at
                    .0
                    .saturating_add(SimTime::from_secs(self.hard_timeout as u64).0),
            )
        })
    }

    /// When the idle timeout fires given current `last_matched`, if set.
    fn idle_deadline(&self) -> Option<SimTime> {
        (self.idle_timeout > 0).then(|| {
            SimTime(
                self.last_matched
                    .0
                    .saturating_add(SimTime::from_secs(self.idle_timeout as u64).0),
            )
        })
    }

    /// The earliest time either timeout can fire, if any is set.
    fn next_deadline(&self) -> Option<SimTime> {
        match (self.hard_deadline(), self.idle_deadline()) {
            (Some(h), Some(i)) => Some(h.min(i)),
            (h, i) => h.or(i),
        }
    }
}

/// Why a flow mod could not be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowModError {
    /// `CHECK_OVERLAP` was set and an overlapping same-priority entry
    /// exists.
    Overlap,
    /// The table is full.
    TableFull,
}

/// What a full table does with a new entry — Open vSwitch's
/// `overflow-policy` column (`refuse` / `evict`) with the eviction axis
/// made explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictionPolicy {
    /// Refuse the new entry with `ALL_TABLES_FULL` — the OpenFlow 1.0
    /// default and OVS `overflow-policy=refuse`.
    #[default]
    Reject,
    /// Evict the least-recently-matched entry, oldest-installed on ties
    /// (OVS `overflow-policy=evict` grouped on usage recency).
    EvictLru,
    /// Evict the lowest-priority entry, oldest-installed on ties. A
    /// newcomer whose priority is strictly below every resident is
    /// refused instead of admitted-then-thrashed.
    EvictLowestPriority,
}

impl EvictionPolicy {
    /// A short stable name (reports, bench labels).
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::Reject => "reject",
            EvictionPolicy::EvictLru => "evict_lru",
            EvictionPolicy::EvictLowestPriority => "evict_lowest_priority",
        }
    }
}

/// The result of applying a flow mod.
#[derive(Debug, Default)]
pub struct ApplyOutcome {
    /// Whether a new entry was inserted (add, or modify acting as add).
    pub added: bool,
    /// Entries removed by a delete command, for `FLOW_REMOVED`
    /// notification (only those with `send_flow_rem`).
    pub removed: Vec<FlowEntry>,
    /// Entries evicted to make room for an added one (all of them —
    /// the switch decides which warrant a `FLOW_REMOVED` and traces the
    /// rest).
    pub evicted: Vec<FlowEntry>,
}

/// An arena slot: a generation counter plus the occupant, if any.
#[derive(Debug)]
struct Slot {
    gen: u32,
    occ: Option<Occupied>,
}

#[derive(Debug)]
struct Occupied {
    entry: FlowEntry,
    /// The match compiled to value/mask words (wildcard-tier lookups).
    bits: MatchBits,
}

/// The flow table of one simulated switch (see the module docs for the
/// classifier structure).
#[derive(Debug)]
pub struct FlowTable {
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Alive slot ids in insertion order — the observable entry order
    /// (stats replies, removal notifications).
    order: Vec<usize>,
    /// Exact tier: fully-specified entries by the flow key they admit.
    /// A bucket is a Vec because distinct exact entries can admit the
    /// same key (different priorities, or `Match`es differing only in
    /// reserved wildcard bits).
    exact: HashMap<FlowKey, Vec<usize>>,
    /// Wildcard tier, sorted by (priority desc, insertion order asc).
    wild: Vec<usize>,
    /// Min-heap of provisional `(deadline, slot, generation)` triples.
    deadlines: BinaryHeap<Reverse<(SimTime, usize, u32)>>,
    capacity: usize,
    policy: EvictionPolicy,
    /// Packets looked up (table stats).
    pub lookup_count: u64,
    /// Packets that matched (table stats).
    pub matched_count: u64,
    /// Entries evicted to admit new ones over the table's lifetime.
    pub eviction_count: u64,
}

impl Default for FlowTable {
    fn default() -> Self {
        FlowTable::new(1024)
    }
}

impl FlowTable {
    /// Creates an empty table holding at most `capacity` entries that
    /// rejects adds when full ([`EvictionPolicy::Reject`]).
    pub fn new(capacity: usize) -> FlowTable {
        FlowTable::with_policy(capacity, EvictionPolicy::Reject)
    }

    /// Creates an empty table with an explicit overflow policy.
    pub fn with_policy(capacity: usize, policy: EvictionPolicy) -> FlowTable {
        // Pre-size the exact tier for the configured bound (capped so a
        // nominally huge table doesn't reserve memory it will never use):
        // exact-match floods fill it to capacity, and growth rehashes
        // during a million-flow warm-up are pure waste.
        let presize = capacity.min(4096);
        FlowTable {
            slots: Vec::with_capacity(presize),
            free: Vec::new(),
            order: Vec::with_capacity(presize),
            exact: HashMap::with_capacity(presize),
            wild: Vec::new(),
            deadlines: BinaryHeap::new(),
            capacity,
            policy,
            lookup_count: 0,
            matched_count: 0,
            eviction_count: 0,
        }
    }

    /// The configured maximum entry count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured overflow policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Active entries, in insertion order.
    pub fn entries(&self) -> impl Iterator<Item = &FlowEntry> + '_ {
        self.order.iter().map(|&id| self.entry(id))
    }

    /// Number of active entries.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    fn entry(&self, id: usize) -> &FlowEntry {
        &self.slots[id].occ.as_ref().expect("stale slot id").entry
    }

    fn occupied_mut(&mut self, id: usize) -> &mut Occupied {
        self.slots[id].occ.as_mut().expect("stale slot id")
    }

    /// Looks up the best entry for `key`, updating counters.
    ///
    /// Returns a shared handle to the winning entry's actions (cheap
    /// refcount bump, no deep clone; decouples the caller from the
    /// table borrow).
    pub fn lookup(
        &mut self,
        key: &FlowKey,
        frame_len: usize,
        now: SimTime,
    ) -> Option<Arc<[Action]>> {
        self.lookup_count += 1;
        let id = self.classify(key)?;
        self.matched_count += 1;
        let e = &mut self.occupied_mut(id).entry;
        e.packet_count += 1;
        e.byte_count += frame_len as u64;
        e.last_matched = now;
        Some(Arc::clone(&e.actions))
    }

    /// The winning slot id for `key`, by OpenFlow 1.0 precedence.
    fn classify(&self, key: &FlowKey) -> Option<usize> {
        // Exact tier: every entry in the bucket admits exactly `key`, so
        // only priority (then insertion order) discriminates.
        if let Some(bucket) = self.exact.get(key) {
            let mut best: Option<(usize, u16)> = None;
            for &id in bucket {
                let p = self.entry(id).priority;
                if best.is_none_or(|(_, bp)| p > bp) {
                    best = Some((id, p));
                }
            }
            if let Some((id, _)) = best {
                return Some(id);
            }
        }
        // Wildcard tier: sorted by (priority desc, insertion asc), so the
        // first compiled match that admits the key is the winner.
        if self.wild.is_empty() {
            return None;
        }
        let kb = FlowKeyBits::from_key(key);
        self.wild.iter().copied().find(|&id| {
            self.slots[id]
                .occ
                .as_ref()
                .expect("stale slot id")
                .bits
                .matches(&kb)
        })
    }

    /// Applies a `FLOW_MOD`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowModError`] on overlap rejection or a full table.
    pub fn apply(&mut self, fm: &FlowMod, now: SimTime) -> Result<ApplyOutcome, FlowModError> {
        match fm.command {
            FlowModCommand::Add => self.add(fm, now).map(|evicted| ApplyOutcome {
                added: true,
                removed: Vec::new(),
                evicted,
            }),
            FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
                let strict = fm.command == FlowModCommand::ModifyStrict;
                // Clone the action list once; matched entries share it.
                let actions: Arc<[Action]> = fm.actions.as_slice().into();
                let mut touched = false;
                for &id in &self.order {
                    let e = &mut self.slots[id].occ.as_mut().expect("stale slot id").entry;
                    let hit = if strict {
                        e.r#match == fm.r#match && e.priority == fm.priority
                    } else {
                        fm.r#match.subsumes(&e.r#match)
                    };
                    if hit {
                        e.actions = Arc::clone(&actions);
                        e.cookie = fm.cookie;
                        touched = true;
                    }
                }
                if touched {
                    Ok(ApplyOutcome::default())
                } else {
                    // Per spec: a modify with no target behaves like an add.
                    self.add(fm, now).map(|evicted| ApplyOutcome {
                        added: true,
                        removed: Vec::new(),
                        evicted,
                    })
                }
            }
            FlowModCommand::Delete | FlowModCommand::DeleteStrict => {
                let strict = fm.command == FlowModCommand::DeleteStrict;
                let mut hits = Vec::new();
                for &id in &self.order {
                    let e = self.entry(id);
                    let hit = if strict {
                        e.r#match == fm.r#match && e.priority == fm.priority
                    } else {
                        fm.r#match.subsumes(&e.r#match)
                    };
                    if hit && (fm.out_port == PortNo::NONE || e.outputs_to(fm.out_port)) {
                        hits.push(id);
                    }
                }
                let mut removed = Vec::new();
                for id in hits {
                    let entry = self.remove(id);
                    if entry.send_flow_rem {
                        removed.push(entry);
                    }
                }
                Ok(ApplyOutcome {
                    added: false,
                    removed,
                    evicted: Vec::new(),
                })
            }
        }
    }

    /// Adds the entry, returning any entries evicted to make room.
    fn add(&mut self, fm: &FlowMod, now: SimTime) -> Result<Vec<FlowEntry>, FlowModError> {
        if fm.flags.has(FlowModFlags::CHECK_OVERLAP) {
            let overlapping = self
                .order
                .iter()
                .map(|&id| self.entry(id))
                .any(|e| e.priority == fm.priority && e.r#match.overlaps(&fm.r#match));
            if overlapping {
                return Err(FlowModError::Overlap);
            }
        }
        // Identical match+priority: replace, clearing counters (spec §4.6).
        // The entry keeps its slot, insertion sequence, and tier position
        // (the match and priority — everything the indexes key on — are
        // unchanged); the generation bump invalidates its old deadlines.
        if let Some(id) = self.find_identical(&fm.r#match, fm.priority) {
            let entry = FlowEntry::from_mod(fm, now);
            let deadline = entry.next_deadline();
            self.slots[id].gen = self.slots[id].gen.wrapping_add(1);
            let gen = self.slots[id].gen;
            self.occupied_mut(id).entry = entry;
            if let Some(d) = deadline {
                self.deadlines.push(Reverse((d, id, gen)));
            }
            return Ok(Vec::new());
        }
        let mut evicted = Vec::new();
        if self.order.len() >= self.capacity {
            match self.victim(fm.priority) {
                Some(id) => {
                    evicted.push(self.remove(id));
                    self.eviction_count += 1;
                }
                None => return Err(FlowModError::TableFull),
            }
        }
        self.insert(FlowEntry::from_mod(fm, now));
        Ok(evicted)
    }

    /// The slot to evict so a new entry at `incoming_priority` fits, or
    /// `None` if the policy refuses instead.
    fn victim(&self, incoming_priority: u16) -> Option<usize> {
        match self.policy {
            EvictionPolicy::Reject => None,
            // `self.order` is insertion-ordered and `min_by_key` keeps
            // the first minimum, so ties go to the oldest entry.
            EvictionPolicy::EvictLru => self
                .order
                .iter()
                .copied()
                .min_by_key(|&id| self.entry(id).last_matched),
            EvictionPolicy::EvictLowestPriority => {
                let id = self
                    .order
                    .iter()
                    .copied()
                    .min_by_key(|&id| self.entry(id).priority)?;
                (self.entry(id).priority <= incoming_priority).then_some(id)
            }
        }
    }

    /// The slot holding an entry with exactly this match and priority.
    fn find_identical(&self, m: &Match, priority: u16) -> Option<usize> {
        if m.is_exact() {
            // Any identical match is exact too, so only its bucket can
            // hold it.
            let bucket = self.exact.get(&m.flow_key())?;
            bucket.iter().copied().find(|&id| {
                let e = self.entry(id);
                e.priority == priority && e.r#match == *m
            })
        } else {
            // The wild tier is priority-sorted: binary-search the band of
            // equal-priority entries, then compare matches within it.
            let lo = self
                .wild
                .partition_point(|&id| self.entry(id).priority > priority);
            let hi = self
                .wild
                .partition_point(|&id| self.entry(id).priority >= priority);
            self.wild[lo..hi]
                .iter()
                .copied()
                .find(|&id| self.entry(id).r#match == *m)
        }
    }

    /// Installs `entry` into a free slot and every index.
    fn insert(&mut self, entry: FlowEntry) {
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.slots.push(Slot { gen: 0, occ: None });
                self.slots.len() - 1
            }
        };
        let bits = entry.r#match.compile();
        let deadline = entry.next_deadline();
        let exact = entry.is_exact();
        let key = entry.r#match.flow_key();
        let priority = entry.priority;
        self.slots[id].occ = Some(Occupied { entry, bits });
        self.order.push(id);
        if exact {
            self.exact.entry(key).or_default().push(id);
        } else {
            // Keep (priority desc, insertion asc) order: the newest entry
            // goes after every equal-priority peer.
            let pos = self
                .wild
                .partition_point(|&x| self.entry(x).priority >= priority);
            self.wild.insert(pos, id);
        }
        if let Some(d) = deadline {
            self.deadlines.push(Reverse((d, id, self.slots[id].gen)));
        }
    }

    /// Unlinks slot `id` from every index and returns its entry.
    fn remove(&mut self, id: usize) -> FlowEntry {
        let occ = self.slots[id].occ.take().expect("stale slot id");
        self.slots[id].gen = self.slots[id].gen.wrapping_add(1);
        self.free.push(id);
        let pos = self
            .order
            .iter()
            .position(|&x| x == id)
            .expect("untracked id");
        self.order.remove(pos);
        if occ.entry.is_exact() {
            let key = occ.entry.r#match.flow_key();
            let bucket = self.exact.get_mut(&key).expect("missing exact bucket");
            bucket.retain(|&x| x != id);
            if bucket.is_empty() {
                self.exact.remove(&key);
            }
        } else {
            let pos = self
                .wild
                .iter()
                .position(|&x| x == id)
                .expect("untracked id");
            self.wild.remove(pos);
        }
        occ.entry
    }

    /// Removes timed-out entries, returning them with their expiry
    /// reasons (all of them, so the switch can count expiries; only those
    /// with `send_flow_rem` warrant a `FLOW_REMOVED`).
    ///
    /// Pops only heap entries whose provisional deadline has passed:
    /// when nothing is due this is O(1), not a table scan.
    pub fn expire(&mut self, now: SimTime) -> Vec<(FlowEntry, FlowRemovedReason)> {
        let mut due: Vec<(usize, FlowRemovedReason)> = Vec::new();
        while let Some(&Reverse((t, id, gen))) = self.deadlines.peek() {
            if t > now {
                break;
            }
            self.deadlines.pop();
            if self.slots[id].gen != gen {
                continue; // entry replaced or removed since arming
            }
            let Some(occ) = self.slots[id].occ.as_ref() else {
                continue;
            };
            let e = &occ.entry;
            // Hard before idle, matching the old scan's reason choice.
            if e.hard_deadline().is_some_and(|d| d <= now) {
                due.push((id, FlowRemovedReason::HardTimeout));
            } else if e.idle_deadline().is_some_and(|d| d <= now) {
                due.push((id, FlowRemovedReason::IdleTimeout));
            } else if let Some(d) = e.next_deadline() {
                // Traffic pushed the idle deadline forward: re-arm.
                self.deadlines.push(Reverse((d, id, gen)));
            }
        }
        if due.is_empty() {
            return Vec::new();
        }
        // Report in insertion order, as the old retain scan did.
        due.sort_by_key(|&(id, _)| {
            self.order
                .iter()
                .position(|&x| x == id)
                .expect("untracked id")
        });
        due.into_iter()
            .map(|(id, r)| (self.remove(id), r))
            .collect()
    }

    /// Removes every entry (used when a switch resets).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.order.clear();
        self.exact.clear();
        self.wild.clear();
        self.deadlines.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attain_openflow::{FlowModFlags, Match};

    fn fm(m: Match, priority: u16, port: u16) -> FlowMod {
        FlowMod {
            priority,
            actions: vec![Action::Output {
                port: PortNo(port),
                max_len: 0,
            }],
            ..FlowMod::add(m, vec![])
        }
    }

    fn key_port(p: u16) -> FlowKey {
        FlowKey {
            in_port: PortNo(p),
            ..FlowKey::default()
        }
    }

    fn out(port: u16) -> [Action; 1] {
        [Action::Output {
            port: PortNo(port),
            max_len: 0,
        }]
    }

    fn first(t: &FlowTable) -> &FlowEntry {
        t.entries().next().unwrap()
    }

    #[test]
    fn add_and_lookup() {
        let mut t = FlowTable::default();
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 10, 2), SimTime::ZERO)
            .unwrap();
        let actions = t.lookup(&key_port(1), 100, SimTime::from_secs(1)).unwrap();
        assert_eq!(&actions[..], &out(2));
        assert!(t.lookup(&key_port(3), 100, SimTime::ZERO).is_none());
        assert_eq!(t.lookup_count, 2);
        assert_eq!(t.matched_count, 1);
        assert_eq!(first(&t).packet_count, 1);
        assert_eq!(first(&t).byte_count, 100);
    }

    #[test]
    fn higher_priority_wins_among_wildcarded() {
        let mut t = FlowTable::default();
        t.apply(&fm(Match::all(), 1, 7), SimTime::ZERO).unwrap();
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 100, 8), SimTime::ZERO)
            .unwrap();
        let actions = t.lookup(&key_port(1), 10, SimTime::ZERO).unwrap();
        assert_eq!(&actions[..], &out(8));
    }

    #[test]
    fn exact_match_outranks_higher_priority_wildcard() {
        let mut t = FlowTable::default();
        let key = key_port(1);
        let exact = Match::from_flow_key(&key);
        t.apply(&fm(exact, 1, 9), SimTime::ZERO).unwrap();
        t.apply(
            &fm(Match::exact_in_port(PortNo(1)), 0xffff, 2),
            SimTime::ZERO,
        )
        .unwrap();
        let actions = t.lookup(&key, 10, SimTime::ZERO).unwrap();
        assert_eq!(&actions[..], &out(9));
    }

    #[test]
    fn priority_discriminates_within_an_exact_bucket() {
        // Two exact entries admitting the same key (priorities differ):
        // the bucket must pick the higher one, not the first inserted.
        let mut t = FlowTable::default();
        let key = key_port(1);
        let exact = Match::from_flow_key(&key);
        t.apply(&fm(exact, 1, 5), SimTime::ZERO).unwrap();
        let mut higher = exact;
        // Reserved wildcard bits make the Match distinct without making
        // it any less exact.
        higher.wildcards = attain_openflow::Wildcards(1 << 22);
        t.apply(&fm(higher, 9, 6), SimTime::ZERO).unwrap();
        assert_eq!(t.len(), 2);
        let actions = t.lookup(&key, 10, SimTime::ZERO).unwrap();
        assert_eq!(&actions[..], &out(6));
    }

    #[test]
    fn first_inserted_wins_priority_ties() {
        let mut t = FlowTable::default();
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 2), SimTime::ZERO)
            .unwrap();
        let mut peer = Match::all();
        peer.wildcards = attain_openflow::Wildcards(attain_openflow::Wildcards::ALL.0 | 1 << 23);
        t.apply(&fm(peer, 5, 3), SimTime::ZERO).unwrap();
        let actions = t.lookup(&key_port(1), 10, SimTime::ZERO).unwrap();
        assert_eq!(&actions[..], &out(2));
    }

    #[test]
    fn replace_identical_match_resets_counters() {
        let mut t = FlowTable::default();
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 2), SimTime::ZERO)
            .unwrap();
        t.lookup(&key_port(1), 50, SimTime::ZERO);
        t.apply(
            &fm(Match::exact_in_port(PortNo(1)), 5, 3),
            SimTime::from_secs(1),
        )
        .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(first(&t).packet_count, 0);
        assert_eq!(&first(&t).actions[..], &out(3));
    }

    #[test]
    fn replacement_keeps_tie_break_position() {
        // A replaced entry keeps its insertion-order position, so it
        // still wins priority ties against entries added after it.
        let mut t = FlowTable::default();
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 2), SimTime::ZERO)
            .unwrap();
        t.apply(&fm(Match::all(), 5, 3), SimTime::ZERO).unwrap();
        t.apply(
            &fm(Match::exact_in_port(PortNo(1)), 5, 4),
            SimTime::from_secs(1),
        )
        .unwrap();
        let actions = t.lookup(&key_port(1), 10, SimTime::from_secs(1)).unwrap();
        assert_eq!(&actions[..], &out(4));
    }

    #[test]
    fn check_overlap_rejects_conflicts_at_same_priority() {
        let mut t = FlowTable::default();
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 2), SimTime::ZERO)
            .unwrap();
        let mut conflicting = fm(Match::all(), 5, 3);
        conflicting.flags = FlowModFlags(FlowModFlags::CHECK_OVERLAP);
        assert_eq!(
            t.apply(&conflicting, SimTime::ZERO).unwrap_err(),
            FlowModError::Overlap
        );
        // Same flows at a different priority are fine.
        conflicting.priority = 6;
        t.apply(&conflicting, SimTime::ZERO).unwrap();
    }

    #[test]
    fn modify_rewrites_actions_of_subsumed_entries() {
        let mut t = FlowTable::default();
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 2), SimTime::ZERO)
            .unwrap();
        t.apply(&fm(Match::exact_in_port(PortNo(2)), 5, 2), SimTime::ZERO)
            .unwrap();
        let mut m = fm(Match::all(), 0, 9);
        m.command = FlowModCommand::Modify;
        t.apply(&m, SimTime::ZERO).unwrap();
        let entries: Vec<&FlowEntry> = t.entries().collect();
        assert_eq!(entries.len(), 2);
        for e in &entries {
            assert_eq!(&e.actions[..], &out(9));
        }
        // The rewritten lists are shared, not cloned per entry.
        assert!(Arc::ptr_eq(&entries[0].actions, &entries[1].actions));
    }

    #[test]
    fn modify_with_no_target_adds() {
        let mut t = FlowTable::default();
        let mut m = fm(Match::exact_in_port(PortNo(4)), 5, 2);
        m.command = FlowModCommand::Modify;
        let outcome = t.apply(&m, SimTime::ZERO).unwrap();
        assert!(outcome.added);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_non_strict_uses_subsumption_and_out_port_filter() {
        let mut t = FlowTable::default();
        let mut a = fm(Match::exact_in_port(PortNo(1)), 5, 2);
        a.flags = FlowModFlags(FlowModFlags::SEND_FLOW_REM);
        t.apply(&a, SimTime::ZERO).unwrap();
        t.apply(&fm(Match::exact_in_port(PortNo(2)), 5, 3), SimTime::ZERO)
            .unwrap();
        // Delete everything that outputs to port 2.
        let mut del = fm(Match::all(), 0, 0);
        del.command = FlowModCommand::Delete;
        del.out_port = PortNo(2);
        del.actions.clear();
        let outcome = t.apply(&del, SimTime::ZERO).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(outcome.removed.len(), 1); // only the SEND_FLOW_REM entry
        assert_eq!(
            first(&t).actions[0],
            Action::Output {
                port: PortNo(3),
                max_len: 0
            }
        );
    }

    #[test]
    fn delete_strict_requires_exact_match_and_priority() {
        let mut t = FlowTable::default();
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 2), SimTime::ZERO)
            .unwrap();
        let mut del = fm(Match::exact_in_port(PortNo(1)), 6, 0);
        del.command = FlowModCommand::DeleteStrict;
        t.apply(&del, SimTime::ZERO).unwrap();
        assert_eq!(t.len(), 1); // wrong priority: no effect
        del.priority = 5;
        t.apply(&del, SimTime::ZERO).unwrap();
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn idle_and_hard_timeouts_expire() {
        let mut t = FlowTable::default();
        let mut idle = fm(Match::exact_in_port(PortNo(1)), 5, 2);
        idle.idle_timeout = 5;
        t.apply(&idle, SimTime::ZERO).unwrap();
        let mut hard = fm(Match::exact_in_port(PortNo(2)), 5, 2);
        hard.hard_timeout = 30;
        t.apply(&hard, SimTime::ZERO).unwrap();

        // Traffic keeps the idle entry alive at t=4.
        t.lookup(&key_port(1), 10, SimTime::from_secs(4));
        assert!(t.expire(SimTime::from_secs(5)).is_empty());
        // No traffic until t=9: idle entry dies (4+5).
        let gone = t.expire(SimTime::from_secs(9));
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].1, FlowRemovedReason::IdleTimeout);
        // Hard timeout fires at t=30 regardless of traffic.
        t.lookup(&key_port(2), 10, SimTime::from_secs(29));
        let gone = t.expire(SimTime::from_secs(30));
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].1, FlowRemovedReason::HardTimeout);
        assert!(t.is_empty());
    }

    #[test]
    fn stale_deadlines_do_not_kill_slot_reusers() {
        // Entry with a timeout is deleted; another entry without one
        // reuses its slot. The orphaned heap deadline must not touch it.
        let mut t = FlowTable::default();
        let mut doomed = fm(Match::exact_in_port(PortNo(1)), 5, 2);
        doomed.hard_timeout = 10;
        t.apply(&doomed, SimTime::ZERO).unwrap();
        let mut del = fm(Match::exact_in_port(PortNo(1)), 5, 0);
        del.command = FlowModCommand::DeleteStrict;
        del.actions.clear();
        t.apply(&del, SimTime::ZERO).unwrap();
        t.apply(
            &fm(Match::exact_in_port(PortNo(7)), 5, 3),
            SimTime::from_secs(1),
        )
        .unwrap();
        assert!(t.expire(SimTime::from_secs(100)).is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn replacement_rearms_timeouts() {
        let mut t = FlowTable::default();
        let mut short = fm(Match::exact_in_port(PortNo(1)), 5, 2);
        short.hard_timeout = 5;
        t.apply(&short, SimTime::ZERO).unwrap();
        // Replace with a longer hard timeout before the first fires.
        let mut long = fm(Match::exact_in_port(PortNo(1)), 5, 2);
        long.hard_timeout = 60;
        t.apply(&long, SimTime::from_secs(2)).unwrap();
        assert!(t.expire(SimTime::from_secs(10)).is_empty());
        let gone = t.expire(SimTime::from_secs(62));
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].1, FlowRemovedReason::HardTimeout);
    }

    #[test]
    fn expiry_reports_in_insertion_order() {
        let mut t = FlowTable::default();
        for p in [3u16, 1, 2] {
            let mut e = fm(Match::exact_in_port(PortNo(p)), p * 10, p);
            e.hard_timeout = 1;
            t.apply(&e, SimTime::ZERO).unwrap();
        }
        let gone = t.expire(SimTime::from_secs(5));
        let ports: Vec<u16> = gone.iter().map(|(e, _)| e.r#match.in_port.0).collect();
        assert_eq!(ports, vec![3, 1, 2]);
    }

    #[test]
    fn table_full_is_reported() {
        let mut t = FlowTable::new(2);
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 2), SimTime::ZERO)
            .unwrap();
        t.apply(&fm(Match::exact_in_port(PortNo(2)), 5, 2), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            t.apply(&fm(Match::exact_in_port(PortNo(3)), 5, 2), SimTime::ZERO)
                .unwrap_err(),
            FlowModError::TableFull
        );
    }

    #[test]
    fn reject_policy_never_evicts() {
        let mut t = FlowTable::new(1);
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 2), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            t.apply(&fm(Match::exact_in_port(PortNo(2)), 9, 2), SimTime::ZERO)
                .unwrap_err(),
            FlowModError::TableFull
        );
        assert_eq!(t.eviction_count, 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn evict_lru_prefers_least_recently_matched() {
        let mut t = FlowTable::with_policy(2, EvictionPolicy::EvictLru);
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 2), SimTime::ZERO)
            .unwrap();
        t.apply(&fm(Match::exact_in_port(PortNo(2)), 5, 2), SimTime::ZERO)
            .unwrap();
        // Traffic refreshes entry 1; entry 2 becomes the LRU victim.
        t.lookup(&key_port(1), 10, SimTime::from_secs(3));
        let outcome = t
            .apply(
                &fm(Match::exact_in_port(PortNo(3)), 5, 2),
                SimTime::from_secs(4),
            )
            .unwrap();
        assert!(outcome.added);
        assert_eq!(outcome.evicted.len(), 1);
        assert_eq!(outcome.evicted[0].r#match.in_port, PortNo(2));
        assert_eq!(t.eviction_count, 1);
        assert!(t.lookup(&key_port(2), 10, SimTime::from_secs(5)).is_none());
        assert!(t.lookup(&key_port(1), 10, SimTime::from_secs(5)).is_some());
        assert!(t.lookup(&key_port(3), 10, SimTime::from_secs(5)).is_some());
    }

    #[test]
    fn evict_lru_breaks_ties_by_insertion_order() {
        let mut t = FlowTable::with_policy(2, EvictionPolicy::EvictLru);
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 2), SimTime::ZERO)
            .unwrap();
        t.apply(&fm(Match::exact_in_port(PortNo(2)), 5, 2), SimTime::ZERO)
            .unwrap();
        // Same last_matched (= install time): the oldest install goes.
        let outcome = t
            .apply(
                &fm(Match::exact_in_port(PortNo(3)), 5, 2),
                SimTime::from_secs(1),
            )
            .unwrap();
        assert_eq!(outcome.evicted[0].r#match.in_port, PortNo(1));
    }

    #[test]
    fn evict_lowest_priority_takes_min_priority_oldest_first() {
        let mut t = FlowTable::with_policy(3, EvictionPolicy::EvictLowestPriority);
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 7, 2), SimTime::ZERO)
            .unwrap();
        t.apply(&fm(Match::exact_in_port(PortNo(2)), 3, 2), SimTime::ZERO)
            .unwrap();
        t.apply(&fm(Match::exact_in_port(PortNo(3)), 3, 2), SimTime::ZERO)
            .unwrap();
        let outcome = t
            .apply(
                &fm(Match::exact_in_port(PortNo(4)), 5, 2),
                SimTime::from_secs(1),
            )
            .unwrap();
        // Two entries at priority 3: the older one (port 2) is evicted.
        assert_eq!(outcome.evicted[0].r#match.in_port, PortNo(2));
        assert_eq!(outcome.evicted[0].priority, 3);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn evict_lowest_priority_refuses_strictly_lower_newcomer() {
        let mut t = FlowTable::with_policy(1, EvictionPolicy::EvictLowestPriority);
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 2), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            t.apply(&fm(Match::exact_in_port(PortNo(2)), 4, 2), SimTime::ZERO)
                .unwrap_err(),
            FlowModError::TableFull
        );
        // Equal priority is admitted (ties go against the resident).
        let outcome = t
            .apply(&fm(Match::exact_in_port(PortNo(3)), 5, 2), SimTime::ZERO)
            .unwrap();
        assert_eq!(outcome.evicted[0].r#match.in_port, PortNo(1));
    }

    #[test]
    fn replacement_at_capacity_does_not_evict() {
        let mut t = FlowTable::with_policy(1, EvictionPolicy::EvictLru);
        t.apply(&fm(Match::exact_in_port(PortNo(1)), 5, 2), SimTime::ZERO)
            .unwrap();
        let outcome = t
            .apply(
                &fm(Match::exact_in_port(PortNo(1)), 5, 3),
                SimTime::from_secs(1),
            )
            .unwrap();
        assert!(outcome.evicted.is_empty());
        assert_eq!(t.eviction_count, 0);
        assert_eq!(&first(&t).actions[..], &out(3));
    }

    #[test]
    fn stale_deadline_of_evicted_entry_spares_slot_reuser() {
        // An armed entry is evicted and its slot reused by an entry with
        // no timeouts; the orphaned heap triple must not remove it.
        let mut t = FlowTable::with_policy(1, EvictionPolicy::EvictLru);
        let mut doomed = fm(Match::exact_in_port(PortNo(1)), 5, 2);
        doomed.hard_timeout = 10;
        t.apply(&doomed, SimTime::ZERO).unwrap();
        let outcome = t
            .apply(
                &fm(Match::exact_in_port(PortNo(2)), 5, 3),
                SimTime::from_secs(1),
            )
            .unwrap();
        assert_eq!(outcome.evicted.len(), 1);
        assert!(t.expire(SimTime::from_secs(100)).is_empty());
        assert_eq!(t.len(), 1);
        assert!(t
            .lookup(&key_port(2), 10, SimTime::from_secs(100))
            .is_some());
    }

    #[test]
    fn clear_resets_all_tiers() {
        let mut t = FlowTable::default();
        let key = key_port(1);
        let mut e = fm(Match::from_flow_key(&key), 5, 2);
        e.hard_timeout = 1;
        t.apply(&e, SimTime::ZERO).unwrap();
        t.apply(&fm(Match::exact_in_port(PortNo(2)), 5, 3), SimTime::ZERO)
            .unwrap();
        t.clear();
        assert!(t.is_empty());
        assert!(t.lookup(&key, 10, SimTime::ZERO).is_none());
        assert!(t.expire(SimTime::from_secs(100)).is_empty());
    }
}
