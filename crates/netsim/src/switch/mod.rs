//! The Open vSwitch model: flow tables, packet buffering, `PACKET_IN`,
//! liveness probing, and the fail-safe / fail-secure behaviours.

mod flow_table;

pub use flow_table::{ApplyOutcome, EvictionPolicy, FlowEntry, FlowModError, FlowTable};

use crate::engine::{ConnId, Effect, NodeId, TimerToken};
use crate::interpose::Direction;
use crate::time::SimTime;
use crate::trace::TraceKind;
use attain_openflow::packet::{self, Ethernet, IpPayload, Payload};
use attain_openflow::{
    bad_request, flow_mod_failed, Action, CodecError, DatapathId, ErrorMsg, ErrorType, FlowKey,
    FlowMod, FlowRemoved, Frame, MacAddr, OfMessage, OfType, PacketIn, PacketInReason, PhyPort,
    PortNo, StatsBody, StatsReplyBody, SwitchConfig, SwitchDesc, SwitchFeatures, Xid,
};
use std::borrow::Cow;
use std::collections::{HashMap, VecDeque};

/// OVS `fail-mode`: what a switch does for new flows while it has no
/// controller connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailMode {
    /// `standalone` — take over as a legacy MAC-learning switch (the
    /// paper's "fail safe"). Increases availability but also lets
    /// unauthorized traffic through: Table II's trade-off.
    Safe,
    /// `secure` — keep existing flows, drop everything that misses (the
    /// paper's "fail secure"). Preserves policy but denies legitimate
    /// traffic.
    Secure,
}

/// How many packets a switch can buffer awaiting controller decisions,
/// mirroring `FEATURES_REPLY.n_buffers`.
const BUFFER_CAPACITY: usize = 256;
/// Send an echo probe after this much control-plane rx silence.
const PROBE_AFTER: SimTime = SimTime::from_secs(5);
/// Declare the connection dead after this much rx silence.
const DEAD_AFTER: SimTime = SimTime::from_secs(15);
/// Handshake timeout (HELLO sent, nothing back).
const HANDSHAKE_TIMEOUT: SimTime = SimTime::from_secs(5);
/// Pause between reconnect attempts.
const RECONNECT_AFTER: SimTime = SimTime::from_secs(5);

/// A packet parked in the switch awaiting a controller verdict.
#[derive(Debug, Clone)]
struct BufferedPacket {
    id: u32,
    frame: Vec<u8>,
    in_port: PortNo,
}

/// Handshake/liveness state of the switch's side of one control
/// connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnPhase {
    /// Not yet attempted.
    Idle,
    /// HELLO sent, awaiting the controller.
    HelloSent,
    /// Handshake complete.
    Up,
    /// Declared dead; reconnect pending.
    Dead,
}

#[derive(Debug)]
struct SwitchConn {
    conn: ConnId,
    phase: ConnPhase,
    last_rx: SimTime,
    attempt: u32,
    next_xid: Xid,
}

/// A simulated OpenFlow 1.0 switch (the OVS v1.9.3 model).
#[derive(Debug)]
pub struct Switch {
    id: NodeId,
    name: String,
    dpid: DatapathId,
    ports: Vec<PortNo>,
    fail_mode: FailMode,
    table: FlowTable,
    buffers: VecDeque<BufferedPacket>,
    next_buffer_id: u32,
    mac_table: HashMap<MacAddr, PortNo>,
    config: SwitchConfig,
    conns: Vec<SwitchConn>,
    /// Packets dropped because no rule matched and the switch was in
    /// fail-secure lockdown.
    pub secure_drops: u64,
    /// Packets forwarded by standalone learning while disconnected.
    pub standalone_forwards: u64,
    /// Times this switch was power-cycled by a fault.
    pub restarts: u64,
}

impl Switch {
    /// Creates a switch; `ports` are assigned by the topology builder.
    pub(crate) fn new(id: NodeId, name: String, dpid: DatapathId, fail_mode: FailMode) -> Switch {
        Switch {
            id,
            name,
            dpid,
            ports: Vec::new(),
            fail_mode,
            table: FlowTable::default(),
            buffers: VecDeque::new(),
            next_buffer_id: 1,
            mac_table: HashMap::new(),
            config: SwitchConfig::default(),
            conns: Vec::new(),
            secure_drops: 0,
            standalone_forwards: 0,
            restarts: 0,
        }
    }

    /// The switch's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The switch's name (e.g. `s2`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The switch's datapath id.
    pub fn dpid(&self) -> DatapathId {
        self.dpid
    }

    /// The switch's fail mode.
    pub fn fail_mode(&self) -> FailMode {
        self.fail_mode
    }

    /// The flow table (for assertions and stats).
    pub fn flow_table(&self) -> &FlowTable {
        &self.table
    }

    /// Reconfigures the flow table's capacity and overflow policy.
    /// Replaces the table wholesale, so this belongs in topology setup,
    /// before any traffic.
    pub(crate) fn set_table_config(&mut self, capacity: usize, policy: EvictionPolicy) {
        self.table = FlowTable::with_policy(capacity, policy);
    }

    /// Applies a flow-mod directly to the table (proactive provisioning;
    /// no control-plane traffic, no trace events).
    pub(crate) fn install_flow(
        &mut self,
        fm: &FlowMod,
        now: SimTime,
    ) -> Result<ApplyOutcome, FlowModError> {
        self.table.apply(fm, now)
    }

    /// Pre-sizes the MAC learning table for an expected number of
    /// end hosts (builder topology hint; avoids rehash storms during
    /// warm-up on generated fabrics).
    pub(crate) fn reserve_mac_table(&mut self, hosts: usize) {
        self.mac_table.reserve(hosts);
    }

    /// Whether any control connection is fully up.
    pub fn is_connected(&self) -> bool {
        self.conns.iter().any(|c| c.phase == ConnPhase::Up)
    }

    pub(crate) fn add_port(&mut self, port: PortNo) {
        self.ports.push(port);
    }

    pub(crate) fn add_conn(&mut self, conn: ConnId) {
        self.conns.push(SwitchConn {
            conn,
            phase: ConnPhase::Idle,
            last_rx: SimTime::ZERO,
            attempt: 0,
            next_xid: 1,
        });
    }

    fn conn_mut(&mut self, conn: ConnId) -> Option<&mut SwitchConn> {
        self.conns.iter_mut().find(|c| c.conn == conn)
    }

    /// Allocates the next xid on `conn`, or `None` for an unknown conn.
    fn take_xid(&mut self, conn: ConnId) -> Option<Xid> {
        let c = self.conn_mut(conn)?;
        let x = c.next_xid;
        c.next_xid += 1;
        Some(x)
    }

    fn send(&mut self, conn: ConnId, msg: OfMessage, fx: &mut Vec<Effect>) {
        let Some(xid) = self.take_xid(conn) else {
            return;
        };
        fx.push(Effect::Control {
            conn,
            frame: Frame::from_message(msg, xid),
        });
    }

    /// Sends `msg` on every connection that is up. Each connection gets
    /// its own xid (so its own encoding), but the message itself is
    /// moved into the final send rather than cloned for it.
    fn send_to_up(&mut self, msg: OfMessage, fx: &mut Vec<Effect>) {
        let up: Vec<ConnId> = self
            .conns
            .iter()
            .filter(|c| c.phase == ConnPhase::Up)
            .map(|c| c.conn)
            .collect();
        let mut msg = Some(msg);
        for (i, conn) in up.iter().enumerate() {
            let m = if i + 1 == up.len() {
                msg.take().expect("message still held")
            } else {
                msg.as_ref().expect("message still held").clone()
            };
            self.send(*conn, m, fx);
        }
    }

    /// Begins (or retries) the OpenFlow handshake on `conn`.
    pub(crate) fn start_connect(&mut self, conn: ConnId, now: SimTime, fx: &mut Vec<Effect>) {
        let attempt = {
            let c = match self.conn_mut(conn) {
                Some(c) => c,
                None => return,
            };
            if c.phase == ConnPhase::Up {
                return;
            }
            c.phase = ConnPhase::HelloSent;
            c.attempt += 1;
            c.last_rx = now;
            c.attempt
        };
        self.send(conn, OfMessage::Hello, fx);
        fx.push(Effect::Timer {
            at: now + HANDSHAKE_TIMEOUT,
            token: TimerToken::HandshakeDeadline { conn, attempt },
        });
    }

    /// The handshake deadline for `attempt` fired.
    pub(crate) fn handshake_deadline(
        &mut self,
        conn: ConnId,
        attempt: u32,
        now: SimTime,
        fx: &mut Vec<Effect>,
    ) {
        let c = match self.conn_mut(conn) {
            Some(c) => c,
            None => return,
        };
        if c.phase == ConnPhase::HelloSent && c.attempt == attempt {
            c.phase = ConnPhase::Dead;
            fx.push(Effect::Timer {
                at: now + RECONNECT_AFTER,
                token: TimerToken::Connect { conn },
            });
        }
    }

    /// Power-cycles the switch: the flow table is wiped (no
    /// `FLOW_REMOVED` is sent — the entries died with the process, there
    /// is nothing left to report them), table counters are zeroed,
    /// buffered packets and learned MACs are discarded, the config
    /// reverts to defaults, and every control connection re-handshakes
    /// from scratch. Until a handshake completes the configured fail
    /// mode governs forwarding, exactly as after a liveness-declared
    /// disconnect.
    pub(crate) fn restart(&mut self, now: SimTime, fx: &mut Vec<Effect>) {
        self.restarts += 1;
        self.table.clear();
        self.table.lookup_count = 0;
        self.table.matched_count = 0;
        self.table.eviction_count = 0;
        self.buffers.clear();
        self.next_buffer_id = 1;
        self.mac_table.clear();
        self.config = SwitchConfig::default();
        for c in &mut self.conns {
            c.phase = ConnPhase::Idle;
            c.attempt = 0;
            c.next_xid = 1;
            c.last_rx = now;
            fx.push(Effect::Timer {
                at: now,
                token: TimerToken::Connect { conn: c.conn },
            });
        }
    }

    /// A data-plane frame arrived on `port`.
    pub(crate) fn handle_frame(
        &mut self,
        port: PortNo,
        frame: Vec<u8>,
        now: SimTime,
        fx: &mut Vec<Effect>,
    ) {
        let key = packet::flow_key(&frame, port);
        if let Some(actions) = self.table.lookup(&key, frame.len(), now) {
            self.execute_actions(&actions, Cow::Owned(frame), port, now, fx);
            return;
        }
        if self.is_connected() {
            self.packet_in_miss(port, frame, fx);
        } else {
            match self.fail_mode {
                FailMode::Safe => self.standalone_forward(&key, frame, port, fx),
                FailMode::Secure => {
                    self.secure_drops += 1;
                    fx.push(Effect::Trace(TraceKind::PacketDropped {
                        switch: self.name.clone(),
                        reason: "fail-secure table miss",
                    }));
                }
            }
        }
    }

    fn packet_in_miss(&mut self, port: PortNo, frame: Vec<u8>, fx: &mut Vec<Effect>) {
        let total_len = frame.len() as u16;
        // A full pool ages out its oldest resident, as OVS does: the
        // controller plainly isn't going to answer for it, and pinning
        // the pool forever would silently degrade every later PACKET_IN
        // to unbuffered.
        if self.buffers.len() >= BUFFER_CAPACITY {
            self.buffers.pop_front();
        }
        let id = self.alloc_buffer_id();
        let truncated = frame[..frame.len().min(self.config.miss_send_len as usize)].to_vec();
        self.buffers.push_back(BufferedPacket {
            id,
            frame,
            in_port: port,
        });
        let msg = OfMessage::PacketIn(PacketIn {
            buffer_id: Some(id),
            total_len,
            in_port: port,
            reason: PacketInReason::NoMatch,
            data: truncated,
        });
        self.send_to_up(msg, fx);
    }

    /// Allocates a fresh buffer id. Ids wrap at 2^31; 0 and any id still
    /// resident in the pool are skipped, so a wrapped counter can never
    /// alias a parked packet and make `take_buffer` release the wrong
    /// one. Terminates because the pool holds at most
    /// [`BUFFER_CAPACITY`] of the 2^31 − 1 candidates.
    fn alloc_buffer_id(&mut self) -> u32 {
        loop {
            let id = self.next_buffer_id;
            self.next_buffer_id = self.next_buffer_id.wrapping_add(1) & 0x7fff_ffff;
            if id != 0 && !self.buffers.iter().any(|b| b.id == id) {
                return id;
            }
        }
    }

    fn standalone_forward(
        &mut self,
        key: &FlowKey,
        frame: Vec<u8>,
        in_port: PortNo,
        fx: &mut Vec<Effect>,
    ) {
        self.standalone_forwards += 1;
        self.mac_table.insert(key.dl_src, in_port);
        let out = if key.dl_dst.is_multicast() {
            None
        } else {
            self.mac_table.get(&key.dl_dst).copied()
        };
        match out {
            Some(p) if p == in_port => {} // hairpin: drop
            Some(p) => fx.push(Effect::Frame { out_port: p, frame }),
            None => self.flood(in_port, &frame, fx),
        }
    }

    fn flood(&self, except: PortNo, frame: &[u8], fx: &mut Vec<Effect>) {
        for &p in &self.ports {
            if p != except {
                fx.push(Effect::Frame {
                    out_port: p,
                    frame: frame.to_vec(),
                });
            }
        }
    }

    /// Runs an action list over a frame. The frame arrives as a `Cow` so
    /// an unbuffered `PACKET_OUT` can lend its payload straight out of
    /// the decoded message; the last action that needs the bytes takes
    /// them (moving an owned frame, copying a borrowed one once) instead
    /// of every output cloning.
    fn execute_actions(
        &mut self,
        actions: &[Action],
        frame: Cow<'_, [u8]>,
        in_port: PortNo,
        _now: SimTime,
        fx: &mut Vec<Effect>,
    ) {
        let mut frame = frame;
        for (i, action) in actions.iter().enumerate() {
            let is_last = i + 1 == actions.len();
            match action {
                Action::Output { port, max_len } => match *port {
                    PortNo::FLOOD | PortNo::ALL => self.flood(in_port, &frame, fx),
                    PortNo::IN_PORT => {
                        let f = take_frame(&mut frame, is_last);
                        fx.push(Effect::Frame {
                            out_port: in_port,
                            frame: f,
                        });
                    }
                    PortNo::CONTROLLER => {
                        let total_len = frame.len() as u16;
                        let data = if *max_len == 0 {
                            take_frame(&mut frame, is_last)
                        } else {
                            frame[..frame.len().min(*max_len as usize)].to_vec()
                        };
                        let msg = OfMessage::PacketIn(PacketIn {
                            buffer_id: None,
                            total_len,
                            in_port,
                            reason: PacketInReason::Action,
                            data,
                        });
                        self.send_to_up(msg, fx);
                    }
                    PortNo::NORMAL => {
                        let key = packet::flow_key(&frame, in_port);
                        let f = take_frame(&mut frame, is_last);
                        self.standalone_forward(&key, f, in_port, fx);
                    }
                    PortNo::TABLE | PortNo::LOCAL | PortNo::NONE => {}
                    p if p.is_physical() => {
                        let f = take_frame(&mut frame, is_last);
                        fx.push(Effect::Frame {
                            out_port: p,
                            frame: f,
                        });
                    }
                    _ => {}
                },
                rewrite => frame = Cow::Owned(apply_rewrite(rewrite, frame.into_owned())),
            }
        }
    }

    /// An encoded control-plane message arrived from a controller.
    pub(crate) fn handle_control(
        &mut self,
        conn: ConnId,
        frame: &Frame,
        now: SimTime,
        fx: &mut Vec<Effect>,
    ) {
        if let Some(c) = self.conn_mut(conn) {
            c.last_rx = now;
        }
        let Some((msg, xid)) = frame.decoded() else {
            // Fuzzed/garbled message: answer with an ERROR, as a real
            // switch would, and carry on.
            let e = frame.decode_error().expect("decode just failed");
            fx.push(Effect::Trace(TraceKind::DecodeFailure {
                conn,
                direction: Direction::ControllerToSwitch,
            }));
            self.send(
                conn,
                OfMessage::Error(ErrorMsg {
                    error_type: ErrorType::BadRequest,
                    code: match e {
                        CodecError::BadVersion(_) => bad_request::BAD_VERSION,
                        _ => bad_request::BAD_TYPE,
                    },
                    data: frame.bytes()[..frame.len().min(64)].to_vec(),
                }),
                fx,
            );
            return;
        };
        let xid = *xid;
        match msg {
            OfMessage::Hello => {}
            OfMessage::EchoRequest(_) => {
                // The reply is the request with the header's type and xid
                // patched: same body, no decode→re-encode round trip.
                if let Some(reply_xid) = self.take_xid(conn) {
                    if let Some(reply) = frame.patched_reply(OfType::EchoReply, reply_xid) {
                        fx.push(Effect::Control { conn, frame: reply });
                    }
                }
            }
            OfMessage::EchoReply(_) => {}
            OfMessage::FeaturesRequest => {
                let features = self.features();
                // Reply first, then flip the phase, so the xid counter
                // lines up with a real handshake trace.
                let reply = OfMessage::FeaturesReply(features);
                fx.push(Effect::Control {
                    conn,
                    frame: Frame::from_message(reply, xid),
                });
                if let Some(c) = self.conn_mut(conn) {
                    if c.phase != ConnPhase::Up {
                        c.phase = ConnPhase::Up;
                        fx.push(Effect::Trace(TraceKind::ConnectionUp { conn }));
                        self.mac_table.clear();
                    }
                }
            }
            OfMessage::GetConfigRequest => {
                let reply = OfMessage::GetConfigReply(self.config);
                fx.push(Effect::Control {
                    conn,
                    frame: Frame::from_message(reply, xid),
                });
            }
            OfMessage::SetConfig(cfg) => self.config = *cfg,
            OfMessage::BarrierRequest => {
                fx.push(Effect::Control {
                    conn,
                    frame: Frame::from_message(OfMessage::BarrierReply, xid),
                });
            }
            OfMessage::PacketOut(po) => {
                // For buffered releases the stored frame and ingress port
                // govern FLOOD/IN_PORT semantics; otherwise the message's
                // payload is lent out of the decoded frame uncopied.
                let (pkt, in_port): (Cow<'_, [u8]>, PortNo) = match po.buffer_id {
                    Some(id) => match self.take_buffer(id) {
                        Some(b) => (Cow::Owned(b.frame), b.in_port),
                        None => {
                            self.send(
                                conn,
                                OfMessage::Error(ErrorMsg {
                                    error_type: ErrorType::BadRequest,
                                    code: bad_request::BUFFER_UNKNOWN,
                                    data: frame.bytes()[..frame.len().min(64)].to_vec(),
                                }),
                                fx,
                            );
                            return;
                        }
                    },
                    None => (Cow::Borrowed(po.data.as_slice()), po.in_port),
                };
                if !pkt.is_empty() {
                    self.execute_actions(&po.actions, pkt, in_port, now, fx);
                }
            }
            OfMessage::FlowMod(fm) => {
                match self.table.apply(fm, now) {
                    Ok(outcome) => {
                        for evicted in outcome.evicted {
                            fx.push(Effect::Trace(TraceKind::FlowEvicted {
                                switch: self.name.clone(),
                                description: evicted.r#match.to_string(),
                            }));
                            if evicted.send_flow_rem {
                                self.notify_flow_removed(
                                    evicted,
                                    attain_openflow::FlowRemovedReason::Eviction,
                                    now,
                                    fx,
                                );
                            }
                        }
                        if outcome.added {
                            fx.push(Effect::Trace(TraceKind::FlowInstalled {
                                switch: self.name.clone(),
                                description: fm.r#match.to_string(),
                            }));
                        }
                        for removed in outcome.removed {
                            self.notify_flow_removed(
                                removed,
                                attain_openflow::FlowRemovedReason::Delete,
                                now,
                                fx,
                            );
                        }
                        // Spec §4.6: if a buffer is named, apply the new
                        // flow's actions to the buffered packet. This is
                        // the step that silently never happens when the
                        // flow mod is suppressed — POX's deadlock.
                        if let Some(id) = fm.buffer_id {
                            if !fm.command.is_delete() {
                                if let Some(b) = self.take_buffer(id) {
                                    self.execute_actions(
                                        &fm.actions,
                                        Cow::Owned(b.frame),
                                        b.in_port,
                                        now,
                                        fx,
                                    );
                                }
                            }
                        }
                    }
                    Err(e) => {
                        // The rejected mod never gets a second shot at its
                        // buffer_id; retire the parked packet now or the
                        // pool pins until aging reclaims it.
                        if let Some(id) = fm.buffer_id {
                            self.take_buffer(id);
                        }
                        let code = match e {
                            FlowModError::Overlap => flow_mod_failed::OVERLAP,
                            FlowModError::TableFull => flow_mod_failed::ALL_TABLES_FULL,
                        };
                        self.send(
                            conn,
                            OfMessage::Error(ErrorMsg {
                                error_type: ErrorType::FlowModFailed,
                                code,
                                data: frame.bytes()[..frame.len().min(64)].to_vec(),
                            }),
                            fx,
                        );
                    }
                }
            }
            OfMessage::StatsRequest(body) => {
                let reply = self.stats_reply(body, now);
                fx.push(Effect::Control {
                    conn,
                    frame: Frame::from_message(OfMessage::StatsReply(reply), xid),
                });
            }
            OfMessage::QueueGetConfigRequest { port } => {
                fx.push(Effect::Control {
                    conn,
                    frame: Frame::from_message(
                        OfMessage::QueueGetConfigReply {
                            port: *port,
                            queues: vec![],
                        },
                        xid,
                    ),
                });
            }
            OfMessage::PortMod(_) | OfMessage::Vendor { .. } => {}
            // Symmetric/controller-bound types arriving here are protocol
            // violations; a real switch errors out.
            _ => self.send(
                conn,
                OfMessage::Error(ErrorMsg {
                    error_type: ErrorType::BadRequest,
                    code: bad_request::BAD_TYPE,
                    data: frame.bytes()[..frame.len().min(64)].to_vec(),
                }),
                fx,
            ),
        }
    }

    fn take_buffer(&mut self, id: u32) -> Option<BufferedPacket> {
        let idx = self.buffers.iter().position(|b| b.id == id)?;
        self.buffers.remove(idx)
    }

    fn notify_flow_removed(
        &mut self,
        e: FlowEntry,
        reason: attain_openflow::FlowRemovedReason,
        now: SimTime,
        fx: &mut Vec<Effect>,
    ) {
        let duration = now.saturating_sub(e.installed_at);
        let msg = OfMessage::FlowRemoved(FlowRemoved {
            r#match: e.r#match,
            cookie: e.cookie,
            priority: e.priority,
            reason,
            duration_sec: (duration.as_nanos() / 1_000_000_000) as u32,
            duration_nsec: (duration.as_nanos() % 1_000_000_000) as u32,
            idle_timeout: e.idle_timeout,
            packet_count: e.packet_count,
            byte_count: e.byte_count,
        });
        self.send_to_up(msg, fx);
    }

    /// The 1 Hz housekeeping sweep: flow expiry and liveness probing.
    pub(crate) fn tick(&mut self, now: SimTime, fx: &mut Vec<Effect>) {
        for (entry, reason) in self.table.expire(now) {
            if entry.send_flow_rem {
                self.notify_flow_removed(entry, reason, now, fx);
            }
        }
        let mut probes = Vec::new();
        let mut deaths = Vec::new();
        for c in &mut self.conns {
            if c.phase != ConnPhase::Up {
                continue;
            }
            let silence = now.saturating_sub(c.last_rx);
            if silence >= DEAD_AFTER {
                c.phase = ConnPhase::Dead;
                deaths.push(c.conn);
            } else if silence >= PROBE_AFTER {
                probes.push(c.conn);
            }
        }
        for conn in probes {
            self.send(conn, OfMessage::EchoRequest(b"attain-probe".to_vec()), fx);
        }
        let any_death = !deaths.is_empty();
        for conn in deaths {
            fx.push(Effect::Trace(TraceKind::ConnectionDead { conn }));
            fx.push(Effect::Timer {
                at: now + RECONNECT_AFTER,
                token: TimerToken::Connect { conn },
            });
        }
        if any_death && !self.is_connected() {
            self.mac_table.clear();
            fx.push(Effect::Trace(TraceKind::FailModeEntered {
                switch: self.name.clone(),
                standalone: self.fail_mode == FailMode::Safe,
            }));
        }
        fx.push(Effect::Timer {
            at: now + SimTime::from_secs(1),
            token: TimerToken::SwitchTick,
        });
    }

    fn features(&self) -> SwitchFeatures {
        SwitchFeatures {
            datapath_id: self.dpid,
            n_buffers: BUFFER_CAPACITY as u32,
            n_tables: 1,
            capabilities: 0x87, // flow stats | table stats | port stats | arp match ip
            actions: 0xfff,
            ports: self
                .ports
                .iter()
                .map(|&p| PhyPort::simulated(p, MacAddr::from_low((self.dpid.0 << 8) | p.0 as u64)))
                .collect(),
        }
    }

    fn stats_reply(&self, body: &StatsBody, now: SimTime) -> StatsReplyBody {
        match body {
            StatsBody::Desc => StatsReplyBody::Desc(SwitchDesc {
                mfr_desc: "ATTAIN reproduction".into(),
                hw_desc: "simulated datapath".into(),
                sw_desc: "attain-netsim (OVS v1.9.3 model)".into(),
                serial_num: format!("{:08x}", self.dpid.0),
                dp_desc: self.name.clone(),
            }),
            StatsBody::Flow {
                r#match, out_port, ..
            } => StatsReplyBody::Flow(
                self.table
                    .entries()
                    .filter(|e| r#match.subsumes(&e.r#match))
                    .filter(|e| {
                        *out_port == PortNo::NONE
                            || e.actions.iter().any(
                                |a| matches!(a, Action::Output { port, .. } if port == out_port),
                            )
                    })
                    .map(|e| {
                        let dur = now.saturating_sub(e.installed_at);
                        attain_openflow::FlowStatsEntry {
                            table_id: 0,
                            r#match: e.r#match,
                            duration_sec: (dur.as_nanos() / 1_000_000_000) as u32,
                            duration_nsec: (dur.as_nanos() % 1_000_000_000) as u32,
                            priority: e.priority,
                            idle_timeout: e.idle_timeout,
                            hard_timeout: e.hard_timeout,
                            cookie: e.cookie,
                            packet_count: e.packet_count,
                            byte_count: e.byte_count,
                            actions: e.actions.to_vec(),
                        }
                    })
                    .collect(),
            ),
            StatsBody::Aggregate { r#match, .. } => {
                let selected: Vec<_> = self
                    .table
                    .entries()
                    .filter(|e| r#match.subsumes(&e.r#match))
                    .collect();
                StatsReplyBody::Aggregate(attain_openflow::AggregateStats {
                    packet_count: selected.iter().map(|e| e.packet_count).sum(),
                    byte_count: selected.iter().map(|e| e.byte_count).sum(),
                    flow_count: selected.len() as u32,
                })
            }
            StatsBody::Table => StatsReplyBody::Table(vec![attain_openflow::TableStatsEntry {
                table_id: 0,
                name: "classifier".into(),
                wildcards: 0x003f_ffff,
                max_entries: self.table.capacity() as u32,
                active_count: self.table.len() as u32,
                lookup_count: self.table.lookup_count,
                matched_count: self.table.matched_count,
            }]),
            StatsBody::Port { .. } => StatsReplyBody::Port(
                self.ports
                    .iter()
                    .map(|&p| attain_openflow::PortStatsEntry {
                        port_no: p,
                        ..Default::default()
                    })
                    .collect(),
            ),
            StatsBody::Queue { .. } => StatsReplyBody::Queue(vec![]),
        }
    }
}

/// The frame bytes for one output: the last user takes ownership
/// (moving an owned frame, copying a borrowed one exactly once);
/// earlier users copy.
fn take_frame(frame: &mut Cow<'_, [u8]>, is_last: bool) -> Vec<u8> {
    if is_last {
        std::mem::replace(frame, Cow::Borrowed(&[])).into_owned()
    } else {
        frame.to_vec()
    }
}

/// Applies a header-rewrite action to a raw frame, returning the frame
/// unchanged if it cannot be parsed.
fn apply_rewrite(action: &Action, frame: Vec<u8>) -> Vec<u8> {
    let mut eth = match Ethernet::decode(&frame) {
        Ok(e) => e,
        Err(_) => return frame,
    };
    match action {
        Action::SetDlSrc(mac) => eth.src = *mac,
        Action::SetDlDst(mac) => eth.dst = *mac,
        Action::SetVlanVid(vid) => {
            let pcp = eth.vlan.map(|t| t & 0xe000).unwrap_or(0);
            eth.vlan = Some(pcp | (vid & 0x0fff));
        }
        Action::SetVlanPcp(pcp) => {
            let vid = eth.vlan.map(|t| t & 0x0fff).unwrap_or(0);
            eth.vlan = Some(((*pcp as u16) << 13) | vid);
        }
        Action::StripVlan => eth.vlan = None,
        Action::SetNwSrc(ip) => {
            if let Payload::Ipv4(ipv4) = &mut eth.payload {
                ipv4.src = (*ip).into();
            }
        }
        Action::SetNwDst(ip) => {
            if let Payload::Ipv4(ipv4) = &mut eth.payload {
                ipv4.dst = (*ip).into();
            }
        }
        Action::SetNwTos(tos) => {
            if let Payload::Ipv4(ipv4) = &mut eth.payload {
                ipv4.tos = *tos;
            }
        }
        Action::SetTpSrc(p) => {
            if let Payload::Ipv4(ipv4) = &mut eth.payload {
                match &mut ipv4.payload {
                    IpPayload::Tcp(t) => t.src_port = *p,
                    IpPayload::Udp(u) => u.src_port = *p,
                    _ => {}
                }
            }
        }
        Action::SetTpDst(p) => {
            if let Payload::Ipv4(ipv4) = &mut eth.payload {
                match &mut ipv4.payload {
                    IpPayload::Tcp(t) => t.dst_port = *p,
                    IpPayload::Udp(u) => u.dst_port = *p,
                    _ => {}
                }
            }
        }
        _ => {}
    }
    eth.encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use attain_openflow::FlowMod;
    use attain_openflow::Match;

    fn switch() -> Switch {
        let mut s = Switch::new(NodeId(0), "s1".into(), DatapathId(1), FailMode::Secure);
        s.add_port(PortNo(1));
        s.add_port(PortNo(2));
        s.add_port(PortNo(3));
        s.add_conn(ConnId(0));
        s
    }

    fn frame(src: u64, dst: u64) -> Vec<u8> {
        packet::icmp_echo_request(
            MacAddr::from_low(src),
            MacAddr::from_low(dst),
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            1,
            1,
            vec![0; 8],
        )
        .encode()
    }

    fn connect(s: &mut Switch) {
        let mut fx = Vec::new();
        s.start_connect(ConnId(0), SimTime::ZERO, &mut fx);
        s.handle_control(
            ConnId(0),
            &Frame::from_message(OfMessage::Hello, 1),
            SimTime::ZERO,
            &mut fx,
        );
        s.handle_control(
            ConnId(0),
            &Frame::from_message(OfMessage::FeaturesRequest, 2),
            SimTime::ZERO,
            &mut fx,
        );
        assert!(s.is_connected());
    }

    #[test]
    fn handshake_brings_connection_up() {
        let mut s = switch();
        assert!(!s.is_connected());
        connect(&mut s);
    }

    #[test]
    fn miss_while_connected_buffers_and_sends_packet_in() {
        let mut s = switch();
        connect(&mut s);
        let mut fx = Vec::new();
        s.handle_frame(PortNo(1), frame(1, 2), SimTime::ZERO, &mut fx);
        let controls: Vec<_> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::Control { frame, .. } => Some(frame.message().unwrap().clone()),
                _ => None,
            })
            .collect();
        assert_eq!(controls.len(), 1);
        let OfMessage::PacketIn(pi) = &controls[0] else {
            panic!("expected packet in");
        };
        assert_eq!(pi.in_port, PortNo(1));
        assert!(pi.buffer_id.is_some());
        assert_eq!(pi.reason, PacketInReason::NoMatch);
        // Truncated to miss_send_len (default 128).
        assert!(pi.data.len() <= 128);
        assert_eq!(s.buffers.len(), 1);
    }

    #[test]
    fn packet_out_releases_buffer() {
        let mut s = switch();
        connect(&mut s);
        let mut fx = Vec::new();
        s.handle_frame(PortNo(1), frame(1, 2), SimTime::ZERO, &mut fx);
        let id = s.buffers[0].id;
        fx.clear();
        let po = OfMessage::PacketOut(attain_openflow::PacketOut {
            buffer_id: Some(id),
            in_port: PortNo(1),
            actions: vec![Action::Output {
                port: PortNo(2),
                max_len: 0,
            }],
            data: vec![],
        });
        s.handle_control(
            ConnId(0),
            &Frame::from_message(po, 5),
            SimTime::ZERO,
            &mut fx,
        );
        assert!(s.buffers.is_empty());
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Frame { out_port, .. } if *out_port == PortNo(2))));
    }

    #[test]
    fn packet_out_with_unknown_buffer_errors() {
        let mut s = switch();
        connect(&mut s);
        let mut fx = Vec::new();
        let po = OfMessage::PacketOut(attain_openflow::PacketOut {
            buffer_id: Some(999),
            in_port: PortNo(1),
            actions: vec![],
            data: vec![],
        });
        s.handle_control(
            ConnId(0),
            &Frame::from_message(po, 5),
            SimTime::ZERO,
            &mut fx,
        );
        let has_error = fx.iter().any(|e| match e {
            Effect::Control { frame, .. } => matches!(
                frame.message().unwrap(),
                OfMessage::Error(em) if em.code == bad_request::BUFFER_UNKNOWN
            ),
            _ => false,
        });
        assert!(has_error);
    }

    #[test]
    fn flow_mod_with_buffer_forwards_the_parked_packet() {
        let mut s = switch();
        connect(&mut s);
        let mut fx = Vec::new();
        s.handle_frame(PortNo(1), frame(1, 2), SimTime::ZERO, &mut fx);
        let id = s.buffers[0].id;
        fx.clear();
        let fm = OfMessage::FlowMod(FlowMod {
            buffer_id: Some(id),
            ..FlowMod::add(
                Match::exact_in_port(PortNo(1)),
                vec![Action::Output {
                    port: PortNo(3),
                    max_len: 0,
                }],
            )
        });
        s.handle_control(
            ConnId(0),
            &Frame::from_message(fm, 6),
            SimTime::ZERO,
            &mut fx,
        );
        assert!(s.buffers.is_empty());
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Frame { out_port, .. } if *out_port == PortNo(3))));
        assert_eq!(s.flow_table().len(), 1);
        // Subsequent frames hit the table directly.
        fx.clear();
        s.handle_frame(PortNo(1), frame(1, 2), SimTime::from_millis(1), &mut fx);
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Frame { out_port, .. } if *out_port == PortNo(3))));
        assert!(s.buffers.is_empty());
    }

    #[test]
    fn suppressed_flow_mod_leaves_buffer_parked_forever() {
        // The POX deadlock mechanism: buffer waits for a flow mod that the
        // attack dropped. Nothing else releases it.
        let mut s = switch();
        connect(&mut s);
        let mut fx = Vec::new();
        s.handle_frame(PortNo(1), frame(1, 2), SimTime::ZERO, &mut fx);
        assert_eq!(s.buffers.len(), 1);
        // Time passes; the frame never egresses.
        fx.clear();
        s.tick(SimTime::from_secs(30), &mut fx);
        assert_eq!(s.buffers.len(), 1);
        assert!(!fx.iter().any(|e| matches!(e, Effect::Frame { .. })));
    }

    #[test]
    fn fail_secure_drops_misses_when_disconnected() {
        let mut s = switch();
        // never connected
        let mut fx = Vec::new();
        s.handle_frame(PortNo(1), frame(1, 2), SimTime::ZERO, &mut fx);
        assert!(!fx.iter().any(|e| matches!(e, Effect::Frame { .. })));
        assert_eq!(s.secure_drops, 1);
    }

    #[test]
    fn fail_safe_learns_and_floods_when_disconnected() {
        let mut s = Switch::new(NodeId(0), "s1".into(), DatapathId(1), FailMode::Safe);
        s.add_port(PortNo(1));
        s.add_port(PortNo(2));
        s.add_port(PortNo(3));
        let mut fx = Vec::new();
        // Unknown dst: floods to 2 and 3.
        s.handle_frame(PortNo(1), frame(1, 2), SimTime::ZERO, &mut fx);
        let floods: Vec<_> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::Frame { out_port, .. } => Some(*out_port),
                _ => None,
            })
            .collect();
        assert_eq!(floods, vec![PortNo(2), PortNo(3)]);
        // Reply from port 2 teaches the MAC; now unicast.
        fx.clear();
        s.handle_frame(PortNo(2), frame(2, 1), SimTime::ZERO, &mut fx);
        let outs: Vec<_> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::Frame { out_port, .. } => Some(*out_port),
                _ => None,
            })
            .collect();
        assert_eq!(outs, vec![PortNo(1)]);
    }

    #[test]
    fn silence_triggers_probe_then_death_then_reconnect_timer() {
        let mut s = switch();
        connect(&mut s);
        let mut fx = Vec::new();
        // 6 s of silence: probe.
        s.tick(SimTime::from_secs(6), &mut fx);
        let probed = fx.iter().any(|e| match e {
            Effect::Control { frame, .. } => {
                matches!(frame.message().unwrap(), OfMessage::EchoRequest(_))
            }
            _ => false,
        });
        assert!(probed);
        assert!(s.is_connected());
        // 16 s of silence: dead + fail mode + reconnect timer.
        fx.clear();
        s.tick(SimTime::from_secs(16), &mut fx);
        assert!(!s.is_connected());
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Trace(TraceKind::ConnectionDead { .. }))));
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::Trace(TraceKind::FailModeEntered {
                standalone: false,
                ..
            })
        )));
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::Timer {
                token: TimerToken::Connect { .. },
                ..
            }
        )));
    }

    #[test]
    fn echo_request_is_answered() {
        let mut s = switch();
        connect(&mut s);
        let mut fx = Vec::new();
        s.handle_control(
            ConnId(0),
            &Frame::from_message(OfMessage::EchoRequest(vec![1, 2]), 9),
            SimTime::ZERO,
            &mut fx,
        );
        let echoed = fx.iter().any(|e| match e {
            Effect::Control { frame, .. } => {
                frame.message() == Some(&OfMessage::EchoReply(vec![1, 2]))
            }
            _ => false,
        });
        assert!(echoed);
    }

    #[test]
    fn garbage_control_bytes_yield_error_not_panic() {
        let mut s = switch();
        connect(&mut s);
        let mut fx = Vec::new();
        s.handle_control(
            ConnId(0),
            &Frame::new(vec![0xff; 16]),
            SimTime::ZERO,
            &mut fx,
        );
        let has_error = fx.iter().any(|e| match e {
            Effect::Control { frame, .. } => {
                matches!(frame.message().unwrap(), OfMessage::Error(_))
            }
            _ => false,
        });
        assert!(has_error);
    }

    #[test]
    fn stats_request_flow_reports_installed_entries() {
        let mut s = switch();
        connect(&mut s);
        let mut fx = Vec::new();
        let fm = OfMessage::FlowMod(FlowMod::add(
            Match::exact_in_port(PortNo(1)),
            vec![Action::Output {
                port: PortNo(2),
                max_len: 0,
            }],
        ));
        s.handle_control(
            ConnId(0),
            &Frame::from_message(fm, 3),
            SimTime::ZERO,
            &mut fx,
        );
        fx.clear();
        let req = OfMessage::StatsRequest(StatsBody::Flow {
            r#match: Match::all(),
            table_id: 0xff,
            out_port: PortNo::NONE,
        });
        s.handle_control(
            ConnId(0),
            &Frame::from_message(req, 4),
            SimTime::from_secs(2),
            &mut fx,
        );
        let reply = fx
            .iter()
            .find_map(|e| match e {
                Effect::Control { frame, .. } => match frame.message().unwrap() {
                    OfMessage::StatsReply(StatsReplyBody::Flow(entries)) => Some(entries.clone()),
                    _ => None,
                },
                _ => None,
            })
            .expect("flow stats reply");
        assert_eq!(reply.len(), 1);
        assert_eq!(reply[0].duration_sec, 2);
    }

    #[test]
    fn rewrite_actions_change_the_frame() {
        let f = frame(1, 2);
        let rewritten = apply_rewrite(&Action::SetDlDst(MacAddr::from_low(0x99)), f);
        let eth = Ethernet::decode(&rewritten).unwrap();
        assert_eq!(eth.dst, MacAddr::from_low(0x99));
        // IP rewrite recomputes the checksum (decode would fail otherwise).
        let rewritten = apply_rewrite(&Action::SetNwSrc(0x01020304), rewritten);
        let eth = Ethernet::decode(&rewritten).unwrap();
        let Payload::Ipv4(ip) = eth.payload else {
            panic!("not ipv4")
        };
        assert_eq!(ip.src, std::net::Ipv4Addr::new(1, 2, 3, 4));
    }

    #[test]
    fn table_full_reports_error() {
        let mut s = switch();
        s.table = FlowTable::new(1);
        connect(&mut s);
        let mut fx = Vec::new();
        for port in [1u16, 2] {
            let fm = OfMessage::FlowMod(FlowMod::add(Match::exact_in_port(PortNo(port)), vec![]));
            s.handle_control(
                ConnId(0),
                &Frame::from_message(fm, port as u32),
                SimTime::ZERO,
                &mut fx,
            );
        }
        let has_full = fx.iter().any(|e| match e {
            Effect::Control { frame, .. } => matches!(
                frame.message().unwrap(),
                OfMessage::Error(em)
                    if em.error_type == ErrorType::FlowModFailed
                        && em.code == flow_mod_failed::ALL_TABLES_FULL
            ),
            _ => false,
        });
        assert!(has_full);
    }

    #[test]
    fn rejected_flow_mod_frees_its_buffer() {
        let mut s = switch();
        s.table = FlowTable::new(1);
        connect(&mut s);
        let mut fx = Vec::new();
        let filler = OfMessage::FlowMod(FlowMod::add(Match::exact_in_port(PortNo(2)), vec![]));
        s.handle_control(
            ConnId(0),
            &Frame::from_message(filler, 3),
            SimTime::ZERO,
            &mut fx,
        );
        s.handle_frame(PortNo(1), frame(1, 2), SimTime::ZERO, &mut fx);
        let id = s.buffers[0].id;
        fx.clear();
        let fm = OfMessage::FlowMod(FlowMod {
            buffer_id: Some(id),
            ..FlowMod::add(
                Match::exact_in_port(PortNo(1)),
                vec![Action::Output {
                    port: PortNo(3),
                    max_len: 0,
                }],
            )
        });
        s.handle_control(
            ConnId(0),
            &Frame::from_message(fm, 4),
            SimTime::ZERO,
            &mut fx,
        );
        let has_full = fx.iter().any(|e| match e {
            Effect::Control { frame, .. } => matches!(
                frame.message().unwrap(),
                OfMessage::Error(em) if em.code == flow_mod_failed::ALL_TABLES_FULL
            ),
            _ => false,
        });
        assert!(has_full);
        assert!(
            s.buffers.is_empty(),
            "a rejected flow mod must retire its buffer"
        );
        // The parked packet is dropped, not forwarded.
        assert!(!fx.iter().any(|e| matches!(e, Effect::Frame { .. })));
    }

    #[test]
    fn full_buffer_pool_ages_oldest_first() {
        let mut s = switch();
        connect(&mut s);
        let mut fx = Vec::new();
        for _ in 0..BUFFER_CAPACITY {
            s.handle_frame(PortNo(1), frame(1, 2), SimTime::ZERO, &mut fx);
        }
        assert_eq!(s.buffers.len(), BUFFER_CAPACITY);
        let oldest = s.buffers[0].id;
        fx.clear();
        // One more miss: the oldest resident ages out, the new packet is
        // still buffered (no silent unbuffered degradation).
        s.handle_frame(PortNo(1), frame(1, 2), SimTime::ZERO, &mut fx);
        assert_eq!(s.buffers.len(), BUFFER_CAPACITY);
        assert!(s.buffers.iter().all(|b| b.id != oldest));
        let pi_buffered = fx.iter().any(|e| match e {
            Effect::Control { frame, .. } => matches!(
                frame.message().unwrap(),
                OfMessage::PacketIn(pi) if pi.buffer_id.is_some()
            ),
            _ => false,
        });
        assert!(pi_buffered);
        // Releasing a survivor drains the pool back below capacity.
        let id = s.buffers[0].id;
        fx.clear();
        let po = OfMessage::PacketOut(attain_openflow::PacketOut {
            buffer_id: Some(id),
            in_port: PortNo(1),
            actions: vec![Action::Output {
                port: PortNo(2),
                max_len: 0,
            }],
            data: vec![],
        });
        s.handle_control(
            ConnId(0),
            &Frame::from_message(po, 900),
            SimTime::ZERO,
            &mut fx,
        );
        assert_eq!(s.buffers.len(), BUFFER_CAPACITY - 1);
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Frame { out_port, .. } if *out_port == PortNo(2))));
    }

    #[test]
    fn wrapped_buffer_ids_skip_zero_and_residents() {
        let mut s = switch();
        connect(&mut s);
        let mut fx = Vec::new();
        s.next_buffer_id = 0x7fff_ffff;
        s.handle_frame(PortNo(1), frame(1, 2), SimTime::ZERO, &mut fx);
        assert_eq!(s.buffers[0].id, 0x7fff_ffff);
        // The counter wrapped to 0, which is skipped.
        s.handle_frame(PortNo(1), frame(1, 2), SimTime::ZERO, &mut fx);
        assert_eq!(s.buffers[1].id, 1);
        // Wrap again while both stay resident: 0x7fff_ffff, 0, and 1 are
        // all unavailable, so the next allocation lands on 2.
        s.next_buffer_id = 0x7fff_ffff;
        s.handle_frame(PortNo(1), frame(1, 2), SimTime::ZERO, &mut fx);
        assert_eq!(s.buffers[2].id, 2);
    }

    #[test]
    fn eviction_notifies_and_traces() {
        let mut s = switch();
        s.set_table_config(1, EvictionPolicy::EvictLru);
        connect(&mut s);
        let mut fx = Vec::new();
        let victim = OfMessage::FlowMod(FlowMod {
            flags: attain_openflow::FlowModFlags(attain_openflow::FlowModFlags::SEND_FLOW_REM),
            ..FlowMod::add(
                Match::exact_in_port(PortNo(1)),
                vec![Action::Output {
                    port: PortNo(2),
                    max_len: 0,
                }],
            )
        });
        s.handle_control(
            ConnId(0),
            &Frame::from_message(victim, 3),
            SimTime::ZERO,
            &mut fx,
        );
        fx.clear();
        let usurper = OfMessage::FlowMod(FlowMod::add(Match::exact_in_port(PortNo(2)), vec![]));
        s.handle_control(
            ConnId(0),
            &Frame::from_message(usurper, 4),
            SimTime::from_secs(1),
            &mut fx,
        );
        assert_eq!(s.flow_table().len(), 1);
        assert_eq!(s.flow_table().eviction_count, 1);
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Trace(TraceKind::FlowEvicted { .. }))));
        let notified = fx.iter().any(|e| match e {
            Effect::Control { frame, .. } => matches!(
                frame.message().unwrap(),
                OfMessage::FlowRemoved(fr)
                    if fr.reason == attain_openflow::FlowRemovedReason::Eviction
                        && fr.r#match.in_port == PortNo(1)
            ),
            _ => false,
        });
        assert!(notified);
    }

    #[test]
    fn unbuffered_packet_out_forwards_payload() {
        let mut s = switch();
        connect(&mut s);
        let mut fx = Vec::new();
        let payload = frame(1, 2);
        let po = OfMessage::PacketOut(attain_openflow::PacketOut {
            buffer_id: None,
            in_port: PortNo(1),
            actions: vec![Action::Output {
                port: PortNo(2),
                max_len: 0,
            }],
            data: payload.clone(),
        });
        s.handle_control(
            ConnId(0),
            &Frame::from_message(po, 5),
            SimTime::ZERO,
            &mut fx,
        );
        let sent = fx
            .iter()
            .find_map(|e| match e {
                Effect::Frame { out_port, frame } if *out_port == PortNo(2) => Some(frame.clone()),
                _ => None,
            })
            .expect("unbuffered packet out must forward");
        assert_eq!(sent, payload);
    }

    /// Installs a flow whose removal would be notified, then restarts.
    fn connected_switch_with_notifying_flow() -> Switch {
        let mut s = switch();
        connect(&mut s);
        let mut fx = Vec::new();
        let fm = OfMessage::FlowMod(FlowMod {
            flags: attain_openflow::FlowModFlags(attain_openflow::FlowModFlags::SEND_FLOW_REM),
            idle_timeout: 5,
            ..FlowMod::add(
                Match::exact_in_port(PortNo(1)),
                vec![Action::Output {
                    port: PortNo(2),
                    max_len: 0,
                }],
            )
        });
        s.handle_control(
            ConnId(0),
            &Frame::from_message(fm, 3),
            SimTime::ZERO,
            &mut fx,
        );
        assert_eq!(s.table.len(), 1);
        s
    }

    #[test]
    fn restart_wipes_table_without_flow_removed() {
        let mut s = connected_switch_with_notifying_flow();
        s.table.lookup_count = 9;
        s.table.matched_count = 4;
        let mut fx = Vec::new();
        s.handle_frame(PortNo(3), frame(9, 1), SimTime::ZERO, &mut fx);
        assert!(!s.buffers.is_empty());
        fx.clear();
        s.restart(SimTime::from_secs(10), &mut fx);
        assert_eq!(s.table.len(), 0, "flow table must be wiped");
        assert_eq!(s.table.lookup_count, 0, "table counters must be zeroed");
        assert_eq!(s.table.matched_count, 0);
        assert!(
            s.buffers.is_empty(),
            "buffered packets died with the process"
        );
        assert!(s.mac_table.is_empty());
        assert_eq!(s.restarts, 1);
        // No FLOW_REMOVED may escape, even though the entry asked for
        // notification: the process that owed it is gone.
        assert!(
            !fx.iter().any(|e| matches!(
                e,
                Effect::Control { frame, .. }
                    if matches!(frame.message(), Some(OfMessage::FlowRemoved(_)))
            )),
            "restart must not notify for wiped entries"
        );
    }

    #[test]
    fn restart_schedules_reconnect_and_replays_handshake() {
        let mut s = connected_switch_with_notifying_flow();
        let mut fx = Vec::new();
        s.restart(SimTime::from_secs(10), &mut fx);
        assert!(!s.is_connected());
        // A Connect timer per connection, due immediately.
        let connects: Vec<_> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::Timer {
                    at,
                    token: TimerToken::Connect { conn },
                } => Some((*at, *conn)),
                _ => None,
            })
            .collect();
        assert_eq!(connects, vec![(SimTime::from_secs(10), ConnId(0))]);
        // Drive the replayed handshake: HELLO goes out afresh with a
        // reset xid counter, and FEATURES_REQUEST completes it.
        fx.clear();
        s.start_connect(ConnId(0), SimTime::from_secs(10), &mut fx);
        let hello = fx
            .iter()
            .find_map(|e| match e {
                Effect::Control { frame, .. } => Some(frame.decoded().unwrap().clone()),
                _ => None,
            })
            .expect("restarted switch re-sends HELLO");
        assert_eq!(hello.0, OfMessage::Hello);
        assert_eq!(hello.1, 1, "xid counter must reset with the process");
        let mut fx = Vec::new();
        s.handle_control(
            ConnId(0),
            &Frame::from_message(OfMessage::Hello, 1),
            SimTime::from_secs(10),
            &mut fx,
        );
        s.handle_control(
            ConnId(0),
            &Frame::from_message(OfMessage::FeaturesRequest, 2),
            SimTime::from_secs(10),
            &mut fx,
        );
        assert!(s.is_connected(), "handshake must complete after restart");
    }

    #[test]
    fn restart_honours_fail_secure_until_reconnected() {
        let mut s = connected_switch_with_notifying_flow();
        let mut fx = Vec::new();
        s.restart(SimTime::from_secs(10), &mut fx);
        fx.clear();
        // The wiped rule would have matched this; while down, fail-secure
        // drops it instead.
        s.handle_frame(PortNo(1), frame(1, 2), SimTime::from_secs(10), &mut fx);
        assert!(!fx.iter().any(|e| matches!(e, Effect::Frame { .. })));
        assert_eq!(s.secure_drops, 1);
    }

    #[test]
    fn restart_honours_fail_safe_standalone_while_down() {
        let mut s = Switch::new(NodeId(0), "s1".into(), DatapathId(1), FailMode::Safe);
        s.add_port(PortNo(1));
        s.add_port(PortNo(2));
        s.add_conn(ConnId(0));
        connect(&mut s);
        let mut fx = Vec::new();
        s.restart(SimTime::from_secs(10), &mut fx);
        fx.clear();
        s.handle_frame(PortNo(1), frame(1, 2), SimTime::from_secs(10), &mut fx);
        assert!(
            fx.iter().any(|e| matches!(e, Effect::Frame { .. })),
            "fail-safe must forward standalone while down"
        );
        assert_eq!(s.standalone_forwards, 1);
    }

    #[test]
    fn garbage_control_bytes_are_traced() {
        let mut s = switch();
        connect(&mut s);
        let mut fx = Vec::new();
        s.handle_control(
            ConnId(0),
            &Frame::new(vec![0xde, 0xad, 0xbe, 0xef]),
            SimTime::ZERO,
            &mut fx,
        );
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::Trace(TraceKind::DecodeFailure {
                conn: ConnId(0),
                direction: Direction::ControllerToSwitch,
            })
        )));
        // And the usual ERROR reply still goes out.
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::Control { frame, .. }
                if matches!(frame.message(), Some(OfMessage::Error(_)))
        )));
    }
}
